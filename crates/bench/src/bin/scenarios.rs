//! Runs the paper's Table 5 experiment as a scenario grid through the
//! parallel scenario engine and writes the machine-readable result set to
//! `BENCH_scenarios.json` (override the path with the first command-line
//! argument). Future sessions diff this file to track the performance and
//! accuracy trajectory.
//!
//! The grid is 1 battery type (B1) × 1 count (2) × 1 discretization (paper)
//! × 10 loads × 3 policies × 2 backends = 60 scenarios.

use engine::{results_to_json, run_grid, ScenarioSpec};
use std::time::Instant;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_scenarios.json".to_owned());
    let spec = ScenarioSpec::paper_table5();
    println!("scenario grid: {} scenarios", spec.scenario_count());

    let start = Instant::now();
    let results = match run_grid(&spec) {
        Ok(results) => results,
        Err(error) => {
            eprintln!("scenario grid failed: {error}");
            std::process::exit(1);
        }
    };
    let wall = start.elapsed();

    let total_sim_micros: u64 = results.iter().map(|r| r.wall_micros).sum();
    println!(
        "ran {} scenarios in {:.2?} wall clock ({:.2?} total simulation time)",
        results.len(),
        wall,
        std::time::Duration::from_micros(total_sim_micros),
    );
    println!("{:<40} {:>10} {:>10}", "scenario", "lifetime", "residual");
    for result in &results {
        println!(
            "{:<40} {:>10} {:>10.2}",
            result.scenario.label(),
            result
                .lifetime_minutes
                .map(|m| format!("{m:.2} min"))
                .unwrap_or_else(|| "-".to_owned()),
            result.residual_charge,
        );
    }

    let json = results_to_json(&spec, &results).expect("scenario results serialize");
    if let Err(error) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {error}");
        std::process::exit(1);
    }
    println!("\nwrote {} bytes to {out_path}", json.len());
}
