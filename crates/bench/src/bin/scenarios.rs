//! Scenario-grid benchmarks through the parallel scenario engine.
//!
//! Four grids, all machine-readable so future sessions can diff the
//! performance and accuracy trajectory:
//!
//! * **Paper grid** (always): the Table 5 experiment — 1 battery type (B1)
//!   × 1 count (2) × 1 discretization (paper) × 10 loads × 3 policies ×
//!   2 backends = 60 scenarios — written to `BENCH_scenarios.json`.
//! * **Optimal grid** (`--optimal`): optimal-vs-policy on the coarse grid,
//!   with branch-and-bound node counts (and, per optimal cell, the probed
//!   root bounds plus their wall time), written to `BENCH_optimal.json`
//!   together with a `frontier_root_bounds` section — the charge /
//!   availability / relaxation / warm-start root bounds on the
//!   alternating-load frontier fleets (2×B1 through 4×B1), so bound
//!   tightening is diffable across commits; also prints the seed
//!   (pruning-disabled) search next to the memoized one. `--max-nodes N`
//!   turns the node counts into a CI gate.
//! * **Fleet grid** (`--fleet B1+B1+B2` / `--fleet 2xB1+B2`): a
//!   heterogeneous fleet on the coarse grid, deterministic policies next to
//!   the optimal search, written to `BENCH_fleet.json`. The `--max-nodes`
//!   ceiling applies to these searches too, so CI gates mixed-fleet search
//!   regressions alongside uniform ones.
//! * **Random grid** (`--random-cells N`): a seed sweep over
//!   `RandomLoadSpec` loads, **streamed** to `BENCH_random_grid.json` while
//!   the grid runs — a 10⁴–10⁵-cell sweep never materializes its results in
//!   memory. `--analyze` then summarizes the streamed file (policy means,
//!   best-of-two-vs-round-robin gap counts) and re-runs a coarse sub-grid
//!   of the seeds with the optimal search to count optimal-vs-best-of-two
//!   gaps — the seed of the Section 7 random-workload study.
//! * **Cross-model grid** (`--crossmodel`): every paper load × all four
//!   deterministic policies × all four backends (ideal / discretized KiBaM /
//!   continuous KiBaM / RV diffusion) at the paper discretization, plus
//!   optimal cross-model cells on the coarse grid, written to
//!   `BENCH_crossmodel.json` together with per-load policy **rankings** and
//!   an RV-vs-KiBaM ranking-agreement verdict (a strict reversal among the
//!   paper's three policies counts as divergence). The optimal cells run
//!   under the `--max-nodes` ceiling and the baseline gate.
//!
//! With `--baseline PATH`, the optimal grid gates its node counts against
//! the committed document at PATH, and the fleet and cross-model grids gate
//! against the committed copies of their own output files (loaded before
//! they are overwritten). A gated cell that disappears from a run fails the
//! gate — a dropped scenario must not pass as "nothing regressed".
//!
//! Million-cell sweeps shard across processes: `--shard I/N` streams only
//! the `I`-th of `N` contiguous slices of the random grid, `--merge`
//! concatenates shard documents back into one (verifying they share a
//! spec), and `--compare` checks two result documents row-for-row (ignoring
//! wall-clock times) — the CI proof that sharded and unsharded sweeps
//! produce the same artifact.
//!
//! ```text
//! scenarios [OUT] [--threads N]
//!           [--optimal] [--optimal-out PATH] [--max-nodes N]
//!           [--baseline PATH]
//!           [--fleet SPEC] [--fleet-out PATH]
//!           [--crossmodel] [--crossmodel-out PATH]
//!           [--random-cells N] [--random-jobs N] [--random-out PATH]
//!           [--analyze] [--analyze-seeds N]
//!           [--chunk N]   # work-chunk size of the streamed random grid
//!                         # (0 auto-sizes from grid size and thread count)
//!           [--shard I/N] # stream only shard I of N of the random grid
//! scenarios --merge OUT IN...   # concatenate shard documents into OUT
//! scenarios --compare A B       # row-for-row equality (ignores wall_micros)
//! ```

use battery_sched::optimal::OptimalScheduler;
use battery_sched::system::SystemConfig;
use dkibam::Discretization;
use engine::json::JsonValue;
use engine::{
    results_from_json, results_to_json, BackendKind, BatterySpec, DiscSpec, FleetDef, GridRun,
    LoadSpec, PolicyKind, ScenarioSpec,
};
use kibam::{BatteryParams, FleetSpec};
use std::time::Instant;
use workload::paper_loads::TestLoad;

struct Options {
    out: String,
    threads: usize,
    chunk: Option<usize>,
    shard: Option<(usize, usize)>,
    optimal: bool,
    optimal_out: String,
    max_nodes: Option<u64>,
    baseline: Option<String>,
    fleet: Option<FleetDef>,
    fleet_out: String,
    crossmodel: bool,
    crossmodel_out: String,
    random_cells: Option<usize>,
    random_jobs: usize,
    random_out: String,
    analyze: bool,
    analyze_seeds: usize,
    analyze_out: String,
}

fn parse_options() -> Options {
    let mut options = Options {
        out: "BENCH_scenarios.json".to_owned(),
        threads: std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        chunk: None,
        shard: None,
        optimal: false,
        optimal_out: "BENCH_optimal.json".to_owned(),
        max_nodes: None,
        baseline: None,
        fleet: None,
        fleet_out: "BENCH_fleet.json".to_owned(),
        crossmodel: false,
        crossmodel_out: "BENCH_crossmodel.json".to_owned(),
        random_cells: None,
        random_jobs: 50,
        random_out: "BENCH_random_grid.json".to_owned(),
        analyze: false,
        analyze_seeds: 12,
        analyze_out: "BENCH_analyze.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--threads" => options.threads = parse(&value("--threads")),
            "--chunk" => options.chunk = Some(parse(&value("--chunk"))),
            "--shard" => options.shard = Some(parse_shard(&value("--shard"))),
            "--optimal" => options.optimal = true,
            "--optimal-out" => options.optimal_out = value("--optimal-out"),
            "--max-nodes" => options.max_nodes = Some(parse(&value("--max-nodes"))),
            "--baseline" => options.baseline = Some(value("--baseline")),
            "--fleet" => options.fleet = Some(parse_fleet(&value("--fleet"))),
            "--fleet-out" => options.fleet_out = value("--fleet-out"),
            "--crossmodel" => options.crossmodel = true,
            "--crossmodel-out" => options.crossmodel_out = value("--crossmodel-out"),
            "--random-cells" => options.random_cells = Some(parse(&value("--random-cells"))),
            "--random-jobs" => options.random_jobs = parse(&value("--random-jobs")),
            "--random-out" => options.random_out = value("--random-out"),
            "--analyze" => options.analyze = true,
            "--analyze-seeds" => options.analyze_seeds = parse(&value("--analyze-seeds")),
            "--analyze-out" => options.analyze_out = value("--analyze-out"),
            other if !other.starts_with("--") => options.out = other.to_owned(),
            other => {
                eprintln!("unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }
    options
}

fn parse<T: std::str::FromStr>(text: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse '{text}'");
        std::process::exit(2);
    })
}

/// Parses a `--shard` spec like `2/3` (shard index 2 of 3) into
/// `(index, count)`.
fn parse_shard(text: &str) -> (usize, usize) {
    let Some((index, count)) = text.split_once('/') else {
        eprintln!("--shard expects I/N (e.g. 0/3), got '{text}'");
        std::process::exit(2);
    };
    let (index, count) = (parse::<usize>(index), parse::<usize>(count));
    if count == 0 || index >= count {
        eprintln!("--shard {index}/{count} is out of range");
        std::process::exit(2);
    }
    (index, count)
}

/// Parses a `--fleet` spec like `B1+B2`, `B1+B1+B2` or `2xB1+B2` into a
/// [`FleetDef`]: `+`-separated terms, each a battery name (`B1`/`B2`)
/// optionally prefixed with a `Nx` multiplier.
fn parse_fleet(text: &str) -> FleetDef {
    let mut batteries = Vec::new();
    for term in text.split('+') {
        let (count, name) = match term.split_once('x') {
            Some((count, name)) => (parse::<usize>(count), name),
            None => (1, term),
        };
        let battery = match name {
            "B1" => BatterySpec::b1(),
            "B2" => BatterySpec::b2(),
            other => {
                eprintln!("unknown battery '{other}' in --fleet (expected B1 or B2)");
                std::process::exit(2);
            }
        };
        if count == 0 {
            eprintln!("--fleet multiplier must be positive in '{term}'");
            std::process::exit(2);
        }
        batteries.extend(vec![battery; count]);
    }
    if batteries.is_empty() {
        eprintln!("--fleet needs at least one battery");
        std::process::exit(2);
    }
    FleetDef::mixed(batteries)
}

fn main() {
    // Merge and compare are standalone utility modes (they run no grids),
    // selected by their flag in first position.
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--merge") => return run_merge(&args[1..]),
        Some("--compare") => return run_compare(&args[1..]),
        _ => {}
    }
    let options = parse_options();
    run_paper_grid(&options);
    if options.optimal {
        run_optimal_grid(&options);
        print_seed_vs_memoized();
    }
    if let Some(fleet) = &options.fleet {
        run_fleet_grid(&options, fleet.clone());
    }
    if options.crossmodel {
        run_crossmodel_grid(&options);
    }
    if let Some(cells) = options.random_cells {
        run_random_grid(&options, cells);
    }
    if options.analyze {
        run_analyze(&options);
    }
}

/// Reads a result document (unsharded or one shard) into its spec and raw
/// result rows, exiting with a diagnostic on failure.
fn read_results(path: &str) -> (ScenarioSpec, Vec<JsonValue>) {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("cannot read {path}: {error}");
            std::process::exit(1);
        }
    };
    match results_from_json(&text) {
        Ok(parsed) => parsed,
        Err(error) => {
            eprintln!("cannot parse {path}: {error}");
            std::process::exit(1);
        }
    }
}

/// `--merge OUT IN...`: concatenates shard documents (in argument order,
/// which must be shard order) into one result document at OUT. Every input
/// must carry the same grid spec — shards of different grids refuse to
/// merge instead of producing a silently inconsistent artifact.
fn run_merge(args: &[String]) {
    let [out, inputs @ ..] = args else {
        eprintln!("--merge needs an output path and at least one input");
        std::process::exit(2);
    };
    if inputs.is_empty() {
        eprintln!("--merge needs at least one input document");
        std::process::exit(2);
    }
    let mut merged: Option<(ScenarioSpec, Vec<JsonValue>)> = None;
    for path in inputs {
        let (spec, rows) = read_results(path);
        match &mut merged {
            Some((first_spec, all_rows)) => {
                if *first_spec != spec {
                    eprintln!(
                        "{path} holds a different grid spec than {} — not shards of one grid",
                        inputs[0]
                    );
                    std::process::exit(1);
                }
                all_rows.extend(rows);
            }
            None => merged = Some((spec, rows)),
        }
    }
    let (spec, rows) = merged.expect("at least one input");
    let document = JsonValue::object(vec![
        ("spec", spec.to_json_value()),
        ("results", JsonValue::Array(rows)),
    ]);
    let json = match document.render() {
        Ok(json) => json,
        Err(error) => {
            eprintln!("cannot render the merged document: {error}");
            std::process::exit(1);
        }
    };
    if let Err(error) = std::fs::write(out, &json) {
        eprintln!("cannot write {out}: {error}");
        std::process::exit(1);
    }
    let (_, rows) = read_results(out);
    println!("merged {} inputs into {out} ({} result rows)", inputs.len(), rows.len());
}

/// A result row with its wall-clock fields removed: simulation outcomes
/// are deterministic, wall time (`wall_micros`, and the root-bound probe
/// time `bound_micros`) never is.
fn without_wall_micros(row: &JsonValue) -> JsonValue {
    match row {
        JsonValue::Object(fields) => JsonValue::Object(
            fields
                .iter()
                .filter(|(key, _)| key != "wall_micros" && key != "bound_micros")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

/// `--compare A B`: verifies two result documents describe the same grid
/// and hold identical result rows (ignoring `wall_micros`), row for row.
/// Exits non-zero on any difference — the CI gate that a sharded sweep
/// merged back together matches the unsharded run exactly.
fn run_compare(args: &[String]) {
    let [a_path, b_path] = args else {
        eprintln!("--compare needs exactly two documents");
        std::process::exit(2);
    };
    let (a_spec, a_rows) = read_results(a_path);
    let (b_spec, b_rows) = read_results(b_path);
    if a_spec != b_spec {
        eprintln!("{a_path} and {b_path} describe different grids");
        std::process::exit(1);
    }
    if a_rows.len() != b_rows.len() {
        eprintln!(
            "row count differs: {a_path} has {}, {b_path} has {}",
            a_rows.len(),
            b_rows.len()
        );
        std::process::exit(1);
    }
    for (index, (a, b)) in a_rows.iter().zip(&b_rows).enumerate() {
        if without_wall_micros(a) != without_wall_micros(b) {
            eprintln!("row {index} differs (ignoring wall-clock fields):");
            eprintln!("  {a_path}: {}", a.render().unwrap_or_else(|e| e.to_string()));
            eprintln!("  {b_path}: {}", b.render().unwrap_or_else(|e| e.to_string()));
            std::process::exit(1);
        }
    }
    println!("documents match: {} rows identical (wall-clock fields ignored)", a_rows.len());
}

/// The Table 5 grid of the seed harness: collected (it is small), printed
/// as a table and archived as `BENCH_scenarios.json`.
fn run_paper_grid(options: &Options) {
    let spec = ScenarioSpec::paper_table5();
    println!("paper grid: {} scenarios", spec.scenario_count());

    let start = Instant::now();
    let results = match GridRun::new(&spec).threads(options.threads).collect() {
        Ok(results) => results,
        Err(error) => {
            eprintln!("paper grid failed: {error}");
            std::process::exit(1);
        }
    };
    let wall = start.elapsed();

    let total_sim_micros: u64 = results.iter().map(|r| r.wall_micros).sum();
    println!(
        "ran {} scenarios in {:.2?} wall clock ({:.2?} total simulation time)",
        results.len(),
        wall,
        std::time::Duration::from_micros(total_sim_micros),
    );
    println!("{:<40} {:>10} {:>10}", "scenario", "lifetime", "residual");
    for result in &results {
        println!(
            "{:<40} {:>10} {:>10.2}",
            result.scenario.label(),
            result
                .lifetime_minutes
                .map(|m| format!("{m:.2} min"))
                .unwrap_or_else(|| "-".to_owned()),
            result.residual_charge,
        );
    }

    let json = results_to_json(&spec, &results).expect("scenario results serialize");
    if let Err(error) = std::fs::write(&options.out, &json) {
        eprintln!("cannot write {}: {error}", options.out);
        std::process::exit(1);
    }
    println!("wrote {} bytes to {}\n", json.len(), options.out);
}

/// Writes a grid document and runs its gates, in the one order that keeps
/// both the baseline and the artifact honest: the *committed* copy of
/// `out_path` is read first (it is the baseline), the fresh document is
/// written next (so a failing gate still leaves the artifact behind for
/// baseline regeneration), and the node-ceiling gate over `gated` plus the
/// committed-baseline gate over `all` run last. A missing committed
/// document skips the baseline gate with a note instead of aborting — the
/// bootstrap path for a newly gated grid, whose first run must be able to
/// produce the document it will be gated against.
fn write_and_gate(
    options: &Options,
    out_path: &str,
    json: &str,
    gated: &[engine::ScenarioResult],
    all: &[engine::ScenarioResult],
) {
    let baseline = match &options.baseline {
        Some(_) if std::path::Path::new(out_path).exists() => Some(load_baseline(out_path)),
        Some(_) => {
            println!(
                "baseline note: no committed {out_path} yet — baseline gate skipped \
                 (commit this run's document to arm it)"
            );
            None
        }
        None => None,
    };
    if let Err(error) = std::fs::write(out_path, json) {
        eprintln!("cannot write {out_path}: {error}");
        std::process::exit(1);
    }
    println!("wrote {} bytes to {out_path}\n", json.len());

    print_and_gate(gated, options.max_nodes, gated.len());
    if let Some(baseline) = baseline {
        check_baseline(&baseline, all);
    }
}

/// Runs a coarse-grid spec with optimal cells, prints the node counts and
/// enforces the `--max-nodes` ceiling. Shared by the optimal and the fleet
/// grids. When `--baseline` is active, the grid's optimal cells are also
/// gated against the *committed* copy of `out_path` (loaded before the new
/// results overwrite it), with the same no-disappearing-cells semantics as
/// the `BENCH_optimal.json` gate.
fn run_gated_grid(options: &Options, spec: &ScenarioSpec, what: &str, out_path: &str) {
    let start = Instant::now();
    let results = match GridRun::new(spec).threads(options.threads).collect() {
        Ok(results) => results,
        Err(error) => {
            eprintln!("{what} failed: {error}");
            std::process::exit(1);
        }
    };
    println!("ran in {:.2?}", start.elapsed());
    let json = results_to_json(spec, &results).expect("results serialize");
    write_and_gate(options, out_path, &json, &results, &results);
}

/// Optimal-vs-policy on the coarse grid, with node counts; the node ceiling
/// (`--max-nodes`) makes this the CI regression gate for the search, and
/// `--baseline` additionally fails the run if any optimal cell explores
/// more nodes than the committed `BENCH_optimal.json` recorded.
///
/// On top of the classic 2×B1 grid, the document carries the
/// alternating-load *frontier* instance the availability bound newly
/// contains — 3×B1 on `ILs alt` — as extra rows (the 4×B1 and
/// 22 A·min mixed-fleet searches still exceed the 20M-node budget; see
/// ROADMAP.md).
fn run_optimal_grid(options: &Options) {
    let spec = ScenarioSpec {
        batteries: vec![BatterySpec::b1()],
        battery_counts: vec![2],
        fleets: vec![],
        discretizations: vec![DiscSpec::coarse()],
        loads: vec![
            LoadSpec::Paper(TestLoad::Cl500),
            LoadSpec::Paper(TestLoad::Ils500),
            LoadSpec::Paper(TestLoad::IlsAlt),
            LoadSpec::Paper(TestLoad::Ils250),
        ],
        policies: vec![
            PolicyKind::Sequential,
            PolicyKind::RoundRobin,
            PolicyKind::BestOfTwo,
            PolicyKind::CapacityRr,
            PolicyKind::optimal(),
        ],
        backends: vec![BackendKind::Discretized],
    };
    let frontier = ScenarioSpec {
        batteries: vec![],
        battery_counts: vec![],
        fleets: vec![FleetDef::uniform(BatterySpec::b1(), 3)],
        discretizations: vec![DiscSpec::coarse()],
        loads: vec![LoadSpec::Paper(TestLoad::IlsAlt)],
        policies: vec![PolicyKind::optimal()],
        backends: vec![BackendKind::Discretized],
    };
    println!(
        "optimal grid (coarse): {} scenarios + {} frontier",
        spec.scenario_count(),
        frontier.scenario_count()
    );

    let start = Instant::now();
    let mut results = match GridRun::new(&spec).threads(options.threads).collect() {
        Ok(results) => results,
        Err(error) => {
            eprintln!("optimal grid failed: {error}");
            std::process::exit(1);
        }
    };
    match GridRun::new(&frontier).threads(options.threads).collect() {
        Ok(frontier_results) => results.extend(frontier_results),
        Err(error) => {
            eprintln!("optimal frontier failed: {error}");
            std::process::exit(1);
        }
    }
    println!("ran in {:.2?}", start.elapsed());

    // The baseline is loaded *before* the results overwrite its file, and
    // the document is written *before* the gates run, so a failing CI run
    // still leaves the fresh artifact behind for baseline regeneration.
    let baseline = options.baseline.as_deref().map(load_baseline);
    let document = JsonValue::object(vec![
        ("spec", spec.to_json_value()),
        ("frontier_spec", frontier.to_json_value()),
        (
            "results",
            JsonValue::Array(results.iter().map(engine::ScenarioResult::to_json_value).collect()),
        ),
        ("frontier_root_bounds", frontier_root_bounds()),
    ]);
    let json = document.render().expect("results serialize");
    if let Err(error) = std::fs::write(&options.optimal_out, &json) {
        eprintln!("cannot write {}: {error}", options.optimal_out);
        std::process::exit(1);
    }
    println!("wrote {} bytes to {}\n", json.len(), options.optimal_out);

    // The ceiling applies to the classic small grid; the frontier rows are
    // gated by the per-cell baseline comparison instead.
    print_and_gate(&results, options.max_nodes, spec.scenario_count());
    if let Some(baseline) = baseline {
        check_baseline(&baseline, &results);
    }
}

/// Probes the root bounds (charge / availability / relaxation / warm
/// start) of the alternating-load frontier fleets on the coarse grid — the
/// machine-readable trajectory of the bound-tightening work. A `null`
/// bound means the backend could not produce it (never expected here).
fn frontier_root_bounds() -> JsonValue {
    let fleets: [(&str, &[BatteryParams]); 4] = [
        ("2xB1", &[BatteryParams::itsy_b1(); 2]),
        ("3xB1", &[BatteryParams::itsy_b1(); 3]),
        (
            "2xB1+B2",
            &[BatteryParams::itsy_b1(), BatteryParams::itsy_b1(), BatteryParams::itsy_b2()],
        ),
        ("4xB1", &[BatteryParams::itsy_b1(); 4]),
    ];
    let profile = TestLoad::IlsAlt.profile();
    let mut rows = Vec::new();
    println!("frontier root bounds (ILs alt, coarse grid):");
    for (name, batteries) in fleets {
        let fleet = FleetSpec::new(batteries.to_vec()).expect("frontier fleet spec");
        let config = SystemConfig::from_fleet(fleet, Discretization::coarse());
        let load = config.discretize(&profile).expect("frontier load discretizes");
        let mut model = config.discretized_model();
        let bounds = OptimalScheduler::probe_root_bounds(&config, &load, &mut model)
            .expect("frontier root-bound probe");
        println!(
            "  {name:<8} charge {}, availability {}, relaxation {}, warm start {}",
            bounds.charge, bounds.availability, bounds.relaxation, bounds.warm_start
        );
        #[allow(clippy::cast_precision_loss)]
        let field = |steps: u64| {
            if steps == u64::MAX {
                JsonValue::Null
            } else {
                JsonValue::Number(steps as f64)
            }
        };
        rows.push(JsonValue::object(vec![
            ("fleet", JsonValue::String(name.to_owned())),
            ("load", JsonValue::String(TestLoad::IlsAlt.name().to_owned())),
            ("charge_steps", field(bounds.charge)),
            ("availability_steps", field(bounds.availability)),
            ("relaxation_steps", field(bounds.relaxation)),
            ("warm_start_steps", field(bounds.warm_start)),
        ]));
    }
    println!();
    JsonValue::Array(rows)
}

/// Prints the result table and enforces the node ceiling over the first
/// `ceiling_rows` rows (the rows beyond are baseline-gated frontier cells).
fn print_and_gate(results: &[engine::ScenarioResult], max_nodes: Option<u64>, ceiling_rows: usize) {
    println!(
        "{:<32} {:>10} {:>12} {:>9} {:>7} {:>9} {:>9} {:>9}",
        "scenario", "lifetime", "nodes", "memo", "dom", "charge", "avail", "relax"
    );
    let mut worst_nodes = 0u64;
    for (index, result) in results.iter().enumerate() {
        let stats = result.search.map(|s| {
            if index < ceiling_rows {
                worst_nodes = worst_nodes.max(s.nodes_explored);
            }
            s
        });
        let fmt = |v: Option<u64>| v.map(|v| v.to_string()).unwrap_or_default();
        println!(
            "{:<32} {:>10} {:>12} {:>9} {:>7} {:>9} {:>9} {:>9}",
            result.scenario.label(),
            result
                .lifetime_minutes
                .map(|m| format!("{m:.2} min"))
                .unwrap_or_else(|| "-".to_owned()),
            fmt(stats.map(|s| s.nodes_explored)),
            fmt(stats.map(|s| s.memo_hits)),
            fmt(stats.map(|s| s.dominance_prunes)),
            fmt(stats.map(|s| s.charge_bound_prunes)),
            fmt(stats.map(|s| s.availability_bound_prunes)),
            fmt(stats.map(|s| s.relax_bound_prunes)),
        );
    }
    if let Some(ceiling) = max_nodes {
        if worst_nodes > ceiling {
            eprintln!(
                "node-count regression: worst optimal search explored {worst_nodes} nodes, \
                 ceiling is {ceiling}"
            );
            std::process::exit(2);
        }
        println!("node gate ok: worst search {worst_nodes} <= ceiling {ceiling}\n");
    }
}

/// One gated cell of a committed baseline document: the node count the
/// search recorded and the lifetime it proved.
#[derive(Debug, Clone, Copy)]
struct BaselineCell {
    nodes: u64,
    lifetime_minutes: Option<f64>,
}

/// Loads a committed baseline document into a `(fleet load policy
/// backend) -> cell` map (see [`check_baseline`]).
fn load_baseline(path: &str) -> std::collections::HashMap<String, BaselineCell> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("cannot read baseline {path}: {error}");
            std::process::exit(1);
        }
    };
    let (_, rows) = match results_from_json(&text) {
        Ok(parsed) => parsed,
        Err(error) => {
            eprintln!("cannot parse baseline {path}: {error}");
            std::process::exit(1);
        }
    };
    let mut baseline = std::collections::HashMap::new();
    for row in &rows {
        let (Some(fleet), Some(load), Some(policy), Some(backend)) = (
            row.get("fleet").and_then(JsonValue::as_str),
            row.get("load").and_then(JsonValue::as_str),
            row.get("policy").and_then(JsonValue::as_str),
            row.get("backend").and_then(JsonValue::as_str),
        ) else {
            continue;
        };
        if let Some(nodes) = row.get("nodes_explored").and_then(JsonValue::as_u64) {
            let lifetime_minutes = row.get("lifetime_minutes").and_then(JsonValue::as_f64);
            baseline.insert(
                format!("{fleet} {load} {policy} {backend}"),
                BaselineCell { nodes, lifetime_minutes },
            );
        }
    }
    if baseline.is_empty() {
        eprintln!("baseline {path} holds no optimal cells — refusing to gate against nothing");
        std::process::exit(1);
    }
    baseline
}

/// The node-count tolerance of the baseline gate: a cell may explore up to
/// 10 % more nodes than the committed baseline records before the gate
/// fails. Bound and search-order changes legitimately wobble node counts by
/// a few percent; anything past a tenth is a real regression. Lifetimes get
/// no tolerance — a solved cell must reproduce its optimum bit-identically.
const BASELINE_NODE_TOLERANCE_PERCENT: u64 = 10;

/// Fails the run if any optimal cell explores more nodes than the committed
/// baseline document records for the same (fleet, load, policy, backend)
/// plus the documented tolerance, if a cell's proven lifetime differs from
/// the baseline's at all, or if a baseline cell is no longer produced (a
/// silently dropped scenario must not pass as "nothing regressed"). Cells
/// without a baseline entry are new and noted, not gated.
fn check_baseline(
    baseline: &std::collections::HashMap<String, BaselineCell>,
    results: &[engine::ScenarioResult],
) {
    let mut checked = 0usize;
    let mut seen = std::collections::HashSet::new();
    for result in results {
        let Some(stats) = result.search else { continue };
        let label = result.scenario.label();
        match baseline.get(&label) {
            Some(cell) => {
                let ceiling =
                    cell.nodes.saturating_add(cell.nodes * BASELINE_NODE_TOLERANCE_PERCENT / 100);
                if stats.nodes_explored > ceiling {
                    eprintln!(
                        "baseline regression: {label} explored {} nodes, baseline {} \
                         (+{BASELINE_NODE_TOLERANCE_PERCENT}% ceiling {ceiling})",
                        stats.nodes_explored, cell.nodes
                    );
                    std::process::exit(2);
                }
                if result.lifetime_minutes != cell.lifetime_minutes {
                    eprintln!(
                        "baseline regression: {label} proved lifetime {:?}, baseline {:?} \
                         (solved cells must reproduce their optimum bit-identically)",
                        result.lifetime_minutes, cell.lifetime_minutes
                    );
                    std::process::exit(2);
                }
                checked += 1;
                seen.insert(label);
            }
            None => println!("baseline note: no entry for '{label}' (new cell)"),
        }
    }
    let mut dropped: Vec<&String> =
        baseline.keys().filter(|label| !seen.contains(label.as_str())).collect();
    if !dropped.is_empty() {
        dropped.sort();
        for label in dropped {
            eprintln!("baseline cell '{label}' was not produced by this run");
        }
        eprintln!("a dropped cell silently removes its regression gate — failing");
        std::process::exit(2);
    }
    println!("baseline gate ok: {checked} optimal cells at or below the baseline\n");
}

/// A heterogeneous fleet on the coarse grid: deterministic policies next to
/// the optimal search, under the same node ceiling as the uniform grid.
fn run_fleet_grid(options: &Options, fleet: FleetDef) {
    let spec = ScenarioSpec {
        batteries: vec![],
        battery_counts: vec![],
        fleets: vec![fleet.clone()],
        discretizations: vec![DiscSpec::coarse()],
        loads: vec![LoadSpec::Paper(TestLoad::Cl500), LoadSpec::Paper(TestLoad::IlsAlt)],
        policies: vec![
            PolicyKind::Sequential,
            PolicyKind::RoundRobin,
            PolicyKind::BestOfTwo,
            PolicyKind::CapacityRr,
            PolicyKind::optimal(),
        ],
        backends: vec![BackendKind::Discretized],
    };
    println!("fleet grid (coarse, {}): {} scenarios", fleet.name, spec.scenario_count());
    run_gated_grid(options, &spec, "fleet grid", &options.fleet_out);
}

/// The policies whose relative order defines "the paper's ranking"
/// (Table 5); `capacity-rr` is reported in the table but kept out of the
/// agreement verdict.
const RANKING_POLICIES: [&str; 3] = ["sequential", "round-robin", "best-of-two"];

/// `-1`, `0`, `+1` for worse / tied / better, with lifetimes on the same
/// discrete grid compared exactly.
fn relation(a: f64, b: f64) -> i8 {
    if (a - b).abs() <= 1e-9 {
        0
    } else if a > b {
        1
    } else {
        -1
    }
}

/// The lifetime of one (load, policy, backend) cell of a result set.
fn lifetime_of(
    results: &[engine::ScenarioResult],
    load: &str,
    policy: &str,
    backend: &str,
) -> Option<f64> {
    results
        .iter()
        .find(|r| {
            r.scenario.load.name() == load
                && r.scenario.policy.name() == policy
                && r.scenario.backend.name() == backend
        })
        .and_then(|r| r.lifetime_minutes)
}

/// Whether two backends rank the paper's three policies compatibly on one
/// load: a **strict reversal** of any pair (one backend says A outlives B,
/// the other says B outlives A) counts as divergence; a tie against a
/// strict order does not.
fn rankings_agree(results: &[engine::ScenarioResult], load: &str, a: &str, b: &str) -> bool {
    for (i, first) in RANKING_POLICIES.iter().enumerate() {
        for second in &RANKING_POLICIES[i + 1..] {
            let (Some(a_first), Some(a_second), Some(b_first), Some(b_second)) = (
                lifetime_of(results, load, first, a),
                lifetime_of(results, load, second, a),
                lifetime_of(results, load, first, b),
                lifetime_of(results, load, second, b),
            ) else {
                return false;
            };
            if i32::from(relation(a_first, a_second)) * i32::from(relation(b_first, b_second)) < 0 {
                return false;
            }
        }
    }
    true
}

/// The cross-model policy table: every paper load × all four deterministic
/// policies × all four backends (ideal / discretized KiBaM / continuous
/// KiBaM / RV diffusion) at the paper discretization — the three-model
/// agreement story — plus optimal cross-model cells on the coarse grid.
/// The optimal cells run under the `--max-nodes` ceiling and (with
/// `--baseline`) against the committed copy of the output document, and
/// the whole table is archived as `BENCH_crossmodel.json` together with
/// per-load policy rankings and the RV-vs-KiBaM agreement verdict.
fn run_crossmodel_grid(options: &Options) {
    let backends = vec![
        BackendKind::Ideal,
        BackendKind::Discretized,
        BackendKind::Continuous,
        BackendKind::Rv,
    ];
    let ranking_spec = ScenarioSpec {
        batteries: vec![BatterySpec::b1()],
        battery_counts: vec![2],
        fleets: vec![],
        discretizations: vec![DiscSpec::paper()],
        loads: TestLoad::all().into_iter().map(LoadSpec::Paper).collect(),
        policies: PolicyKind::deterministic().to_vec(),
        backends: backends.clone(),
    };
    // ILs 250 is deliberately absent: the continuous and RV backends carry
    // no (or rarely-colliding) memo keys, so their deep slow-drain searches
    // run 70k-135k nodes — fine for a study, not for the CI node ceiling.
    let optimal_spec = ScenarioSpec {
        batteries: vec![BatterySpec::b1()],
        battery_counts: vec![2],
        fleets: vec![],
        discretizations: vec![DiscSpec::coarse()],
        loads: vec![LoadSpec::Paper(TestLoad::Cl500), LoadSpec::Paper(TestLoad::IlsAlt)],
        policies: vec![PolicyKind::optimal()],
        backends: backends.clone(),
    };
    println!(
        "cross-model grid: {} ranking cells (paper grid) + {} optimal cells (coarse)",
        ranking_spec.scenario_count(),
        optimal_spec.scenario_count()
    );

    let start = Instant::now();
    let ranking_results = match GridRun::new(&ranking_spec).threads(options.threads).collect() {
        Ok(results) => results,
        Err(error) => {
            eprintln!("cross-model ranking grid failed: {error}");
            std::process::exit(1);
        }
    };
    let optimal_results = match GridRun::new(&optimal_spec).threads(options.threads).collect() {
        Ok(results) => results,
        Err(error) => {
            eprintln!("cross-model optimal grid failed: {error}");
            std::process::exit(1);
        }
    };
    println!("ran in {:.2?}", start.elapsed());

    // Per-load, per-backend policy orderings plus the RV-vs-KiBaM verdict.
    let mut ranking_rows = Vec::new();
    let mut divergent: Vec<String> = Vec::new();
    for load in &ranking_spec.loads {
        let load_name = load.name();
        let mut backend_rows = Vec::new();
        for backend in &backends {
            let mut cells: Vec<(&'static str, f64)> = PolicyKind::deterministic()
                .iter()
                .filter_map(|p| {
                    lifetime_of(&ranking_results, &load_name, p.name(), backend.name())
                        .map(|lifetime| (p.name(), lifetime))
                })
                .collect();
            cells.sort_by(|a, b| b.1.total_cmp(&a.1));
            let order = cells
                .iter()
                .map(|(policy, lifetime)| format!("{policy} ({lifetime:.2})"))
                .collect::<Vec<_>>();
            println!("  {load_name:<8} {:<12} {}", backend.name(), order.join(" >= "));
            backend_rows.push(JsonValue::object(vec![
                ("backend", JsonValue::String(backend.name().to_owned())),
                (
                    "order",
                    JsonValue::Array(
                        cells
                            .iter()
                            .map(|(policy, _)| JsonValue::String((*policy).to_owned()))
                            .collect(),
                    ),
                ),
                (
                    "lifetimes",
                    JsonValue::object(
                        cells
                            .iter()
                            .map(|&(policy, lifetime)| (policy, JsonValue::Number(lifetime)))
                            .collect::<Vec<_>>(),
                    ),
                ),
            ]));
        }
        let agrees = rankings_agree(&ranking_results, &load_name, "discretized", "rv");
        if !agrees {
            divergent.push(load_name.clone());
        }
        ranking_rows.push(JsonValue::object(vec![
            ("load", JsonValue::String(load_name.clone())),
            ("backends", JsonValue::Array(backend_rows)),
            ("rv_matches_discretized", JsonValue::Bool(agrees)),
        ]));
    }
    match divergent.len() {
        0 => println!("ranking agreement: RV matches the discretized KiBaM on all paper loads\n"),
        _ => println!(
            "ranking agreement: RV diverges from the discretized KiBaM on {} (see README)\n",
            divergent.join(", ")
        ),
    }

    let mut results = ranking_results;
    results.extend(optimal_results.iter().cloned());
    let document = JsonValue::object(vec![
        ("spec", ranking_spec.to_json_value()),
        ("optimal_spec", optimal_spec.to_json_value()),
        (
            "results",
            JsonValue::Array(results.iter().map(engine::ScenarioResult::to_json_value).collect()),
        ),
        ("rankings", JsonValue::Array(ranking_rows)),
        (
            "rv_divergent_loads",
            JsonValue::Array(divergent.into_iter().map(JsonValue::String).collect()),
        ),
    ]);
    let json = document.render().expect("results serialize");
    write_and_gate(options, &options.crossmodel_out, &json, &optimal_results, &results);
}

/// Prints the seed search (pruning disabled — PR 1 behaviour) next to the
/// memoized search so the perf trajectory is visible in the bench log.
fn print_seed_vs_memoized() {
    println!("seed search vs memoized search (coarse grid, 2 x B1):");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>7}",
        "load", "seed nodes", "seed wall", "memo nodes", "memo wall", "ratio"
    );
    let config = SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), 2).unwrap();
    for load in [TestLoad::IlsAlt, TestLoad::Ils250] {
        let profile = load.profile();
        let discretized = config.discretize(&profile).unwrap();
        let seed_start = Instant::now();
        let seed = OptimalScheduler::reference().find_optimal_on(&config, &discretized).unwrap();
        let seed_wall = seed_start.elapsed();
        let memo_start = Instant::now();
        let memo = OptimalScheduler::new().find_optimal_on(&config, &discretized).unwrap();
        let memo_wall = memo_start.elapsed();
        assert_eq!(seed.lifetime_steps, memo.lifetime_steps, "pruning must preserve the optimum");
        #[allow(clippy::cast_precision_loss)]
        let ratio = seed.nodes_explored as f64 / memo.nodes_explored as f64;
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12} {:>6.1}x",
            load.name(),
            seed.nodes_explored,
            format!("{seed_wall:.2?}"),
            memo.nodes_explored,
            format!("{memo_wall:.2?}"),
            ratio,
        );
    }
    println!(
        "(ILs alt on two batteries is already near-minimal after symmetry pruning; the deep\n\
         ILs 250 search is where the transposition table and dominance pruning pay off)\n"
    );
}

/// A large random-load seed sweep, streamed to disk while it runs.
fn run_random_grid(options: &Options, cells: usize) {
    let policies = PolicyKind::deterministic().to_vec();
    let seeds = cells.div_ceil(policies.len()).max(1);
    let spec = ScenarioSpec {
        batteries: vec![BatterySpec::b1()],
        battery_counts: vec![2],
        fleets: vec![],
        discretizations: vec![DiscSpec::paper()],
        loads: (0..seeds as u64)
            .map(|seed| LoadSpec::random_paper_levels(seed, options.random_jobs))
            .collect(),
        policies,
        backends: vec![BackendKind::Discretized],
    };
    match options.shard {
        Some((index, count)) => println!(
            "random grid: {} scenarios ({} seeds x {} policies, {} jobs each), \
             shard {index}/{count} streaming to {}",
            spec.scenario_count(),
            seeds,
            spec.policies.len(),
            options.random_jobs,
            options.random_out,
        ),
        None => println!(
            "random grid: {} scenarios ({} seeds x {} policies, {} jobs each), streaming to {}",
            spec.scenario_count(),
            seeds,
            spec.policies.len(),
            options.random_jobs,
            options.random_out,
        ),
    }

    let file = match std::fs::File::create(&options.random_out) {
        Ok(file) => std::io::BufWriter::new(file),
        Err(error) => {
            eprintln!("cannot create {}: {error}", options.random_out);
            std::process::exit(1);
        }
    };
    let start = Instant::now();
    let mut run = GridRun::new(&spec).threads(options.threads);
    if let Some(chunk) = options.chunk {
        run = run.chunk(chunk);
    }
    if let Some((index, count)) = options.shard {
        run = run.shard(index, count);
    }
    match run.stream(file) {
        Ok(summary) => {
            let wall = start.elapsed();
            #[allow(clippy::cast_precision_loss)]
            let per_cell = wall.as_secs_f64() * 1e6 / summary.written.max(1) as f64;
            println!(
                "streamed {} results in {:.2?} ({per_cell:.0} us/cell, {} threads)",
                summary.written, wall, options.threads
            );
        }
        Err(error) => {
            eprintln!("random grid failed: {error}");
            std::process::exit(1);
        }
    }
}

/// Per-load lifetimes of the streamed random grid, keyed by policy name.
fn lifetimes_by_policy(rows: &[JsonValue]) -> Vec<(String, Vec<(String, f64)>)> {
    let mut policies: Vec<(String, Vec<(String, f64)>)> = Vec::new();
    for row in rows {
        let (Some(load), Some(policy), Some(lifetime)) = (
            row.get("load").and_then(JsonValue::as_str),
            row.get("policy").and_then(JsonValue::as_str),
            row.get("lifetime_minutes").and_then(JsonValue::as_f64),
        ) else {
            continue;
        };
        match policies.iter_mut().find(|(name, _)| name == policy) {
            Some((_, cells)) => cells.push((load.to_owned(), lifetime)),
            None => policies.push((policy.to_owned(), vec![(load.to_owned(), lifetime)])),
        }
    }
    policies
}

/// The gap-percentage histogram buckets of the analyze summary.
const GAP_BUCKETS: [(&str, f64, f64); 6] = [
    ("0%", 0.0, 0.0),
    ("(0,1]%", 0.0, 1.0),
    ("(1,2]%", 1.0, 2.0),
    ("(2,5]%", 2.0, 5.0),
    ("(5,10]%", 5.0, 10.0),
    (">10%", 10.0, f64::INFINITY),
];

/// Counts `gaps` (relative gains, in percent) into the [`GAP_BUCKETS`]
/// histogram and renders it as a JSON array.
fn gap_histogram(gaps: &[f64]) -> JsonValue {
    JsonValue::Array(
        GAP_BUCKETS
            .iter()
            .map(|&(label, low, high)| {
                #[allow(clippy::cast_precision_loss)]
                let count = gaps
                    .iter()
                    .filter(|&&gap| {
                        if low == 0.0 && high == 0.0 {
                            gap <= 0.0
                        } else {
                            gap > low && gap <= high
                        }
                    })
                    .count() as f64;
                JsonValue::object(vec![
                    ("bucket", JsonValue::String(label.to_owned())),
                    ("count", JsonValue::Number(count)),
                ])
            })
            .collect(),
    )
}

/// Summarizes the streamed random grid (`--random-out`): per-policy mean
/// lifetimes, best-of-two-vs-round-robin gap histograms, and an
/// optimal-vs-best-of-two comparison on a coarse sub-grid of the seeds —
/// the random-workload study of the Section 7 outlook. The summary is
/// printed *and* archived as machine-readable JSON (`--analyze-out`,
/// `BENCH_analyze.json`) so the trajectory can be diffed across commits.
fn run_analyze(options: &Options) {
    let text = match std::fs::read_to_string(&options.random_out) {
        Ok(text) => text,
        Err(error) => {
            eprintln!(
                "cannot read {} (run with --random-cells first?): {error}",
                options.random_out
            );
            std::process::exit(1);
        }
    };
    let (spec, rows) = match results_from_json(&text) {
        Ok(parsed) => parsed,
        Err(error) => {
            eprintln!("cannot parse {}: {error}", options.random_out);
            std::process::exit(1);
        }
    };

    let policies = lifetimes_by_policy(&rows);
    println!("analyze: {} result rows from {}", rows.len(), options.random_out);
    let mut policy_rows = Vec::new();
    for (policy, cells) in &policies {
        #[allow(clippy::cast_precision_loss)]
        let mean = cells.iter().map(|(_, m)| m).sum::<f64>() / cells.len().max(1) as f64;
        println!("  {policy:<14} {:>6} cells, mean lifetime {mean:.2} min", cells.len());
        #[allow(clippy::cast_precision_loss)]
        policy_rows.push(JsonValue::object(vec![
            ("policy", JsonValue::String(policy.clone())),
            ("cells", JsonValue::Number(cells.len() as f64)),
            ("mean_lifetime_minutes", JsonValue::Number(mean)),
        ]));
    }
    #[allow(clippy::cast_precision_loss)]
    let mut document = vec![
        ("rows", JsonValue::Number(rows.len() as f64)),
        ("policies", JsonValue::Array(policy_rows)),
    ];

    // Best-of-two vs round-robin, matched per load, with a gap histogram.
    let find = |name: &str| policies.iter().find(|(p, _)| p == name).map(|(_, c)| c);
    if let (Some(rr), Some(best)) = (find("round-robin"), find("best-of-two")) {
        let mut gaps = Vec::new();
        for (load, best_lifetime) in best {
            let Some((_, rr_lifetime)) = rr.iter().find(|(l, _)| l == load) else { continue };
            let gap = (best_lifetime - rr_lifetime) / rr_lifetime * 100.0;
            gaps.push(if gap > 1e-7 { gap } else { 0.0 });
        }
        let better = gaps.iter().filter(|&&g| g > 0.0).count();
        let max_gain = gaps.iter().copied().fold(0.0f64, f64::max);
        println!(
            "  best-of-two beats round-robin on {better}/{} random loads \
             (max gain {max_gain:.1}%)",
            gaps.len(),
        );
        #[allow(clippy::cast_precision_loss)]
        document.push((
            "best_vs_round_robin",
            JsonValue::object(vec![
                ("matched", JsonValue::Number(gaps.len() as f64)),
                ("better", JsonValue::Number(better as f64)),
                ("max_gain_percent", JsonValue::Number(max_gain)),
                ("gap_histogram", gap_histogram(&gaps)),
            ]),
        ));
    }

    // Optimal-vs-best-of-two on a coarse sub-grid of the same seeds: the
    // paper grid is too fine for exhaustive search, so the sub-grid answers
    // the qualitative question (how often does the best deterministic
    // policy already achieve the optimum on random loads?).
    let sub_loads: Vec<LoadSpec> = spec.loads.iter().take(options.analyze_seeds).cloned().collect();
    if sub_loads.is_empty() {
        println!("  (no random loads in the document; skipping the optimal sub-grid)");
        write_analyze(options, document);
        return;
    }
    let sub_spec = ScenarioSpec {
        batteries: spec.batteries.clone(),
        battery_counts: spec.battery_counts.clone(),
        fleets: spec.fleets.clone(),
        discretizations: vec![DiscSpec::coarse()],
        loads: sub_loads,
        policies: vec![PolicyKind::BestOfTwo, PolicyKind::optimal()],
        backends: vec![BackendKind::Discretized],
    };
    let start = Instant::now();
    let results = match GridRun::new(&sub_spec).threads(options.threads).collect() {
        Ok(results) => results,
        Err(error) => {
            eprintln!("optimal sub-grid failed: {error}");
            std::process::exit(1);
        }
    };
    let mut gap_list = Vec::new();
    for pair in results.chunks(2) {
        let [best, optimal] = pair else { continue };
        let (Some(best_lifetime), Some(optimal_lifetime)) =
            (best.lifetime_minutes, optimal.lifetime_minutes)
        else {
            continue;
        };
        let gap = (optimal_lifetime - best_lifetime) / best_lifetime * 100.0;
        gap_list.push(if gap > 1e-7 { gap } else { 0.0 });
    }
    let seeds = gap_list.len();
    let gaps = gap_list.iter().filter(|&&g| g > 0.0).count();
    let max_gap = gap_list.iter().copied().fold(0.0f64, f64::max);
    println!(
        "  coarse sub-grid ({seeds} seeds, {:.2?}): optimal beats best-of-two on \
         {gaps}/{seeds} loads (max gap {max_gap:.1}%)",
        start.elapsed(),
    );
    #[allow(clippy::cast_precision_loss)]
    document.push((
        "optimal_sub_grid",
        JsonValue::object(vec![
            ("seeds", JsonValue::Number(seeds as f64)),
            ("optimal_better", JsonValue::Number(gaps as f64)),
            ("max_gap_percent", JsonValue::Number(max_gap)),
            ("gap_histogram", gap_histogram(&gap_list)),
        ]),
    ));
    write_analyze(options, document);
}

/// Renders and writes the analyze summary document (`--analyze-out`).
fn write_analyze(options: &Options, fields: Vec<(&str, JsonValue)>) {
    let json = match JsonValue::object(fields).render() {
        Ok(json) => json,
        Err(error) => {
            eprintln!("cannot render the analyze summary: {error}");
            std::process::exit(1);
        }
    };
    if let Err(error) = std::fs::write(&options.analyze_out, &json) {
        eprintln!("cannot write {}: {error}", options.analyze_out);
        std::process::exit(1);
    }
    println!("wrote {} bytes to {}\n", json.len(), options.analyze_out);
}
