//! Regenerates Table 5 of the paper: two-battery (2 × B1) system lifetime
//! under sequential, round-robin, best-of-two and optimal scheduling.
//!
//! By default the optimal schedule is computed on a coarser grid
//! (T = Γ = 0.05) so the exact search finishes quickly for all ten loads;
//! pass `--full` to run the optimal search at the paper's discretization
//! (slow), or `--no-optimal` to skip it entirely.

use battery_sched::optimal::OptimalScheduler;
use battery_sched::report::table5_row;
use battery_sched::system::SystemConfig;
use bench::{format_table5_row, table5_header};
use dkibam::Discretization;
use kibam::BatteryParams;
use workload::paper_loads::TestLoad;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let skip_optimal = args.iter().any(|a| a == "--no-optimal");

    let deterministic_config = SystemConfig::paper_two_b1();
    let optimal_disc =
        if full { Discretization::paper_default() } else { Discretization::coarse() };
    let optimal_config =
        SystemConfig::new(BatteryParams::itsy_b1(), optimal_disc, 2).expect("two batteries");
    let scheduler = OptimalScheduler::new();

    println!("Table 5 — 2 x B1, lifetimes in minutes (difference relative to round robin)");
    if !skip_optimal && !full {
        println!("(optimal schedule computed at the coarser T = Γ = 0.05 grid; use --full for the paper grid)");
    }
    println!("{}", table5_header());
    for load in TestLoad::all() {
        // Deterministic policies at the paper's discretization.
        let mut row = match table5_row(load, &deterministic_config, None) {
            Ok(row) => row,
            Err(error) => {
                eprintln!("{load}: {error}");
                continue;
            }
        };
        if !skip_optimal {
            match table5_row(load, &optimal_config, Some(&scheduler)) {
                Ok(optimal_row) => row.optimal_minutes = optimal_row.optimal_minutes,
                Err(error) => eprintln!("{load}: optimal search failed: {error}"),
            }
        }
        println!("{}", format_table5_row(&row));
    }
}
