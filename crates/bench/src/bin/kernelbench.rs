//! Stepping-kernel throughput: scalar per-system state vs the batched
//! struct-of-arrays kernels, at N ∈ {1, 8, 64, 512} cells, per backend.
//!
//! The workload is the engine's hot loop in miniature: N cells are grouped
//! into four-battery systems (N = 1 keeps a single-battery system), and
//! each measurement cycle resets the fleet and runs three rounds of
//! *serve each battery in turn → idle* with the paper's B1 cell on the
//! paper grid — drain rates chosen so no cell empties inside a cycle, so
//! scalar and batched paths execute identical step counts. The scalar
//! side is the pre-batching engine representation
//! ([`dkibam::multi::MultiBatteryState`] per system, one [`rv::RvCell`] vector per
//! system); the batched side packs all systems into one
//! [`dkibam::DiscreteBatch`] / [`rv::RvBatch`]. After timing, the final
//! states of both paths are compared word-for-word — a throughput number
//! from a diverging kernel would be meaningless, so divergence aborts.
//!
//! Output: a table on stdout and `BENCH_kernel.json` (override with a
//! positional path). The document also carries a `bound_probes` section —
//! the wall time (`bound_micros`) of the optimal search's root-bound probe
//! on the coarse-grid alternating-load fleets, timed here because the
//! relaxation bound's column DP is itself a kernel on the hot path of the
//! branch-and-bound search. `--smoke` shrinks the workload for CI.
//! `--min-speedup X` exits non-zero if the batched path is below `X`×
//! scalar at the largest N on the discretized backend (the PR's
//! acceptance gate).
//!
//! ```text
//! kernelbench [OUT] [--smoke] [--min-speedup X]
//! ```

use battery_sched::optimal::OptimalScheduler;
use battery_sched::system::SystemConfig;
use dkibam::multi::MultiBatteryState;
use dkibam::{DiscreteBatch, DiscreteFleet, Discretization};
use engine::json::JsonValue;
use kibam::BatteryParams;
use rv::{RvBatch, RvCell, RvFleet};
use std::time::Instant;
use workload::paper_loads::TestLoad;

/// Batch sizes measured, in cells (= battery lanes).
const CELL_COUNTS: [usize; 4] = [1, 8, 64, 512];

/// Batteries per system. The scalar path recovers every passive battery at
/// every draw instant while the batched kernel bulk-recovers passive lanes
/// once per job, so the gap widens with fleet size; four batteries is the
/// representative multi-battery fleet from the grid sweeps.
const LANES_PER_SYSTEM: usize = 4;

/// Steps served per job portion (one draw of 1 unit every 4 steps — the
/// paper's 0.5 A level on the paper grid).
const SERVE_STEPS: u64 = 120;
const DRAW_INTERVAL: u32 = 4;
const UNITS_PER_DRAW: u32 = 1;

/// Idle steps between rounds.
const IDLE_STEPS: u64 = 120;

/// Rounds per cycle: three rounds drain ~90 units of the active battery's
/// available charge — just under B1's Eq. 8 emptiness boundary, so every
/// cycle runs its full nominal step count on both paths.
const ROUNDS_PER_CYCLE: u64 = 3;

/// Nominal steps every lane advances per cycle (serve, sibling's serve as
/// recovery, idle — all three windows touch every lane).
fn lane_steps_per_cycle(lanes_per_system: usize) -> u64 {
    ROUNDS_PER_CYCLE * (SERVE_STEPS * lanes_per_system as u64 + IDLE_STEPS)
}

struct Options {
    out: String,
    smoke: bool,
    min_speedup: Option<f64>,
}

fn parse_options() -> Options {
    let mut options =
        Options { out: "BENCH_kernel.json".to_owned(), smoke: false, min_speedup: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => options.smoke = true,
            "--min-speedup" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--min-speedup needs a value");
                    std::process::exit(2);
                });
                options.min_speedup = Some(value.parse().unwrap_or_else(|_| {
                    eprintln!("cannot parse '{value}'");
                    std::process::exit(2);
                }));
            }
            other if !other.starts_with("--") => options.out = other.to_owned(),
            other => {
                eprintln!("unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }
    options
}

/// One measured row: scalar and batched throughput at one cell count.
struct Row {
    cells: usize,
    scalar_cell_steps_per_sec: f64,
    batched_cell_steps_per_sec: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.batched_cell_steps_per_sec / self.scalar_cell_steps_per_sec
    }
}

/// Times `run` over `cycles` workload cycles, returning the best-of-3
/// cell-steps/second (minimum wall time filters scheduler noise).
fn time_throughput(
    cells: usize,
    lanes_per_system: usize,
    cycles: u64,
    mut run: impl FnMut(u64),
) -> f64 {
    let total_lane_steps = cells as u64 * lane_steps_per_cycle(lanes_per_system) * cycles;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        run(cycles);
        best = best.min(start.elapsed().as_secs_f64());
    }
    #[allow(clippy::cast_precision_loss)]
    let steps = total_lane_steps as f64;
    steps / best
}

/// Measures the discretized-KiBaM backend at one cell count and checks the
/// final batch state against the scalar state word-for-word.
fn measure_discretized(cells: usize, cycles: u64) -> Row {
    let lanes_per_system = LANES_PER_SYSTEM.min(cells);
    let systems = cells / lanes_per_system;
    let disc = Discretization::paper_default();
    let fleet = DiscreteFleet::uniform(&BatteryParams::itsy_b1(), &disc, lanes_per_system);
    let type_params: Vec<BatteryParams> =
        (0..fleet.spec().type_count()).map(|t| *fleet.spec().type_params(t)).collect();

    // Scalar: one MultiBatteryState per system (the pre-batching engine).
    let mut scalar: Vec<MultiBatteryState> =
        (0..systems).map(|_| MultiBatteryState::new_full(&fleet)).collect();
    let scalar_throughput = time_throughput(cells, lanes_per_system, cycles, |cycles| {
        for _ in 0..cycles {
            for state in &mut scalar {
                *state = MultiBatteryState::new_full(&fleet);
            }
            for _ in 0..ROUNDS_PER_CYCLE {
                for state in &mut scalar {
                    for active in 0..lanes_per_system {
                        state
                            .advance_job(active, SERVE_STEPS, DRAW_INTERVAL, UNITS_PER_DRAW, &fleet)
                            .expect("active index is in range");
                    }
                }
                for state in &mut scalar {
                    state.advance_idle(IDLE_STEPS, &fleet);
                }
            }
        }
    });

    // Batched: every system is a lane range of one struct-of-arrays batch.
    let mut batch = DiscreteBatch::with_capacity(cells);
    let ranges: Vec<_> = (0..systems).map(|_| batch.push_fleet(&fleet)).collect();
    let batched_throughput = time_throughput(cells, lanes_per_system, cycles, |cycles| {
        for _ in 0..cycles {
            batch.reset_range(0..cells, &type_params, fleet.disc());
            for _ in 0..ROUNDS_PER_CYCLE {
                for range in &ranges {
                    for active in range.clone() {
                        batch
                            .advance_job_range(
                                range.clone(),
                                active,
                                SERVE_STEPS,
                                DRAW_INTERVAL,
                                UNITS_PER_DRAW,
                                &type_params,
                                fleet.type_tables(),
                            )
                            .expect("active lane is in range");
                    }
                }
                batch.recover_range(0..cells, IDLE_STEPS, fleet.type_tables());
            }
        }
    });

    // Word-for-word identity of the final states: the throughput comparison
    // is only meaningful if both paths computed the same thing.
    for (system, state) in scalar.iter().enumerate() {
        for (index, battery) in state.batteries().iter().enumerate() {
            let lane = ranges[system].start + index;
            assert_eq!(
                batch.state_word(lane),
                battery.state_word(),
                "discretized batch diverged from scalar at lane {lane}"
            );
        }
    }

    Row {
        cells,
        scalar_cell_steps_per_sec: scalar_throughput,
        batched_cell_steps_per_sec: batched_throughput,
    }
}

/// Scalar mirror of the RV backend's job advance: serve the active cell,
/// then recover the system's other cells by the steps that elapsed.
fn rv_scalar_job(cells: &mut [RvCell], active: usize, fleet: &RvFleet) {
    let table = fleet.table_of(active);
    if cells[active].is_observed_empty() || table.is_empty(&cells[active]) {
        cells[active].mark_observed_empty();
        return;
    }
    let advance = table.serve(&mut cells[active], SERVE_STEPS, DRAW_INTERVAL, UNITS_PER_DRAW);
    for (index, cell) in cells.iter_mut().enumerate() {
        if index != active {
            fleet.table_of(index).recover(cell, advance.steps_consumed);
        }
    }
}

/// Measures the RV-diffusion backend at one cell count, with the same
/// final-state identity check as the discretized path.
fn measure_rv(cells: usize, cycles: u64) -> Row {
    let lanes_per_system = LANES_PER_SYSTEM.min(cells);
    let systems = cells / lanes_per_system;
    let disc = Discretization::paper_default();
    let fleet = RvFleet::uniform(&BatteryParams::itsy_b1(), &disc, lanes_per_system);

    let mut scalar: Vec<Vec<RvCell>> = (0..systems)
        .map(|_| (0..lanes_per_system).map(|i| fleet.table_of(i).fresh_cell()).collect())
        .collect();
    let scalar_throughput = time_throughput(cells, lanes_per_system, cycles, |cycles| {
        for _ in 0..cycles {
            for system in &mut scalar {
                for (index, cell) in system.iter_mut().enumerate() {
                    *cell = fleet.table_of(index).fresh_cell();
                }
            }
            for _ in 0..ROUNDS_PER_CYCLE {
                for system in &mut scalar {
                    for active in 0..lanes_per_system {
                        rv_scalar_job(system, active, &fleet);
                    }
                }
                for system in &mut scalar {
                    for (index, cell) in system.iter_mut().enumerate() {
                        fleet.table_of(index).recover(cell, IDLE_STEPS);
                    }
                }
            }
        }
    });

    let mut batch = RvBatch::with_capacity(cells);
    let ranges: Vec<_> = (0..systems).map(|_| batch.push_fleet(&fleet)).collect();
    let batched_throughput = time_throughput(cells, lanes_per_system, cycles, |cycles| {
        for _ in 0..cycles {
            batch.reset_range(0..cells);
            for _ in 0..ROUNDS_PER_CYCLE {
                for range in &ranges {
                    for active in range.clone() {
                        batch.advance_job_range(
                            range.clone(),
                            active,
                            SERVE_STEPS,
                            DRAW_INTERVAL,
                            UNITS_PER_DRAW,
                            fleet.type_tables(),
                        );
                    }
                }
                batch.recover_range(0..cells, IDLE_STEPS, fleet.type_tables());
            }
        }
    });

    for (system, state) in scalar.iter().enumerate() {
        for (index, cell) in state.iter().enumerate() {
            let lane = ranges[system].start + index;
            assert_eq!(
                batch.state_word(lane, fleet.type_tables()),
                fleet.table_of(index).state_word(cell),
                "rv batch diverged from scalar at lane {lane}"
            );
        }
    }

    Row {
        cells,
        scalar_cell_steps_per_sec: scalar_throughput,
        batched_cell_steps_per_sec: batched_throughput,
    }
}

/// Times the root-bound probe (charge + availability + relaxation bounds
/// plus the warm-start policies) on the coarse-grid alternating-load
/// fleets. The probe runs at every search root and the relaxation bound
/// re-runs at interior nodes, so its wall time (`bound_micros`, matching
/// the per-cell field the scenario grids record) belongs in the kernel
/// trajectory next to the stepping throughput.
fn measure_bound_probes(smoke: bool) -> JsonValue {
    let repeats = if smoke { 1 } else { 3 };
    let profile = TestLoad::IlsAlt.profile();
    let mut rows = Vec::new();
    println!("root-bound probe (ILs alt, coarse grid, best of {repeats}):");
    println!("{:>6} {:>14}", "fleet", "bound_micros");
    for count in [2usize, 3, 4] {
        let config = SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), count)
            .expect("coarse uniform fleet");
        let load = config.discretize(&profile).expect("the paper load discretizes");
        let mut best = u128::MAX;
        for _ in 0..repeats {
            let mut model = config.discretized_model();
            let start = Instant::now();
            let bounds = OptimalScheduler::probe_root_bounds(&config, &load, &mut model)
                .expect("the root-bound probe succeeds");
            std::hint::black_box(bounds);
            best = best.min(start.elapsed().as_micros());
        }
        println!("{count:>5}x {best:>14}");
        #[allow(clippy::cast_precision_loss)]
        rows.push(JsonValue::object(vec![
            ("fleet", JsonValue::String(format!("{count}xB1"))),
            ("load", JsonValue::String(TestLoad::IlsAlt.name().to_owned())),
            ("bound_micros", JsonValue::Number(best as f64)),
        ]));
    }
    println!();
    JsonValue::Array(rows)
}

fn main() {
    let options = parse_options();
    // Cycle counts scale inversely with N so every row does comparable
    // total work; smoke mode cuts the budget ~8x for CI.
    let budget_lane_steps: u64 = if options.smoke { 1_000_000 } else { 8_000_000 };

    let mut backends = Vec::new();
    let mut gate_speedup = None;
    for backend in ["discretized", "rv"] {
        println!("{backend} kernels (cell-steps/second, best of 3):");
        println!("{:>6} {:>14} {:>14} {:>9}", "cells", "scalar", "batched", "speedup");
        let mut rows = Vec::new();
        for cells in CELL_COUNTS {
            let lanes_per_system = LANES_PER_SYSTEM.min(cells);
            let cycles = (budget_lane_steps
                / (cells as u64 * lane_steps_per_cycle(lanes_per_system)))
            .max(1);
            let row = match backend {
                "discretized" => measure_discretized(cells, cycles),
                _ => measure_rv(cells, cycles),
            };
            println!(
                "{:>6} {:>14.3e} {:>14.3e} {:>8.2}x",
                row.cells,
                row.scalar_cell_steps_per_sec,
                row.batched_cell_steps_per_sec,
                row.speedup()
            );
            if backend == "discretized" && cells == *CELL_COUNTS.last().unwrap() {
                gate_speedup = Some(row.speedup());
            }
            rows.push(row);
        }
        println!();
        #[allow(clippy::cast_precision_loss)]
        backends.push(JsonValue::object(vec![
            ("backend", JsonValue::String(backend.to_owned())),
            (
                "rows",
                JsonValue::Array(
                    rows.iter()
                        .map(|row| {
                            JsonValue::object(vec![
                                ("cells", JsonValue::Number(row.cells as f64)),
                                (
                                    "scalar_cell_steps_per_sec",
                                    JsonValue::Number(row.scalar_cell_steps_per_sec),
                                ),
                                (
                                    "batched_cell_steps_per_sec",
                                    JsonValue::Number(row.batched_cell_steps_per_sec),
                                ),
                                ("speedup", JsonValue::Number(row.speedup())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }

    let bound_probes = measure_bound_probes(options.smoke);

    let document = JsonValue::object(vec![
        ("smoke", JsonValue::Bool(options.smoke)),
        ("serve_steps", JsonValue::Number(SERVE_STEPS as f64)),
        ("draw_interval", JsonValue::Number(f64::from(DRAW_INTERVAL))),
        ("idle_steps", JsonValue::Number(IDLE_STEPS as f64)),
        ("backends", JsonValue::Array(backends)),
        ("bound_probes", bound_probes),
    ]);
    let json = document.render().expect("throughput numbers are finite");
    if let Err(error) = std::fs::write(&options.out, &json) {
        eprintln!("cannot write {}: {error}", options.out);
        std::process::exit(1);
    }
    println!("wrote {} bytes to {}", json.len(), options.out);

    if let (Some(minimum), Some(speedup)) = (options.min_speedup, gate_speedup) {
        if speedup < minimum {
            eprintln!(
                "kernel gate: discretized batched speedup {speedup:.2}x at N={} is below \
                 the {minimum:.2}x floor",
                CELL_COUNTS.last().unwrap()
            );
            std::process::exit(2);
        }
        println!(
            "kernel gate ok: discretized {speedup:.2}x >= {minimum:.2}x at N={}",
            CELL_COUNTS.last().unwrap()
        );
    }
}
