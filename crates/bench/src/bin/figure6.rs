//! Regenerates Figure 6 of the paper: the evolution of total and available
//! charge of both batteries, together with the chosen battery, for (a) the
//! best-of-two schedule and (b) the optimal schedule on the `ILs alt` load.
//!
//! The series are written as CSV to `figure6_best_of_two.csv` and
//! `figure6_optimal.csv` in the current directory (override the directory
//! with the first command-line argument) and a short summary is printed.

use battery_sched::optimal::OptimalScheduler;
use battery_sched::policy::{BestAvailable, FixedSchedule};
use battery_sched::system::{simulate_policy_on, SystemConfig};
use dkibam::Discretization;
use kibam::BatteryParams;
use workload::paper_loads::TestLoad;

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_owned());
    let load = TestLoad::IlsAlt;

    // The optimal search runs on the coarser grid to finish quickly; the
    // resulting decision sequence is then replayed on the same grid to
    // produce the trace, exactly like the best-of-two run next to it.
    let config = SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), 2)
        .expect("two batteries")
        .with_sampling(2);
    let discretized = config.discretize(&load.profile()).expect("discretizable load");

    let best = simulate_policy_on(&config, &discretized, &mut BestAvailable::new())
        .expect("best-of-two simulation");
    let optimal =
        OptimalScheduler::new().find_optimal_on(&config, &discretized).expect("optimal search");
    let replay = simulate_policy_on(
        &config,
        &discretized,
        &mut FixedSchedule::new(optimal.decisions.clone()),
    )
    .expect("optimal replay");

    let best_path = format!("{out_dir}/figure6_best_of_two.csv");
    let optimal_path = format!("{out_dir}/figure6_optimal.csv");
    std::fs::write(&best_path, best.trace().to_csv()).expect("write best-of-two CSV");
    std::fs::write(&optimal_path, replay.trace().to_csv()).expect("write optimal CSV");

    println!("Figure 6 — ILs alt on 2 x B1 (coarse grid)");
    println!(
        "best-of-two: lifetime {:.2} min, residual charge {:.2} A·min, {} battery switches -> {best_path}",
        best.lifetime_minutes().unwrap_or(f64::NAN),
        best.residual_charge(),
        best.schedule().switches(),
    );
    println!(
        "optimal:     lifetime {:.2} min, residual charge {:.2} A·min, {} battery switches -> {optimal_path}",
        replay.lifetime_minutes().unwrap_or(f64::NAN),
        replay.residual_charge(),
        replay.schedule().switches(),
    );
}
