//! Regenerates Table 3 of the paper: lifetime of battery B1 under the ten
//! test loads, analytical KiBaM vs. discretized (TA-)KiBaM.

use battery_sched::report::validation_row;
use bench::{format_validation_row, validation_header};
use dkibam::Discretization;
use kibam::BatteryParams;
use workload::paper_loads::TestLoad;

fn main() {
    println!("Table 3 — battery B1 (5.5 A·min), T = 0.01 min, Γ = 0.01 A·min");
    println!("{}", validation_header());
    let params = BatteryParams::itsy_b1();
    let disc = Discretization::paper_default();
    for load in TestLoad::all() {
        match validation_row(load, &params, &disc) {
            Ok(row) => println!("{}", format_validation_row(&row)),
            Err(error) => eprintln!("{load}: {error}"),
        }
    }
    println!("\nNote: ILs r1 / ILs r2 use seeded random job sequences; the paper's exact");
    println!("sequences are not published, so their absolute values differ (see EXPERIMENTS.md).");
}
