//! Reproduction harness for the evaluation of *"Maximizing System Lifetime
//! by Battery Scheduling"* (DSN 2009).
//!
//! The binaries in this crate regenerate the paper's tables and figure:
//!
//! * `table3` — single-battery validation on B1 (analytic vs. discretized);
//! * `table4` — single-battery validation on B2;
//! * `table5` — two-battery system lifetimes for the four schedules;
//! * `figure6` — charge-evolution traces (CSV) for best-of-two vs. optimal
//!   on the `ILs alt` load.
//!
//! The Criterion benches in `benches/` measure the cost of the computations
//! behind each table/figure plus two ablations (discretization granularity
//! and capacity scaling).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use battery_sched::report::{Table5Row, ValidationRow};

/// Formats a Table 3/4 row like the paper: load, analytic lifetime,
/// discretized lifetime and relative difference in percent.
#[must_use]
pub fn format_validation_row(row: &ValidationRow) -> String {
    format!(
        "{:<8}  {:>8.2}  {:>9.2}  {:>6.2}%   (paper: {:>6.2})",
        row.load,
        row.analytic_minutes,
        row.discrete_minutes,
        row.difference_percent,
        row.paper_analytic_minutes
    )
}

/// Header matching [`format_validation_row`].
#[must_use]
pub fn validation_header() -> String {
    format!(
        "{:<8}  {:>8}  {:>9}  {:>7}   {}",
        "load", "KiBaM", "dKiBaM", "diff", "(paper analytic value)"
    )
}

/// Formats a Table 5 row: the four lifetimes plus the differences relative
/// to round robin, as in the paper.
#[must_use]
pub fn format_table5_row(row: &Table5Row) -> String {
    let optimal = row
        .optimal_minutes
        .map(|o| format!("{o:>7.2} ({:>+6.1}%)", row.relative_to_round_robin(o)))
        .unwrap_or_else(|| format!("{:>7}", "-"));
    format!(
        "{:<8}  {:>7.2} ({:>+6.1}%)  {:>7.2}  {:>7.2} ({:>+6.1}%)  {}   [paper: {:.2}/{:.2}/{:.2}/{:.2}]",
        row.load,
        row.sequential_minutes,
        row.relative_to_round_robin(row.sequential_minutes),
        row.round_robin_minutes,
        row.best_of_two_minutes,
        row.relative_to_round_robin(row.best_of_two_minutes),
        optimal,
        row.paper_minutes.0,
        row.paper_minutes.1,
        row.paper_minutes.2,
        row.paper_minutes.3,
    )
}

/// Header matching [`format_table5_row`].
#[must_use]
pub fn table5_header() -> String {
    format!(
        "{:<8}  {:>17}  {:>7}  {:>17}  {:>17}",
        "load", "sequential", "rr", "best-of-two", "optimal"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use battery_sched::report::validation_row;
    use dkibam::Discretization;
    use kibam::BatteryParams;
    use workload::paper_loads::TestLoad;

    #[test]
    fn formatting_contains_the_load_name_and_values() {
        let row = validation_row(
            TestLoad::Cl500,
            &BatteryParams::itsy_b1(),
            &Discretization::paper_default(),
        )
        .unwrap();
        let line = format_validation_row(&row);
        assert!(line.contains("CL 500"));
        assert!(line.contains("2.0"));
        assert!(validation_header().contains("KiBaM"));
        assert!(table5_header().contains("best-of-two"));
    }
}
