//! Criterion benchmarks: one group per table/figure of the paper plus two
//! ablations (discretization granularity and capacity scaling).
//!
//! The groups measure the computations that regenerate each experiment:
//!
//! * `table3` / `table4` — single-battery validation rows (analytic +
//!   discretized lifetime) for B1 and B2;
//! * `table5` — two-battery policy simulations at the paper grid and the
//!   optimal search at the coarse grid;
//! * `figure6` — trace generation for the `ILs alt` load;
//! * `ablation_discretization` — discrete lifetime at several grid sizes;
//! * `capacity_scaling` — deterministic policies on a 10× larger battery
//!   (the remark at the end of Section 6).

use battery_sched::optimal::OptimalScheduler;
use battery_sched::policy::{BestAvailable, RoundRobin, Sequential};
use battery_sched::report::validation_row;
use battery_sched::system::{simulate_policy_on, SystemConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use dkibam::sim::simulate_lifetime;
use dkibam::{DiscretizedLoad, Discretization};
use kibam::BatteryParams;
use std::hint::black_box;
use workload::paper_loads::TestLoad;

fn bench_table3(c: &mut Criterion) {
    let params = BatteryParams::itsy_b1();
    let disc = Discretization::paper_default();
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    for load in [TestLoad::Cl500, TestLoad::Ils250, TestLoad::IlsAlt] {
        group.bench_function(load.name(), |b| {
            b.iter(|| validation_row(black_box(load), &params, &disc).unwrap())
        });
    }
    group.finish();
}

fn bench_table4(c: &mut Criterion) {
    let params = BatteryParams::itsy_b2();
    let disc = Discretization::paper_default();
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    for load in [TestLoad::Cl250, TestLoad::Ill500] {
        group.bench_function(load.name(), |b| {
            b.iter(|| validation_row(black_box(load), &params, &disc).unwrap())
        });
    }
    group.finish();
}

fn bench_table5(c: &mut Criterion) {
    let config = SystemConfig::paper_two_b1();
    let coarse = SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), 2).unwrap();
    let mut group = c.benchmark_group("table5");
    group.sample_size(10);
    for load in [TestLoad::Cl500, TestLoad::IlsAlt] {
        let discretized = config.discretize(&load.profile()).unwrap();
        group.bench_function(format!("{} sequential", load.name()), |b| {
            b.iter(|| simulate_policy_on(&config, &discretized, &mut Sequential::new()).unwrap())
        });
        group.bench_function(format!("{} round robin", load.name()), |b| {
            b.iter(|| simulate_policy_on(&config, &discretized, &mut RoundRobin::new()).unwrap())
        });
        group.bench_function(format!("{} best of two", load.name()), |b| {
            b.iter(|| simulate_policy_on(&config, &discretized, &mut BestAvailable::new()).unwrap())
        });
        let coarse_load = coarse.discretize(&load.profile()).unwrap();
        group.bench_function(format!("{} optimal (coarse)", load.name()), |b| {
            b.iter(|| OptimalScheduler::new().find_optimal_on(&coarse, &coarse_load).unwrap())
        });
    }
    group.finish();
}

fn bench_figure6(c: &mut Criterion) {
    let config = SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), 2)
        .unwrap()
        .with_sampling(2);
    let discretized = config.discretize(&TestLoad::IlsAlt.profile()).unwrap();
    let mut group = c.benchmark_group("figure6");
    group.sample_size(10);
    group.bench_function("best-of-two trace", |b| {
        b.iter(|| simulate_policy_on(&config, &discretized, &mut BestAvailable::new()).unwrap())
    });
    group.bench_function("optimal schedule + trace", |b| {
        b.iter(|| {
            let optimal = OptimalScheduler::new().find_optimal_on(&config, &discretized).unwrap();
            simulate_policy_on(
                &config,
                &discretized,
                &mut battery_sched::policy::FixedSchedule::new(optimal.decisions),
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_ablation_discretization(c: &mut Criterion) {
    let params = BatteryParams::itsy_b1();
    let mut group = c.benchmark_group("ablation_discretization");
    group.sample_size(10);
    for (label, time_step, charge_unit) in
        [("T=0.01", 0.01, 0.01), ("T=0.02", 0.02, 0.02), ("T=0.05", 0.05, 0.05)]
    {
        let disc = Discretization::new(time_step, charge_unit).unwrap();
        let load =
            DiscretizedLoad::from_profile(&TestLoad::Cl250.profile(), &disc, 11.0).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| simulate_lifetime(&params, &disc, black_box(&load)).unwrap())
        });
    }
    group.finish();
}

fn bench_capacity_scaling(c: &mut Criterion) {
    // Section 6: with a ten times larger capacity the residual-charge
    // fraction drops below 10 % for best-of-two scheduling.
    let big = BatteryParams::itsy_b1().with_capacity(55.0).unwrap();
    let config = SystemConfig::new(big, Discretization::paper_default(), 2).unwrap();
    let discretized = config.discretize(&TestLoad::IlsAlt.profile()).unwrap();
    let mut group = c.benchmark_group("capacity_scaling");
    group.sample_size(10);
    group.bench_function("10x capacity best-of-two", |b| {
        b.iter(|| simulate_policy_on(&config, &discretized, &mut BestAvailable::new()).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table3,
    bench_table4,
    bench_table5,
    bench_figure6,
    bench_ablation_discretization,
    bench_capacity_scaling
);
criterion_main!(benches);
