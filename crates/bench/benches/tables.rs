//! Benchmarks: one group per table/figure of the paper plus two ablations
//! (discretization granularity and capacity scaling).
//!
//! The build environment is offline, so instead of Criterion this file is a
//! `harness = false` bench with a small built-in timing harness: every
//! benchmark runs a warm-up iteration and then reports the median, minimum
//! and maximum wall-clock time over a fixed number of iterations. Run with
//! `cargo bench -p bench` (or `cargo bench -p bench -- <filter>`).
//!
//! The groups measure the computations that regenerate each experiment:
//!
//! * `table3` / `table4` — single-battery validation rows (analytic +
//!   discretized lifetime) for B1 and B2;
//! * `table5` — two-battery policy simulations at the paper grid and the
//!   optimal search at the coarse grid;
//! * `figure6` — trace generation for the `ILs alt` load;
//! * `scenario_grid` — the paper grid through the parallel scenario engine;
//! * `ablation_discretization` — discrete lifetime at several grid sizes;
//! * `capacity_scaling` — deterministic policies on a 10× larger battery
//!   (the remark at the end of Section 6).

use battery_sched::optimal::OptimalScheduler;
use battery_sched::policy::{BestAvailable, RoundRobin, Sequential};
use battery_sched::report::validation_row;
use battery_sched::system::{simulate_policy_on, SystemConfig};
use dkibam::sim::simulate_lifetime;
use dkibam::{Discretization, DiscretizedLoad};
use kibam::BatteryParams;
use std::hint::black_box;
use std::time::{Duration, Instant};
use workload::paper_loads::TestLoad;

/// Iterations per benchmark (after one warm-up run).
const ITERATIONS: usize = 10;

/// Times `f` and prints a `group/name: median [min .. max]` line. A filter
/// passed on the command line restricts which benchmarks run.
fn bench(filter: &[String], group: &str, name: &str, mut f: impl FnMut()) {
    let label = format!("{group}/{name}");
    if !filter.is_empty() && !filter.iter().any(|needle| label.contains(needle)) {
        return;
    }
    f(); // warm-up
    let mut samples: Vec<Duration> = (0..ITERATIONS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort();
    println!(
        "{label:<45} median {:>12?}  [{:?} .. {:?}]",
        samples[samples.len() / 2],
        samples[0],
        samples[samples.len() - 1],
    );
}

fn bench_table3(filter: &[String]) {
    let params = BatteryParams::itsy_b1();
    let disc = Discretization::paper_default();
    for load in [TestLoad::Cl500, TestLoad::Ils250, TestLoad::IlsAlt] {
        bench(filter, "table3", load.name(), || {
            black_box(validation_row(black_box(load), &params, &disc).unwrap());
        });
    }
}

fn bench_table4(filter: &[String]) {
    let params = BatteryParams::itsy_b2();
    let disc = Discretization::paper_default();
    for load in [TestLoad::Cl250, TestLoad::Ill500] {
        bench(filter, "table4", load.name(), || {
            black_box(validation_row(black_box(load), &params, &disc).unwrap());
        });
    }
}

fn bench_table5(filter: &[String]) {
    let config = SystemConfig::paper_two_b1();
    let coarse = SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), 2).unwrap();
    for load in [TestLoad::Cl500, TestLoad::IlsAlt] {
        let discretized = config.discretize(&load.profile()).unwrap();
        bench(filter, "table5", &format!("{} sequential", load.name()), || {
            black_box(simulate_policy_on(&config, &discretized, &mut Sequential::new()).unwrap());
        });
        bench(filter, "table5", &format!("{} round robin", load.name()), || {
            black_box(simulate_policy_on(&config, &discretized, &mut RoundRobin::new()).unwrap());
        });
        bench(filter, "table5", &format!("{} best of two", load.name()), || {
            black_box(
                simulate_policy_on(&config, &discretized, &mut BestAvailable::new()).unwrap(),
            );
        });
        let coarse_load = coarse.discretize(&load.profile()).unwrap();
        bench(filter, "table5", &format!("{} optimal (coarse)", load.name()), || {
            black_box(OptimalScheduler::new().find_optimal_on(&coarse, &coarse_load).unwrap());
        });
    }
}

fn bench_figure6(filter: &[String]) {
    let config = SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), 2)
        .unwrap()
        .with_sampling(2);
    let discretized = config.discretize(&TestLoad::IlsAlt.profile()).unwrap();
    bench(filter, "figure6", "best-of-two trace", || {
        black_box(simulate_policy_on(&config, &discretized, &mut BestAvailable::new()).unwrap());
    });
    bench(filter, "figure6", "optimal schedule + trace", || {
        let optimal = OptimalScheduler::new().find_optimal_on(&config, &discretized).unwrap();
        black_box(
            simulate_policy_on(
                &config,
                &discretized,
                &mut battery_sched::policy::FixedSchedule::new(optimal.decisions),
            )
            .unwrap(),
        );
    });
}

fn bench_scenario_grid(filter: &[String]) {
    let spec = engine::ScenarioSpec::paper_table5();
    bench(filter, "scenario_grid", "paper grid serial", || {
        black_box(engine::run_grid_with_threads(&spec, 1).unwrap());
    });
    bench(filter, "scenario_grid", "paper grid parallel", || {
        black_box(engine::run_grid(&spec).unwrap());
    });
}

fn bench_ablation_discretization(filter: &[String]) {
    let params = BatteryParams::itsy_b1();
    for (label, time_step, charge_unit) in
        [("T=0.01", 0.01, 0.01), ("T=0.02", 0.02, 0.02), ("T=0.05", 0.05, 0.05)]
    {
        let disc = Discretization::new(time_step, charge_unit).unwrap();
        let load = DiscretizedLoad::from_profile(&TestLoad::Cl250.profile(), &disc, 11.0).unwrap();
        bench(filter, "ablation_discretization", label, || {
            black_box(simulate_lifetime(&params, &disc, black_box(&load)).unwrap());
        });
    }
}

fn bench_capacity_scaling(filter: &[String]) {
    // Section 6: with a ten times larger capacity the residual-charge
    // fraction drops below 10 % for best-of-two scheduling.
    let big = BatteryParams::itsy_b1().with_capacity(55.0).unwrap();
    let config = SystemConfig::new(big, Discretization::paper_default(), 2).unwrap();
    let discretized = config.discretize(&TestLoad::IlsAlt.profile()).unwrap();
    bench(filter, "capacity_scaling", "10x capacity best-of-two", || {
        black_box(simulate_policy_on(&config, &discretized, &mut BestAvailable::new()).unwrap());
    });
}

fn main() {
    // Cargo's default bench runner passes `--bench`; everything else is
    // treated as a substring filter on `group/name` labels.
    let filter: Vec<String> = std::env::args().skip(1).filter(|a| !a.starts_with("--")).collect();
    bench_table3(&filter);
    bench_table4(&filter);
    bench_table5(&filter);
    bench_figure6(&filter);
    bench_scenario_grid(&filter);
    bench_ablation_discretization(&filter);
    bench_capacity_scaling(&filter);
}
