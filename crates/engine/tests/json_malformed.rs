//! Malformed-input suite for the hand-rolled JSON parser.
//!
//! Every rejection is asserted together with its byte offset, pinning the
//! diagnostics a user sees when a scenario or baseline file is corrupt:
//! truncated documents, duplicate object keys, bad string escapes, and
//! number literals that overflow the finite f64 range.

use engine::json::{JsonError, JsonValue};

fn err(text: &str) -> JsonError {
    match JsonValue::parse(text) {
        Err(e) => e,
        Ok(v) => panic!("{text:?} parsed as {v:?}, expected an error"),
    }
}

#[test]
fn truncated_documents_report_the_cut_point() {
    for (text, offset, needle) in [
        ("", 0, "expected a JSON value"),
        ("{\"a\": 1", 7, "expected ',' or '}' in object"),
        ("[1, 2", 5, "expected ',' or ']' in array"),
        ("\"abc", 4, "unterminated string"),
        ("{\"a\"", 4, "expected ':'"),
        ("{", 1, "expected '\"'"),
        ("[", 1, "expected a JSON value"),
        ("tru", 0, "expected 'true'"),
        ("nul", 0, "expected 'null'"),
    ] {
        let e = err(text);
        assert_eq!(e.offset, offset, "offset for {text:?}: {e}");
        assert!(e.message.contains(needle), "message for {text:?}: {e}");
    }
}

#[test]
fn duplicate_object_keys_are_rejected_at_the_second_key() {
    let e = err("{\"a\":1,\"a\":2}");
    assert_eq!(e.offset, 7);
    assert_eq!(e.message, "duplicate object key \"a\"");

    // Nested objects each get their own key scope: no false positive.
    let ok = JsonValue::parse("{\"a\":{\"a\":1},\"b\":{\"a\":2}}").unwrap();
    assert_eq!(ok.get("a").and_then(|v| v.get("a")).and_then(JsonValue::as_u64), Some(1));

    // The duplicate check runs before the value parses: a duplicate with a
    // malformed value still reports the key.
    let e = err("{\"k\":0,\"k\":!}");
    assert_eq!(e.offset, 7);
    assert!(e.message.contains("duplicate object key"));
}

#[test]
fn bad_string_escapes_are_rejected_with_offsets() {
    for (text, offset, needle) in [
        ("\"\\x\"", 2, "invalid escape sequence"),
        ("\"\\u00\"", 3, "truncated unicode escape"),
        ("\"\\uZZZZ\"", 3, "invalid unicode escape"),
        ("\"\\ud800\"", 7, "unpaired surrogate"),
        ("\"\\ud800\\u0041\"", 13, "unpaired surrogate"),
    ] {
        let e = err(text);
        assert_eq!(e.offset, offset, "offset for {text:?}: {e}");
        assert!(e.message.contains(needle), "message for {text:?}: {e}");
    }

    // A proper surrogate pair still decodes.
    let v = JsonValue::parse("\"\\ud83d\\ude00\"").unwrap();
    assert_eq!(v.as_str(), Some("\u{1F600}"));
}

#[test]
fn overflowing_number_literals_are_rejected_not_infinities() {
    for (text, offset) in [("1e999", 0), ("-1e999", 0), ("{\"steps\": 1e999}", 10)] {
        let e = err(text);
        assert_eq!(e.offset, offset, "offset for {text:?}: {e}");
        assert!(e.message.contains("overflows the finite f64 range"), "message for {text:?}: {e}");
    }
    // The largest finite doubles still round-trip.
    let v = JsonValue::parse("1e308").unwrap();
    assert_eq!(v.as_f64(), Some(1e308));
}

#[test]
fn as_u64_only_accepts_exact_integers_in_the_safe_range() {
    assert_eq!(JsonValue::Number(0.0).as_u64(), Some(0));
    assert_eq!(JsonValue::Number(9_007_199_254_740_992.0).as_u64(), Some(9_007_199_254_740_992));
    assert_eq!(JsonValue::Number(1.5).as_u64(), None);
    assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
    // Beyond 2^53 adjacent integers collide in f64; the accessor refuses.
    assert_eq!(JsonValue::Number(1e19).as_u64(), None);
}

#[test]
fn trailing_garbage_is_rejected_after_a_complete_value() {
    let e = err("{} x");
    assert_eq!(e.offset, 3);
    assert!(e.message.contains("trailing characters"));
    assert_eq!(format!("{e}"), "JSON error at byte 3: trailing characters after JSON value");
}
