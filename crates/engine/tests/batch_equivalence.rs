//! Batched-vs-scalar equivalence: the struct-of-arrays chunk kernels the
//! grid runner packs scenarios into must be **bit-identical** to the scalar
//! per-scenario path — same lifetimes (to the last mantissa bit), same
//! residual charge, same switch and decision counts — across uniform and
//! mixed fleets, every paper load, seeded random loads and both batchable
//! backends (discretized KiBaM and RV diffusion). The kernel crates prove
//! per-step state-word identity in their own lockstep suites; this suite
//! proves the engine wiring (chunk grouping, lane packing, cache reuse)
//! preserves it end to end.

use engine::{
    run_grid_with_threads, run_scenario, BackendKind, BatterySpec, DiscSpec, FleetDef, LoadSpec,
    PolicyKind, ScenarioResult, ScenarioSpec,
};
use workload::paper_loads::TestLoad;

/// Both fleet shapes of the paper experiments: the uniform pair and the
/// heterogeneous B1+B2 mix (two type groups sharing one batch).
fn spec_with(loads: Vec<LoadSpec>, policies: Vec<PolicyKind>) -> ScenarioSpec {
    ScenarioSpec {
        batteries: vec![BatterySpec::b1()],
        battery_counts: vec![2],
        fleets: vec![FleetDef::mixed(vec![BatterySpec::b1(), BatterySpec::b2()])],
        discretizations: vec![DiscSpec::paper()],
        loads,
        policies,
        backends: vec![BackendKind::Discretized, BackendKind::Rv],
    }
}

fn assert_identical(batched: &ScenarioResult, scalar: &ScenarioResult, context: &str) {
    assert_eq!(batched.scenario, scalar.scenario, "{context}: scenario mismatch");
    assert_eq!(
        batched.lifetime_minutes.map(f64::to_bits),
        scalar.lifetime_minutes.map(f64::to_bits),
        "{context}: lifetime diverged ({:?} vs {:?})",
        batched.lifetime_minutes,
        scalar.lifetime_minutes
    );
    assert_eq!(
        batched.residual_charge.to_bits(),
        scalar.residual_charge.to_bits(),
        "{context}: residual charge diverged ({} vs {})",
        batched.residual_charge,
        scalar.residual_charge
    );
    assert_eq!(batched.switches, scalar.switches, "{context}: switch count diverged");
    assert_eq!(batched.decisions, scalar.decisions, "{context}: decision count diverged");
    assert_eq!(batched.search, scalar.search, "{context}: search stats diverged");
    assert_eq!(batched.seeded_by, scalar.seeded_by, "{context}: seed label diverged");
}

/// Runs the grid through the chunked (batched) runner and re-runs every cell
/// through the scalar single-scenario entry point, asserting bit-identity.
fn assert_grid_matches_scalar(spec: &ScenarioSpec) {
    let batched = run_grid_with_threads(spec, 1).expect("batched grid runs");
    assert_eq!(batched.len(), spec.expand().len());
    for result in &batched {
        let scalar = run_scenario(&result.scenario).expect("scalar scenario runs");
        assert_identical(result, &scalar, &result.scenario.label());
    }
}

#[test]
fn all_paper_loads_match_scalar_bit_for_bit() {
    let loads = TestLoad::all().into_iter().map(LoadSpec::Paper).collect();
    let spec = spec_with(loads, vec![PolicyKind::RoundRobin, PolicyKind::BestOfTwo]);
    assert_grid_matches_scalar(&spec);
}

#[test]
fn remaining_deterministic_policies_match_scalar() {
    let loads = vec![LoadSpec::Paper(TestLoad::Ils500), LoadSpec::Paper(TestLoad::IlsAlt)];
    let spec = spec_with(loads, vec![PolicyKind::Sequential, PolicyKind::CapacityRr]);
    assert_grid_matches_scalar(&spec);
}

#[test]
fn seeded_random_loads_match_scalar() {
    let loads = (0..8).map(|seed| LoadSpec::random_paper_levels(seed, 12)).collect();
    let spec = spec_with(loads, vec![PolicyKind::RoundRobin]);
    assert_grid_matches_scalar(&spec);
}

#[test]
fn thread_count_does_not_change_batched_results() {
    // Different worker counts claim different chunks, so the lane packing of
    // every batch differs — the results must not.
    let loads = TestLoad::all().into_iter().map(LoadSpec::Paper).collect();
    let spec = spec_with(loads, vec![PolicyKind::RoundRobin, PolicyKind::BestOfTwo]);
    let serial = run_grid_with_threads(&spec, 1).unwrap();
    let parallel = run_grid_with_threads(&spec, 4).unwrap();
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_identical(b, a, &a.scenario.label());
    }
}
