//! Declarative scenario grids.
//!
//! A [`ScenarioSpec`] describes a *grid* of experiments — battery fleets ×
//! discretizations × loads × policies × backends — in a JSON-serializable
//! form. The fleet axis is fleet-first: a cell's system is an ordered list
//! of per-battery types ([`FleetDef`]), so heterogeneous mixes like
//! `B1+B2` are grid cells like any other; the classic `battery × count`
//! axes are kept as sugar that desugars to uniform fleets.
//! [`ScenarioSpec::expand`] turns the grid into the concrete [`Scenario`]s
//! the runner executes.

use crate::json::JsonValue;
use crate::EngineError;
use battery_sched::policy::{
    BestAvailable, CapacityWeightedRoundRobin, RoundRobin, SchedulingPolicy, Sequential,
};
use kibam::{BatteryParams, FleetSpec};
use workload::builder::LoadProfileBuilder;
use workload::paper_loads::TestLoad;
use workload::random::RandomLoadSpec;
use workload::LoadProfile;

/// A battery type in a scenario grid.
#[derive(Debug, Clone, PartialEq)]
pub struct BatterySpec {
    /// Display name (e.g. `"B1"`).
    pub name: String,
    /// Capacity `C` in A·min.
    pub capacity: f64,
    /// Available-charge well fraction `c`.
    pub c: f64,
    /// Normalised rate constant `k'` in 1/min.
    pub k_prime: f64,
}

impl BatterySpec {
    /// The paper's battery B1 (5.5 A·min Itsy cell).
    #[must_use]
    pub fn b1() -> Self {
        Self::from_params("B1", &BatteryParams::itsy_b1())
    }

    /// The paper's battery B2 (11 A·min Itsy cell).
    #[must_use]
    pub fn b2() -> Self {
        Self::from_params("B2", &BatteryParams::itsy_b2())
    }

    /// Wraps validated [`BatteryParams`] with a display name.
    #[must_use]
    pub fn from_params(name: &str, params: &BatteryParams) -> Self {
        Self {
            name: name.to_owned(),
            capacity: params.capacity(),
            c: params.c(),
            k_prime: params.k_prime(),
        }
    }

    /// Validates the spec into [`BatteryParams`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Kibam`] for invalid parameters.
    pub fn to_params(&self) -> Result<BatteryParams, EngineError> {
        Ok(BatteryParams::new(self.capacity, self.c, self.k_prime)?)
    }

    pub(crate) fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("name", JsonValue::String(self.name.clone())),
            ("capacity", JsonValue::Number(self.capacity)),
            ("c", JsonValue::Number(self.c)),
            ("k_prime", JsonValue::Number(self.k_prime)),
        ])
    }

    pub(crate) fn from_json(value: &JsonValue) -> Result<Self, EngineError> {
        Ok(Self {
            name: require_str(value, "name")?.to_owned(),
            capacity: require_f64(value, "capacity")?,
            c: require_f64(value, "c")?,
            k_prime: require_f64(value, "k_prime")?,
        })
    }
}

/// A battery fleet in a scenario grid: an ordered list of per-battery
/// types, possibly heterogeneous.
///
/// [`FleetDef::uniform`] recovers the classic `battery × count` cells (and
/// the `batteries`/`battery_counts` axes of [`ScenarioSpec`] desugar to
/// it); [`FleetDef::mixed`] builds arbitrary mixes such as `B1+B2`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetDef {
    /// Display name (e.g. `"2xB1"` or `"B1+B2"`).
    pub name: String,
    /// The per-battery types, in battery index order.
    pub batteries: Vec<BatterySpec>,
}

impl FleetDef {
    /// A fleet of `count` identical batteries, named `"{count}x{battery}"`.
    #[must_use]
    pub fn uniform(battery: BatterySpec, count: usize) -> Self {
        let name = format!("{count}x{}", battery.name);
        Self { name, batteries: vec![battery; count] }
    }

    /// A (possibly) mixed fleet, named by joining the battery names with
    /// `+` (e.g. `"B1+B1+B2"`).
    #[must_use]
    pub fn mixed(batteries: Vec<BatterySpec>) -> Self {
        let name = batteries.iter().map(|b| b.name.as_str()).collect::<Vec<_>>().join("+");
        Self { name, batteries }
    }

    /// The number of batteries in the fleet.
    #[must_use]
    pub fn battery_count(&self) -> usize {
        self.batteries.len()
    }

    /// Whether every battery in the fleet has the same parameters.
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        self.batteries.windows(2).all(|pair| {
            let (a, b) = (&pair[0], &pair[1]);
            a.capacity == b.capacity && a.c == b.c && a.k_prime == b.k_prime
        })
    }

    /// Validates the fleet into a [`kibam::FleetSpec`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Kibam`] for invalid battery parameters or an
    /// empty fleet.
    pub fn to_fleet_spec(&self) -> Result<FleetSpec, EngineError> {
        let params =
            self.batteries.iter().map(BatterySpec::to_params).collect::<Result<Vec<_>, _>>()?;
        Ok(FleetSpec::new(params)?)
    }

    pub(crate) fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("name", JsonValue::String(self.name.clone())),
            (
                "batteries",
                JsonValue::Array(self.batteries.iter().map(BatterySpec::to_json).collect()),
            ),
        ])
    }

    pub(crate) fn from_json(value: &JsonValue) -> Result<Self, EngineError> {
        Ok(Self {
            name: require_str(value, "name")?.to_owned(),
            batteries: require_array(value, "batteries")?
                .iter()
                .map(BatterySpec::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// A discretization in a scenario grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscSpec {
    /// Time step `T` in minutes.
    pub time_step: f64,
    /// Charge unit `Γ` in A·min.
    pub charge_unit: f64,
}

impl DiscSpec {
    /// The paper's grid (`T = Γ = 0.01`), derived from the canonical
    /// [`dkibam::Discretization::paper_default`] so the two never diverge.
    #[must_use]
    pub fn paper() -> Self {
        Self::from_discretization(&dkibam::Discretization::paper_default())
    }

    /// The coarse grid used for optimal searches (`T = Γ = 0.05`), derived
    /// from the canonical [`dkibam::Discretization::coarse`].
    #[must_use]
    pub fn coarse() -> Self {
        Self::from_discretization(&dkibam::Discretization::coarse())
    }

    /// Wraps an already-validated discretization.
    #[must_use]
    pub fn from_discretization(disc: &dkibam::Discretization) -> Self {
        Self { time_step: disc.time_step(), charge_unit: disc.charge_unit() }
    }

    /// Validates the spec into a [`dkibam::Discretization`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Sched`] for non-positive steps.
    pub fn to_discretization(&self) -> Result<dkibam::Discretization, EngineError> {
        Ok(dkibam::Discretization::new(self.time_step, self.charge_unit)
            .map_err(battery_sched::SchedError::from)?)
    }

    pub(crate) fn to_json(self) -> JsonValue {
        JsonValue::object(vec![
            ("time_step", JsonValue::Number(self.time_step)),
            ("charge_unit", JsonValue::Number(self.charge_unit)),
        ])
    }

    pub(crate) fn from_json(value: &JsonValue) -> Result<Self, EngineError> {
        Ok(Self {
            time_step: require_f64(value, "time_step")?,
            charge_unit: require_f64(value, "charge_unit")?,
        })
    }
}

/// A scheduling policy in a scenario grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Use batteries one after the other (the paper's worst schedule).
    Sequential,
    /// Cycle through the batteries job by job.
    RoundRobin,
    /// Always pick the battery with the most available charge.
    BestOfTwo,
    /// Spread jobs over the batteries in proportion to their capacities
    /// (stride scheduling) — the cheap fleet-aware heuristic baseline.
    CapacityRr,
    /// The exact optimal schedule, found by the memoized branch-and-bound
    /// search with the given node budget. The grid cell fails with a budget
    /// error instead of silently reporting a sub-optimal lifetime.
    Optimal {
        /// The search's node budget (decision nodes).
        budget: usize,
    },
}

impl PolicyKind {
    /// The optimal policy with the search's default node budget.
    #[must_use]
    pub fn optimal() -> Self {
        PolicyKind::Optimal { budget: battery_sched::optimal::DEFAULT_BUDGET }
    }

    /// The three deterministic policies of the paper's Table 5.
    #[must_use]
    pub fn all() -> [PolicyKind; 3] {
        [PolicyKind::Sequential, PolicyKind::RoundRobin, PolicyKind::BestOfTwo]
    }

    /// Every deterministic policy: the paper's three plus the
    /// capacity-weighted round robin.
    #[must_use]
    pub fn deterministic() -> [PolicyKind; 4] {
        [
            PolicyKind::Sequential,
            PolicyKind::RoundRobin,
            PolicyKind::BestOfTwo,
            PolicyKind::CapacityRr,
        ]
    }

    /// The stable name used in JSON and reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Sequential => "sequential",
            PolicyKind::RoundRobin => "round-robin",
            PolicyKind::BestOfTwo => "best-of-two",
            PolicyKind::CapacityRr => "capacity-rr",
            PolicyKind::Optimal { .. } => "optimal",
        }
    }

    /// Instantiates a deterministic policy, or `None` for
    /// [`PolicyKind::Optimal`], which is a search rather than a step-by-step
    /// policy (the runner dispatches it to the optimal scheduler).
    #[must_use]
    pub fn build(&self) -> Option<Box<dyn SchedulingPolicy>> {
        match self {
            PolicyKind::Sequential => Some(Box::new(Sequential::new())),
            PolicyKind::RoundRobin => Some(Box::new(RoundRobin::new())),
            PolicyKind::BestOfTwo => Some(Box::new(BestAvailable::new())),
            PolicyKind::CapacityRr => Some(Box::new(CapacityWeightedRoundRobin::new())),
            PolicyKind::Optimal { .. } => None,
        }
    }

    pub(crate) fn to_json(self) -> JsonValue {
        match self {
            PolicyKind::Optimal { budget } => {
                #[allow(clippy::cast_precision_loss)]
                let budget = budget as f64;
                JsonValue::object(vec![
                    ("kind", JsonValue::String("optimal".to_owned())),
                    ("budget", JsonValue::Number(budget)),
                ])
            }
            deterministic => JsonValue::String(deterministic.name().to_owned()),
        }
    }

    pub(crate) fn from_json(value: &JsonValue) -> Result<Self, EngineError> {
        if let Some(name) = value.as_str() {
            return Self::from_name(name);
        }
        match value.get("kind").and_then(JsonValue::as_str) {
            Some("optimal") => {
                let budget = value
                    .get("budget")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| missing("budget"))?;
                #[allow(clippy::cast_possible_truncation)]
                Ok(PolicyKind::Optimal { budget: budget as usize })
            }
            Some(other) => Err(EngineError::InvalidSpec(format!("unknown policy kind '{other}'"))),
            None => Err(EngineError::InvalidSpec("a policy must be a name or an object".into())),
        }
    }

    pub(crate) fn from_name(name: &str) -> Result<Self, EngineError> {
        if name == "optimal" {
            return Ok(PolicyKind::optimal());
        }
        PolicyKind::deterministic()
            .into_iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| EngineError::InvalidSpec(format!("unknown policy '{name}'")))
    }
}

/// A battery-model backend in a scenario grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The discretized KiBaM (the paper's model).
    Discretized,
    /// The closed-form continuous KiBaM.
    Continuous,
    /// The Rakhmatov–Vrudhula diffusion model, parameter-fitted per battery
    /// type from the fleet's KiBaM parameters: the cross-model validation
    /// chemistry.
    Rv,
    /// The ideal (linear) battery: no rate-capacity or recovery effect, the
    /// cross-model baseline.
    Ideal,
}

impl BackendKind {
    /// All built-in backends.
    #[must_use]
    pub fn all() -> [BackendKind; 4] {
        [BackendKind::Discretized, BackendKind::Continuous, BackendKind::Rv, BackendKind::Ideal]
    }

    /// The two KiBaM backends the paper's tables compare (without the ideal
    /// baseline or the RV diffusion model).
    #[must_use]
    pub fn kibam() -> [BackendKind; 2] {
        [BackendKind::Discretized, BackendKind::Continuous]
    }

    /// The stable name used in JSON and reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Discretized => "discretized",
            BackendKind::Continuous => "continuous",
            BackendKind::Rv => "rv",
            BackendKind::Ideal => "ideal",
        }
    }

    pub(crate) fn from_name(name: &str) -> Result<Self, EngineError> {
        BackendKind::all()
            .into_iter()
            .find(|b| b.name() == name)
            .ok_or_else(|| EngineError::InvalidSpec(format!("unknown backend '{name}'")))
    }
}

/// A load in a scenario grid: one of the paper's named test loads or a
/// custom piecewise-constant profile.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadSpec {
    /// One of the ten test loads of Section 5, by its paper name.
    Paper(TestLoad),
    /// A custom load given as `(current A, duration min)` epochs.
    Custom {
        /// Display name of the load.
        name: String,
        /// The epochs of (one period of) the load.
        epochs: Vec<(f64, f64)>,
        /// Whether the epoch pattern repeats forever.
        cyclic: bool,
    },
    /// A seeded random load (see [`workload::random::RandomLoadSpec`]): a
    /// finite sequence of jobs whose currents are drawn uniformly from
    /// `currents`. This is the compact axis for large random-workload
    /// sweeps — a 10⁵-cell grid stores one seed per load instead of the
    /// expanded epochs.
    Random {
        /// Display name of the load (e.g. `"rand-42"`).
        name: String,
        /// The generator seed; equal seeds produce equal loads. Seeds
        /// round-trip through JSON exactly up to 2⁵³ (JSON numbers).
        seed: u64,
        /// Candidate job currents in A.
        currents: Vec<f64>,
        /// Duration of each job in minutes.
        job_duration: f64,
        /// Idle time after each job in minutes (zero for back-to-back jobs).
        idle_duration: f64,
        /// Number of jobs.
        job_count: usize,
    },
}

impl LoadSpec {
    /// A random-load cell for seed sweeps: jobs draw uniformly from the
    /// paper's two current levels (250/500 mA), one minute each with one
    /// minute of idle time after, mirroring the `ILs r1`/`ILs r2` structure.
    #[must_use]
    pub fn random_paper_levels(seed: u64, job_count: usize) -> Self {
        LoadSpec::Random {
            name: format!("rand-{seed}"),
            seed,
            currents: vec![0.25, 0.5],
            job_duration: 1.0,
            idle_duration: 1.0,
            job_count,
        }
    }

    /// The load's display name.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            LoadSpec::Paper(load) => load.name().to_owned(),
            LoadSpec::Custom { name, .. } | LoadSpec::Random { name, .. } => name.clone(),
        }
    }

    /// Builds the load profile.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Workload`] for invalid custom epochs or random
    /// parameters.
    pub fn profile(&self) -> Result<LoadProfile, EngineError> {
        match self {
            LoadSpec::Paper(load) => Ok(load.profile()),
            LoadSpec::Custom { epochs, cyclic, .. } => {
                let mut builder = LoadProfileBuilder::new();
                for &(current, duration) in epochs {
                    builder = builder.job(current, duration);
                }
                Ok(if *cyclic { builder.build_cyclic()? } else { builder.build_finite()? })
            }
            LoadSpec::Random { seed, currents, job_duration, idle_duration, job_count, .. } => {
                let spec = RandomLoadSpec::new(
                    currents.clone(),
                    *job_duration,
                    *idle_duration,
                    *job_count,
                )?;
                Ok(spec.generate(*seed)?)
            }
        }
    }

    pub(crate) fn to_json(&self) -> JsonValue {
        match self {
            LoadSpec::Paper(load) => JsonValue::object(vec![
                ("kind", JsonValue::String("paper".to_owned())),
                ("name", JsonValue::String(load.name().to_owned())),
            ]),
            LoadSpec::Custom { name, epochs, cyclic } => JsonValue::object(vec![
                ("kind", JsonValue::String("custom".to_owned())),
                ("name", JsonValue::String(name.clone())),
                (
                    "epochs",
                    JsonValue::Array(
                        epochs
                            .iter()
                            .map(|&(current, duration)| {
                                JsonValue::Array(vec![
                                    JsonValue::Number(current),
                                    JsonValue::Number(duration),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("cyclic", JsonValue::Bool(*cyclic)),
            ]),
            LoadSpec::Random { name, seed, currents, job_duration, idle_duration, job_count } => {
                #[allow(clippy::cast_precision_loss)]
                let seed = *seed as f64;
                #[allow(clippy::cast_precision_loss)]
                let job_count = *job_count as f64;
                JsonValue::object(vec![
                    ("kind", JsonValue::String("random".to_owned())),
                    ("name", JsonValue::String(name.clone())),
                    ("seed", JsonValue::Number(seed)),
                    (
                        "currents",
                        JsonValue::Array(currents.iter().map(|&c| JsonValue::Number(c)).collect()),
                    ),
                    ("job_duration", JsonValue::Number(*job_duration)),
                    ("idle_duration", JsonValue::Number(*idle_duration)),
                    ("job_count", JsonValue::Number(job_count)),
                ])
            }
        }
    }

    pub(crate) fn from_json(value: &JsonValue) -> Result<Self, EngineError> {
        match require_str(value, "kind")? {
            "paper" => {
                let name = require_str(value, "name")?;
                let load =
                    TestLoad::all().into_iter().find(|l| l.name() == name).ok_or_else(|| {
                        EngineError::InvalidSpec(format!("unknown paper load '{name}'"))
                    })?;
                Ok(LoadSpec::Paper(load))
            }
            "custom" => {
                let epochs = value
                    .get("epochs")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| missing("epochs"))?
                    .iter()
                    .map(|pair| {
                        let items = pair.as_array().unwrap_or(&[]);
                        match items {
                            [current, duration] => Ok((
                                current.as_f64().ok_or_else(|| missing("epoch current"))?,
                                duration.as_f64().ok_or_else(|| missing("epoch duration"))?,
                            )),
                            _ => Err(EngineError::InvalidSpec(
                                "an epoch must be a [current, duration] pair".to_owned(),
                            )),
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(LoadSpec::Custom {
                    name: require_str(value, "name")?.to_owned(),
                    epochs,
                    cyclic: value
                        .get("cyclic")
                        .and_then(JsonValue::as_bool)
                        .ok_or_else(|| missing("cyclic"))?,
                })
            }
            "random" => {
                let currents = value
                    .get("currents")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| missing("currents"))?
                    .iter()
                    .map(|c| c.as_f64().ok_or_else(|| missing("currents entry")))
                    .collect::<Result<Vec<_>, _>>()?;
                let job_count = value
                    .get("job_count")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| missing("job_count"))?;
                #[allow(clippy::cast_possible_truncation)]
                Ok(LoadSpec::Random {
                    name: require_str(value, "name")?.to_owned(),
                    seed: value
                        .get("seed")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| missing("seed"))?,
                    currents,
                    job_duration: require_f64(value, "job_duration")?,
                    idle_duration: require_f64(value, "idle_duration")?,
                    job_count: job_count as usize,
                })
            }
            other => Err(EngineError::InvalidSpec(format!("unknown load kind '{other}'"))),
        }
    }
}

/// A declarative grid of scenarios: the cartesian product of every axis.
///
/// The system axis is fleet-first: `batteries × battery_counts` desugars to
/// uniform [`FleetDef`]s, and the `fleets` axis appends arbitrary
/// (heterogeneous) fleets after them. A grid may use either or both.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Battery types to sweep (sugar: crossed with `battery_counts` into
    /// uniform fleets).
    pub batteries: Vec<BatterySpec>,
    /// Battery counts to sweep (sugar, see `batteries`).
    pub battery_counts: Vec<usize>,
    /// Explicit (possibly heterogeneous) fleets to sweep, after the
    /// desugared uniform ones.
    pub fleets: Vec<FleetDef>,
    /// Discretizations to sweep.
    pub discretizations: Vec<DiscSpec>,
    /// Loads to sweep.
    pub loads: Vec<LoadSpec>,
    /// Policies to sweep.
    pub policies: Vec<PolicyKind>,
    /// Backends to sweep.
    pub backends: Vec<BackendKind>,
}

impl ScenarioSpec {
    /// The paper's Table 5 experiment as a grid: 2 × B1 at the paper
    /// discretization, all ten loads, all three deterministic policies, both
    /// KiBaM backends.
    #[must_use]
    pub fn paper_table5() -> Self {
        Self {
            batteries: vec![BatterySpec::b1()],
            battery_counts: vec![2],
            fleets: vec![],
            discretizations: vec![DiscSpec::paper()],
            loads: TestLoad::all().into_iter().map(LoadSpec::Paper).collect(),
            policies: PolicyKind::all().to_vec(),
            backends: BackendKind::kibam().to_vec(),
        }
    }

    /// The effective fleet axis: `batteries × battery_counts` desugared to
    /// uniform fleets, followed by the explicit `fleets`.
    #[must_use]
    pub fn effective_fleets(&self) -> Vec<FleetDef> {
        let mut fleets = Vec::with_capacity(
            self.batteries.len() * self.battery_counts.len() + self.fleets.len(),
        );
        for battery in &self.batteries {
            for &count in &self.battery_counts {
                fleets.push(FleetDef::uniform(battery.clone(), count));
            }
        }
        fleets.extend(self.fleets.iter().cloned());
        fleets
    }

    /// The number of scenarios the grid expands to.
    #[must_use]
    pub fn scenario_count(&self) -> usize {
        (self.batteries.len() * self.battery_counts.len() + self.fleets.len())
            * self.discretizations.len()
            * self.loads.len()
            * self.policies.len()
            * self.backends.len()
    }

    /// Expands the grid into concrete scenarios (row-major over the axes in
    /// declaration order, fleets outermost).
    #[must_use]
    pub fn expand(&self) -> Vec<Scenario> {
        let mut scenarios = Vec::with_capacity(self.scenario_count());
        for fleet in self.effective_fleets() {
            for &disc in &self.discretizations {
                for load in &self.loads {
                    for &policy in &self.policies {
                        for &backend in &self.backends {
                            scenarios.push(Scenario {
                                fleet: fleet.clone(),
                                disc,
                                load: load.clone(),
                                policy,
                                backend,
                            });
                        }
                    }
                }
            }
        }
        scenarios
    }

    /// Serializes the grid to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Json`] if a number in the spec is non-finite.
    pub fn to_json(&self) -> Result<String, EngineError> {
        Ok(self.to_json_value().render()?)
    }

    /// The grid as a JSON document model.
    #[must_use]
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            (
                "batteries",
                JsonValue::Array(self.batteries.iter().map(BatterySpec::to_json).collect()),
            ),
            (
                "battery_counts",
                JsonValue::Array(
                    self.battery_counts.iter().map(|&n| JsonValue::Number(n as f64)).collect(),
                ),
            ),
            ("fleets", JsonValue::Array(self.fleets.iter().map(FleetDef::to_json).collect())),
            (
                "discretizations",
                JsonValue::Array(
                    self.discretizations.iter().copied().map(DiscSpec::to_json).collect(),
                ),
            ),
            ("loads", JsonValue::Array(self.loads.iter().map(LoadSpec::to_json).collect())),
            ("policies", JsonValue::Array(self.policies.iter().map(|p| p.to_json()).collect())),
            (
                "backends",
                JsonValue::Array(
                    self.backends.iter().map(|b| JsonValue::String(b.name().to_owned())).collect(),
                ),
            ),
        ])
    }

    /// Parses a grid from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Json`] for malformed JSON and
    /// [`EngineError::InvalidSpec`] for well-formed JSON that is not a grid.
    pub fn from_json(text: &str) -> Result<Self, EngineError> {
        Self::from_json_value(&JsonValue::parse(text)?)
    }

    /// Parses a grid from an already-parsed JSON document.
    ///
    /// # Errors
    ///
    /// Same as [`ScenarioSpec::from_json`].
    pub fn from_json_value(value: &JsonValue) -> Result<Self, EngineError> {
        Ok(Self {
            batteries: require_array(value, "batteries")?
                .iter()
                .map(BatterySpec::from_json)
                .collect::<Result<_, _>>()?,
            battery_counts: require_array(value, "battery_counts")?
                .iter()
                .map(|n| {
                    n.as_u64().map(|n| n as usize).ok_or_else(|| missing("battery_counts entry"))
                })
                .collect::<Result<_, _>>()?,
            // Older documents predate the fleet axis; a missing key is an
            // empty axis, so pre-fleet grids keep parsing unchanged.
            fleets: match value.get("fleets") {
                None => Vec::new(),
                Some(fleets) => fleets
                    .as_array()
                    .ok_or_else(|| missing("fleets"))?
                    .iter()
                    .map(FleetDef::from_json)
                    .collect::<Result<_, _>>()?,
            },
            discretizations: require_array(value, "discretizations")?
                .iter()
                .map(DiscSpec::from_json)
                .collect::<Result<_, _>>()?,
            loads: require_array(value, "loads")?
                .iter()
                .map(LoadSpec::from_json)
                .collect::<Result<_, _>>()?,
            policies: require_array(value, "policies")?
                .iter()
                .map(PolicyKind::from_json)
                .collect::<Result<_, _>>()?,
            backends: require_array(value, "backends")?
                .iter()
                .map(|b| BackendKind::from_name(b.as_str().unwrap_or_default()))
                .collect::<Result<_, _>>()?,
        })
    }
}

/// One cell of an expanded grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The battery fleet of the system (uniform or mixed).
    pub fleet: FleetDef,
    /// The discretization.
    pub disc: DiscSpec,
    /// The load.
    pub load: LoadSpec,
    /// The scheduling policy.
    pub policy: PolicyKind,
    /// The battery-model backend.
    pub backend: BackendKind,
}

impl Scenario {
    /// A compact human-readable label, e.g.
    /// `"2xB1 ILs 500 round-robin discretized"` or
    /// `"B1+B2 ILs alt optimal discretized"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{} {} {} {}",
            self.fleet.name,
            self.load.name(),
            self.policy.name(),
            self.backend.name()
        )
    }
}

pub(crate) fn missing(key: &str) -> EngineError {
    EngineError::InvalidSpec(format!("missing or mistyped field '{key}'"))
}

pub(crate) fn require_str<'a>(value: &'a JsonValue, key: &str) -> Result<&'a str, EngineError> {
    value.get(key).and_then(JsonValue::as_str).ok_or_else(|| missing(key))
}

pub(crate) fn require_f64(value: &JsonValue, key: &str) -> Result<f64, EngineError> {
    value.get(key).and_then(JsonValue::as_f64).ok_or_else(|| missing(key))
}

fn require_array<'a>(value: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], EngineError> {
    value.get(key).and_then(JsonValue::as_array).ok_or_else(|| missing(key))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_expands_to_the_full_product() {
        let spec = ScenarioSpec::paper_table5();
        // 1 battery x 1 count x 1 grid x 10 loads x 3 policies x 2 backends.
        assert_eq!(spec.scenario_count(), 60);
        let scenarios = spec.expand();
        assert_eq!(scenarios.len(), spec.scenario_count());
        // Every combination is distinct.
        for (i, a) in scenarios.iter().enumerate() {
            for b in &scenarios[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn fleet_axis_expands_after_the_uniform_sugar() {
        let mut spec = ScenarioSpec::paper_table5();
        spec.loads = vec![LoadSpec::Paper(TestLoad::Cl500)];
        spec.policies = vec![PolicyKind::RoundRobin];
        spec.backends = vec![BackendKind::Discretized];
        spec.fleets = vec![FleetDef::mixed(vec![BatterySpec::b1(), BatterySpec::b2()])];
        assert_eq!(spec.scenario_count(), 2);
        let scenarios = spec.expand();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].fleet.name, "2xB1");
        assert!(scenarios[0].fleet.is_uniform());
        assert_eq!(scenarios[1].fleet.name, "B1+B2");
        assert!(!scenarios[1].fleet.is_uniform());
        assert_eq!(scenarios[1].fleet.battery_count(), 2);
        assert_eq!(scenarios[1].label(), "B1+B2 CL 500 round-robin discretized");
        let fleet_spec = scenarios[1].fleet.to_fleet_spec().unwrap();
        assert_eq!(fleet_spec.type_count(), 2);
        assert!((fleet_spec.total_capacity() - 16.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_fleet_def_matches_the_sugar() {
        let sugar = ScenarioSpec::paper_table5();
        let mut explicit = ScenarioSpec::paper_table5();
        explicit.batteries = vec![];
        explicit.battery_counts = vec![];
        explicit.fleets = vec![FleetDef::uniform(BatterySpec::b1(), 2)];
        let a = sugar.expand();
        let b = explicit.expand();
        assert_eq!(a, b, "the sugar and the explicit fleet expand identically");
    }

    #[test]
    fn documents_without_a_fleet_axis_still_parse() {
        // Pre-fleet JSON documents have no "fleets" key; the parse treats
        // that as an empty axis.
        let spec = ScenarioSpec::paper_table5();
        let json = spec.to_json().unwrap();
        assert!(json.contains("\"fleets\""));
        let legacy = json.replace("\"fleets\":[],", "");
        assert_ne!(legacy, json);
        let parsed = ScenarioSpec::from_json(&legacy).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let mut spec = ScenarioSpec::paper_table5();
        spec.batteries.push(BatterySpec::b2());
        spec.battery_counts.push(3);
        spec.fleets.push(FleetDef::mixed(vec![BatterySpec::b1(), BatterySpec::b2()]));
        spec.backends.push(BackendKind::Rv);
        spec.backends.push(BackendKind::Ideal);
        spec.discretizations.push(DiscSpec::coarse());
        spec.loads.push(LoadSpec::Custom {
            name: "burst".to_owned(),
            epochs: vec![(0.3, 0.5), (0.0, 1.5)],
            cyclic: true,
        });
        spec.loads.push(LoadSpec::random_paper_levels(42, 50));
        spec.policies.push(PolicyKind::CapacityRr);
        spec.policies.push(PolicyKind::Optimal { budget: 123_456 });
        let json = spec.to_json().unwrap();
        let back = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn capacity_rr_parses_builds_and_is_deterministic() {
        let json = ScenarioSpec::paper_table5().to_json().unwrap();
        let with_capacity = json.replace("\"round-robin\"", "\"capacity-rr\"");
        let spec = ScenarioSpec::from_json(&with_capacity).unwrap();
        assert!(spec.policies.contains(&PolicyKind::CapacityRr));
        assert_eq!(PolicyKind::CapacityRr.name(), "capacity-rr");
        let policy = PolicyKind::CapacityRr.build().expect("capacity-rr is a real policy");
        assert_eq!(policy.name(), "capacity-weighted round robin");
        assert_eq!(PolicyKind::deterministic().len(), 4);
        assert!(
            !PolicyKind::all().contains(&PolicyKind::CapacityRr),
            "Table 5 keeps the paper's three policies"
        );
    }

    #[test]
    fn optimal_policy_parses_from_plain_name_with_default_budget() {
        let json = ScenarioSpec::paper_table5().to_json().unwrap();
        let with_optimal = json.replace("\"round-robin\"", "\"optimal\"");
        let spec = ScenarioSpec::from_json(&with_optimal).unwrap();
        assert!(spec.policies.contains(&PolicyKind::optimal()));
        assert_eq!(PolicyKind::optimal().name(), "optimal");
        assert!(PolicyKind::optimal().build().is_none(), "optimal is a search, not a policy");
    }

    #[test]
    fn random_load_generates_deterministically() {
        let load = LoadSpec::random_paper_levels(7, 30);
        assert_eq!(load.name(), "rand-7");
        let a = load.profile().unwrap();
        let b = load.profile().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.jobs_per_pattern(), 30);
        assert!(!a.is_cyclic(), "random sweep loads are finite");
    }

    #[test]
    fn rv_backend_parses_by_name_and_is_not_a_kibam_backend() {
        let json = ScenarioSpec::paper_table5().to_json().unwrap();
        let with_rv = json.replace("\"discretized\"", "\"rv\"");
        let spec = ScenarioSpec::from_json(&with_rv).unwrap();
        assert!(spec.backends.contains(&BackendKind::Rv));
        assert_eq!(BackendKind::Rv.name(), "rv");
        assert!(BackendKind::all().contains(&BackendKind::Rv));
        assert!(
            !BackendKind::kibam().contains(&BackendKind::Rv),
            "the paper's Table 5 grid keeps the two KiBaM backends"
        );
    }

    #[test]
    fn unknown_names_are_rejected() {
        let json = ScenarioSpec::paper_table5().to_json().unwrap();
        let bad_policy = json.replace("round-robin", "lifo");
        assert!(matches!(ScenarioSpec::from_json(&bad_policy), Err(EngineError::InvalidSpec(_))));
        let bad_load = json.replace("CL 250", "CL 999");
        assert!(matches!(ScenarioSpec::from_json(&bad_load), Err(EngineError::InvalidSpec(_))));
    }

    #[test]
    fn custom_load_builds_a_profile() {
        let load = LoadSpec::Custom {
            name: "burst".to_owned(),
            epochs: vec![(0.3, 0.5), (0.0, 1.5)],
            cyclic: true,
        };
        let profile = load.profile().unwrap();
        assert!(profile.is_cyclic());
        assert_eq!(profile.pattern().len(), 2);
        assert_eq!(load.name(), "burst");
    }

    #[test]
    fn battery_spec_validates_parameters() {
        assert!(BatterySpec::b1().to_params().is_ok());
        let bad = BatterySpec { name: "bad".to_owned(), capacity: -1.0, c: 0.2, k_prime: 0.1 };
        assert!(bad.to_params().is_err());
    }
}
