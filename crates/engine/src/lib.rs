//! Declarative scenario grids over the battery-scheduling simulator.
//!
//! The seed repository regenerated every table of the paper with a bespoke
//! loop. This crate replaces those loops with a single declarative layer:
//!
//! 1. describe a **grid** with a [`ScenarioSpec`] — battery fleets (uniform
//!    `battery × count` sugar or heterogeneous `B1+B2` mixes) ×
//!    discretizations × loads × policies × backends;
//! 2. [`run_grid`] expands the grid and executes every cell **in parallel**
//!    on scoped worker threads, through the backend-agnostic
//!    [`battery_sched::model::BatteryModel`] simulation path;
//! 3. results (and the spec itself) **round-trip through JSON** via the
//!    built-in writer/parser in [`json`], so sweeps can be scripted,
//!    archived and diffed (`BENCH_scenarios.json` in the bench crate).
//!
//! # Example
//!
//! ```
//! use engine::{run_grid, BackendKind, BatterySpec, DiscSpec, FleetDef, LoadSpec,
//!              PolicyKind, ScenarioSpec};
//! use workload::paper_loads::TestLoad;
//!
//! # fn main() -> Result<(), engine::EngineError> {
//! let spec = ScenarioSpec {
//!     // `batteries × battery_counts` is sugar for uniform fleets; the
//!     // `fleets` axis adds heterogeneous systems like B1+B2.
//!     batteries: vec![BatterySpec::b1()],
//!     battery_counts: vec![2],
//!     fleets: vec![FleetDef::mixed(vec![BatterySpec::b1(), BatterySpec::b2()])],
//!     discretizations: vec![DiscSpec::paper()],
//!     loads: vec![LoadSpec::Paper(TestLoad::Cl500), LoadSpec::Paper(TestLoad::Ils500)],
//!     policies: vec![PolicyKind::RoundRobin, PolicyKind::BestOfTwo],
//!     backends: vec![BackendKind::Discretized],
//! };
//! let results = run_grid(&spec)?;
//! assert_eq!(results.len(), 8);
//! // Table 5: round robin on ILs 500 lives about 10.48 minutes on 2 x B1.
//! let rr = results
//!     .iter()
//!     .find(|r| r.scenario.load.name() == "ILs 500"
//!         && r.scenario.policy == PolicyKind::RoundRobin
//!         && r.scenario.fleet.name == "2xB1")
//!     .unwrap();
//! assert!((rr.lifetime_minutes.unwrap() - 10.48).abs() < 0.15);
//! // The mixed fleet (5.5 + 11 A·min) outlives the uniform pair.
//! let mixed = results
//!     .iter()
//!     .find(|r| r.scenario.load.name() == "ILs 500"
//!         && r.scenario.policy == PolicyKind::RoundRobin
//!         && r.scenario.fleet.name == "B1+B2")
//!     .unwrap();
//! assert!(mixed.lifetime_minutes.unwrap() > rr.lifetime_minutes.unwrap());
//! // The whole result set serializes to JSON.
//! let json = engine::results_to_json(&spec, &results)?;
//! assert!(json.contains("\"B1+B2\""));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod api;
mod batch;
pub mod json;
mod runner;
mod spec;

pub use api::{ErrorCode, GridRun, Request, RequestClass, Response, ServeError};
pub use runner::{
    results_from_json, results_to_json, run_grid, run_grid_streaming, run_grid_streaming_sharded,
    run_grid_with_threads, run_scenario, run_scenario_with_cache, ScenarioResult, SearchStats,
    SharedCacheStats, SharedSystemCache, StreamSummary, StreamingResultWriter, WorkerCache,
};
pub use spec::{
    BackendKind, BatterySpec, DiscSpec, FleetDef, LoadSpec, PolicyKind, Scenario, ScenarioSpec,
};

use std::fmt;

/// Errors produced by the scenario engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// A scenario failed inside the scheduling stack.
    Sched(battery_sched::SchedError),
    /// A battery specification failed validation.
    Kibam(kibam::KibamError),
    /// A load specification failed validation.
    Workload(workload::WorkloadError),
    /// A JSON document could not be parsed or rendered.
    Json(json::JsonError),
    /// A well-formed JSON document did not describe a valid grid.
    InvalidSpec(String),
    /// A streaming writer failed to write.
    Io(std::io::Error),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sched(e) => write!(f, "simulation error: {e}"),
            EngineError::Kibam(e) => write!(f, "battery spec error: {e}"),
            EngineError::Workload(e) => write!(f, "load spec error: {e}"),
            EngineError::Json(e) => write!(f, "{e}"),
            EngineError::InvalidSpec(message) => write!(f, "invalid scenario spec: {message}"),
            EngineError::Io(e) => write!(f, "stream write error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Sched(e) => Some(e),
            EngineError::Kibam(e) => Some(e),
            EngineError::Workload(e) => Some(e),
            EngineError::Json(e) => Some(e),
            EngineError::InvalidSpec(_) => None,
            EngineError::Io(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

impl From<battery_sched::SchedError> for EngineError {
    fn from(e: battery_sched::SchedError) -> Self {
        EngineError::Sched(e)
    }
}

impl From<kibam::KibamError> for EngineError {
    fn from(e: kibam::KibamError) -> Self {
        EngineError::Kibam(e)
    }
}

impl From<workload::WorkloadError> for EngineError {
    fn from(e: workload::WorkloadError) -> Self {
        EngineError::Workload(e)
    }
}

impl From<json::JsonError> for EngineError {
    fn from(e: json::JsonError) -> Self {
        EngineError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_sources() {
        let e: EngineError = battery_sched::SchedError::NoBatteries.into();
        assert!(e.to_string().contains("simulation error"));
        assert!(std::error::Error::source(&e).is_some());
        let e = EngineError::InvalidSpec("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
