//! The engine's first-class request API.
//!
//! Everything the engine can do is expressible as answering **requests**:
//! one [`Request`] is one grid cell (a fleet + discretization + load +
//! policy + backend), a grid is a batch of requests, and a long-running
//! service is an endless stream of them. This module is the single front
//! door over the runner:
//!
//! - [`GridRun`] is the options builder every `run_grid*` entry point
//!   delegates to — collected, streamed, sharded and shared-cache runs all
//!   route through one code path;
//! - [`Request`]/[`Response`] are the line-protocol units the `served`
//!   binary speaks: a request parses from one JSON object, and the response
//!   carries either the same result row the batch engine emits or a typed
//!   [`ServeError`];
//! - [`run_requests`] answers a batch of requests **independently** (one
//!   failing request does not poison its neighbors), micro-batching
//!   compatible requests into one struct-of-arrays kernel pass exactly like
//!   grid workers do.

use crate::json::JsonValue;
use crate::runner::{
    self, run_chunked, ScenarioResult, SharedSystemCache, StreamSummary, StreamingResultWriter,
    WorkerCache,
};
use crate::spec::{
    missing, BackendKind, BatterySpec, DiscSpec, FleetDef, LoadSpec, PolicyKind, Scenario,
    ScenarioSpec,
};
use crate::EngineError;
use std::io::Write;
use std::sync::Arc;
use workload::paper_loads::TestLoad;

/// An options builder for grid execution: the one path behind [`run_grid`],
/// [`run_grid_streaming`] and [`run_grid_streaming_sharded`].
///
/// [`run_grid`]: crate::run_grid
/// [`run_grid_streaming`]: crate::run_grid_streaming
/// [`run_grid_streaming_sharded`]: crate::run_grid_streaming_sharded
///
/// # Example
///
/// ```
/// use engine::{GridRun, ScenarioSpec};
///
/// # fn main() -> Result<(), engine::EngineError> {
/// let spec = ScenarioSpec::paper_table5();
/// let results = GridRun::new(&spec).threads(2).collect()?;
/// assert_eq!(results.len(), spec.scenario_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GridRun<'a> {
    spec: &'a ScenarioSpec,
    threads: Option<usize>,
    chunk: Option<usize>,
    shard: Option<(usize, usize)>,
    shared: Option<Arc<SharedSystemCache>>,
}

impl<'a> GridRun<'a> {
    /// Starts a run over `spec` with default options: one worker per
    /// available CPU, the default chunk size, no shard restriction and no
    /// shared cache.
    #[must_use]
    pub fn new(spec: &'a ScenarioSpec) -> Self {
        Self { spec, threads: None, chunk: None, shard: None, shared: None }
    }

    /// Sets the worker count (`1` runs inline on the calling thread).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the scenarios-per-chunk claim size. `0` asks for auto-sizing
    /// from the grid size and worker count.
    #[must_use]
    pub fn chunk(mut self, chunk_size: usize) -> Self {
        self.chunk = Some(chunk_size);
        self
    }

    /// Restricts the run to one shard of the expanded grid: the contiguous
    /// index range `[index·len/count, (index+1)·len/count)`, so `count`
    /// processes partition a grid with no coordination.
    #[must_use]
    pub fn shard(mut self, index: usize, count: usize) -> Self {
        self.shard = Some((index, count));
        self
    }

    /// Attaches a process-wide system cache: workers clone prototypes from
    /// it instead of rebuilding recovery/service/RV step tables, so repeated
    /// runs over the same systems build tables exactly once per process.
    #[must_use]
    pub fn shared_cache(mut self, cache: Arc<SharedSystemCache>) -> Self {
        self.shared = Some(cache);
        self
    }

    /// Expands the grid and slices the configured shard out of it.
    fn scenarios(&self) -> Result<(Vec<Scenario>, usize, usize), EngineError> {
        let scenarios = self.spec.expand();
        let (start, end) = match self.shard {
            Some((index, count)) => {
                if count == 0 || index >= count {
                    return Err(EngineError::InvalidSpec(format!(
                        "shard {index}/{count} is out of range"
                    )));
                }
                let len = scenarios.len() as u128;
                let at = |i: usize| usize::try_from(len * i as u128 / count as u128).unwrap_or(0);
                (at(index), at(index + 1))
            }
            None => (0, scenarios.len()),
        };
        Ok((scenarios, start, end))
    }

    fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(runner::default_threads)
    }

    fn effective_chunk(&self) -> usize {
        self.chunk.unwrap_or(runner::DEFAULT_CHUNK_SIZE)
    }

    /// Runs the grid and returns the results in grid order.
    ///
    /// # Errors
    ///
    /// Returns the first scenario error encountered (in grid order), or
    /// [`EngineError::InvalidSpec`] for an out-of-range shard.
    pub fn collect(self) -> Result<Vec<ScenarioResult>, EngineError> {
        let (scenarios, start, end) = self.scenarios()?;
        let scenarios = &scenarios[start..end];
        let mut results = Vec::with_capacity(scenarios.len());
        let outcome = run_chunked(
            scenarios,
            self.effective_threads(),
            self.effective_chunk(),
            self.shared.as_ref(),
            |result| {
                results.push(result);
                true
            },
        );
        match outcome.error {
            Some(error) => Err(error),
            None => Ok(results),
        }
    }

    /// Runs the grid and streams results to `out` in grid order as they
    /// complete, in the [`crate::results_to_json`] document format.
    ///
    /// # Errors
    ///
    /// Returns the first scenario error in grid order (the stream then
    /// holds a truncated, unterminated document), [`EngineError::Io`] if
    /// writing fails, or [`EngineError::InvalidSpec`] for an out-of-range
    /// shard.
    pub fn stream<W: Write>(self, out: W) -> Result<StreamSummary, EngineError> {
        let (scenarios, start, end) = self.scenarios()?;
        let scenarios = &scenarios[start..end];
        let mut writer = StreamingResultWriter::new(out, self.spec)?;
        let mut io_error: Option<EngineError> = None;
        let outcome = run_chunked(
            scenarios,
            self.effective_threads(),
            self.effective_chunk(),
            self.shared.as_ref(),
            |result| {
                match writer.push(&result) {
                    Ok(()) => true,
                    Err(error) => {
                        // Returning `false` poisons the grid, so a dead
                        // output stream aborts the sweep instead of running
                        // it out.
                        io_error = Some(error);
                        false
                    }
                }
            },
        );
        if let Some(error) = outcome.error {
            return Err(error);
        }
        if let Some(error) = io_error {
            return Err(error);
        }
        let written = writer.written();
        writer.finish()?;
        Ok(StreamSummary { written })
    }
}

/// The admission class of a request: which slice of the service's compute
/// budget it competes for. Interactive requests get small optimal-search
/// node budgets and fast answers; batch requests may carry deep searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RequestClass {
    /// Latency-sensitive traffic (the default class).
    #[default]
    Interactive,
    /// Throughput traffic that tolerates deep optimal searches.
    Batch,
}

impl RequestClass {
    /// The stable name used in the request protocol.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RequestClass::Interactive => "interactive",
            RequestClass::Batch => "batch",
        }
    }

    /// Parses a class name.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidSpec`] for unknown names.
    pub fn from_name(name: &str) -> Result<Self, EngineError> {
        match name {
            "interactive" => Ok(RequestClass::Interactive),
            "batch" => Ok(RequestClass::Batch),
            other => Err(EngineError::InvalidSpec(format!("unknown request class '{other}'"))),
        }
    }
}

/// The top-level request fields the protocol accepts; anything else is a
/// typo the parser rejects instead of silently ignoring.
const REQUEST_FIELDS: [&str; 9] =
    ["id", "class", "fleet", "battery", "count", "disc", "load", "policy", "backend"];

/// One scheduling request: ask "given this fleet, this load, this policy or
/// optimal budget — what lifetime, what schedule?". Exactly one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-chosen correlation id, echoed verbatim in the response (any
    /// JSON value; `null` when absent).
    pub id: JsonValue,
    /// The admission class (defaults to interactive).
    pub class: RequestClass,
    /// The scenario to run.
    pub scenario: Scenario,
}

impl Request {
    /// Wraps a scenario as an interactive request with a `null` id.
    #[must_use]
    pub fn of_scenario(scenario: Scenario) -> Self {
        Self { id: JsonValue::Null, class: RequestClass::Interactive, scenario }
    }

    /// Parses a request from one JSON text line.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Json`] (with a byte offset) for malformed
    /// JSON and [`EngineError::InvalidSpec`] for well-formed JSON that is
    /// not a request.
    pub fn from_line(text: &str) -> Result<Self, EngineError> {
        Self::from_json_value(&JsonValue::parse(text)?)
    }

    /// Parses a request from an already-parsed JSON document.
    ///
    /// The fleet is given either as a full `"fleet"` object (name +
    /// batteries) or with the `"battery"`/`"count"` sugar (`"B1"`, `"B2"`
    /// or a custom battery object). `"disc"` accepts the shorthand names
    /// `"paper"` and `"coarse"` and defaults to the paper grid; `"load"`
    /// accepts a paper-load name as a shorthand for the full load object;
    /// `"backend"` defaults to `"discretized"`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidSpec`] for unknown fields, missing
    /// fields or invalid values.
    pub fn from_json_value(value: &JsonValue) -> Result<Self, EngineError> {
        let JsonValue::Object(fields) = value else {
            return Err(EngineError::InvalidSpec("a request must be a JSON object".into()));
        };
        for (key, _) in fields {
            if !REQUEST_FIELDS.contains(&key.as_str()) {
                return Err(EngineError::InvalidSpec(format!("unknown request field '{key}'")));
            }
        }
        let id = value.get("id").cloned().unwrap_or(JsonValue::Null);
        let class = match value.get("class") {
            None => RequestClass::Interactive,
            Some(class) => {
                RequestClass::from_name(class.as_str().ok_or_else(|| missing("class"))?)?
            }
        };
        let fleet = Self::fleet_from_json(value)?;
        let disc = match value.get("disc") {
            None => DiscSpec::paper(),
            Some(disc) => match disc.as_str() {
                Some("paper") => DiscSpec::paper(),
                Some("coarse") => DiscSpec::coarse(),
                Some(other) => {
                    return Err(EngineError::InvalidSpec(format!(
                        "unknown discretization '{other}' (use \"paper\", \"coarse\" or an object)"
                    )))
                }
                None => DiscSpec::from_json(disc)?,
            },
        };
        let load = match value.get("load") {
            None => return Err(missing("load")),
            // A bare string is the paper-load shorthand: "ILs 500", ...
            Some(load) => match load.as_str() {
                Some(name) => LoadSpec::Paper(
                    TestLoad::all().into_iter().find(|l| l.name() == name).ok_or_else(|| {
                        EngineError::InvalidSpec(format!("unknown paper load '{name}'"))
                    })?,
                ),
                None => LoadSpec::from_json(load)?,
            },
        };
        let policy = PolicyKind::from_json(value.get("policy").ok_or_else(|| missing("policy"))?)?;
        let backend = match value.get("backend") {
            None => BackendKind::Discretized,
            Some(backend) => {
                BackendKind::from_name(backend.as_str().ok_or_else(|| missing("backend"))?)?
            }
        };
        Ok(Self { id, class, scenario: Scenario { fleet, disc, load, policy, backend } })
    }

    /// Parses the fleet half of a request: `"fleet"` object or
    /// `"battery"`/`"count"` sugar, but not both.
    fn fleet_from_json(value: &JsonValue) -> Result<FleetDef, EngineError> {
        match (value.get("fleet"), value.get("battery")) {
            (Some(_), Some(_)) => {
                Err(EngineError::InvalidSpec("give either 'fleet' or 'battery', not both".into()))
            }
            (Some(fleet), None) => {
                if value.get("count").is_some() {
                    return Err(EngineError::InvalidSpec(
                        "'count' only applies to the 'battery' shorthand".into(),
                    ));
                }
                FleetDef::from_json(fleet)
            }
            (None, Some(battery)) => {
                let battery = match battery.as_str() {
                    Some("B1") => BatterySpec::b1(),
                    Some("B2") => BatterySpec::b2(),
                    Some(other) => {
                        return Err(EngineError::InvalidSpec(format!(
                            "unknown battery '{other}' (use \"B1\", \"B2\" or an object)"
                        )))
                    }
                    None => BatterySpec::from_json(battery)?,
                };
                let count = match value.get("count") {
                    None => 1,
                    Some(count) => {
                        let count = count.as_u64().ok_or_else(|| missing("count"))?;
                        usize::try_from(count).unwrap_or(usize::MAX)
                    }
                };
                if count == 0 {
                    return Err(EngineError::InvalidSpec("'count' must be at least 1".into()));
                }
                Ok(FleetDef::uniform(battery, count))
            }
            (None, None) => {
                Err(EngineError::InvalidSpec("a request needs a 'fleet' or a 'battery'".into()))
            }
        }
    }

    /// The request in canonical JSON form (full fleet object, explicit
    /// class/disc/backend) — what [`Request::from_json_value`] parses back.
    #[must_use]
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("id", self.id.clone()),
            ("class", JsonValue::String(self.class.name().to_owned())),
            ("fleet", self.scenario.fleet.to_json()),
            ("disc", self.scenario.disc.to_json()),
            ("load", self.scenario.load.to_json()),
            ("policy", self.scenario.policy.to_json()),
            ("backend", JsonValue::String(self.scenario.backend.name().to_owned())),
        ])
    }
}

/// A machine-readable failure category of the request protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line is not valid JSON (the message carries the byte
    /// offset of the first error in the line).
    Parse,
    /// The request line exceeds the connection's line-length limit.
    Oversized,
    /// Well-formed JSON that is not a valid request, or a scenario that
    /// fails validation (bad battery parameters, unknown load, ...).
    BadRequest,
    /// The request asked for more search budget than its class admits.
    Admission,
    /// The server's request queue is full (or shutting down); retry later.
    Overloaded,
    /// An optimal search ran out of its node budget before proving
    /// optimality.
    Budget,
    /// An internal failure (e.g. an I/O error inside the engine).
    Internal,
}

impl ErrorCode {
    /// The stable name used in error responses.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Oversized => "oversized",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Admission => "admission",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Budget => "budget",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A typed protocol error: the code, a human-readable message and — for
/// parse errors — the byte offset of the failure within the request line.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeError {
    /// The failure category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// Byte offset of the failure within the request line, for
    /// [`ErrorCode::Parse`] errors.
    pub offset: Option<usize>,
}

impl ServeError {
    /// Builds a protocol error with no byte offset.
    #[must_use]
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self { code, message: message.into(), offset: None }
    }

    /// Classifies an engine error into a protocol error, keeping the byte
    /// offset of JSON parse errors.
    #[must_use]
    pub fn from_engine(error: &EngineError) -> Self {
        match error {
            EngineError::Json(e) => {
                Self { code: ErrorCode::Parse, message: error.to_string(), offset: Some(e.offset) }
            }
            EngineError::Sched(battery_sched::SchedError::SearchBudgetExceeded { .. }) => {
                Self::new(ErrorCode::Budget, error.to_string())
            }
            EngineError::InvalidSpec(_)
            | EngineError::Kibam(_)
            | EngineError::Workload(_)
            | EngineError::Sched(_) => Self::new(ErrorCode::BadRequest, error.to_string()),
            EngineError::Io(_) => Self::new(ErrorCode::Internal, error.to_string()),
        }
    }
}

/// The answer to one [`Request`]: the same result row the batch engine
/// emits, or a typed error — plus the service-side latency once the server
/// stamps it.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's id, echoed verbatim.
    pub id: JsonValue,
    /// The result row, or the error that replaced it.
    pub outcome: Result<ScenarioResult, ServeError>,
    /// Queue-to-answer latency in microseconds, stamped by the server
    /// (measurement-only; `None` outside a serving context).
    pub latency_micros: Option<u64>,
}

impl Response {
    /// A successful response.
    #[must_use]
    pub fn ok(id: JsonValue, result: ScenarioResult) -> Self {
        Self { id, outcome: Ok(result), latency_micros: None }
    }

    /// An error response.
    #[must_use]
    pub fn failure(id: JsonValue, error: ServeError) -> Self {
        Self { id, outcome: Err(error), latency_micros: None }
    }

    /// Whether the response carries a result row.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// The response as a JSON document model:
    /// `{"id":…,"status":"ok","result":{…}}` or
    /// `{"id":…,"status":"error","code":…,"message":…[,"offset":…]}`,
    /// plus `latency_micros` when stamped.
    #[must_use]
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![("id", self.id.clone())];
        match &self.outcome {
            Ok(result) => {
                fields.push(("status", JsonValue::String("ok".to_owned())));
                fields.push(("result", result.to_json_value()));
            }
            Err(error) => {
                fields.push(("status", JsonValue::String("error".to_owned())));
                fields.push(("code", JsonValue::String(error.code.name().to_owned())));
                fields.push(("message", JsonValue::String(error.message.clone())));
                #[allow(clippy::cast_precision_loss)]
                if let Some(offset) = error.offset {
                    fields.push(("offset", JsonValue::Number(offset as f64)));
                }
            }
        }
        #[allow(clippy::cast_precision_loss)]
        if let Some(micros) = self.latency_micros {
            fields.push(("latency_micros", JsonValue::Number(micros as f64)));
        }
        JsonValue::object(fields)
    }
}

/// Answers a batch of requests against a worker cache, each request
/// **independently** — a failing request yields an error response instead
/// of poisoning the batch. Compatible requests (same system key and
/// backend, deterministic policy) are grouped into one struct-of-arrays
/// kernel pass, exactly like grid workers batch their chunks; this is the
/// micro-batching a serving loop gets for free by draining its queue into
/// one call.
#[must_use]
pub fn run_requests(requests: &[Request], cache: &mut WorkerCache) -> Vec<Response> {
    let scenarios: Vec<Scenario> = requests.iter().map(|r| r.scenario.clone()).collect();
    runner::run_cells(&scenarios, cache)
        .into_iter()
        .zip(requests)
        .map(|(outcome, request)| match outcome {
            Ok(result) => Response::ok(request.id.clone(), result),
            Err(error) => Response::failure(request.id.clone(), ServeError::from_engine(&error)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_grid_with_threads, run_scenario};

    fn request_line(load: &str, policy: &str) -> String {
        format!(
            "{{\"id\":1,\"battery\":\"B1\",\"count\":2,\"load\":\"{load}\",\
             \"policy\":\"{policy}\"}}"
        )
    }

    #[test]
    fn request_parses_with_sugar_and_defaults() {
        let request = Request::from_line(&request_line("ILs 500", "round-robin")).unwrap();
        assert_eq!(request.id, JsonValue::Number(1.0));
        assert_eq!(request.class, RequestClass::Interactive);
        assert_eq!(request.scenario.fleet.name, "2xB1");
        assert_eq!(request.scenario.disc, DiscSpec::paper());
        assert_eq!(request.scenario.load.name(), "ILs 500");
        assert_eq!(request.scenario.policy, PolicyKind::RoundRobin);
        assert_eq!(request.scenario.backend, BackendKind::Discretized);
    }

    #[test]
    fn request_round_trips_through_canonical_json() {
        let line = "{\"id\":\"r-1\",\"class\":\"batch\",\"battery\":\"B2\",\"count\":3,\
                    \"disc\":\"coarse\",\"load\":\"CL 250\",\
                    \"policy\":{\"kind\":\"optimal\",\"budget\":5000},\"backend\":\"rv\"}";
        let request = Request::from_line(line).unwrap();
        assert_eq!(request.class, RequestClass::Batch);
        assert_eq!(request.scenario.policy, PolicyKind::Optimal { budget: 5000 });
        assert_eq!(request.scenario.backend, BackendKind::Rv);
        let canonical = request.to_json_value();
        let back = Request::from_json_value(&canonical).unwrap();
        assert_eq!(back, request);
    }

    #[test]
    fn request_rejects_unknown_fields_and_bad_shapes() {
        let unknown = "{\"battery\":\"B1\",\"load\":\"CL 500\",\"policy\":\"sequential\",\
                       \"budgett\":3}";
        let error = Request::from_line(unknown).unwrap_err();
        assert!(error.to_string().contains("budgett"), "{error}");

        let both = "{\"battery\":\"B1\",\"fleet\":{\"name\":\"x\",\"batteries\":[]},\
                    \"load\":\"CL 500\",\"policy\":\"sequential\"}";
        assert!(Request::from_line(both).is_err());

        let no_fleet = "{\"load\":\"CL 500\",\"policy\":\"sequential\"}";
        let error = Request::from_line(no_fleet).unwrap_err();
        assert!(error.to_string().contains("fleet"), "{error}");

        let zero_count =
            "{\"battery\":\"B1\",\"count\":0,\"load\":\"CL 500\",\"policy\":\"sequential\"}";
        assert!(Request::from_line(zero_count).is_err());

        let not_object = "[1,2,3]";
        assert!(Request::from_line(not_object).is_err());

        let bad_class = "{\"class\":\"vip\",\"battery\":\"B1\",\"load\":\"CL 500\",\
                         \"policy\":\"sequential\"}";
        assert!(Request::from_line(bad_class).is_err());
    }

    #[test]
    fn parse_errors_carry_byte_offsets() {
        let error = Request::from_line("{\"battery\":}").unwrap_err();
        let serve = ServeError::from_engine(&error);
        assert_eq!(serve.code, ErrorCode::Parse);
        assert_eq!(serve.offset, Some(11));
    }

    #[test]
    fn run_requests_answers_each_request_independently() {
        let good = Request::from_line(&request_line("ILs 500", "round-robin")).unwrap();
        let bad = Request {
            id: JsonValue::String("bad".to_owned()),
            class: RequestClass::Interactive,
            scenario: Scenario {
                fleet: FleetDef::uniform(
                    BatterySpec { name: "bad".into(), capacity: -5.0, c: 0.2, k_prime: 0.1 },
                    2,
                ),
                disc: DiscSpec::paper(),
                load: LoadSpec::Paper(TestLoad::Cl500),
                policy: PolicyKind::RoundRobin,
                backend: BackendKind::Discretized,
            },
        };
        let good2 = Request::from_line(&request_line("CL 500", "best-of-two")).unwrap();
        let mut cache = WorkerCache::new();
        let responses = run_requests(&[good.clone(), bad, good2.clone()], &mut cache);
        assert_eq!(responses.len(), 3);
        assert!(responses[0].is_ok(), "a bad sibling must not poison request 0");
        assert!(responses[2].is_ok(), "a bad sibling must not poison request 2");
        let error = responses[1].outcome.as_ref().unwrap_err();
        assert_eq!(error.code, ErrorCode::BadRequest);

        // Bit-identical to the one-off scalar path.
        let reference = run_scenario(&good.scenario).unwrap();
        let served = responses[0].outcome.as_ref().unwrap();
        assert_eq!(served.lifetime_minutes, reference.lifetime_minutes);
        assert_eq!(served.residual_charge.to_bits(), reference.residual_charge.to_bits());
        assert_eq!(served.switches, reference.switches);
    }

    #[test]
    fn budget_exhaustion_is_a_typed_budget_error() {
        let line = "{\"battery\":\"B1\",\"count\":2,\"disc\":\"coarse\",\"load\":\"ILs alt\",\
                    \"policy\":{\"kind\":\"optimal\",\"budget\":1}}";
        let request = Request::from_line(line).unwrap();
        let mut cache = WorkerCache::new();
        let responses = run_requests(&[request], &mut cache);
        let error = responses[0].outcome.as_ref().unwrap_err();
        assert_eq!(error.code, ErrorCode::Budget);
    }

    #[test]
    fn response_json_carries_result_or_typed_error() {
        let request = Request::from_line(&request_line("ILs 500", "round-robin")).unwrap();
        let mut cache = WorkerCache::new();
        let mut responses = run_requests(&[request], &mut cache);
        let mut response = responses.remove(0);
        response.latency_micros = Some(42);
        let json = response.to_json_value().render().unwrap();
        assert!(json.contains("\"status\":\"ok\""));
        assert!(json.contains("\"lifetime_minutes\""));
        assert!(json.contains("\"latency_micros\":42"));

        let error = Response::failure(
            JsonValue::Number(7.0),
            ServeError { code: ErrorCode::Parse, message: "bad".into(), offset: Some(3) },
        );
        let json = error.to_json_value().render().unwrap();
        assert!(json.contains("\"status\":\"error\""));
        assert!(json.contains("\"code\":\"parse\""));
        assert!(json.contains("\"offset\":3"));
    }

    #[test]
    fn shared_cache_builds_each_system_once_across_workers() {
        let request = Request::from_line(&request_line("ILs 500", "round-robin")).unwrap();
        let shared = Arc::new(SharedSystemCache::new());
        let mut first = WorkerCache::with_shared(Arc::clone(&shared));
        let mut second = WorkerCache::with_shared(Arc::clone(&shared));
        let a = run_requests(std::slice::from_ref(&request), &mut first);
        let b = run_requests(std::slice::from_ref(&request), &mut second);
        let stats = shared.stats();
        assert_eq!(stats.builds, 1, "tables are built once per process, not once per worker");
        assert_eq!(stats.hits, 1, "the second worker's miss is a shared hit");
        assert_eq!(stats.systems, 1);
        let (a, b) = (a[0].outcome.as_ref().unwrap(), b[0].outcome.as_ref().unwrap());
        assert_eq!(a.lifetime_minutes, b.lifetime_minutes);
        assert_eq!(a.residual_charge.to_bits(), b.residual_charge.to_bits());
    }

    #[test]
    fn grid_run_with_shared_cache_matches_plain_grid() {
        let spec = ScenarioSpec::paper_table5();
        let plain = run_grid_with_threads(&spec, 2).unwrap();
        let shared = Arc::new(SharedSystemCache::new());
        let cached =
            GridRun::new(&spec).threads(2).shared_cache(Arc::clone(&shared)).collect().unwrap();
        assert_eq!(plain.len(), cached.len());
        for (a, b) in plain.iter().zip(&cached) {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.lifetime_minutes, b.lifetime_minutes);
            assert_eq!(a.residual_charge.to_bits(), b.residual_charge.to_bits());
        }
        let stats = shared.stats();
        assert_eq!(stats.builds, 1, "one system in the paper grid");
        // A second run over the same spec reuses the cached prototype.
        let again =
            GridRun::new(&spec).threads(2).shared_cache(Arc::clone(&shared)).collect().unwrap();
        assert_eq!(again.len(), plain.len());
        assert_eq!(shared.stats().builds, 1);
        assert!(shared.stats().hits > stats.hits);
    }
}
