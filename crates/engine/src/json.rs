//! A minimal JSON document model with a writer and a recursive-descent
//! parser.
//!
//! The build environment is fully offline, so the engine cannot depend on
//! `serde`/`serde_json`; this module implements the small subset the
//! scenario engine needs (objects, arrays, strings, finite numbers, bools,
//! null) with enough fidelity that scenario grids and result sets round-trip
//! losslessly. Object keys keep their insertion order.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. JSON has no NaN/infinity; the writer rejects them.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, with keys in insertion order.
    Object(Vec<(String, JsonValue)>),
}

/// Error produced when parsing or rendering JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset in the input at which the problem was detected (0 for
    /// render errors).
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Convenience constructor for an object.
    #[must_use]
    pub fn object(fields: Vec<(&str, JsonValue)>) -> Self {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n)
                // xlint: allow(float-eq) -- fract() == 0.0 is the exact integrality test
                if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 =>
            {
                Some(dkibam::checked::f64_to_u64(*n))
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] if the value contains a non-finite number.
    pub fn render(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.render_into(&mut out)?;
        Ok(out)
    }

    fn render_into(&self, out: &mut String) -> Result<(), JsonError> {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(n) => {
                if !n.is_finite() {
                    return Err(JsonError {
                        message: format!("cannot render non-finite number {n}"),
                        offset: 0,
                    });
                }
                // `{:?}` prints enough digits that the value round-trips.
                out.push_str(&format!("{n:?}"));
            }
            JsonValue::String(s) => render_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out)?;
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }

    /// Parses a JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError { message: message.to_owned(), offset: self.pos }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{keyword}'")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number bytes"))?;
        let number: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
        // JSON has no NaN/infinity; an overflowing literal like `1e999`
        // would otherwise smuggle one in and poison downstream comparisons.
        if !number.is_finite() {
            return Err(JsonError {
                message: format!("number '{text}' overflows the finite f64 range"),
                offset: start,
            });
        }
        Ok(JsonValue::Number(number))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = self.parse_unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // the bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.error("empty input"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\u` escape (the `\u` prefix has been
    /// consumed up to the `u`). Handles surrogate pairs.
    fn parse_unicode_escape(&mut self) -> Result<char, JsonError> {
        self.pos += 1; // consume 'u'
        let high = self.parse_hex4()?;
        if (0xD800..0xDC00).contains(&high) {
            // High surrogate: a low surrogate must follow.
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                self.pos += 2;
                let low = self.parse_hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(code).ok_or_else(|| self.error("invalid code point"));
                }
            }
            return Err(self.error("unpaired surrogate"));
        }
        char::from_u32(high).ok_or_else(|| self.error("invalid code point"))
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key_offset = self.pos;
            let key = self.parse_string()?;
            if fields.iter().any(|(existing, _)| *existing == key) {
                return Err(JsonError {
                    message: format!("duplicate object key \"{key}\""),
                    offset: key_offset,
                });
            }
            self.skip_whitespace();
            self.expect_byte(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_scalars() {
        for (value, text) in [
            (JsonValue::Null, "null"),
            (JsonValue::Bool(true), "true"),
            (JsonValue::Bool(false), "false"),
            (JsonValue::Number(2.5), "2.5"),
        ] {
            assert_eq!(value.render().unwrap(), text);
            assert_eq!(JsonValue::parse(text).unwrap(), value);
        }
    }

    #[test]
    fn round_trips_nested_structures() {
        let value = JsonValue::object(vec![
            ("name", JsonValue::String("CL 500".to_owned())),
            ("lifetime", JsonValue::Number(2.02)),
            ("empty", JsonValue::Null),
            ("loads", JsonValue::Array(vec![JsonValue::Number(0.25), JsonValue::Number(0.5)])),
            ("nested", JsonValue::object(vec![("ok", JsonValue::Bool(true))])),
        ]);
        let text = value.render().unwrap();
        assert_eq!(JsonValue::parse(&text).unwrap(), value);
    }

    #[test]
    fn round_trips_floats_exactly() {
        for number in [0.0, -1.5, 0.1, 1.0 / 3.0, 1e-12, 123_456_789.123_456_78] {
            let text = JsonValue::Number(number).render().unwrap();
            let parsed = JsonValue::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), number.to_bits(), "{number} via {text}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let tricky = "line\nbreak \"quoted\" back\\slash tab\t unicode \u{1F600} control\u{1}";
        let value = JsonValue::String(tricky.to_owned());
        let text = value.render().unwrap();
        assert_eq!(JsonValue::parse(&text).unwrap(), value);
        // Also parse escaped unicode incl. a surrogate pair.
        let parsed = JsonValue::parse("\"\\ud83d\\ude00 \\u0041\"").unwrap();
        assert_eq!(parsed.as_str().unwrap(), "\u{1F600} A");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated", "[1] extra"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_non_finite_numbers_when_rendering() {
        assert!(JsonValue::Number(f64::NAN).render().is_err());
        assert!(JsonValue::Number(f64::INFINITY).render().is_err());
    }

    #[test]
    fn accessors() {
        let value = JsonValue::object(vec![
            ("n", JsonValue::Number(3.0)),
            ("s", JsonValue::String("x".to_owned())),
            ("b", JsonValue::Bool(true)),
            ("a", JsonValue::Array(vec![])),
        ]);
        assert_eq!(value.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(value.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(value.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 0);
        assert!(value.get("missing").is_none());
        assert_eq!(JsonValue::Number(2.5).as_u64(), None);
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
    }
}
