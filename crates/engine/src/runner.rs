//! Executes expanded scenario grids, in parallel, with streaming output.
//!
//! The runner distributes scenarios over a fixed pool of scoped worker
//! threads in **contiguous chunks**: workers claim a chunk of grid indices
//! from an atomic cursor, run it against per-worker cached system
//! configurations (battery tables are built once per worker, not once per
//! cell) and send the finished chunk back to the coordinating thread, which
//! re-assembles grid order incrementally. A grid error poisons the cursor so
//! workers stop claiming new chunks, and the first error **in grid order**
//! is reported.
//!
//! Results can be collected ([`run_grid`]) or **streamed** as JSON while the
//! grid is still running ([`run_grid_streaming`]): each result is written as
//! one line the moment its grid-order turn arrives, so a 10⁵-cell sweep
//! never materializes all results in memory. The streamed document is the
//! same format [`results_to_json`] produces (modulo insignificant
//! whitespace), so [`results_from_json`] parses both.

use crate::batch::{BatchDiscreteView, BatchRvView};
use crate::json::JsonValue;
use crate::spec::{BackendKind, PolicyKind, Scenario, ScenarioSpec};
use crate::EngineError;
use battery_sched::optimal::{OptimalOutcome, OptimalScheduler, RootBounds};
use battery_sched::policy::FixedSchedule;
use battery_sched::system::{simulate_policy_with, SystemConfig, SystemOutcome};
use battery_sched::BatteryModel;
use kibam::BatteryParams;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, PoisonError, RwLock};
use std::time::Instant;

/// Scenarios per work chunk. Large enough to amortize the claim, the
/// per-chunk channel send and the batch-kernel packing, small enough to keep
/// workers balanced and the streaming reorder window shallow.
pub(crate) const DEFAULT_CHUNK_SIZE: usize = 16;

/// Scenarios per chunk when the caller asks for auto-sizing (`chunk_size`
/// `Some(0)`, the scenarios CLI's `--chunk 0`). The heuristic targets about
/// four chunks per worker so the atomic cursor can re-balance stragglers,
/// clamped to `1..=DEFAULT_CHUNK_SIZE` — small grids shrink to one scenario
/// per claim (maximum balance), huge grids stop at the default so the
/// streaming reorder window and the per-chunk batch stay shallow.
pub(crate) fn auto_chunk_size(grid: usize, workers: usize) -> usize {
    grid.div_ceil(workers.max(1) * 4).clamp(1, DEFAULT_CHUNK_SIZE)
}

/// Search statistics of an optimal-schedule scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Decision nodes explored by the branch-and-bound search.
    pub nodes_explored: u64,
    /// Nodes pruned by the transposition table.
    pub memo_hits: u64,
    /// Nodes pruned by state dominance.
    pub dominance_prunes: u64,
    /// Nodes cut by the usable-charge upper bound.
    pub charge_bound_prunes: u64,
    /// Nodes cut by the availability-aware (recovery-coupled) upper bound.
    pub availability_bound_prunes: u64,
    /// Nodes cut by the min-cost-flow relaxation bound over exact
    /// per-battery service columns.
    pub relax_bound_prunes: u64,
}

/// The measured outcome of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// System lifetime in minutes, or `None` if the load ended before the
    /// batteries died (finite loads only; the optimal policy reports the
    /// full load duration in that case, because the search proves the
    /// system survives the whole load).
    pub lifetime_minutes: Option<f64>,
    /// Charge left in the batteries when the run stopped, in A·min.
    pub residual_charge: f64,
    /// Number of battery switches in the executed schedule.
    pub switches: u64,
    /// Number of scheduling decisions taken.
    pub decisions: u64,
    /// Wall-clock time of the simulation in microseconds.
    pub wall_micros: u64,
    /// Branch-and-bound statistics, for [`PolicyKind::Optimal`] scenarios.
    pub search: Option<SearchStats>,
    /// The deterministic policy that seeded the search's warm-start
    /// incumbent, for [`PolicyKind::Optimal`] scenarios.
    pub seeded_by: Option<String>,
    /// The search's upper bounds evaluated at the root position, for
    /// [`PolicyKind::Optimal`] scenarios (the per-bound tightness record
    /// the bench artifacts archive).
    pub root_bounds: Option<RootBounds>,
    /// Wall-clock cost of constructing and evaluating the root bounds in
    /// microseconds, for [`PolicyKind::Optimal`] scenarios. Measurement
    /// noise like `wall_micros`: excluded from artifact comparison.
    pub bound_micros: Option<u64>,
}

impl ScenarioResult {
    /// The result as a JSON document model (scenario descriptor inlined, so
    /// a result set is self-describing). Uniform fleets keep the classic
    /// `battery`/`battery_count` fields; every row also carries the fleet
    /// name (`"2xB1"`, `"B1+B2"`, ...).
    #[must_use]
    pub fn to_json_value(&self) -> JsonValue {
        let battery_label = if self.scenario.fleet.is_uniform() {
            self.scenario.fleet.batteries[0].name.clone()
        } else {
            self.scenario.fleet.name.clone()
        };
        #[allow(clippy::cast_precision_loss)]
        let mut fields = vec![
            ("fleet", JsonValue::String(self.scenario.fleet.name.clone())),
            ("battery", JsonValue::String(battery_label)),
            ("battery_count", JsonValue::Number(self.scenario.fleet.battery_count() as f64)),
            ("time_step", JsonValue::Number(self.scenario.disc.time_step)),
            ("charge_unit", JsonValue::Number(self.scenario.disc.charge_unit)),
            ("load", JsonValue::String(self.scenario.load.name())),
            ("policy", JsonValue::String(self.scenario.policy.name().to_owned())),
            ("backend", JsonValue::String(self.scenario.backend.name().to_owned())),
            ("lifetime_minutes", self.lifetime_minutes.map_or(JsonValue::Null, JsonValue::Number)),
            ("residual_charge", JsonValue::Number(self.residual_charge)),
            ("switches", JsonValue::Number(self.switches as f64)),
            ("decisions", JsonValue::Number(self.decisions as f64)),
            ("wall_micros", JsonValue::Number(self.wall_micros as f64)),
        ];
        if let Some(stats) = self.search {
            #[allow(clippy::cast_precision_loss)]
            fields.extend([
                ("nodes_explored", JsonValue::Number(stats.nodes_explored as f64)),
                ("memo_hits", JsonValue::Number(stats.memo_hits as f64)),
                ("dominance_prunes", JsonValue::Number(stats.dominance_prunes as f64)),
                ("charge_bound_prunes", JsonValue::Number(stats.charge_bound_prunes as f64)),
                (
                    "availability_bound_prunes",
                    JsonValue::Number(stats.availability_bound_prunes as f64),
                ),
                ("relax_bound_prunes", JsonValue::Number(stats.relax_bound_prunes as f64)),
            ]);
        }
        if let Some(seeded_by) = &self.seeded_by {
            fields.push(("seeded_by", JsonValue::String(seeded_by.clone())));
        }
        if let Some(bounds) = self.root_bounds {
            fields.push(("root_bounds", root_bounds_to_json(bounds)));
        }
        #[allow(clippy::cast_precision_loss)]
        if let Some(micros) = self.bound_micros {
            fields.push(("bound_micros", JsonValue::Number(micros as f64)));
        }
        JsonValue::object(fields)
    }
}

/// Renders [`RootBounds`] as a JSON object. A bound of `u64::MAX` means
/// "the backend cannot evaluate this bound" (e.g. the relaxation needs
/// service columns only the discretized backend provides) and is rendered
/// as `null`, not as a number.
fn root_bounds_to_json(bounds: RootBounds) -> JsonValue {
    #[allow(clippy::cast_precision_loss)]
    let steps = |value: u64| {
        if value == u64::MAX {
            JsonValue::Null
        } else {
            JsonValue::Number(value as f64)
        }
    };
    JsonValue::object(vec![
        ("charge", steps(bounds.charge)),
        ("availability", steps(bounds.availability)),
        ("relaxation", steps(bounds.relaxation)),
        ("warm_start", steps(bounds.warm_start)),
    ])
}

/// Renders a full result set (spec + per-scenario results) as a JSON
/// document. This is the format of `BENCH_scenarios.json`.
///
/// # Errors
///
/// Returns [`EngineError::Json`] if a number is non-finite.
pub fn results_to_json(
    spec: &ScenarioSpec,
    results: &[ScenarioResult],
) -> Result<String, EngineError> {
    let document = JsonValue::object(vec![
        ("spec", spec.to_json_value()),
        ("results", JsonValue::Array(results.iter().map(ScenarioResult::to_json_value).collect())),
    ]);
    Ok(document.render()?)
}

/// Parses the `results` half of a document produced by [`results_to_json`]
/// or [`run_grid_streaming`] back into summary rows. Scenario descriptors in
/// results are denormalized (name strings), so the parse returns the raw
/// JSON objects for callers that want specific fields.
///
/// # Errors
///
/// Returns [`EngineError::Json`] / [`EngineError::InvalidSpec`] on
/// malformed documents.
pub fn results_from_json(text: &str) -> Result<(ScenarioSpec, Vec<JsonValue>), EngineError> {
    let document = JsonValue::parse(text)?;
    let spec = ScenarioSpec::from_json_value(
        document.get("spec").ok_or_else(|| EngineError::InvalidSpec("missing 'spec'".into()))?,
    )?;
    let results = document
        .get("results")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| EngineError::InvalidSpec("missing 'results'".into()))?
        .to_vec();
    Ok((spec, results))
}

/// Key of a cached system configuration: the per-battery parameters of the
/// fleet plus the discretization, all by exact bit pattern (hence `Ord`:
/// the cache is a `BTreeMap`, so worker behavior is order-deterministic).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct SystemKey {
    batteries: Vec<(u64, u64, u64)>,
    time_step: u64,
    charge_unit: u64,
}

impl SystemKey {
    pub(crate) fn of(scenario: &Scenario) -> Self {
        Self {
            batteries: scenario
                .fleet
                .batteries
                .iter()
                .map(|b| (b.capacity.to_bits(), b.c.to_bits(), b.k_prime.to_bits()))
                .collect(),
            time_step: scenario.disc.time_step.to_bits(),
            charge_unit: scenario.disc.charge_unit.to_bits(),
        }
    }
}

/// A validated system configuration with ready-built backends. The
/// discretized backend owns the recovery table, which is the expensive part
/// (`O(N)` log evaluations); grids that sweep loads or policies against one
/// battery setup reuse it across every cell a worker claims. Cloning copies
/// the tables but never recomputes them, which is what lets the shared cache
/// hand out working copies of a prototype built exactly once.
#[derive(Debug, Clone)]
struct CachedSystem {
    config: SystemConfig,
    discretized: battery_sched::backends::DiscretizedKibam,
    continuous: battery_sched::backends::ContinuousKibam,
    rv: battery_sched::backends::RvDiffusion,
    ideal: battery_sched::backends::IdealBattery,
}

/// Builds a fresh validated system (parameters, discretization and all four
/// backends, including the expensive recovery/service/RV step tables).
fn build_system(scenario: &Scenario) -> Result<CachedSystem, EngineError> {
    let fleet = scenario.fleet.to_fleet_spec()?;
    let disc = scenario.disc.to_discretization()?;
    let config = SystemConfig::from_fleet(fleet, disc);
    let discretized = config.discretized_model();
    let continuous = config.continuous_model();
    let rv = config.rv_model();
    let ideal = config.ideal_model();
    Ok(CachedSystem { config, discretized, continuous, rv, ideal })
}

/// Lock shards of the process-wide cache. Eight shards keep write contention
/// on distinct systems negligible for any realistic worker count while the
/// per-shard map stays a deterministic `BTreeMap`.
const CACHE_SHARDS: usize = 8;

/// Point-in-time counters of a [`SharedSystemCache`], for service telemetry
/// (`BENCH_serve.json` exposes them so a repeated request provably reuses
/// the tables built by the first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Distinct systems currently cached.
    pub systems: usize,
    /// Lookups answered from the cache (tables *not* rebuilt).
    pub hits: u64,
    /// Lookups that had to build the tables (at most one per distinct
    /// system, ever).
    pub builds: u64,
}

/// A process-wide concurrent cache of validated systems, sharded by the
/// fleet/discretization bit-pattern key.
///
/// Per-worker [`WorkerCache`]s attached via [`WorkerCache::with_shared`]
/// consult it before building tables, so recovery tables, service-rate
/// tables and RV step tables are computed **once per `(fleet,
/// discretization)` across all requests ever**, no matter how many workers
/// or connections ask. Readers share an `RwLock` per shard; a miss builds
/// under the shard's write lock, which is what guarantees the once-ever
/// property the hit/build counters advertise.
#[derive(Debug, Default)]
pub struct SharedSystemCache {
    shards: Vec<RwLock<BTreeMap<SystemKey, Arc<CachedSystem>>>>,
    hits: AtomicU64,
    builds: AtomicU64,
}

impl SharedSystemCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: (0..CACHE_SHARDS).map(|_| RwLock::new(BTreeMap::new())).collect(),
            hits: AtomicU64::new(0),
            builds: AtomicU64::new(0),
        }
    }

    /// The shard a key lives in: a deterministic fold of the key's bit
    /// patterns (no hasher involved, so the mapping is stable across runs).
    fn shard_of(key: &SystemKey) -> usize {
        let mut acc = key.time_step ^ key.charge_unit.rotate_left(17);
        for &(capacity, c, k_prime) in &key.batteries {
            acc = acc.rotate_left(7) ^ capacity ^ c.rotate_left(23) ^ k_prime.rotate_left(41);
        }
        usize::try_from(acc % CACHE_SHARDS as u64).unwrap_or(0)
    }

    /// Returns the cached prototype for `key`, building it (once, under the
    /// shard write lock) on the first request.
    fn get_or_build(
        &self,
        key: &SystemKey,
        scenario: &Scenario,
    ) -> Result<Arc<CachedSystem>, EngineError> {
        let shard = &self.shards[Self::shard_of(key)];
        {
            let guard = shard.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(system) = guard.get(key) {
                // ordering: Relaxed — statistics counter, not a synchronization edge.
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(system));
            }
        }
        let mut guard = shard.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(system) = guard.get(key) {
            // Another worker built it between our read and write locks.
            // ordering: Relaxed — statistics counter, not a synchronization edge.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(system));
        }
        let system = Arc::new(build_system(scenario)?);
        // ordering: Relaxed — statistics counter, not a synchronization edge.
        self.builds.fetch_add(1, Ordering::Relaxed);
        guard.insert(key.clone(), Arc::clone(&system));
        Ok(system)
    }

    /// Current hit/build counters and the number of cached systems.
    #[must_use]
    pub fn stats(&self) -> SharedCacheStats {
        let systems = self
            .shards
            .iter()
            .map(|shard| shard.read().unwrap_or_else(PoisonError::into_inner).len())
            .sum();
        SharedCacheStats {
            systems,
            // ordering: Relaxed — statistics counter, not a synchronization edge.
            hits: self.hits.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics counter, not a synchronization edge.
            builds: self.builds.load(Ordering::Relaxed),
        }
    }
}

/// Per-worker cache of validated system configurations.
///
/// [`run_scenario`] rebuilds battery parameters, discretization and —
/// costliest — the recovery table for every cell; workers hold one of these
/// so large grids that vary only load/policy/backend pay table construction
/// once per worker instead of once per cell. A worker cache attached to a
/// [`SharedSystemCache`] goes one step further: its misses clone a shared
/// prototype instead of rebuilding tables, so construction happens once per
/// system across the whole process.
#[derive(Debug, Default)]
pub struct WorkerCache {
    systems: BTreeMap<SystemKey, CachedSystem>,
    shared: Option<Arc<SharedSystemCache>>,
}

impl WorkerCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache backed by a process-wide shared cache: local
    /// misses consult (and fill) `shared` before building tables.
    #[must_use]
    pub fn with_shared(shared: Arc<SharedSystemCache>) -> Self {
        Self { systems: BTreeMap::new(), shared: Some(shared) }
    }

    fn system(&mut self, scenario: &Scenario) -> Result<&mut CachedSystem, EngineError> {
        match self.systems.entry(SystemKey::of(scenario)) {
            Entry::Occupied(entry) => Ok(entry.into_mut()),
            Entry::Vacant(entry) => {
                let system = match &self.shared {
                    Some(shared) => (*shared.get_or_build(entry.key(), scenario)?).clone(),
                    None => build_system(scenario)?,
                };
                Ok(entry.insert(system))
            }
        }
    }
}

/// Runs a single scenario with a fresh cache (see
/// [`run_scenario_with_cache`] for the reusing variant workers use).
///
/// # Errors
///
/// Propagates spec-validation, simulation and search-budget errors.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioResult, EngineError> {
    run_scenario_with_cache(scenario, &mut WorkerCache::new())
}

/// Runs a single scenario, reusing validated configurations and recovery
/// tables from `cache` (backends are reset before every simulation, so
/// reuse cannot leak state between cells).
///
/// # Errors
///
/// Same as [`run_scenario`].
pub fn run_scenario_with_cache(
    scenario: &Scenario,
    cache: &mut WorkerCache,
) -> Result<ScenarioResult, EngineError> {
    let profile = scenario.load.profile()?;
    let system = cache.system(scenario)?;
    let load = system.config.discretize(&profile)?;
    execute_scalar(scenario, system, &load)
}

/// Probes the root bounds (timed — this is where the bound construction
/// cost of an optimal cell lives) and then runs the search, on one backend.
fn probe_and_search<M: BatteryModel>(
    scheduler: &OptimalScheduler,
    config: &SystemConfig,
    load: &dkibam::DiscretizedLoad,
    model: &mut M,
) -> Result<(RootBounds, u64, OptimalOutcome), battery_sched::SchedError> {
    // xlint: allow(clock) -- bound_micros is measurement-only, excluded from --compare
    let start = Instant::now();
    let bounds = OptimalScheduler::probe_root_bounds(config, load, model)?;
    let bound_micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    let outcome = scheduler.find_optimal_with(config, load, model)?;
    Ok((bounds, bound_micros, outcome))
}

/// Runs one prepared scenario on the cached scalar backend instances (the
/// non-batched path: optimal searches and the continuous/ideal backends, and
/// the reference the batched path is held bit-identical to).
fn execute_scalar(
    scenario: &Scenario,
    system: &mut CachedSystem,
    load: &dkibam::DiscretizedLoad,
) -> Result<ScenarioResult, EngineError> {
    // xlint: allow(clock) -- wall_micros is measurement-only, excluded from --compare
    let start = Instant::now();
    let (outcome, lifetime_minutes, search, seeded_by, root_bounds, bound_micros) =
        match scenario.policy {
            PolicyKind::Optimal { budget } => {
                let scheduler = OptimalScheduler::with_budget(budget);
                let (bounds, bound_micros, optimal) = match scenario.backend {
                    BackendKind::Discretized => {
                        probe_and_search(&scheduler, &system.config, load, &mut system.discretized)?
                    }
                    BackendKind::Continuous => {
                        probe_and_search(&scheduler, &system.config, load, &mut system.continuous)?
                    }
                    BackendKind::Rv => {
                        probe_and_search(&scheduler, &system.config, load, &mut system.rv)?
                    }
                    BackendKind::Ideal => {
                        probe_and_search(&scheduler, &system.config, load, &mut system.ideal)?
                    }
                };
                // Replay the optimal decision sequence to recover the residual
                // charge and switch counts the deterministic cells report.
                let mut replay = FixedSchedule::new(optimal.decisions.clone());
                let outcome = simulate_on_backend(system, scenario.backend, load, &mut replay)?;
                let stats = SearchStats {
                    nodes_explored: optimal.nodes_explored as u64,
                    memo_hits: optimal.memo_hits as u64,
                    dominance_prunes: optimal.dominance_prunes as u64,
                    charge_bound_prunes: optimal.charge_bound_prunes as u64,
                    availability_bound_prunes: optimal.availability_bound_prunes as u64,
                    relax_bound_prunes: optimal.relax_bound_prunes as u64,
                };
                let minutes = optimal.lifetime_minutes(&system.config);
                let seeded_by = optimal.seeded_by.map(str::to_owned);
                (outcome, Some(minutes), Some(stats), seeded_by, Some(bounds), Some(bound_micros))
            }
            _ => {
                let mut policy =
                // xlint: allow(panic) -- every non-optimal PolicyKind constructs infallibly
                scenario.policy.build().expect("non-optimal policies always instantiate");
                let outcome = simulate_on_backend(system, scenario.backend, load, policy.as_mut())?;
                let minutes = outcome.lifetime_minutes();
                (outcome, minutes, None, None, None, None)
            }
        };
    let wall_micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);

    Ok(ScenarioResult {
        scenario: scenario.clone(),
        lifetime_minutes,
        residual_charge: outcome.residual_charge(),
        switches: outcome.schedule().switches() as u64,
        decisions: outcome.schedule().assignments.len() as u64,
        wall_micros,
        search,
        seeded_by,
        root_bounds,
        bound_micros,
    })
}

/// Runs a policy simulation against the cached backend instance selected by
/// `backend` (the simulation loop is generic over the backend type, so the
/// dispatch happens here, once per cell).
fn simulate_on_backend(
    system: &mut CachedSystem,
    backend: BackendKind,
    load: &dkibam::DiscretizedLoad,
    policy: &mut dyn battery_sched::policy::SchedulingPolicy,
) -> Result<SystemOutcome, EngineError> {
    Ok(match backend {
        BackendKind::Discretized => {
            simulate_policy_with(&system.config, load, policy, &mut system.discretized)?
        }
        BackendKind::Continuous => {
            simulate_policy_with(&system.config, load, policy, &mut system.continuous)?
        }
        BackendKind::Rv => simulate_policy_with(&system.config, load, policy, &mut system.rv)?,
        BackendKind::Ideal => {
            simulate_policy_with(&system.config, load, policy, &mut system.ideal)?
        }
    })
}

/// Whether a scenario can run on the batched struct-of-arrays kernels: the
/// deterministic policies on the discretized and RV backends (the hot cells
/// of large sweeps). Optimal searches drive their backend through
/// snapshot/restore from inside the scheduler, and the continuous/ideal
/// backends have no batch form, so those stay on the scalar path.
fn is_batchable(scenario: &Scenario) -> bool {
    !matches!(scenario.policy, PolicyKind::Optimal { .. })
        && matches!(scenario.backend, BackendKind::Discretized | BackendKind::Rv)
}

/// One executed chunk: results in chunk order up to the first error, and
/// that error with its chunk-local offset.
struct ChunkOutput {
    results: Vec<ScenarioResult>,
    error: Option<(usize, EngineError)>,
}

/// Builds the deterministic-policy result row from a finished simulation
/// (shared by the scalar and batched paths, so the rows are assembled
/// identically).
fn deterministic_result(
    scenario: &Scenario,
    outcome: Result<SystemOutcome, battery_sched::SchedError>,
    start: Instant,
) -> Result<ScenarioResult, EngineError> {
    let outcome = outcome?;
    let wall_micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    Ok(ScenarioResult {
        scenario: scenario.clone(),
        lifetime_minutes: outcome.lifetime_minutes(),
        residual_charge: outcome.residual_charge(),
        switches: outcome.schedule().switches() as u64,
        decisions: outcome.schedule().assignments.len() as u64,
        wall_micros,
        search: None,
        seeded_by: None,
        root_bounds: None,
        bound_micros: None,
    })
}

/// Runs the batchable scenarios of one `(system, backend)` group: every
/// member's fleet is packed as a lane range of one shared struct-of-arrays
/// batch, and each member is simulated through a lane-range view — the batch
/// kernels step all cells of a system through shared per-type tables. Writes
/// each member's outcome at its chunk offset.
fn run_batched_group(
    scenarios: &[Scenario],
    loads: &[Option<(dkibam::DiscretizedLoad, bool)>],
    backend: BackendKind,
    members: &[usize],
    cache: &mut WorkerCache,
    outcomes: &mut [Option<Result<ScenarioResult, EngineError>>],
) {
    let system = match cache.system(&scenarios[members[0]]) {
        Ok(system) => &*system,
        Err(error) => {
            // Unreachable in practice: the prepare pass already built and
            // cached this system. Keep the chunk sound anyway.
            let mut members = members.iter();
            if let Some(&first) = members.next() {
                outcomes[first] = Some(Err(error));
            }
            for &offset in members {
                outcomes[offset] = Some(Err(EngineError::InvalidSpec(
                    "system vanished from the worker cache".into(),
                )));
            }
            return;
        }
    };
    match backend {
        BackendKind::Discretized => {
            let fleet = system.discretized.fleet();
            let type_params: Vec<BatteryParams> =
                (0..fleet.spec().type_count()).map(|t| *fleet.spec().type_params(t)).collect();
            let mut batch = dkibam::DiscreteBatch::with_capacity(fleet.len() * members.len());
            let lanes: Vec<_> = members.iter().map(|_| batch.push_fleet(fleet)).collect();
            for (&offset, lanes) in members.iter().zip(lanes) {
                // Members are drawn from prepared cells, so the load exists.
                let Some((load, _)) = &loads[offset] else { continue };
                let scenario = &scenarios[offset];
                // xlint: allow(clock) -- wall_micros is measurement-only, excluded from --compare
                let start = Instant::now();
                let mut policy =
                    // xlint: allow(panic) -- batching already filtered out optimal-policy cells
                    scenario.policy.build().expect("batched cells never run the optimal policy");
                let mut view = BatchDiscreteView::new(&mut batch, lanes, fleet, &type_params);
                let outcome =
                    simulate_policy_with(&system.config, load, policy.as_mut(), &mut view);
                outcomes[offset] = Some(deterministic_result(scenario, outcome, start));
            }
        }
        BackendKind::Rv => {
            let fleet = system.rv.fleet();
            let mut batch = rv::RvBatch::with_capacity(fleet.len() * members.len());
            let lanes: Vec<_> = members.iter().map(|_| batch.push_fleet(fleet)).collect();
            for (&offset, lanes) in members.iter().zip(lanes) {
                // Members are drawn from prepared cells, so the load exists.
                let Some((load, _)) = &loads[offset] else { continue };
                let scenario = &scenarios[offset];
                // xlint: allow(clock) -- wall_micros is measurement-only, excluded from --compare
                let start = Instant::now();
                let mut policy =
                    // xlint: allow(panic) -- batching already filtered out optimal-policy cells
                    scenario.policy.build().expect("batched cells never run the optimal policy");
                let mut view = BatchRvView::new(&mut batch, lanes, fleet);
                let outcome =
                    simulate_policy_with(&system.config, load, policy.as_mut(), &mut view);
                outcomes[offset] = Some(deterministic_result(scenario, outcome, start));
            }
        }
        BackendKind::Continuous | BackendKind::Ideal => {
            // xlint: allow(panic) -- the grouping pass admits only batchable backends
            unreachable!("only discretized/rv scenarios are grouped for batching")
        }
    }
}

/// Runs every scenario of a slice against the worker's cache, each cell
/// **independently**: one failing cell does not stop its siblings. This is
/// the execution core shared by the grid path (which truncates at the first
/// error, see [`run_chunk`]) and the request path ([`crate::api`], where
/// every request deserves its own answer).
///
/// Loads and system tables are prepared per cell first, then batchable
/// scenarios are grouped by `(system, backend)` and stepped on shared
/// struct-of-arrays batches — this grouping is also what micro-batches
/// compatible service requests into one kernel pass — while the rest run on
/// the scalar path. Results come back in slice order, one per scenario.
pub(crate) fn run_cells(
    scenarios: &[Scenario],
    cache: &mut WorkerCache,
) -> Vec<Result<ScenarioResult, EngineError>> {
    // Prepare pass: validate the system (building and caching its tables)
    // and discretize the load; a setup failure becomes that cell's result.
    let mut outcomes: Vec<Option<Result<ScenarioResult, EngineError>>> =
        (0..scenarios.len()).map(|_| None).collect();
    let mut prepared: Vec<Option<(dkibam::DiscretizedLoad, bool)>> =
        Vec::with_capacity(scenarios.len());
    for (offset, scenario) in scenarios.iter().enumerate() {
        let load = scenario.load.profile().and_then(|profile| {
            let system = cache.system(scenario)?;
            Ok(system.config.discretize(&profile)?)
        });
        match load {
            Ok(load) => prepared.push(Some((load, is_batchable(scenario)))),
            Err(error) => {
                outcomes[offset] = Some(Err(error));
                prepared.push(None);
            }
        }
    }

    // Execute pass. Scalar scenarios first (each borrows the cache mutably),
    // then the batched groups.
    for (offset, scenario) in scenarios.iter().enumerate() {
        let Some((load, batchable)) = &prepared[offset] else { continue };
        if *batchable {
            continue;
        }
        let outcome =
            cache.system(scenario).and_then(|system| execute_scalar(scenario, system, load));
        outcomes[offset] = Some(outcome);
    }
    // Group by cached system and backend, in first-appearance order; chunks
    // hold at most DEFAULT_CHUNK_SIZE scenarios (and service micro-batches
    // stay similarly small), so a linear scan is cheaper than hashing.
    let mut groups: Vec<(SystemKey, BackendKind, Vec<usize>)> = Vec::new();
    for (offset, scenario) in scenarios.iter().enumerate() {
        if !matches!(&prepared[offset], Some((_, true))) {
            continue;
        }
        let key = SystemKey::of(scenario);
        match groups.iter_mut().find(|(k, b, _)| *k == key && *b == scenario.backend) {
            Some((_, _, members)) => members.push(offset),
            None => groups.push((key, scenario.backend, vec![offset])),
        }
    }
    for (_, backend, members) in groups {
        run_batched_group(scenarios, &prepared, backend, &members, cache, &mut outcomes);
    }

    outcomes
        .into_iter()
        .map(|outcome| {
            // xlint: allow(panic) -- the prepare/scalar/batched passes above fill every slot
            outcome.expect("every scenario is executed")
        })
        .collect()
}

/// Runs one chunk of scenarios with **grid semantics**: results in chunk
/// order up to the first error, so the grid-order contract of the runner is
/// preserved exactly.
fn run_chunk(scenarios: &[Scenario], cache: &mut WorkerCache) -> ChunkOutput {
    let mut results = Vec::with_capacity(scenarios.len());
    let mut error = None;
    for (offset, outcome) in run_cells(scenarios, cache).into_iter().enumerate() {
        match outcome {
            Ok(result) => results.push(result),
            Err(e) => {
                error = Some((offset, e));
                break;
            }
        }
    }
    ChunkOutput { results, error }
}

/// One completed chunk of grid work, sent from a worker to the coordinator.
struct ChunkMessage {
    chunk_index: usize,
    /// Results of the chunk's scenarios, in grid order, up to the first
    /// error (if any).
    results: Vec<ScenarioResult>,
    /// The first error in the chunk, with its grid index.
    error: Option<(usize, EngineError)>,
}

/// Outcome of a chunked grid execution.
pub(crate) struct ChunkedOutcome {
    /// How many scenarios actually executed (including the failing one).
    /// With the poison flag, this stays far below the grid size when an
    /// early cell fails. Asserted by tests; not part of the public API.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) executed: usize,
    /// The first error in grid order, if any.
    pub(crate) error: Option<EngineError>,
}

/// Builds the worker-local cache for one grid worker: attached to the
/// process-wide cache when the run carries one, standalone otherwise.
fn worker_cache(shared: Option<&Arc<SharedSystemCache>>) -> WorkerCache {
    match shared {
        Some(shared) => WorkerCache::with_shared(Arc::clone(shared)),
        None => WorkerCache::new(),
    }
}

/// Runs `scenarios` on `threads` workers in contiguous chunks, feeding
/// completed results to `sink` **in grid order** as soon as their turn
/// arrives. The sink returns whether to keep going: a `false` (e.g. the
/// output stream died) poisons the claim cursor exactly like a scenario
/// error does. On poison, in-flight chunks finish, no new chunks start, and
/// the sink stops receiving.
pub(crate) fn run_chunked(
    scenarios: &[Scenario],
    threads: usize,
    chunk_size: usize,
    shared: Option<&Arc<SharedSystemCache>>,
    mut sink: impl FnMut(ScenarioResult) -> bool,
) -> ChunkedOutcome {
    let workers = threads.max(1).min(scenarios.len().max(1));
    let chunk_size =
        if chunk_size == 0 { auto_chunk_size(scenarios.len(), workers) } else { chunk_size };
    if workers <= 1 || scenarios.len() <= chunk_size {
        // Inline execution: grid order is the execution order. Chunks still
        // apply so the inline path batches exactly like workers do.
        let mut cache = worker_cache(shared);
        let mut executed = 0;
        for chunk in scenarios.chunks(chunk_size) {
            let output = run_chunk(chunk, &mut cache);
            executed += output.results.len() + usize::from(output.error.is_some());
            for result in output.results {
                if !sink(result) {
                    return ChunkedOutcome { executed, error: None };
                }
            }
            if let Some((_, error)) = output.error {
                return ChunkedOutcome { executed, error: Some(error) };
            }
        }
        return ChunkedOutcome { executed, error: None };
    }

    let next = AtomicUsize::new(0);
    let poison = AtomicBool::new(false);
    let (sender, receiver) = mpsc::channel::<ChunkMessage>();
    let mut executed = 0;
    let mut first_error = None;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let sender = sender.clone();
            let next = &next;
            let poison = &poison;
            let shared = shared.map(Arc::clone);
            scope.spawn(move || {
                let mut cache = worker_cache(shared.as_ref());
                loop {
                    // ordering: Acquire pairs with the poison Release stores below.
                    if poison.load(Ordering::Acquire) {
                        break;
                    }
                    // ordering: Relaxed — a pure claim ticket; results synchronize via mpsc.
                    let start = next.fetch_add(chunk_size, Ordering::Relaxed);
                    if start >= scenarios.len() {
                        break;
                    }
                    let end = (start + chunk_size).min(scenarios.len());
                    let output = run_chunk(&scenarios[start..end], &mut cache);
                    let failed = output.error.is_some();
                    if failed {
                        // ordering: Release pairs with the Acquire load in the claim loop.
                        poison.store(true, Ordering::Release);
                    }
                    // A send only fails if the receiver is gone, which
                    // cannot happen while the coordinator loop below runs.
                    let _ = sender.send(ChunkMessage {
                        chunk_index: start / chunk_size,
                        results: output.results,
                        error: output.error.map(|(offset, e)| (start + offset, e)),
                    });
                    if failed {
                        break;
                    }
                }
            });
        }
        drop(sender);

        // Coordinator: re-assemble grid order incrementally. Chunk indices
        // are claimed densely from zero, so the in-order stream advances as
        // soon as the next chunk lands; only out-of-order chunks wait.
        let mut pending: BTreeMap<usize, ChunkMessage> = BTreeMap::new();
        let mut next_chunk = 0;
        let mut sink_open = true;
        for message in receiver {
            executed += message.results.len() + usize::from(message.error.is_some());
            pending.insert(message.chunk_index, message);
            while let Some(message) = pending.remove(&next_chunk) {
                next_chunk += 1;
                if first_error.is_some() || !sink_open {
                    continue;
                }
                for result in message.results {
                    if !sink(result) {
                        // The consumer died (e.g. a stream-write failure):
                        // poison the cursor so workers stop claiming chunks
                        // instead of computing results nobody can receive.
                        sink_open = false;
                        // ordering: Release pairs with the Acquire load in the claim loop.
                        poison.store(true, Ordering::Release);
                        break;
                    }
                }
                if let Some((_, error)) = message.error {
                    first_error = Some(error);
                }
            }
        }
    });
    ChunkedOutcome { executed, error: first_error }
}

/// Runs every scenario of the grid in parallel and returns the results in
/// grid order. Uses one worker per available CPU (capped by the number of
/// scenarios).
///
/// # Errors
///
/// Returns the first scenario error encountered (in grid order).
pub fn run_grid(spec: &ScenarioSpec) -> Result<Vec<ScenarioResult>, EngineError> {
    crate::api::GridRun::new(spec).collect()
}

/// Like [`run_grid`] with an explicit worker count (1 runs inline). A
/// failing cell poisons the grid: workers stop claiming chunks, and the
/// first error in grid order is returned.
///
/// # Errors
///
/// Same as [`run_grid`].
pub fn run_grid_with_threads(
    spec: &ScenarioSpec,
    threads: usize,
) -> Result<Vec<ScenarioResult>, EngineError> {
    crate::api::GridRun::new(spec).threads(threads).collect()
}

/// Summary of a streamed grid run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Number of results written to the stream.
    pub written: usize,
}

/// An incremental writer for the [`results_to_json`] document format: the
/// spec is written up front, then each result is appended as one line, and
/// [`finish`](StreamingResultWriter::finish) closes the document. The output
/// parses with [`results_from_json`] and never holds more than one result in
/// memory.
#[derive(Debug)]
pub struct StreamingResultWriter<W: Write> {
    out: W,
    written: usize,
}

impl<W: Write> StreamingResultWriter<W> {
    /// Writes the document header (the spec and the opening of the result
    /// array).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Json`] for non-finite spec numbers and
    /// [`EngineError::Io`] on write failure.
    pub fn new(mut out: W, spec: &ScenarioSpec) -> Result<Self, EngineError> {
        let spec_json = spec.to_json_value().render()?;
        write!(out, "{{\"spec\":{spec_json},\"results\":[")?;
        Ok(Self { out, written: 0 })
    }

    /// Appends one result as a single line.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Json`] for non-finite numbers and
    /// [`EngineError::Io`] on write failure.
    pub fn push(&mut self, result: &ScenarioResult) -> Result<(), EngineError> {
        let line = result.to_json_value().render()?;
        if self.written > 0 {
            self.out.write_all(b",")?;
        }
        self.out.write_all(b"\n")?;
        self.out.write_all(line.as_bytes())?;
        self.written += 1;
        Ok(())
    }

    /// The number of results written so far.
    #[must_use]
    pub fn written(&self) -> usize {
        self.written
    }

    /// Closes the document and returns the inner writer (flushed).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] on write failure.
    pub fn finish(mut self) -> Result<W, EngineError> {
        self.out.write_all(b"\n]}")?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Runs the grid in parallel and **streams** results to `out` in grid order
/// as they complete, without materializing the full result set: memory use
/// is bounded by the out-of-order window (roughly `threads` chunks), not by
/// the grid size. `chunk_size` of `None` uses the default; `Some(0)` asks
/// for auto-sizing from the grid size and worker count (see
/// `auto_chunk_size` in this module for the heuristic).
///
/// # Errors
///
/// Returns the first scenario error in grid order (the stream then holds a
/// truncated, unterminated document), or [`EngineError::Io`] if writing
/// fails.
pub fn run_grid_streaming<W: Write>(
    spec: &ScenarioSpec,
    threads: usize,
    chunk_size: Option<usize>,
    out: W,
) -> Result<StreamSummary, EngineError> {
    run_grid_streaming_sharded(spec, threads, chunk_size, None, out)
}

/// The default worker count of a grid run: one per available CPU.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

/// Like [`run_grid_streaming`], restricted to one **shard** of the grid:
/// `Some((index, count))` runs the contiguous expanded-grid index range
/// `[index·len/count, (index+1)·len/count)`, so `count` processes — each
/// handed its own shard index — partition a grid with no coordination, and
/// the concatenation of their result rows (in shard order) is exactly the
/// unsharded grid in grid order. Every shard document carries the *full*
/// grid spec, which is what lets a merge step verify the shards belong
/// together. `None` runs the whole grid.
///
/// # Errors
///
/// Returns [`EngineError::InvalidSpec`] for an out-of-range shard
/// (`index >= count` or `count == 0`); otherwise as [`run_grid_streaming`].
pub fn run_grid_streaming_sharded<W: Write>(
    spec: &ScenarioSpec,
    threads: usize,
    chunk_size: Option<usize>,
    shard: Option<(usize, usize)>,
    out: W,
) -> Result<StreamSummary, EngineError> {
    let mut run = crate::api::GridRun::new(spec).threads(threads);
    if let Some(chunk) = chunk_size {
        run = run.chunk(chunk);
    }
    if let Some((index, count)) = shard {
        run = run.shard(index, count);
    }
    run.stream(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BatterySpec, DiscSpec, FleetDef, LoadSpec, PolicyKind};
    use workload::paper_loads::TestLoad;

    fn small_grid() -> ScenarioSpec {
        ScenarioSpec {
            batteries: vec![BatterySpec::b1()],
            battery_counts: vec![2],
            fleets: vec![],
            discretizations: vec![DiscSpec::paper()],
            loads: vec![
                LoadSpec::Paper(TestLoad::Cl500),
                LoadSpec::Paper(TestLoad::Ils500),
                LoadSpec::Paper(TestLoad::IlsAlt),
                LoadSpec::Paper(TestLoad::Ill250),
            ],
            policies: vec![PolicyKind::RoundRobin, PolicyKind::BestOfTwo],
            backends: vec![BackendKind::Discretized],
        }
    }

    #[test]
    fn grid_runs_in_parallel_and_matches_serial_execution() {
        let spec = small_grid();
        let serial = run_grid_with_threads(&spec, 1).unwrap();
        let parallel = run_grid_with_threads(&spec, 4).unwrap();
        assert_eq!(serial.len(), 8);
        assert_eq!(parallel.len(), 8);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.scenario, b.scenario, "results must come back in grid order");
            assert_eq!(a.lifetime_minutes, b.lifetime_minutes);
            assert_eq!(a.switches, b.switches);
        }
    }

    #[test]
    fn results_match_the_paper_through_the_engine() {
        let spec = small_grid();
        let results = run_grid(&spec).unwrap();
        let rr_ils500 = results
            .iter()
            .find(|r| {
                r.scenario.load.name() == "ILs 500" && r.scenario.policy == PolicyKind::RoundRobin
            })
            .unwrap();
        let lifetime = rr_ils500.lifetime_minutes.unwrap();
        assert!((lifetime - 10.48).abs() < 0.15, "Table 5 ILs 500 round robin: {lifetime}");
    }

    #[test]
    fn result_set_round_trips_through_json() {
        let spec = small_grid();
        let results = run_grid(&spec).unwrap();
        let json = results_to_json(&spec, &results).unwrap();
        let (spec_back, raw_results) = results_from_json(&json).unwrap();
        assert_eq!(spec_back, spec);
        assert_eq!(raw_results.len(), results.len());
        for (raw, result) in raw_results.iter().zip(&results) {
            assert_eq!(raw.get("load").unwrap().as_str().unwrap(), result.scenario.load.name());
            assert_eq!(
                raw.get("lifetime_minutes").unwrap().as_f64(),
                result.lifetime_minutes,
                "lifetimes survive the JSON round-trip bit-exactly"
            );
            assert_eq!(raw.get("switches").unwrap().as_u64(), Some(result.switches));
        }
    }

    #[test]
    fn continuous_backend_runs_through_the_engine() {
        let mut spec = small_grid();
        spec.backends = vec![BackendKind::Continuous];
        spec.loads.truncate(2);
        let results = run_grid(&spec).unwrap();
        assert_eq!(results.len(), 4);
        for result in &results {
            assert!(result.lifetime_minutes.unwrap() > 1.0);
        }
    }

    #[test]
    fn invalid_scenarios_surface_errors() {
        let mut spec = small_grid();
        spec.batteries =
            vec![BatterySpec { name: "bad".into(), capacity: -5.0, c: 0.2, k_prime: 0.1 }];
        assert!(run_grid(&spec).is_err());
    }

    #[test]
    fn optimal_policy_runs_through_the_engine() {
        let mut spec = small_grid();
        spec.discretizations = vec![DiscSpec::coarse()];
        spec.loads = vec![LoadSpec::Paper(TestLoad::IlsAlt)];
        spec.policies = vec![PolicyKind::BestOfTwo, PolicyKind::optimal()];
        let results = run_grid(&spec).unwrap();
        assert_eq!(results.len(), 2);
        let best = &results[0];
        let optimal = &results[1];
        assert!(best.search.is_none());
        let stats = optimal.search.expect("optimal cells report search stats");
        assert!(stats.nodes_explored > 0);
        // Table 5 shape: the optimal schedule clearly beats best-of-two on
        // the alternating load.
        assert!(optimal.lifetime_minutes.unwrap() >= best.lifetime_minutes.unwrap());
        // The replayed schedule agrees with the search lifetime, so the
        // residual charge is the optimal schedule's residual.
        assert!(optimal.residual_charge > 0.0);
        // And the JSON row carries the stats.
        let json = optimal.to_json_value().render().unwrap();
        assert!(json.contains("\"nodes_explored\""));
    }

    #[test]
    fn ideal_backend_runs_through_the_engine() {
        let mut spec = small_grid();
        spec.loads = vec![LoadSpec::Paper(TestLoad::Cl500)];
        spec.policies = vec![PolicyKind::RoundRobin];
        spec.backends = vec![BackendKind::Discretized, BackendKind::Ideal];
        let results = run_grid(&spec).unwrap();
        assert_eq!(results.len(), 2);
        let kibam = results[0].lifetime_minutes.unwrap();
        let ideal = results[1].lifetime_minutes.unwrap();
        // Two ideal 5.5 A·min batteries under 500 mA last exactly 22 min;
        // the KiBaM pair strands most of its charge (Table 5: 4.53 min).
        assert!((ideal - 22.0).abs() < 0.05, "ideal lifetime {ideal}");
        assert!(ideal > 4.0 * kibam, "the ideal baseline dwarfs the KiBaM lifetime");
        let json = results[1].to_json_value().render().unwrap();
        assert!(json.contains("\"ideal\""));
    }

    #[test]
    fn rv_backend_runs_through_the_engine() {
        let mut spec = small_grid();
        spec.loads = vec![LoadSpec::Paper(TestLoad::Cl500), LoadSpec::Paper(TestLoad::IlsAlt)];
        spec.policies = vec![PolicyKind::RoundRobin, PolicyKind::BestOfTwo];
        spec.backends = vec![BackendKind::Discretized, BackendKind::Rv];
        let results = run_grid(&spec).unwrap();
        assert_eq!(results.len(), 8);
        for pair in results.chunks(2) {
            let (kibam, rv) = (&pair[0], &pair[1]);
            assert_eq!(rv.scenario.backend, BackendKind::Rv);
            let kibam_life = kibam.lifetime_minutes.unwrap();
            let rv_life = rv.lifetime_minutes.unwrap();
            // Both models share capacity and steady-state recovery gain, so
            // lifetimes land in the same range without being equal.
            assert!(
                rv_life > 0.5 * kibam_life && rv_life < 1.5 * kibam_life,
                "{}: kibam {kibam_life} vs rv {rv_life}",
                rv.scenario.label()
            );
        }
        let json = results.last().unwrap().to_json_value().render().unwrap();
        assert!(json.contains("\"rv\""));
    }

    #[test]
    fn rv_optimal_search_runs_through_the_engine() {
        let mut spec = small_grid();
        spec.discretizations = vec![DiscSpec::coarse()];
        spec.loads = vec![LoadSpec::Paper(TestLoad::IlsAlt)];
        spec.policies = vec![PolicyKind::BestOfTwo, PolicyKind::optimal()];
        spec.backends = vec![BackendKind::Rv];
        let results = run_grid(&spec).unwrap();
        let best = &results[0];
        let optimal = &results[1];
        let stats = optimal.search.expect("optimal cells report search stats");
        assert!(stats.nodes_explored > 0);
        assert!(optimal.lifetime_minutes.unwrap() >= best.lifetime_minutes.unwrap());
    }

    #[test]
    fn mixed_fleet_runs_end_to_end_with_the_optimal_policy() {
        // The acceptance scenario: a 1xB1 + 1xB2 fleet through ScenarioSpec
        // JSON -> engine -> PolicyKind::Optimal.
        let spec = ScenarioSpec {
            batteries: vec![],
            battery_counts: vec![],
            fleets: vec![FleetDef::mixed(vec![BatterySpec::b1(), BatterySpec::b2()])],
            discretizations: vec![DiscSpec::coarse()],
            loads: vec![LoadSpec::Paper(TestLoad::IlsAlt)],
            policies: vec![PolicyKind::BestOfTwo, PolicyKind::optimal()],
            backends: vec![BackendKind::Discretized],
        };
        // Round-trip the grid through JSON first, as a driver script would.
        let spec = ScenarioSpec::from_json(&spec.to_json().unwrap()).unwrap();
        let results = run_grid(&spec).unwrap();
        assert_eq!(results.len(), 2);
        let best = &results[0];
        let optimal = &results[1];
        assert_eq!(optimal.scenario.fleet.name, "B1+B2");
        let stats = optimal.search.expect("optimal cells report search stats");
        assert!(stats.nodes_explored > 0);
        assert!(optimal.lifetime_minutes.unwrap() >= best.lifetime_minutes.unwrap());
        // The mixed pair (16.5 A·min) outlives the paper's 2xB1 optimum.
        assert!(optimal.lifetime_minutes.unwrap() > 15.0);
        let json = optimal.to_json_value().render().unwrap();
        assert!(json.contains("\"fleet\":\"B1+B2\""));
    }

    #[test]
    fn optimal_budget_errors_poison_the_grid() {
        let mut spec = small_grid();
        spec.discretizations = vec![DiscSpec::coarse()];
        spec.policies = vec![PolicyKind::Optimal { budget: 1 }];
        let error = run_grid(&spec).unwrap_err();
        assert!(error.to_string().contains("budget"), "{error}");
    }

    #[test]
    fn worker_cache_reuses_systems_without_changing_results() {
        let spec = small_grid();
        let scenarios = spec.expand();
        let mut cache = WorkerCache::new();
        for scenario in &scenarios {
            let cached = run_scenario_with_cache(scenario, &mut cache).unwrap();
            let fresh = run_scenario(scenario).unwrap();
            assert_eq!(cached.lifetime_minutes, fresh.lifetime_minutes);
            assert_eq!(cached.switches, fresh.switches);
        }
        // All cells share one battery/disc/count triple.
        assert_eq!(cache.systems.len(), 1);
    }

    #[test]
    fn streamed_grid_matches_collected_grid() {
        let spec = small_grid();
        let collected = run_grid_with_threads(&spec, 4).unwrap();
        let mut buffer = Vec::new();
        let summary = run_grid_streaming(&spec, 4, Some(2), &mut buffer).unwrap();
        assert_eq!(summary.written, collected.len());
        let text = String::from_utf8(buffer).unwrap();
        let (spec_back, raw_results) = results_from_json(&text).unwrap();
        assert_eq!(spec_back, spec);
        assert_eq!(raw_results.len(), collected.len());
        for (raw, result) in raw_results.iter().zip(&collected) {
            assert_eq!(raw.get("load").unwrap().as_str().unwrap(), result.scenario.load.name());
            assert_eq!(raw.get("lifetime_minutes").unwrap().as_f64(), result.lifetime_minutes);
        }
    }

    #[test]
    fn shards_partition_the_grid_exactly() {
        let spec = small_grid();
        let unsharded = run_grid_with_threads(&spec, 2).unwrap();
        // Three shards over eight scenarios: 2 + 3 + 3.
        let mut rows = Vec::new();
        for index in 0..3 {
            let mut buffer = Vec::new();
            let summary =
                run_grid_streaming_sharded(&spec, 2, Some(2), Some((index, 3)), &mut buffer)
                    .unwrap();
            let text = String::from_utf8(buffer).unwrap();
            let (spec_back, shard_rows) = results_from_json(&text).unwrap();
            assert_eq!(spec_back, spec, "every shard carries the full grid spec");
            assert_eq!(summary.written, shard_rows.len());
            rows.extend(shard_rows);
        }
        assert_eq!(rows.len(), unsharded.len());
        for (row, result) in rows.iter().zip(&unsharded) {
            assert_eq!(row.get("load").unwrap().as_str().unwrap(), result.scenario.load.name());
            assert_eq!(row.get("policy").unwrap().as_str().unwrap(), result.scenario.policy.name());
            assert_eq!(
                row.get("lifetime_minutes").unwrap().as_f64(),
                result.lifetime_minutes,
                "shard rows are bit-identical to the unsharded grid"
            );
        }
        // Out-of-range shards are rejected up front.
        let error =
            run_grid_streaming_sharded(&spec, 1, None, Some((3, 3)), Vec::new()).unwrap_err();
        assert!(error.to_string().contains("out of range"), "{error}");
        let error =
            run_grid_streaming_sharded(&spec, 1, None, Some((0, 0)), Vec::new()).unwrap_err();
        assert!(error.to_string().contains("out of range"), "{error}");
    }

    #[test]
    fn auto_chunk_size_balances_small_grids() {
        assert_eq!(auto_chunk_size(8, 4), 1, "small grids go one scenario per claim");
        assert_eq!(auto_chunk_size(0, 4), 1, "empty grids still get a positive chunk");
        assert_eq!(auto_chunk_size(129, 4), 9, "mid grids target four chunks per worker");
        assert_eq!(auto_chunk_size(1_000_000, 8), DEFAULT_CHUNK_SIZE, "huge grids cap at default");
        // `Some(0)` through the public streaming API selects the heuristic.
        let spec = small_grid();
        let mut buffer = Vec::new();
        let summary = run_grid_streaming(&spec, 4, Some(0), &mut buffer).unwrap();
        assert_eq!(summary.written, 8);
    }

    #[test]
    fn poisoned_grid_stops_claiming_work() {
        // A huge grid whose very first cell fails: with the poison flag the
        // workers must stop long before the grid is exhausted.
        let mut spec = small_grid();
        spec.batteries =
            vec![BatterySpec { name: "bad".into(), capacity: -5.0, c: 0.2, k_prime: 0.1 }];
        spec.loads = (0..500).map(|seed| LoadSpec::random_paper_levels(seed, 5)).collect();
        let scenarios = spec.expand();
        assert_eq!(scenarios.len(), 1000);

        // Single worker: exactly one cell executes before the poison stops
        // the claim loop.
        let outcome = run_chunked(&scenarios, 1, 16, None, |_| true);
        assert!(outcome.error.is_some());
        assert_eq!(outcome.executed, 1);

        // Multiple workers: in-flight chunks may finish, but the grid never
        // runs to completion.
        let outcome = run_chunked(&scenarios, 4, 16, None, |_| true);
        assert!(outcome.error.is_some());
        assert!(
            outcome.executed < scenarios.len() / 2,
            "poison must stop the grid early (executed {})",
            outcome.executed
        );
    }

    #[test]
    fn dead_sink_poisons_the_grid() {
        // A sink that refuses results (e.g. the output stream died) must
        // stop the sweep instead of running the whole grid for nothing.
        let mut spec = small_grid();
        spec.loads = (0..1000).map(|seed| LoadSpec::random_paper_levels(seed, 20)).collect();
        let scenarios = spec.expand();

        // Inline path: execution stops within the chunk whose first result
        // is refused (scenarios are executed one chunk at a time).
        let outcome = run_chunked(&scenarios, 1, 16, None, |_| false);
        assert!(outcome.error.is_none());
        assert!(
            outcome.executed <= 16,
            "inline execution stops after the refusing chunk (executed {})",
            outcome.executed
        );

        // Parallel path: in-flight chunks may finish, but the grid never
        // runs to completion.
        let outcome = run_chunked(&scenarios, 4, 16, None, |_| false);
        assert!(outcome.error.is_none());
        assert!(
            outcome.executed < scenarios.len() / 2,
            "dead sink must stop the grid early (executed {})",
            outcome.executed
        );
    }

    #[test]
    fn first_error_in_grid_order_is_reported() {
        // Two bad batteries with distinct capacities: whichever worker hits
        // an error first, the reported one must be the first in grid order
        // (capacity -5, not -7).
        let mut spec = small_grid();
        spec.batteries = vec![
            BatterySpec { name: "bad-a".into(), capacity: -5.0, c: 0.2, k_prime: 0.1 },
            BatterySpec { name: "bad-b".into(), capacity: -7.0, c: 0.2, k_prime: 0.1 },
        ];
        for threads in [1, 4] {
            let error = run_grid_with_threads(&spec, threads).unwrap_err();
            assert!(error.to_string().contains("-5"), "got: {error}");
        }
    }
}
