//! Executes expanded scenario grids, in parallel, with streaming output.
//!
//! The runner distributes scenarios over a fixed pool of scoped worker
//! threads in **contiguous chunks**: workers claim a chunk of grid indices
//! from an atomic cursor, run it against per-worker cached system
//! configurations (battery tables are built once per worker, not once per
//! cell) and send the finished chunk back to the coordinating thread, which
//! re-assembles grid order incrementally. A grid error poisons the cursor so
//! workers stop claiming new chunks, and the first error **in grid order**
//! is reported.
//!
//! Results can be collected ([`run_grid`]) or **streamed** as JSON while the
//! grid is still running ([`run_grid_streaming`]): each result is written as
//! one line the moment its grid-order turn arrives, so a 10⁵-cell sweep
//! never materializes all results in memory. The streamed document is the
//! same format [`results_to_json`] produces (modulo insignificant
//! whitespace), so [`results_from_json`] parses both.

use crate::json::JsonValue;
use crate::spec::{BackendKind, PolicyKind, Scenario, ScenarioSpec};
use crate::EngineError;
use battery_sched::optimal::OptimalScheduler;
use battery_sched::policy::FixedSchedule;
use battery_sched::system::{simulate_policy_with, SystemConfig, SystemOutcome};
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Scenarios per work chunk. Large enough to amortize the claim and the
/// per-chunk channel send, small enough to keep workers balanced and the
/// streaming reorder window shallow.
const DEFAULT_CHUNK_SIZE: usize = 16;

/// Search statistics of an optimal-schedule scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Decision nodes explored by the branch-and-bound search.
    pub nodes_explored: u64,
    /// Nodes pruned by the transposition table.
    pub memo_hits: u64,
    /// Nodes pruned by state dominance.
    pub dominance_prunes: u64,
    /// Nodes cut by the usable-charge upper bound.
    pub charge_bound_prunes: u64,
    /// Nodes cut by the availability-aware (recovery-coupled) upper bound.
    pub availability_bound_prunes: u64,
}

/// The measured outcome of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// System lifetime in minutes, or `None` if the load ended before the
    /// batteries died (finite loads only; the optimal policy reports the
    /// full load duration in that case, because the search proves the
    /// system survives the whole load).
    pub lifetime_minutes: Option<f64>,
    /// Charge left in the batteries when the run stopped, in A·min.
    pub residual_charge: f64,
    /// Number of battery switches in the executed schedule.
    pub switches: u64,
    /// Number of scheduling decisions taken.
    pub decisions: u64,
    /// Wall-clock time of the simulation in microseconds.
    pub wall_micros: u64,
    /// Branch-and-bound statistics, for [`PolicyKind::Optimal`] scenarios.
    pub search: Option<SearchStats>,
    /// The deterministic policy that seeded the search's warm-start
    /// incumbent, for [`PolicyKind::Optimal`] scenarios.
    pub seeded_by: Option<String>,
}

impl ScenarioResult {
    /// The result as a JSON document model (scenario descriptor inlined, so
    /// a result set is self-describing). Uniform fleets keep the classic
    /// `battery`/`battery_count` fields; every row also carries the fleet
    /// name (`"2xB1"`, `"B1+B2"`, ...).
    #[must_use]
    pub fn to_json_value(&self) -> JsonValue {
        let battery_label = if self.scenario.fleet.is_uniform() {
            self.scenario.fleet.batteries[0].name.clone()
        } else {
            self.scenario.fleet.name.clone()
        };
        #[allow(clippy::cast_precision_loss)]
        let mut fields = vec![
            ("fleet", JsonValue::String(self.scenario.fleet.name.clone())),
            ("battery", JsonValue::String(battery_label)),
            ("battery_count", JsonValue::Number(self.scenario.fleet.battery_count() as f64)),
            ("time_step", JsonValue::Number(self.scenario.disc.time_step)),
            ("charge_unit", JsonValue::Number(self.scenario.disc.charge_unit)),
            ("load", JsonValue::String(self.scenario.load.name())),
            ("policy", JsonValue::String(self.scenario.policy.name().to_owned())),
            ("backend", JsonValue::String(self.scenario.backend.name().to_owned())),
            ("lifetime_minutes", self.lifetime_minutes.map_or(JsonValue::Null, JsonValue::Number)),
            ("residual_charge", JsonValue::Number(self.residual_charge)),
            ("switches", JsonValue::Number(self.switches as f64)),
            ("decisions", JsonValue::Number(self.decisions as f64)),
            ("wall_micros", JsonValue::Number(self.wall_micros as f64)),
        ];
        if let Some(stats) = self.search {
            #[allow(clippy::cast_precision_loss)]
            fields.extend([
                ("nodes_explored", JsonValue::Number(stats.nodes_explored as f64)),
                ("memo_hits", JsonValue::Number(stats.memo_hits as f64)),
                ("dominance_prunes", JsonValue::Number(stats.dominance_prunes as f64)),
                ("charge_bound_prunes", JsonValue::Number(stats.charge_bound_prunes as f64)),
                (
                    "availability_bound_prunes",
                    JsonValue::Number(stats.availability_bound_prunes as f64),
                ),
            ]);
        }
        if let Some(seeded_by) = &self.seeded_by {
            fields.push(("seeded_by", JsonValue::String(seeded_by.clone())));
        }
        JsonValue::object(fields)
    }
}

/// Renders a full result set (spec + per-scenario results) as a JSON
/// document. This is the format of `BENCH_scenarios.json`.
///
/// # Errors
///
/// Returns [`EngineError::Json`] if a number is non-finite.
pub fn results_to_json(
    spec: &ScenarioSpec,
    results: &[ScenarioResult],
) -> Result<String, EngineError> {
    let document = JsonValue::object(vec![
        ("spec", spec.to_json_value()),
        ("results", JsonValue::Array(results.iter().map(ScenarioResult::to_json_value).collect())),
    ]);
    Ok(document.render()?)
}

/// Parses the `results` half of a document produced by [`results_to_json`]
/// or [`run_grid_streaming`] back into summary rows. Scenario descriptors in
/// results are denormalized (name strings), so the parse returns the raw
/// JSON objects for callers that want specific fields.
///
/// # Errors
///
/// Returns [`EngineError::Json`] / [`EngineError::InvalidSpec`] on
/// malformed documents.
pub fn results_from_json(text: &str) -> Result<(ScenarioSpec, Vec<JsonValue>), EngineError> {
    let document = JsonValue::parse(text)?;
    let spec = ScenarioSpec::from_json_value(
        document.get("spec").ok_or_else(|| EngineError::InvalidSpec("missing 'spec'".into()))?,
    )?;
    let results = document
        .get("results")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| EngineError::InvalidSpec("missing 'results'".into()))?
        .to_vec();
    Ok((spec, results))
}

/// Key of a cached system configuration: the per-battery parameters of the
/// fleet plus the discretization, all by exact bit pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SystemKey {
    batteries: Vec<(u64, u64, u64)>,
    time_step: u64,
    charge_unit: u64,
}

/// A validated system configuration with ready-built backends. The
/// discretized backend owns the recovery table, which is the expensive part
/// (`O(N)` log evaluations); grids that sweep loads or policies against one
/// battery setup reuse it across every cell a worker claims.
#[derive(Debug)]
struct CachedSystem {
    config: SystemConfig,
    discretized: battery_sched::backends::DiscretizedKibam,
    continuous: battery_sched::backends::ContinuousKibam,
    rv: battery_sched::backends::RvDiffusion,
    ideal: battery_sched::backends::IdealBattery,
}

/// Per-worker cache of validated system configurations.
///
/// [`run_scenario`] rebuilds battery parameters, discretization and —
/// costliest — the recovery table for every cell; workers hold one of these
/// so large grids that vary only load/policy/backend pay table construction
/// once per worker instead of once per cell.
#[derive(Debug, Default)]
pub struct WorkerCache {
    systems: HashMap<SystemKey, CachedSystem>,
}

impl WorkerCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn system(&mut self, scenario: &Scenario) -> Result<&mut CachedSystem, EngineError> {
        let key = SystemKey {
            batteries: scenario
                .fleet
                .batteries
                .iter()
                .map(|b| (b.capacity.to_bits(), b.c.to_bits(), b.k_prime.to_bits()))
                .collect(),
            time_step: scenario.disc.time_step.to_bits(),
            charge_unit: scenario.disc.charge_unit.to_bits(),
        };
        match self.systems.entry(key) {
            Entry::Occupied(entry) => Ok(entry.into_mut()),
            Entry::Vacant(entry) => {
                let fleet = scenario.fleet.to_fleet_spec()?;
                let disc = scenario.disc.to_discretization()?;
                let config = SystemConfig::from_fleet(fleet, disc);
                let discretized = config.discretized_model();
                let continuous = config.continuous_model();
                let rv = config.rv_model();
                let ideal = config.ideal_model();
                Ok(entry.insert(CachedSystem { config, discretized, continuous, rv, ideal }))
            }
        }
    }
}

/// Runs a single scenario with a fresh cache (see
/// [`run_scenario_with_cache`] for the reusing variant workers use).
///
/// # Errors
///
/// Propagates spec-validation, simulation and search-budget errors.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioResult, EngineError> {
    run_scenario_with_cache(scenario, &mut WorkerCache::new())
}

/// Runs a single scenario, reusing validated configurations and recovery
/// tables from `cache` (backends are reset before every simulation, so
/// reuse cannot leak state between cells).
///
/// # Errors
///
/// Same as [`run_scenario`].
pub fn run_scenario_with_cache(
    scenario: &Scenario,
    cache: &mut WorkerCache,
) -> Result<ScenarioResult, EngineError> {
    let profile = scenario.load.profile()?;
    let system = cache.system(scenario)?;
    let load = system.config.discretize(&profile)?;

    let start = Instant::now();
    let (outcome, lifetime_minutes, search, seeded_by) = match scenario.policy {
        PolicyKind::Optimal { budget } => {
            let scheduler = OptimalScheduler::with_budget(budget);
            let optimal = match scenario.backend {
                BackendKind::Discretized => {
                    scheduler.find_optimal_with(&system.config, &load, &mut system.discretized)?
                }
                BackendKind::Continuous => {
                    scheduler.find_optimal_with(&system.config, &load, &mut system.continuous)?
                }
                BackendKind::Rv => {
                    scheduler.find_optimal_with(&system.config, &load, &mut system.rv)?
                }
                BackendKind::Ideal => {
                    scheduler.find_optimal_with(&system.config, &load, &mut system.ideal)?
                }
            };
            // Replay the optimal decision sequence to recover the residual
            // charge and switch counts the deterministic cells report.
            let mut replay = FixedSchedule::new(optimal.decisions.clone());
            let outcome = simulate_on_backend(system, scenario.backend, &load, &mut replay)?;
            let stats = SearchStats {
                nodes_explored: optimal.nodes_explored as u64,
                memo_hits: optimal.memo_hits as u64,
                dominance_prunes: optimal.dominance_prunes as u64,
                charge_bound_prunes: optimal.charge_bound_prunes as u64,
                availability_bound_prunes: optimal.availability_bound_prunes as u64,
            };
            let minutes = optimal.lifetime_minutes(&system.config);
            let seeded_by = optimal.seeded_by.map(str::to_owned);
            (outcome, Some(minutes), Some(stats), seeded_by)
        }
        _ => {
            let mut policy =
                scenario.policy.build().expect("non-optimal policies always instantiate");
            let outcome = simulate_on_backend(system, scenario.backend, &load, policy.as_mut())?;
            let minutes = outcome.lifetime_minutes();
            (outcome, minutes, None, None)
        }
    };
    let wall_micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);

    Ok(ScenarioResult {
        scenario: scenario.clone(),
        lifetime_minutes,
        residual_charge: outcome.residual_charge(),
        switches: outcome.schedule().switches() as u64,
        decisions: outcome.schedule().assignments.len() as u64,
        wall_micros,
        search,
        seeded_by,
    })
}

/// Runs a policy simulation against the cached backend instance selected by
/// `backend` (the simulation loop is generic over the backend type, so the
/// dispatch happens here, once per cell).
fn simulate_on_backend(
    system: &mut CachedSystem,
    backend: BackendKind,
    load: &dkibam::DiscretizedLoad,
    policy: &mut dyn battery_sched::policy::SchedulingPolicy,
) -> Result<SystemOutcome, EngineError> {
    Ok(match backend {
        BackendKind::Discretized => {
            simulate_policy_with(&system.config, load, policy, &mut system.discretized)?
        }
        BackendKind::Continuous => {
            simulate_policy_with(&system.config, load, policy, &mut system.continuous)?
        }
        BackendKind::Rv => simulate_policy_with(&system.config, load, policy, &mut system.rv)?,
        BackendKind::Ideal => {
            simulate_policy_with(&system.config, load, policy, &mut system.ideal)?
        }
    })
}

/// One completed chunk of grid work, sent from a worker to the coordinator.
struct ChunkMessage {
    chunk_index: usize,
    /// Results of the chunk's scenarios, in grid order, up to the first
    /// error (if any).
    results: Vec<ScenarioResult>,
    /// The first error in the chunk, with its grid index.
    error: Option<(usize, EngineError)>,
}

/// Outcome of a chunked grid execution.
struct ChunkedOutcome {
    /// How many scenarios actually executed (including the failing one).
    /// With the poison flag, this stays far below the grid size when an
    /// early cell fails. Asserted by tests; not part of the public API.
    #[cfg_attr(not(test), allow(dead_code))]
    executed: usize,
    /// The first error in grid order, if any.
    error: Option<EngineError>,
}

/// Runs `scenarios` on `threads` workers in contiguous chunks, feeding
/// completed results to `sink` **in grid order** as soon as their turn
/// arrives. The sink returns whether to keep going: a `false` (e.g. the
/// output stream died) poisons the claim cursor exactly like a scenario
/// error does. On poison, in-flight chunks finish, no new chunks start, and
/// the sink stops receiving.
fn run_chunked(
    scenarios: &[Scenario],
    threads: usize,
    chunk_size: usize,
    mut sink: impl FnMut(ScenarioResult) -> bool,
) -> ChunkedOutcome {
    let chunk_size = chunk_size.max(1);
    let workers = threads.max(1).min(scenarios.len().max(1));
    if workers <= 1 || scenarios.len() <= chunk_size {
        // Inline execution: grid order is the execution order.
        let mut cache = WorkerCache::new();
        let mut executed = 0;
        for scenario in scenarios {
            executed += 1;
            match run_scenario_with_cache(scenario, &mut cache) {
                Ok(result) => {
                    if !sink(result) {
                        return ChunkedOutcome { executed, error: None };
                    }
                }
                Err(error) => return ChunkedOutcome { executed, error: Some(error) },
            }
        }
        return ChunkedOutcome { executed, error: None };
    }

    let next = AtomicUsize::new(0);
    let poison = AtomicBool::new(false);
    let (sender, receiver) = mpsc::channel::<ChunkMessage>();
    let mut executed = 0;
    let mut first_error = None;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let sender = sender.clone();
            let next = &next;
            let poison = &poison;
            scope.spawn(move || {
                let mut cache = WorkerCache::new();
                loop {
                    if poison.load(Ordering::Acquire) {
                        break;
                    }
                    let start = next.fetch_add(chunk_size, Ordering::Relaxed);
                    if start >= scenarios.len() {
                        break;
                    }
                    let end = (start + chunk_size).min(scenarios.len());
                    let mut results = Vec::with_capacity(end - start);
                    let mut error = None;
                    for (offset, scenario) in scenarios[start..end].iter().enumerate() {
                        match run_scenario_with_cache(scenario, &mut cache) {
                            Ok(result) => results.push(result),
                            Err(e) => {
                                poison.store(true, Ordering::Release);
                                error = Some((start + offset, e));
                                break;
                            }
                        }
                    }
                    let failed = error.is_some();
                    // A send only fails if the receiver is gone, which
                    // cannot happen while the coordinator loop below runs.
                    let _ = sender.send(ChunkMessage {
                        chunk_index: start / chunk_size,
                        results,
                        error,
                    });
                    if failed {
                        break;
                    }
                }
            });
        }
        drop(sender);

        // Coordinator: re-assemble grid order incrementally. Chunk indices
        // are claimed densely from zero, so the in-order stream advances as
        // soon as the next chunk lands; only out-of-order chunks wait.
        let mut pending: BTreeMap<usize, ChunkMessage> = BTreeMap::new();
        let mut next_chunk = 0;
        let mut sink_open = true;
        for message in receiver {
            executed += message.results.len() + usize::from(message.error.is_some());
            pending.insert(message.chunk_index, message);
            while let Some(message) = pending.remove(&next_chunk) {
                next_chunk += 1;
                if first_error.is_some() || !sink_open {
                    continue;
                }
                for result in message.results {
                    if !sink(result) {
                        // The consumer died (e.g. a stream-write failure):
                        // poison the cursor so workers stop claiming chunks
                        // instead of computing results nobody can receive.
                        sink_open = false;
                        poison.store(true, Ordering::Release);
                        break;
                    }
                }
                if let Some((_, error)) = message.error {
                    first_error = Some(error);
                }
            }
        }
    });
    ChunkedOutcome { executed, error: first_error }
}

/// Runs every scenario of the grid in parallel and returns the results in
/// grid order. Uses one worker per available CPU (capped by the number of
/// scenarios).
///
/// # Errors
///
/// Returns the first scenario error encountered (in grid order).
pub fn run_grid(spec: &ScenarioSpec) -> Result<Vec<ScenarioResult>, EngineError> {
    let threads = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    run_grid_with_threads(spec, threads)
}

/// Like [`run_grid`] with an explicit worker count (1 runs inline). A
/// failing cell poisons the grid: workers stop claiming chunks, and the
/// first error in grid order is returned.
///
/// # Errors
///
/// Same as [`run_grid`].
pub fn run_grid_with_threads(
    spec: &ScenarioSpec,
    threads: usize,
) -> Result<Vec<ScenarioResult>, EngineError> {
    let scenarios = spec.expand();
    let mut results = Vec::with_capacity(scenarios.len());
    let outcome = run_chunked(&scenarios, threads, DEFAULT_CHUNK_SIZE, |r| {
        results.push(r);
        true
    });
    match outcome.error {
        Some(error) => Err(error),
        None => Ok(results),
    }
}

/// Summary of a streamed grid run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Number of results written to the stream.
    pub written: usize,
}

/// An incremental writer for the [`results_to_json`] document format: the
/// spec is written up front, then each result is appended as one line, and
/// [`finish`](StreamingResultWriter::finish) closes the document. The output
/// parses with [`results_from_json`] and never holds more than one result in
/// memory.
#[derive(Debug)]
pub struct StreamingResultWriter<W: Write> {
    out: W,
    written: usize,
}

impl<W: Write> StreamingResultWriter<W> {
    /// Writes the document header (the spec and the opening of the result
    /// array).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Json`] for non-finite spec numbers and
    /// [`EngineError::Io`] on write failure.
    pub fn new(mut out: W, spec: &ScenarioSpec) -> Result<Self, EngineError> {
        let spec_json = spec.to_json_value().render()?;
        write!(out, "{{\"spec\":{spec_json},\"results\":[")?;
        Ok(Self { out, written: 0 })
    }

    /// Appends one result as a single line.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Json`] for non-finite numbers and
    /// [`EngineError::Io`] on write failure.
    pub fn push(&mut self, result: &ScenarioResult) -> Result<(), EngineError> {
        let line = result.to_json_value().render()?;
        if self.written > 0 {
            self.out.write_all(b",")?;
        }
        self.out.write_all(b"\n")?;
        self.out.write_all(line.as_bytes())?;
        self.written += 1;
        Ok(())
    }

    /// The number of results written so far.
    #[must_use]
    pub fn written(&self) -> usize {
        self.written
    }

    /// Closes the document and returns the inner writer (flushed).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] on write failure.
    pub fn finish(mut self) -> Result<W, EngineError> {
        self.out.write_all(b"\n]}")?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Runs the grid in parallel and **streams** results to `out` in grid order
/// as they complete, without materializing the full result set: memory use
/// is bounded by the out-of-order window (roughly `threads` chunks), not by
/// the grid size. `chunk_size` of `None` uses the default.
///
/// # Errors
///
/// Returns the first scenario error in grid order (the stream then holds a
/// truncated, unterminated document), or [`EngineError::Io`] if writing
/// fails.
pub fn run_grid_streaming<W: Write>(
    spec: &ScenarioSpec,
    threads: usize,
    chunk_size: Option<usize>,
    out: W,
) -> Result<StreamSummary, EngineError> {
    let scenarios = spec.expand();
    let mut writer = StreamingResultWriter::new(out, spec)?;
    let mut io_error: Option<EngineError> = None;
    let outcome =
        run_chunked(&scenarios, threads, chunk_size.unwrap_or(DEFAULT_CHUNK_SIZE), |result| {
            match writer.push(&result) {
                Ok(()) => true,
                Err(error) => {
                    // Returning `false` poisons the grid, so a dead output
                    // stream aborts the sweep instead of running it out.
                    io_error = Some(error);
                    false
                }
            }
        });
    if let Some(error) = outcome.error {
        return Err(error);
    }
    if let Some(error) = io_error {
        return Err(error);
    }
    let written = writer.written();
    writer.finish()?;
    Ok(StreamSummary { written })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BatterySpec, DiscSpec, FleetDef, LoadSpec, PolicyKind};
    use workload::paper_loads::TestLoad;

    fn small_grid() -> ScenarioSpec {
        ScenarioSpec {
            batteries: vec![BatterySpec::b1()],
            battery_counts: vec![2],
            fleets: vec![],
            discretizations: vec![DiscSpec::paper()],
            loads: vec![
                LoadSpec::Paper(TestLoad::Cl500),
                LoadSpec::Paper(TestLoad::Ils500),
                LoadSpec::Paper(TestLoad::IlsAlt),
                LoadSpec::Paper(TestLoad::Ill250),
            ],
            policies: vec![PolicyKind::RoundRobin, PolicyKind::BestOfTwo],
            backends: vec![BackendKind::Discretized],
        }
    }

    #[test]
    fn grid_runs_in_parallel_and_matches_serial_execution() {
        let spec = small_grid();
        let serial = run_grid_with_threads(&spec, 1).unwrap();
        let parallel = run_grid_with_threads(&spec, 4).unwrap();
        assert_eq!(serial.len(), 8);
        assert_eq!(parallel.len(), 8);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.scenario, b.scenario, "results must come back in grid order");
            assert_eq!(a.lifetime_minutes, b.lifetime_minutes);
            assert_eq!(a.switches, b.switches);
        }
    }

    #[test]
    fn results_match_the_paper_through_the_engine() {
        let spec = small_grid();
        let results = run_grid(&spec).unwrap();
        let rr_ils500 = results
            .iter()
            .find(|r| {
                r.scenario.load.name() == "ILs 500" && r.scenario.policy == PolicyKind::RoundRobin
            })
            .unwrap();
        let lifetime = rr_ils500.lifetime_minutes.unwrap();
        assert!((lifetime - 10.48).abs() < 0.15, "Table 5 ILs 500 round robin: {lifetime}");
    }

    #[test]
    fn result_set_round_trips_through_json() {
        let spec = small_grid();
        let results = run_grid(&spec).unwrap();
        let json = results_to_json(&spec, &results).unwrap();
        let (spec_back, raw_results) = results_from_json(&json).unwrap();
        assert_eq!(spec_back, spec);
        assert_eq!(raw_results.len(), results.len());
        for (raw, result) in raw_results.iter().zip(&results) {
            assert_eq!(raw.get("load").unwrap().as_str().unwrap(), result.scenario.load.name());
            assert_eq!(
                raw.get("lifetime_minutes").unwrap().as_f64(),
                result.lifetime_minutes,
                "lifetimes survive the JSON round-trip bit-exactly"
            );
            assert_eq!(raw.get("switches").unwrap().as_u64(), Some(result.switches));
        }
    }

    #[test]
    fn continuous_backend_runs_through_the_engine() {
        let mut spec = small_grid();
        spec.backends = vec![BackendKind::Continuous];
        spec.loads.truncate(2);
        let results = run_grid(&spec).unwrap();
        assert_eq!(results.len(), 4);
        for result in &results {
            assert!(result.lifetime_minutes.unwrap() > 1.0);
        }
    }

    #[test]
    fn invalid_scenarios_surface_errors() {
        let mut spec = small_grid();
        spec.batteries =
            vec![BatterySpec { name: "bad".into(), capacity: -5.0, c: 0.2, k_prime: 0.1 }];
        assert!(run_grid(&spec).is_err());
    }

    #[test]
    fn optimal_policy_runs_through_the_engine() {
        let mut spec = small_grid();
        spec.discretizations = vec![DiscSpec::coarse()];
        spec.loads = vec![LoadSpec::Paper(TestLoad::IlsAlt)];
        spec.policies = vec![PolicyKind::BestOfTwo, PolicyKind::optimal()];
        let results = run_grid(&spec).unwrap();
        assert_eq!(results.len(), 2);
        let best = &results[0];
        let optimal = &results[1];
        assert!(best.search.is_none());
        let stats = optimal.search.expect("optimal cells report search stats");
        assert!(stats.nodes_explored > 0);
        // Table 5 shape: the optimal schedule clearly beats best-of-two on
        // the alternating load.
        assert!(optimal.lifetime_minutes.unwrap() >= best.lifetime_minutes.unwrap());
        // The replayed schedule agrees with the search lifetime, so the
        // residual charge is the optimal schedule's residual.
        assert!(optimal.residual_charge > 0.0);
        // And the JSON row carries the stats.
        let json = optimal.to_json_value().render().unwrap();
        assert!(json.contains("\"nodes_explored\""));
    }

    #[test]
    fn ideal_backend_runs_through_the_engine() {
        let mut spec = small_grid();
        spec.loads = vec![LoadSpec::Paper(TestLoad::Cl500)];
        spec.policies = vec![PolicyKind::RoundRobin];
        spec.backends = vec![BackendKind::Discretized, BackendKind::Ideal];
        let results = run_grid(&spec).unwrap();
        assert_eq!(results.len(), 2);
        let kibam = results[0].lifetime_minutes.unwrap();
        let ideal = results[1].lifetime_minutes.unwrap();
        // Two ideal 5.5 A·min batteries under 500 mA last exactly 22 min;
        // the KiBaM pair strands most of its charge (Table 5: 4.53 min).
        assert!((ideal - 22.0).abs() < 0.05, "ideal lifetime {ideal}");
        assert!(ideal > 4.0 * kibam, "the ideal baseline dwarfs the KiBaM lifetime");
        let json = results[1].to_json_value().render().unwrap();
        assert!(json.contains("\"ideal\""));
    }

    #[test]
    fn rv_backend_runs_through_the_engine() {
        let mut spec = small_grid();
        spec.loads = vec![LoadSpec::Paper(TestLoad::Cl500), LoadSpec::Paper(TestLoad::IlsAlt)];
        spec.policies = vec![PolicyKind::RoundRobin, PolicyKind::BestOfTwo];
        spec.backends = vec![BackendKind::Discretized, BackendKind::Rv];
        let results = run_grid(&spec).unwrap();
        assert_eq!(results.len(), 8);
        for pair in results.chunks(2) {
            let (kibam, rv) = (&pair[0], &pair[1]);
            assert_eq!(rv.scenario.backend, BackendKind::Rv);
            let kibam_life = kibam.lifetime_minutes.unwrap();
            let rv_life = rv.lifetime_minutes.unwrap();
            // Both models share capacity and steady-state recovery gain, so
            // lifetimes land in the same range without being equal.
            assert!(
                rv_life > 0.5 * kibam_life && rv_life < 1.5 * kibam_life,
                "{}: kibam {kibam_life} vs rv {rv_life}",
                rv.scenario.label()
            );
        }
        let json = results.last().unwrap().to_json_value().render().unwrap();
        assert!(json.contains("\"rv\""));
    }

    #[test]
    fn rv_optimal_search_runs_through_the_engine() {
        let mut spec = small_grid();
        spec.discretizations = vec![DiscSpec::coarse()];
        spec.loads = vec![LoadSpec::Paper(TestLoad::IlsAlt)];
        spec.policies = vec![PolicyKind::BestOfTwo, PolicyKind::optimal()];
        spec.backends = vec![BackendKind::Rv];
        let results = run_grid(&spec).unwrap();
        let best = &results[0];
        let optimal = &results[1];
        let stats = optimal.search.expect("optimal cells report search stats");
        assert!(stats.nodes_explored > 0);
        assert!(optimal.lifetime_minutes.unwrap() >= best.lifetime_minutes.unwrap());
    }

    #[test]
    fn mixed_fleet_runs_end_to_end_with_the_optimal_policy() {
        // The acceptance scenario: a 1xB1 + 1xB2 fleet through ScenarioSpec
        // JSON -> engine -> PolicyKind::Optimal.
        let spec = ScenarioSpec {
            batteries: vec![],
            battery_counts: vec![],
            fleets: vec![FleetDef::mixed(vec![BatterySpec::b1(), BatterySpec::b2()])],
            discretizations: vec![DiscSpec::coarse()],
            loads: vec![LoadSpec::Paper(TestLoad::IlsAlt)],
            policies: vec![PolicyKind::BestOfTwo, PolicyKind::optimal()],
            backends: vec![BackendKind::Discretized],
        };
        // Round-trip the grid through JSON first, as a driver script would.
        let spec = ScenarioSpec::from_json(&spec.to_json().unwrap()).unwrap();
        let results = run_grid(&spec).unwrap();
        assert_eq!(results.len(), 2);
        let best = &results[0];
        let optimal = &results[1];
        assert_eq!(optimal.scenario.fleet.name, "B1+B2");
        let stats = optimal.search.expect("optimal cells report search stats");
        assert!(stats.nodes_explored > 0);
        assert!(optimal.lifetime_minutes.unwrap() >= best.lifetime_minutes.unwrap());
        // The mixed pair (16.5 A·min) outlives the paper's 2xB1 optimum.
        assert!(optimal.lifetime_minutes.unwrap() > 15.0);
        let json = optimal.to_json_value().render().unwrap();
        assert!(json.contains("\"fleet\":\"B1+B2\""));
    }

    #[test]
    fn optimal_budget_errors_poison_the_grid() {
        let mut spec = small_grid();
        spec.discretizations = vec![DiscSpec::coarse()];
        spec.policies = vec![PolicyKind::Optimal { budget: 1 }];
        let error = run_grid(&spec).unwrap_err();
        assert!(error.to_string().contains("budget"), "{error}");
    }

    #[test]
    fn worker_cache_reuses_systems_without_changing_results() {
        let spec = small_grid();
        let scenarios = spec.expand();
        let mut cache = WorkerCache::new();
        for scenario in &scenarios {
            let cached = run_scenario_with_cache(scenario, &mut cache).unwrap();
            let fresh = run_scenario(scenario).unwrap();
            assert_eq!(cached.lifetime_minutes, fresh.lifetime_minutes);
            assert_eq!(cached.switches, fresh.switches);
        }
        // All cells share one battery/disc/count triple.
        assert_eq!(cache.systems.len(), 1);
    }

    #[test]
    fn streamed_grid_matches_collected_grid() {
        let spec = small_grid();
        let collected = run_grid_with_threads(&spec, 4).unwrap();
        let mut buffer = Vec::new();
        let summary = run_grid_streaming(&spec, 4, Some(2), &mut buffer).unwrap();
        assert_eq!(summary.written, collected.len());
        let text = String::from_utf8(buffer).unwrap();
        let (spec_back, raw_results) = results_from_json(&text).unwrap();
        assert_eq!(spec_back, spec);
        assert_eq!(raw_results.len(), collected.len());
        for (raw, result) in raw_results.iter().zip(&collected) {
            assert_eq!(raw.get("load").unwrap().as_str().unwrap(), result.scenario.load.name());
            assert_eq!(raw.get("lifetime_minutes").unwrap().as_f64(), result.lifetime_minutes);
        }
    }

    #[test]
    fn poisoned_grid_stops_claiming_work() {
        // A huge grid whose very first cell fails: with the poison flag the
        // workers must stop long before the grid is exhausted.
        let mut spec = small_grid();
        spec.batteries =
            vec![BatterySpec { name: "bad".into(), capacity: -5.0, c: 0.2, k_prime: 0.1 }];
        spec.loads = (0..500).map(|seed| LoadSpec::random_paper_levels(seed, 5)).collect();
        let scenarios = spec.expand();
        assert_eq!(scenarios.len(), 1000);

        // Single worker: exactly one cell executes before the poison stops
        // the claim loop.
        let outcome = run_chunked(&scenarios, 1, 16, |_| true);
        assert!(outcome.error.is_some());
        assert_eq!(outcome.executed, 1);

        // Multiple workers: in-flight chunks may finish, but the grid never
        // runs to completion.
        let outcome = run_chunked(&scenarios, 4, 16, |_| true);
        assert!(outcome.error.is_some());
        assert!(
            outcome.executed < scenarios.len() / 2,
            "poison must stop the grid early (executed {})",
            outcome.executed
        );
    }

    #[test]
    fn dead_sink_poisons_the_grid() {
        // A sink that refuses results (e.g. the output stream died) must
        // stop the sweep instead of running the whole grid for nothing.
        let mut spec = small_grid();
        spec.loads = (0..1000).map(|seed| LoadSpec::random_paper_levels(seed, 20)).collect();
        let scenarios = spec.expand();

        // Inline path: execution stops at the first refused result.
        let outcome = run_chunked(&scenarios, 1, 16, |_| false);
        assert!(outcome.error.is_none());
        assert_eq!(outcome.executed, 1, "inline execution stops at the first refusal");

        // Parallel path: in-flight chunks may finish, but the grid never
        // runs to completion.
        let outcome = run_chunked(&scenarios, 4, 16, |_| false);
        assert!(outcome.error.is_none());
        assert!(
            outcome.executed < scenarios.len() / 2,
            "dead sink must stop the grid early (executed {})",
            outcome.executed
        );
    }

    #[test]
    fn first_error_in_grid_order_is_reported() {
        // Two bad batteries with distinct capacities: whichever worker hits
        // an error first, the reported one must be the first in grid order
        // (capacity -5, not -7).
        let mut spec = small_grid();
        spec.batteries = vec![
            BatterySpec { name: "bad-a".into(), capacity: -5.0, c: 0.2, k_prime: 0.1 },
            BatterySpec { name: "bad-b".into(), capacity: -7.0, c: 0.2, k_prime: 0.1 },
        ];
        for threads in [1, 4] {
            let error = run_grid_with_threads(&spec, threads).unwrap_err();
            assert!(error.to_string().contains("-5"), "got: {error}");
        }
    }
}
