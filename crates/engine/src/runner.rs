//! Executes expanded scenario grids, in parallel.
//!
//! The runner distributes scenarios over a fixed pool of scoped worker
//! threads (`std::thread::scope` + an atomic work index — the environment is
//! offline, so no `rayon`; the pattern is the same work-stealing-free
//! chunking `rayon::par_iter` would apply to a grid this shape). Results
//! come back in grid order regardless of completion order.

use crate::json::JsonValue;
use crate::spec::{BackendKind, Scenario, ScenarioSpec};
use crate::EngineError;
use battery_sched::system::{simulate_policy_with, SystemConfig, SystemOutcome};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// The measured outcome of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// System lifetime in minutes, or `None` if the load ended before the
    /// batteries died (finite loads only).
    pub lifetime_minutes: Option<f64>,
    /// Charge left in the batteries when the run stopped, in A·min.
    pub residual_charge: f64,
    /// Number of battery switches in the executed schedule.
    pub switches: u64,
    /// Number of scheduling decisions taken.
    pub decisions: u64,
    /// Wall-clock time of the simulation in microseconds.
    pub wall_micros: u64,
}

impl ScenarioResult {
    /// The result as a JSON document model (scenario descriptor inlined, so
    /// a result set is self-describing).
    #[must_use]
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("battery", JsonValue::String(self.scenario.battery.name.clone())),
            ("battery_count", JsonValue::Number(self.scenario.battery_count as f64)),
            ("time_step", JsonValue::Number(self.scenario.disc.time_step)),
            ("charge_unit", JsonValue::Number(self.scenario.disc.charge_unit)),
            ("load", JsonValue::String(self.scenario.load.name())),
            ("policy", JsonValue::String(self.scenario.policy.name().to_owned())),
            ("backend", JsonValue::String(self.scenario.backend.name().to_owned())),
            ("lifetime_minutes", self.lifetime_minutes.map_or(JsonValue::Null, JsonValue::Number)),
            ("residual_charge", JsonValue::Number(self.residual_charge)),
            ("switches", JsonValue::Number(self.switches as f64)),
            ("decisions", JsonValue::Number(self.decisions as f64)),
            ("wall_micros", JsonValue::Number(self.wall_micros as f64)),
        ])
    }
}

/// Renders a full result set (spec + per-scenario results) as a JSON
/// document. This is the format of `BENCH_scenarios.json`.
///
/// # Errors
///
/// Returns [`EngineError::Json`] if a number is non-finite.
pub fn results_to_json(
    spec: &ScenarioSpec,
    results: &[ScenarioResult],
) -> Result<String, EngineError> {
    let document = JsonValue::object(vec![
        ("spec", spec.to_json_value()),
        ("results", JsonValue::Array(results.iter().map(ScenarioResult::to_json_value).collect())),
    ]);
    Ok(document.render()?)
}

/// Parses the `results` half of a document produced by [`results_to_json`]
/// back into summary rows `(label fields, lifetime, residual)`. Scenario
/// descriptors in results are denormalized (name strings), so the parse
/// returns the raw JSON objects for callers that want specific fields.
///
/// # Errors
///
/// Returns [`EngineError::Json`] / [`EngineError::InvalidSpec`] on
/// malformed documents.
pub fn results_from_json(text: &str) -> Result<(ScenarioSpec, Vec<JsonValue>), EngineError> {
    let document = JsonValue::parse(text)?;
    let spec = ScenarioSpec::from_json_value(
        document.get("spec").ok_or_else(|| EngineError::InvalidSpec("missing 'spec'".into()))?,
    )?;
    let results = document
        .get("results")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| EngineError::InvalidSpec("missing 'results'".into()))?
        .to_vec();
    Ok((spec, results))
}

/// Runs a single scenario.
///
/// # Errors
///
/// Propagates spec-validation and simulation errors.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioResult, EngineError> {
    let params = scenario.battery.to_params()?;
    let disc = scenario.disc.to_discretization()?;
    let config = SystemConfig::new(params, disc, scenario.battery_count)?;
    let profile = scenario.load.profile()?;
    let load = config.discretize(&profile)?;
    let mut policy = scenario.policy.build();

    let start = Instant::now();
    let outcome: SystemOutcome = match scenario.backend {
        BackendKind::Discretized => {
            let mut model = config.discretized_model();
            simulate_policy_with(&config, &load, policy.as_mut(), &mut model)?
        }
        BackendKind::Continuous => {
            let mut model = config.continuous_model();
            simulate_policy_with(&config, &load, policy.as_mut(), &mut model)?
        }
    };
    let wall_micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);

    Ok(ScenarioResult {
        scenario: scenario.clone(),
        lifetime_minutes: outcome.lifetime_minutes(),
        residual_charge: outcome.residual_charge(),
        switches: outcome.schedule().switches() as u64,
        decisions: outcome.schedule().assignments.len() as u64,
        wall_micros,
    })
}

/// Runs every scenario of the grid in parallel and returns the results in
/// grid order. Uses one worker per available CPU (capped by the number of
/// scenarios).
///
/// # Errors
///
/// Returns the first scenario error encountered (in grid order).
pub fn run_grid(spec: &ScenarioSpec) -> Result<Vec<ScenarioResult>, EngineError> {
    let threads = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    run_grid_with_threads(spec, threads)
}

/// Like [`run_grid`] with an explicit worker count (1 runs inline).
///
/// # Errors
///
/// Same as [`run_grid`].
pub fn run_grid_with_threads(
    spec: &ScenarioSpec,
    threads: usize,
) -> Result<Vec<ScenarioResult>, EngineError> {
    let scenarios = spec.expand();
    let mut outcomes = run_scenarios_parallel(&scenarios, threads);
    // Surface the first error in grid order; otherwise unwrap all results.
    let mut results = Vec::with_capacity(outcomes.len());
    for outcome in outcomes.drain(..) {
        results.push(outcome?);
    }
    Ok(results)
}

/// Runs a list of scenarios on `threads` workers, returning one outcome per
/// scenario, in input order.
#[must_use]
pub fn run_scenarios_parallel(
    scenarios: &[Scenario],
    threads: usize,
) -> Vec<Result<ScenarioResult, EngineError>> {
    let workers = threads.max(1).min(scenarios.len().max(1));
    if workers <= 1 || scenarios.len() <= 1 {
        return scenarios.iter().map(run_scenario).collect();
    }

    let next = AtomicUsize::new(0);
    let (sender, receiver) = mpsc::channel::<(usize, Result<ScenarioResult, EngineError>)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let sender = sender.clone();
            let next = &next;
            scope.spawn(move || loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= scenarios.len() {
                    break;
                }
                // A send only fails if the receiver is gone, which cannot
                // happen while the scope is alive.
                let _ = sender.send((index, run_scenario(&scenarios[index])));
            });
        }
    });
    drop(sender);

    let mut outcomes: Vec<Option<Result<ScenarioResult, EngineError>>> =
        (0..scenarios.len()).map(|_| None).collect();
    for (index, outcome) in receiver {
        outcomes[index] = Some(outcome);
    }
    outcomes
        .into_iter()
        .map(|slot| slot.expect("every scenario index is executed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BatterySpec, DiscSpec, LoadSpec, PolicyKind};
    use workload::paper_loads::TestLoad;

    fn small_grid() -> ScenarioSpec {
        ScenarioSpec {
            batteries: vec![BatterySpec::b1()],
            battery_counts: vec![2],
            discretizations: vec![DiscSpec::paper()],
            loads: vec![
                LoadSpec::Paper(TestLoad::Cl500),
                LoadSpec::Paper(TestLoad::Ils500),
                LoadSpec::Paper(TestLoad::IlsAlt),
                LoadSpec::Paper(TestLoad::Ill250),
            ],
            policies: vec![PolicyKind::RoundRobin, PolicyKind::BestOfTwo],
            backends: vec![BackendKind::Discretized],
        }
    }

    #[test]
    fn grid_runs_in_parallel_and_matches_serial_execution() {
        let spec = small_grid();
        let serial = run_grid_with_threads(&spec, 1).unwrap();
        let parallel = run_grid_with_threads(&spec, 4).unwrap();
        assert_eq!(serial.len(), 8);
        assert_eq!(parallel.len(), 8);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.scenario, b.scenario, "results must come back in grid order");
            assert_eq!(a.lifetime_minutes, b.lifetime_minutes);
            assert_eq!(a.switches, b.switches);
        }
    }

    #[test]
    fn results_match_the_paper_through_the_engine() {
        let spec = small_grid();
        let results = run_grid(&spec).unwrap();
        let rr_ils500 = results
            .iter()
            .find(|r| {
                r.scenario.load.name() == "ILs 500" && r.scenario.policy == PolicyKind::RoundRobin
            })
            .unwrap();
        let lifetime = rr_ils500.lifetime_minutes.unwrap();
        assert!((lifetime - 10.48).abs() < 0.15, "Table 5 ILs 500 round robin: {lifetime}");
    }

    #[test]
    fn result_set_round_trips_through_json() {
        let spec = small_grid();
        let results = run_grid(&spec).unwrap();
        let json = results_to_json(&spec, &results).unwrap();
        let (spec_back, raw_results) = results_from_json(&json).unwrap();
        assert_eq!(spec_back, spec);
        assert_eq!(raw_results.len(), results.len());
        for (raw, result) in raw_results.iter().zip(&results) {
            assert_eq!(raw.get("load").unwrap().as_str().unwrap(), result.scenario.load.name());
            assert_eq!(
                raw.get("lifetime_minutes").unwrap().as_f64(),
                result.lifetime_minutes,
                "lifetimes survive the JSON round-trip bit-exactly"
            );
            assert_eq!(raw.get("switches").unwrap().as_u64(), Some(result.switches));
        }
    }

    #[test]
    fn continuous_backend_runs_through_the_engine() {
        let mut spec = small_grid();
        spec.backends = vec![BackendKind::Continuous];
        spec.loads.truncate(2);
        let results = run_grid(&spec).unwrap();
        assert_eq!(results.len(), 4);
        for result in &results {
            assert!(result.lifetime_minutes.unwrap() > 1.0);
        }
    }

    #[test]
    fn invalid_scenarios_surface_errors() {
        let mut spec = small_grid();
        spec.batteries =
            vec![BatterySpec { name: "bad".into(), capacity: -5.0, c: 0.2, k_prime: 0.1 }];
        assert!(run_grid(&spec).is_err());
    }
}
