//! Lane-range views that run scenario systems on shared batch state.
//!
//! The chunked grid runner packs every scenario system of a claimed chunk
//! into one struct-of-arrays batch per `(system configuration, backend)`
//! group ([`dkibam::DiscreteBatch`] / [`rv::RvBatch`]), so the table-driven
//! batch kernels step many cells through shared per-type tables instead of
//! chasing one `Vec` of battery states per scenario. The simulation loop
//! itself ([`battery_sched::system::simulate_policy_with`]) is reused
//! verbatim: a [`BatchDiscreteView`] / [`BatchRvView`] adapts one contiguous
//! lane range of the batch to the [`BatteryModel`] contract, with every
//! observable quantity (charges, emptiness, state words, advances) computed
//! by exactly the same expressions as the scalar backends — the batched
//! grid results are bit-identical to the scalar path, which the
//! `batch_equivalence` integration suite enforces.

use battery_sched::model::{BatteryModel, ModelAdvance, StateKey, MAX_KEY_BATTERIES};
use battery_sched::schedule::BatteryCharge;
use battery_sched::SchedError;
use dkibam::{DiscreteBatch, DiscreteBattery, DiscreteFleet};
use kibam::BatteryParams;
use rv::{RvBatch, RvCell, RvFleet};
use std::ops::Range;

/// One scenario system's lane range of a shared [`DiscreteBatch`], as a
/// [`BatteryModel`]. The mirror of
/// [`battery_sched::backends::DiscretizedKibam`]: every method evaluates the
/// same expression over the same per-type static data, so states and
/// outcomes are bit-identical to the scalar backend.
#[derive(Debug)]
pub(crate) struct BatchDiscreteView<'a> {
    batch: &'a mut DiscreteBatch,
    lanes: Range<usize>,
    fleet: &'a DiscreteFleet,
    /// Per-type parameters, indexed by type-group id (the layout the batch
    /// kernels consume; hoisted once per chunk group).
    type_params: &'a [BatteryParams],
}

impl<'a> BatchDiscreteView<'a> {
    pub(crate) fn new(
        batch: &'a mut DiscreteBatch,
        lanes: Range<usize>,
        fleet: &'a DiscreteFleet,
        type_params: &'a [BatteryParams],
    ) -> Self {
        debug_assert_eq!(lanes.len(), fleet.len(), "one lane per fleet battery");
        Self { batch, lanes, fleet, type_params }
    }

    fn lane(&self, index: usize) -> usize {
        self.lanes.start + index
    }
}

impl BatteryModel for BatchDiscreteView<'_> {
    type State = Vec<DiscreteBattery>;

    fn backend_name(&self) -> &'static str {
        "discretized"
    }

    fn battery_count(&self) -> usize {
        self.lanes.len()
    }

    fn type_of(&self, index: usize) -> usize {
        self.fleet.type_of(index)
    }

    fn reset(&mut self) {
        self.batch.reset_range(self.lanes.clone(), self.type_params, self.fleet.disc());
    }

    fn save_state(&self) -> Vec<DiscreteBattery> {
        self.lanes.clone().map(|lane| self.batch.lane(lane)).collect()
    }

    fn save_state_into(&self, out: &mut Vec<DiscreteBattery>) {
        out.clear();
        out.extend(self.lanes.clone().map(|lane| self.batch.lane(lane)));
    }

    fn restore_state(&mut self, state: &Vec<DiscreteBattery>) {
        for (index, battery) in state.iter().enumerate() {
            self.batch.set_lane(self.lane(index), battery);
        }
    }

    fn is_empty(&self, index: usize) -> bool {
        self.batch.lane_is_empty(self.lane(index), self.type_params)
    }

    fn memo_key(&self) -> Option<StateKey> {
        StateKey::from_typed_words(
            (0..self.lanes.len())
                .map(|i| (self.fleet.type_of(i), self.batch.state_word(self.lane(i)))),
        )
    }

    fn key_dominates(&self, a: &StateKey, b: &StateKey) -> bool {
        a.dominates_pairwise(b, DiscreteBattery::word_dominates)
    }

    fn charge(&self, index: usize) -> BatteryCharge {
        let battery = self.batch.lane(self.lane(index));
        BatteryCharge {
            total: battery.total_charge(self.fleet.disc()),
            available: battery.available_charge(self.fleet.params_of(index), self.fleet.disc()),
        }
    }

    fn total_charge(&self) -> f64 {
        // Bit-identical to `MultiBatteryState::total_charge`: one multiply
        // over the integer unit sum, not a sum of per-battery products.
        let units: u64 = self.lanes.clone().map(|l| u64::from(self.batch.charge_units(l))).sum();
        #[allow(clippy::cast_precision_loss)]
        let units = units as f64;
        units * self.fleet.disc().charge_unit()
    }

    fn usable_charge(&self) -> f64 {
        self.lanes
            .clone()
            .filter(|&lane| !self.batch.is_retired(lane))
            .map(|lane| f64::from(self.batch.charge_units(lane)) * self.fleet.disc().charge_unit())
            .sum()
    }

    fn service_envelope_into(
        &self,
        index: usize,
        max_units_per_draw: u32,
        out: &mut dkibam::ServiceEnvelope,
    ) -> Option<&dkibam::ServiceRateTable> {
        let battery = self.batch.lane(self.lane(index));
        let table = self.fleet.service_of(index);
        // A retired battery serves nothing, ever: build from zero charge.
        let charge = if battery.is_observed_empty() { 0 } else { battery.charge_units() };
        table.build_envelope(charge, battery.height_units(), max_units_per_draw, out);
        Some(table)
    }

    fn states_identical(&self, a: usize, b: usize) -> bool {
        self.fleet.type_of(a) == self.fleet.type_of(b)
            && self.batch.lane(self.lane(a)) == self.batch.lane(self.lane(b))
    }

    fn advance_idle(&mut self, steps: u64) {
        self.batch.recover_range(self.lanes.clone(), steps, self.fleet.type_tables());
    }

    fn advance_job(
        &mut self,
        active: usize,
        steps: u64,
        draw_interval_steps: u32,
        units_per_draw: u32,
    ) -> Result<ModelAdvance, SchedError> {
        if active >= self.lanes.len() {
            return Err(SchedError::InvalidBatteryIndex { index: active, count: self.lanes.len() });
        }
        let advance = self.batch.advance_job_range(
            self.lanes.clone(),
            self.lane(active),
            steps,
            draw_interval_steps,
            units_per_draw,
            self.type_params,
            self.fleet.type_tables(),
        )?;
        Ok(ModelAdvance { steps_consumed: advance.steps_consumed, completed: advance.completed })
    }
}

/// One scenario system's lane range of a shared [`RvBatch`], as a
/// [`BatteryModel`]. The mirror of
/// [`battery_sched::backends::RvDiffusion`]; the batch kernels share the
/// scalar path's raw serve/recover routines, so cell states are
/// bit-identical to the scalar backend.
#[derive(Debug)]
pub(crate) struct BatchRvView<'a> {
    batch: &'a mut RvBatch,
    lanes: Range<usize>,
    fleet: &'a RvFleet,
}

impl<'a> BatchRvView<'a> {
    pub(crate) fn new(batch: &'a mut RvBatch, lanes: Range<usize>, fleet: &'a RvFleet) -> Self {
        debug_assert_eq!(lanes.len(), fleet.len(), "one lane per fleet battery");
        Self { batch, lanes, fleet }
    }

    fn lane(&self, index: usize) -> usize {
        self.lanes.start + index
    }
}

impl BatteryModel for BatchRvView<'_> {
    type State = Vec<RvCell>;

    fn backend_name(&self) -> &'static str {
        "rv"
    }

    fn battery_count(&self) -> usize {
        self.lanes.len()
    }

    fn type_of(&self, index: usize) -> usize {
        self.fleet.type_of(index)
    }

    fn reset(&mut self) {
        self.batch.reset_range(self.lanes.clone());
    }

    fn save_state(&self) -> Vec<RvCell> {
        self.lanes.clone().map(|lane| self.batch.lane(lane)).collect()
    }

    fn save_state_into(&self, out: &mut Vec<RvCell>) {
        out.clear();
        out.extend(self.lanes.clone().map(|lane| self.batch.lane(lane)));
    }

    fn restore_state(&mut self, state: &Vec<RvCell>) {
        for (index, cell) in state.iter().enumerate() {
            self.batch.set_lane(self.lane(index), cell);
        }
    }

    fn is_empty(&self, index: usize) -> bool {
        self.batch.lane_is_empty(self.lane(index), self.fleet.type_tables())
    }

    fn memo_key(&self) -> Option<StateKey> {
        let mut words = [(0usize, 0u128); MAX_KEY_BATTERIES];
        if self.lanes.len() > words.len() {
            return None;
        }
        for (index, slot) in words.iter_mut().enumerate().take(self.lanes.len()) {
            let word = self.batch.state_word(self.lane(index), self.fleet.type_tables())?;
            *slot = (self.fleet.type_of(index), word);
        }
        StateKey::from_typed_words(words.into_iter().take(self.lanes.len()))
    }

    fn key_dominates(&self, a: &StateKey, b: &StateKey) -> bool {
        a.dominates_pairwise(b, RvCell::word_dominates)
    }

    fn charge(&self, index: usize) -> BatteryCharge {
        let table = self.fleet.table_of(index);
        let cell = self.batch.lane(self.lane(index));
        BatteryCharge { total: table.total_charge(&cell), available: table.apparent_charge(&cell) }
    }

    fn usable_charge(&self) -> f64 {
        self.lanes
            .clone()
            .enumerate()
            .filter(|&(_, lane)| !self.batch.is_retired(lane))
            .map(|(index, lane)| self.fleet.table_of(index).total_charge(&self.batch.lane(lane)))
            .sum()
    }

    // `service_envelope_into` deliberately stays at the trait default
    // (`None`), exactly like the scalar RV backend.

    fn states_identical(&self, a: usize, b: usize) -> bool {
        self.fleet.type_of(a) == self.fleet.type_of(b)
            && self.batch.lane(self.lane(a)) == self.batch.lane(self.lane(b))
    }

    fn advance_idle(&mut self, steps: u64) {
        self.batch.recover_range(self.lanes.clone(), steps, self.fleet.type_tables());
    }

    fn advance_job(
        &mut self,
        active: usize,
        steps: u64,
        draw_interval_steps: u32,
        units_per_draw: u32,
    ) -> Result<ModelAdvance, SchedError> {
        if active >= self.lanes.len() {
            return Err(SchedError::InvalidBatteryIndex { index: active, count: self.lanes.len() });
        }
        let advance = self.batch.advance_job_range(
            self.lanes.clone(),
            self.lane(active),
            steps,
            draw_interval_steps,
            units_per_draw,
            self.fleet.type_tables(),
        );
        Ok(ModelAdvance { steps_consumed: advance.steps_consumed, completed: advance.completed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use battery_sched::backends::{DiscretizedKibam, RvDiffusion};
    use dkibam::Discretization;
    use kibam::FleetSpec;

    fn mixed_spec() -> FleetSpec {
        FleetSpec::new(vec![BatteryParams::itsy_b1(), BatteryParams::itsy_b2()]).unwrap()
    }

    fn discrete_type_params(fleet: &DiscreteFleet) -> Vec<BatteryParams> {
        (0..fleet.spec().type_count()).map(|t| *fleet.spec().type_params(t)).collect()
    }

    /// Drives a view and its scalar backend through the same epochs and
    /// compares every observable the simulation loop reads.
    #[test]
    fn discrete_view_mirrors_the_scalar_backend() {
        let disc = Discretization::paper_default();
        let fleet = DiscreteFleet::new(mixed_spec(), disc);
        let params = discrete_type_params(&fleet);
        let mut batch = DiscreteBatch::new();
        // A leading foreign system shifts the lane base off zero.
        let _other = batch.push_fleet(&fleet);
        let lanes = batch.push_fleet(&fleet);
        let mut view = BatchDiscreteView::new(&mut batch, lanes, &fleet, &params);
        let mut scalar = DiscretizedKibam::from_fleet(&mixed_spec(), &disc);

        assert_eq!(view.backend_name(), scalar.backend_name());
        assert_eq!(view.battery_count(), 2);
        assert_eq!(view.type_of(1), scalar.type_of(1));
        for (active, steps) in [(0usize, 700u64), (1, 300), (0, 2_000), (1, 50)] {
            let a = view.advance_job(active, steps, 2, 1).unwrap();
            let b = scalar.advance_job(active, steps, 2, 1).unwrap();
            assert_eq!(a, b);
            view.advance_idle(40);
            scalar.advance_idle(40);
            assert_eq!(view.memo_key(), scalar.memo_key());
            assert_eq!(view.total_charge().to_bits(), scalar.total_charge().to_bits());
            assert_eq!(view.usable_charge().to_bits(), scalar.usable_charge().to_bits());
            assert_eq!(view.available(), scalar.available());
            for index in 0..2 {
                let (x, y) = (view.charge(index), scalar.charge(index));
                assert_eq!(x.total.to_bits(), y.total.to_bits());
                assert_eq!(x.available.to_bits(), y.available.to_bits());
            }
            assert_eq!(view.states_identical(0, 1), scalar.states_identical(0, 1));
        }
        // Save/restore round-trips through the lane range.
        let snapshot = view.save_state();
        view.reset();
        assert_eq!(view.memo_key(), {
            scalar.reset();
            scalar.memo_key()
        });
        view.restore_state(&snapshot);
        let mut scratch = Vec::new();
        view.save_state_into(&mut scratch);
        assert_eq!(scratch, snapshot);
        assert!(view.advance_job(2, 10, 2, 1).is_err(), "indices are range-local");
    }

    #[test]
    fn rv_view_mirrors_the_scalar_backend() {
        let disc = Discretization::paper_default();
        let fleet = RvFleet::new(mixed_spec(), disc);
        let mut batch = RvBatch::new();
        let _other = batch.push_fleet(&fleet);
        let lanes = batch.push_fleet(&fleet);
        let mut view = BatchRvView::new(&mut batch, lanes, &fleet);
        let mut scalar = RvDiffusion::from_fleet(&mixed_spec(), &disc);

        assert_eq!(view.backend_name(), scalar.backend_name());
        for (active, steps) in [(0usize, 700u64), (1, 300), (0, 2_000), (1, 50)] {
            let a = view.advance_job(active, steps, 2, 1).unwrap();
            let b = scalar.advance_job(active, steps, 2, 1).unwrap();
            assert_eq!(a, b);
            view.advance_idle(40);
            scalar.advance_idle(40);
            assert_eq!(view.memo_key(), scalar.memo_key());
            assert_eq!(view.total_charge().to_bits(), scalar.total_charge().to_bits());
            assert_eq!(view.usable_charge().to_bits(), scalar.usable_charge().to_bits());
            assert_eq!(view.available(), scalar.available());
            for index in 0..2 {
                let (x, y) = (view.charge(index), scalar.charge(index));
                assert_eq!(x.total.to_bits(), y.total.to_bits());
                assert_eq!(x.available.to_bits(), y.available.to_bits());
            }
            assert_eq!(view.states_identical(0, 1), scalar.states_identical(0, 1));
        }
        let snapshot = view.save_state();
        view.reset();
        scalar.reset();
        assert_eq!(view.memo_key(), scalar.memo_key());
        view.restore_state(&snapshot);
        let mut scratch = Vec::new();
        view.save_state_into(&mut scratch);
        assert_eq!(scratch, snapshot);
        assert!(view.advance_job(2, 10, 2, 1).is_err(), "indices are range-local");
    }

    #[test]
    fn sibling_lane_ranges_stay_independent() {
        let disc = Discretization::paper_default();
        let fleet = DiscreteFleet::new(mixed_spec(), disc);
        let params = discrete_type_params(&fleet);
        let mut batch = DiscreteBatch::new();
        let first = batch.push_fleet(&fleet);
        let second = batch.push_fleet(&fleet);
        let fresh_key = {
            let view = BatchDiscreteView::new(&mut batch, second.clone(), &fleet, &params);
            view.memo_key()
        };
        {
            let mut view = BatchDiscreteView::new(&mut batch, first, &fleet, &params);
            view.advance_job(0, 100_000, 2, 1).unwrap();
        }
        let view = BatchDiscreteView::new(&mut batch, second, &fleet, &params);
        assert_eq!(view.memo_key(), fresh_key, "a sibling system's run must not leak");
    }
}
