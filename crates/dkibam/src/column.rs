//! Exact single-battery service columns over a load's draw-slot timeline.
//!
//! The relaxation bound of the optimal search (see `battery-sched` and the
//! `relax` crate) treats the fleet as a transportation problem: battery `i`
//! may serve at most `column[i][e]` charge units among the job epochs
//! `0..=e`, and the load demands its draws per epoch. This module computes
//! those per-battery **columns exactly** with a dynamic program over the
//! battery's real discrete dynamics — the ROADMAP's "exact single-battery
//! DP over the load's draw-slot timeline", shipped as the bound's column
//! generator.
//!
//! At every draw slot a battery either serves the draw or recovers through
//! it (another battery serving); the DP carries a Pareto front of
//! `(battery state, units served, epoch phase)` traces over the serve/skip
//! tree. Crucially the serve/skip freedom is **per-epoch contiguous**, not
//! per-draw: the search's decision points are job-epoch starts and battery
//! deaths only (`advance_job` returns `completed: false` solely on an
//! emptiness observation, never for a voluntary switch), so within one job
//! epoch a real battery serves exactly one contiguous run of draws —
//! whole epoch, or a segment bounded by its own or another battery's
//! death. The DP enforces this with a three-phase flag per trace that
//! resets at every job-epoch boundary (`Idle` → may start a run;
//! `Serving` → may continue or stop for good; `Done` → recovers through
//! the epoch's remaining draws), which forbids the cherry-picking of
//! alternate draws that made the unconstrained column degenerate to the
//! charge budget on fresh fleets:
//!
//! * a trace whose battery state dominates another's
//!   ([`DiscreteBattery::dominates`]) with at least as many units served
//!   *and* at least as much in-epoch freedom (`Idle ⊃ Serving ⊃ Done` in
//!   continuation options) makes the other redundant — every continuation
//!   is weakly better;
//! * retirement (a post-draw emptiness observation — the killing draw's
//!   units still count, exactly as in [`crate::multi`]) collapses a trace
//!   to the scalar "most units any retired trace served";
//! * a battery that starts at (or recovers into) the Eq. 8 emptiness
//!   region without being *observed* empty simply skips draws until
//!   recovery lifts it back out, again exactly as the real dynamics do.
//!
//! With an unbounded front the DP is exact (asserted against exhaustive
//! serve/skip enumeration in this module's tests). Production callers cap
//! the front: when it overflows, the lowest-served traces are merged into
//! one **super-state** (max charge, min height difference, max recovery
//! clock, max served) that dominates each of them, so a capped column can
//! only over-count — an admissible upper bound, never an undercount.
//! Idle epochs and post-draw remainders advance in O(1) bulk recovery
//! ([`RecoveryTable::skip`]); the column records one cumulative entry per
//! job epoch, evaluated at the epoch's last draw instant.

use crate::{DiscreteBattery, DiscreteEpoch, RecoveryTable};
use kibam::BatteryParams;

/// Default Pareto-front cap used by the search's relaxation bound. On the
/// paper's alternating full-horizon timelines the uncapped front peaks
/// near ~85 traces and a cap of 64 reproduces the uncapped column exactly,
/// while a small cap (e.g. 12) inflates the tail ~2× through repeated
/// super-state merges; 64 keeps the column exact there at an acceptable
/// build cost (columns are cached by the search).
pub const DEFAULT_FRONT_CAP: usize = 64;

/// A battery's per-epoch service capacities: for each job epoch `e`,
/// `units[e]` is the most charge units the battery could serve among the
/// draws of job epochs `0..=e`, and `full_epochs[e]` is the most of those
/// epochs it could serve *in their entirety* (every draw, first to last).
/// Both are cumulative. The full-epoch column feeds the relaxation
/// bound's serialization constraint: a fleet of `B` batteries covering
/// `E` whole job epochs must serve at least `E − deaths` of them with a
/// single battery each (a handoff mid-epoch requires a death), so
/// `Σ_i full_epochs[i][e]` bounds how deep the fleet can survive no
/// matter how the charge budget looks.
#[derive(Debug, Clone, Default)]
pub struct ServiceColumn {
    /// Cumulative serveable charge units per job epoch.
    pub units: Vec<u64>,
    /// Cumulative fully-serveable job epochs per job epoch.
    pub full_epochs: Vec<u64>,
}

impl ServiceColumn {
    /// Number of job-epoch entries (both columns always agree).
    #[must_use]
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the column holds no entries yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    fn clear(&mut self) {
        self.units.clear();
        self.full_epochs.clear();
    }

    /// Copies `other`'s entries into `self`, reusing the allocations.
    pub fn clone_from_column(&mut self, other: &Self) {
        self.units.clone_from(&other.units);
        self.full_epochs.clone_from(&other.full_epochs);
    }
}

/// Where a trace stands in the current job epoch's single contiguous
/// serve-run. Ordered by in-epoch freedom: every continuation available
/// to a `Done` trace (skip the epoch's remaining draws) is available to a
/// `Serving` one (which may also keep serving), and every continuation of
/// `Serving` is available to `Idle` (which may also wait and start its
/// run later). The flag resets to `Idle` at each job-epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Phase {
    /// Stopped serving this epoch (its run ended): may only recover.
    Done,
    /// Mid-run: may serve the next draw or stop for the epoch.
    Serving,
    /// Has not served this epoch: may skip freely or start its run.
    Idle,
}

/// One serve/skip hypothesis of the units DP: a reachable battery state
/// together with the units it has served so far and its in-epoch run
/// phase.
#[derive(Debug, Clone, Copy)]
struct Trace {
    battery: DiscreteBattery,
    served: u64,
    phase: Phase,
}

/// Whether trace `a` makes trace `b` redundant: at least as many units
/// served from a battery state that dominates (reflexively) `b`'s, with
/// at least as much in-epoch freedom left.
fn trace_dominates(a: &Trace, b: &Trace) -> bool {
    a.served >= b.served && a.phase >= b.phase && a.battery.dominates(&b.battery)
}

/// One hypothesis of the full-epoch DP: a reachable battery state
/// together with the number of job epochs it has served whole. This DP
/// branches per **epoch** (serve it whole or skip it whole), not per
/// draw: a partial in-epoch run costs charge and recovery without ever
/// earning the credit, so it is dominated by skipping — the binary
/// branching loses no maxima.
#[derive(Debug, Clone, Copy)]
struct EpochTrace {
    battery: DiscreteBattery,
    epochs: u64,
}

/// Whether epoch-trace `a` makes epoch-trace `b` redundant.
fn epoch_trace_dominates(a: &EpochTrace, b: &EpochTrace) -> bool {
    a.epochs >= b.epochs && a.battery.dominates(&b.battery)
}

/// Reusable builder of exact per-battery service columns. Holds the trace
/// arenas so repeated builds (one per battery per search node, cached by
/// the caller) do not allocate in steady state.
#[derive(Debug, Clone)]
pub struct ColumnBuilder {
    front: Vec<Trace>,
    next: Vec<Trace>,
    epoch_front: Vec<EpochTrace>,
    epoch_next: Vec<EpochTrace>,
    cap: usize,
}

impl Default for ColumnBuilder {
    fn default() -> Self {
        Self::new(DEFAULT_FRONT_CAP)
    }
}

impl ColumnBuilder {
    /// Creates a builder whose Pareto front is capped at `cap` traces
    /// (minimum 1). Columns built with a finite cap are admissible upper
    /// bounds; `usize::MAX` keeps the DP exact.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self {
            front: Vec::new(),
            next: Vec::new(),
            epoch_front: Vec::new(),
            epoch_next: Vec::new(),
            cap: cap.max(1),
        }
    }

    /// Fills `out` with the battery's cumulative service column over
    /// `epochs`: one entry per **job** epoch (idle epochs only contribute
    /// recovery time), `out.units[e]` = the most charge units the battery
    /// could serve among the draw slots of job epochs `0..=e`, evaluated
    /// at epoch `e`'s last draw instant, and `out.full_epochs[e]` = the
    /// most of those epochs it could serve whole. `first_epoch_offset`
    /// steps of `epochs[0]` have already elapsed (the search's mid-epoch
    /// position; always a multiple of the draw interval there), which
    /// also disqualifies `epochs[0]` from full-serve credit — a death
    /// already split it.
    pub fn build(
        &mut self,
        battery: DiscreteBattery,
        params: &BatteryParams,
        recovery: &RecoveryTable,
        epochs: &[DiscreteEpoch],
        first_epoch_offset: u64,
        out: &mut ServiceColumn,
    ) {
        out.clear();
        self.front.clear();
        self.epoch_front.clear();
        let mut best_retired: u64 = 0;
        let mut best_retired_epochs: u64 = 0;
        // Hard cap on every emission: a battery holding `n` charge units
        // can never serve more than `n`, whatever the capped front's merged
        // super-states claim (the merge takes the max charge of one trace
        // and the max served of another, so long timelines can inflate a
        // super-state's `served` past the physical budget).
        let charge_cap = u64::from(battery.charge_units());
        if !battery.is_observed_empty() {
            // `Idle` also covers the search's mid-epoch positions
            // (`first_epoch_offset > 0`): those follow a battery death,
            // and a battery still alive there cannot have served earlier
            // in the epoch — it would have kept serving to the epoch's
            // end or died.
            self.front.push(Trace { battery, served: 0, phase: Phase::Idle });
            self.epoch_front.push(EpochTrace { battery, epochs: 0 });
        }
        let mut offset = first_epoch_offset;
        for epoch in epochs {
            let whole = offset == 0;
            let duration = epoch.duration_steps().saturating_sub(offset);
            offset = 0;
            if epoch.is_idle() {
                for trace in &mut self.front {
                    trace.battery.advance_recovery(duration, recovery);
                }
                for trace in &mut self.epoch_front {
                    trace.battery.advance_recovery(duration, recovery);
                }
                continue;
            }
            let interval = u64::from(epoch.draw_interval_steps());
            let units = epoch.units_per_draw();
            let draws = duration / interval;
            if self.front.is_empty() && self.epoch_front.is_empty() {
                // Every hypothesis has retired: the column is flat from
                // here on, no matter how many epochs remain.
                out.units.push(best_retired.min(charge_cap));
                out.full_epochs.push(best_retired_epochs);
                continue;
            }
            for _ in 0..draws {
                self.next.clear();
                for slot in 0..self.front.len() {
                    let trace = self.front[slot];
                    let mut recovered = trace.battery;
                    recovered.advance_recovery(interval, recovery);
                    // Skip branch: another battery serves this draw. A
                    // trace mid-run that skips has ended its contiguous
                    // run — it may not serve again this epoch.
                    let skipped = match trace.phase {
                        Phase::Idle => Phase::Idle,
                        Phase::Serving | Phase::Done => Phase::Done,
                    };
                    insert(
                        &mut self.next,
                        Trace { battery: recovered, served: trace.served, phase: skipped },
                    );
                    // Serve branch: only a currently non-empty battery
                    // whose run is open (starting or mid-run) can serve;
                    // a post-draw emptiness observation retires the trace
                    // with the killing draw's units counted.
                    if trace.phase != Phase::Done && !recovered.is_empty(params) {
                        let mut serving = recovered;
                        serving.draw(units);
                        let served = trace.served + u64::from(units);
                        if serving.is_empty(params) {
                            best_retired = best_retired.max(served);
                        } else {
                            insert(
                                &mut self.next,
                                Trace { battery: serving, served, phase: Phase::Serving },
                            );
                        }
                    }
                }
                std::mem::swap(&mut self.front, &mut self.next);
                self.enforce_cap();
            }
            let peak = self.front.iter().map(|t| t.served).max().unwrap_or(0).max(best_retired);
            out.units.push(peak.min(charge_cap));
            // The epoch is over: every run closes and the next epoch is a
            // fresh contiguity choice. Traces that differed only in phase
            // collapse here, shrinking the front.
            self.next.clear();
            for slot in 0..self.front.len() {
                let mut trace = self.front[slot];
                trace.phase = Phase::Idle;
                insert(&mut self.next, trace);
            }
            std::mem::swap(&mut self.front, &mut self.next);
            let remainder = duration - draws * interval;
            if remainder > 0 {
                for trace in &mut self.front {
                    trace.battery.advance_recovery(remainder, recovery);
                }
            }

            // The full-epoch DP branches once per epoch: skip it whole
            // (pure recovery) or — for whole epochs with draws — serve it
            // whole, which succeeds only if the battery survives every
            // draw (dying on the final draw still completes the epoch,
            // exactly as the real dynamics count the killing draw).
            self.epoch_next.clear();
            for slot in 0..self.epoch_front.len() {
                let trace = self.epoch_front[slot];
                let mut skipping = trace.battery;
                skipping.advance_recovery(duration, recovery);
                insert_epoch(
                    &mut self.epoch_next,
                    EpochTrace { battery: skipping, epochs: trace.epochs },
                );
                if whole && draws > 0 {
                    let mut serving = trace.battery;
                    let mut outcome = FullServe::Completed;
                    for draw in 0..draws {
                        serving.advance_recovery(interval, recovery);
                        if serving.is_empty(params) {
                            // Pre-draw death: the draw goes unserved.
                            outcome = FullServe::Died;
                            break;
                        }
                        serving.draw(units);
                        if serving.is_empty(params) {
                            outcome = if draw + 1 == draws {
                                FullServe::CompletedAndDied
                            } else {
                                FullServe::Died
                            };
                            break;
                        }
                    }
                    match outcome {
                        FullServe::Completed => {
                            serving.advance_recovery(remainder, recovery);
                            insert_epoch(
                                &mut self.epoch_next,
                                EpochTrace { battery: serving, epochs: trace.epochs + 1 },
                            );
                        }
                        FullServe::CompletedAndDied => {
                            best_retired_epochs = best_retired_epochs.max(trace.epochs + 1);
                        }
                        FullServe::Died => {
                            best_retired_epochs = best_retired_epochs.max(trace.epochs);
                        }
                    }
                }
            }
            std::mem::swap(&mut self.epoch_front, &mut self.epoch_next);
            self.enforce_epoch_cap();
            let peak_epochs = self
                .epoch_front
                .iter()
                .map(|t| t.epochs)
                .max()
                .unwrap_or(0)
                .max(best_retired_epochs);
            out.full_epochs.push(peak_epochs);
        }
        debug_assert!(out.units.windows(2).all(|w| w[0] <= w[1]), "columns must be cumulative");
        debug_assert!(
            out.full_epochs.windows(2).all(|w| w[0] <= w[1]),
            "full-epoch columns must be cumulative"
        );
        debug_assert_eq!(out.units.len(), out.full_epochs.len());
    }

    /// Caps the Pareto front: the traces beyond the cap (lowest served
    /// first) are merged into one super-state — max charge, min height
    /// difference, max recovery clock, max served — which dominates each
    /// of them, so capping can only widen the column upward.
    fn enforce_cap(&mut self) {
        if self.front.len() <= self.cap {
            return;
        }
        // Deterministic order: most-served (then smallest state word)
        // first, so the exact hypotheses kept are the most promising ones.
        self.front.sort_unstable_by(|a, b| {
            b.served.cmp(&a.served).then(a.battery.state_word().cmp(&b.battery.state_word()))
        });
        let tail = self.front.split_off(self.cap - 1);
        let mut charge = 0u32;
        let mut height = u32::MAX;
        let mut clock = 0u64;
        let mut served = 0u64;
        let mut phase = Phase::Done;
        for trace in &tail {
            charge = charge.max(trace.battery.charge_units());
            height = height.min(trace.battery.height_units());
            clock = clock.max(trace.battery.recovery_clock());
            served = served.max(trace.served);
            phase = phase.max(trace.phase);
        }
        let merged = Trace {
            battery: DiscreteBattery::from_raw_parts(charge, height, clock, false),
            served,
            phase,
        };
        debug_assert!(tail.iter().all(|t| trace_dominates(&merged, t)));
        insert(&mut self.front, merged);
    }

    /// Caps the full-epoch DP's front the same way (fewest epochs merged
    /// into a dominating super-state). The epoch front grows by at most
    /// one trace per job epoch, so the cap rarely binds.
    fn enforce_epoch_cap(&mut self) {
        if self.epoch_front.len() <= self.cap {
            return;
        }
        self.epoch_front.sort_unstable_by(|a, b| {
            b.epochs.cmp(&a.epochs).then(a.battery.state_word().cmp(&b.battery.state_word()))
        });
        let tail = self.epoch_front.split_off(self.cap - 1);
        let mut charge = 0u32;
        let mut height = u32::MAX;
        let mut clock = 0u64;
        let mut epochs = 0u64;
        for trace in &tail {
            charge = charge.max(trace.battery.charge_units());
            height = height.min(trace.battery.height_units());
            clock = clock.max(trace.battery.recovery_clock());
            epochs = epochs.max(trace.epochs);
        }
        let merged = EpochTrace {
            battery: DiscreteBattery::from_raw_parts(charge, height, clock, false),
            epochs,
        };
        debug_assert!(tail.iter().all(|t| epoch_trace_dominates(&merged, t)));
        insert_epoch(&mut self.epoch_front, merged);
    }
}

/// How a whole-epoch serve attempt of the full-epoch DP ended.
enum FullServe {
    /// Every draw served, battery alive.
    Completed,
    /// Every draw served, but the killing last draw emptied the battery.
    CompletedAndDied,
    /// The battery died before covering the epoch.
    Died,
}

/// Inserts `candidate` into the Pareto front unless a present trace makes
/// it redundant; evicts the traces it makes redundant.
fn insert(traces: &mut Vec<Trace>, candidate: Trace) {
    if traces.iter().any(|t| trace_dominates(t, &candidate)) {
        return;
    }
    traces.retain(|t| !trace_dominates(&candidate, t));
    traces.push(candidate);
}

/// [`insert`] for the full-epoch DP's front.
fn insert_epoch(traces: &mut Vec<EpochTrace>, candidate: EpochTrace) {
    if traces.iter().any(|t| epoch_trace_dominates(t, &candidate)) {
        return;
    }
    traces.retain(|t| !epoch_trace_dominates(&candidate, t));
    traces.push(candidate);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Discretization;

    fn b1_coarse() -> (BatteryParams, Discretization, RecoveryTable) {
        let params = BatteryParams::itsy_b1();
        let disc = Discretization::coarse();
        let recovery = RecoveryTable::for_battery(&params, &disc);
        (params, disc, recovery)
    }

    /// Exhaustive serve/skip enumeration over `slots` draw instants spaced
    /// `interval` steps within a single job epoch (the ground truth of
    /// the DP; mirrors the real dynamics of `advance_job` including
    /// sticky retirement and the one-contiguous-run-per-epoch shape of
    /// the search's decision space).
    fn max_served(
        battery: DiscreteBattery,
        params: &BatteryParams,
        recovery: &RecoveryTable,
        interval: u64,
        units: u32,
        slots: u32,
        phase: Phase,
    ) -> u64 {
        if slots == 0 {
            return 0;
        }
        let mut stepped = battery;
        stepped.advance_recovery(interval, recovery);
        let skipped = if phase == Phase::Idle { Phase::Idle } else { Phase::Done };
        let mut best = max_served(stepped, params, recovery, interval, units, slots - 1, skipped);
        if phase != Phase::Done && !stepped.is_empty(params) {
            let mut serving = stepped;
            serving.draw(units);
            let rest = if serving.is_empty(params) {
                0
            } else {
                max_served(serving, params, recovery, interval, units, slots - 1, Phase::Serving)
            };
            best = best.max(u64::from(units) + rest);
        }
        best
    }

    fn states() -> [(u32, u32); 7] {
        [(110, 0), (110, 18), (80, 14), (60, 11), (30, 5), (20, 3), (8, 1)]
    }

    #[test]
    fn exact_column_matches_exhaustive_enumeration() {
        let (params, _, recovery) = b1_coarse();
        let mut builder = ColumnBuilder::new(usize::MAX);
        let mut column = ServiceColumn::default();
        for interval in [2u32, 4] {
            let slots = 11u64;
            let epochs = [DiscreteEpoch::job(slots * u64::from(interval), interval, 1)];
            for (n, m) in states() {
                let battery = DiscreteBattery::from_units(n, m);
                builder.build(battery, &params, &recovery, &epochs, 0, &mut column);
                let brute = max_served(
                    battery,
                    &params,
                    &recovery,
                    u64::from(interval),
                    1,
                    11,
                    Phase::Idle,
                );
                assert_eq!(
                    column.units,
                    [brute],
                    "(n={n}, m={m}, interval={interval}): exact DP vs enumeration"
                );
            }
        }
    }

    #[test]
    fn capped_column_never_undercounts_the_exact_one() {
        let (params, _, recovery) = b1_coarse();
        let mut exact = ColumnBuilder::new(usize::MAX);
        let mut capped = ColumnBuilder::new(2);
        let (mut exact_col, mut capped_col) = (ServiceColumn::default(), ServiceColumn::default());
        // A multi-epoch alternating timeline with an idle break.
        let epochs = [
            DiscreteEpoch::job(20, 2, 1),
            DiscreteEpoch::idle(10),
            DiscreteEpoch::job(20, 2, 1),
            DiscreteEpoch::job(16, 4, 1),
        ];
        for (n, m) in states() {
            let battery = DiscreteBattery::from_units(n, m);
            exact.build(battery, &params, &recovery, &epochs, 0, &mut exact_col);
            capped.build(battery, &params, &recovery, &epochs, 0, &mut capped_col);
            assert_eq!(exact_col.len(), 3, "one entry per job epoch");
            assert_eq!(capped_col.len(), 3);
            for (e, (&tight, &loose)) in exact_col.units.iter().zip(&capped_col.units).enumerate() {
                assert!(
                    loose >= tight,
                    "(n={n}, m={m}) epoch {e}: capped column {loose} undercounts exact {tight}"
                );
            }
            for (e, (&tight, &loose)) in
                exact_col.full_epochs.iter().zip(&capped_col.full_epochs).enumerate()
            {
                assert!(
                    loose >= tight,
                    "(n={n}, m={m}) epoch {e}: capped epochs {loose} undercounts exact {tight}"
                );
            }
        }
    }

    #[test]
    fn columns_are_cumulative_and_charge_capped() {
        let (params, _, recovery) = b1_coarse();
        let mut builder = ColumnBuilder::default();
        let mut column = ServiceColumn::default();
        let epochs: Vec<DiscreteEpoch> =
            (0..6).flat_map(|_| [DiscreteEpoch::job(20, 2, 1), DiscreteEpoch::idle(20)]).collect();
        for (n, m) in states() {
            builder.build(
                DiscreteBattery::from_units(n, m),
                &params,
                &recovery,
                &epochs,
                0,
                &mut column,
            );
            assert_eq!(column.len(), 6);
            assert!(column.units.windows(2).all(|w| w[0] <= w[1]), "(n={n}, m={m}): cumulative");
            assert!(
                *column.units.last().unwrap() <= u64::from(n),
                "(n={n}, m={m}): column exceeds the battery's charge"
            );
            assert!(
                column.full_epochs.windows(2).all(|w| w[0] <= w[1]),
                "(n={n}, m={m}): full-epoch column must be cumulative"
            );
            for (e, &full) in column.full_epochs.iter().enumerate() {
                assert!(
                    full <= (e + 1) as u64,
                    "(n={n}, m={m}): cannot fully serve more epochs than elapsed"
                );
            }
        }
    }

    #[test]
    fn retired_battery_has_a_zero_column() {
        let (params, _, recovery) = b1_coarse();
        let mut builder = ColumnBuilder::default();
        let mut column = ServiceColumn::default();
        let mut battery = DiscreteBattery::from_units(50, 10);
        battery.mark_observed_empty();
        let epochs = [DiscreteEpoch::job(20, 2, 1), DiscreteEpoch::job(20, 2, 1)];
        builder.build(battery, &params, &recovery, &epochs, 0, &mut column);
        assert_eq!(column.units, [0, 0]);
        assert_eq!(column.full_epochs, [0, 0]);
    }

    #[test]
    fn mid_epoch_offsets_shorten_the_first_entry() {
        let (params, _, recovery) = b1_coarse();
        let mut builder = ColumnBuilder::new(usize::MAX);
        let (mut full, mut partial) = (ServiceColumn::default(), ServiceColumn::default());
        let epochs = [DiscreteEpoch::job(40, 2, 1)];
        let battery = DiscreteBattery::from_units(30, 5);
        builder.build(battery, &params, &recovery, &epochs, 0, &mut full);
        builder.build(battery, &params, &recovery, &epochs, 20, &mut partial);
        assert!(partial.units[0] <= full.units[0], "fewer slots cannot serve more units");
        assert_eq!(
            partial.full_epochs[0], 0,
            "a mid-epoch start can never earn the split epoch's full-serve credit"
        );
    }

    /// The serialization column: a fresh battery serving a whole epoch
    /// from its first draw earns exactly one credit per epoch it fully
    /// covers, and the credit survives dying on the epoch's last draw.
    #[test]
    fn full_epoch_credits_count_whole_serves_only() {
        let (params, _, recovery) = b1_coarse();
        let mut builder = ColumnBuilder::new(usize::MAX);
        let mut column = ServiceColumn::default();
        let epochs: Vec<DiscreteEpoch> =
            (0..4).flat_map(|_| [DiscreteEpoch::job(20, 2, 1), DiscreteEpoch::idle(20)]).collect();
        let battery = DiscreteBattery::from_units(110, 0);
        builder.build(battery, &params, &recovery, &epochs, 0, &mut column);
        assert_eq!(column.full_epochs[0], 1, "a fresh battery can serve the first epoch whole");
        for (e, &full) in column.full_epochs.iter().enumerate() {
            assert!(full <= (e + 1) as u64);
        }
        // A weak battery that cannot cover a whole epoch before going
        // empty earns no credit even though it serves some units.
        let exhausted = DiscreteBattery::from_units(10, 0);
        builder.build(exhausted, &params, &recovery, &epochs, 0, &mut column);
        assert!(column.units[0] > 0);
        assert_eq!(column.full_epochs[0], 0, "a partial prefix run is not a full serve");
    }

    #[test]
    fn eq8_empty_but_unobserved_batteries_recover_into_service() {
        let (params, _, recovery) = b1_coarse();
        // A battery inside the Eq. 8 emptiness region that was never
        // *observed* empty: it must skip early draws, recover, and serve
        // later — a zero column here would be an undercount.
        let battery = DiscreteBattery::from_units(20, 20);
        assert!(battery.is_empty(&params));
        assert!(!battery.is_observed_empty());
        let mut builder = ColumnBuilder::new(usize::MAX);
        let mut column = ServiceColumn::default();
        let epochs = [DiscreteEpoch::job(400, 4, 1)];
        builder.build(battery, &params, &recovery, &epochs, 0, &mut column);
        let brute = max_served(battery, &params, &recovery, 4, 1, 100, Phase::Idle);
        assert_eq!(column.units, [brute]);
        assert!(column.units[0] > 0, "recovery must lift the battery back into service");
        assert_eq!(
            column.full_epochs[0], 0,
            "an Eq. 8-empty battery cannot serve the epoch's first draw, so no full-serve credit"
        );
    }
}
