//! Multi-battery discrete state.
//!
//! Battery scheduling operates on several batteries at once: at any instant
//! one battery serves the load while the others recover. This module holds
//! the joint integer state of all batteries and advances it through idle
//! periods and (portions of) jobs. The schedulers in the `battery-sched`
//! crate — including the optimal, search-based one — drive exactly this
//! state, which makes it the discrete analogue of the network of
//! total-charge / height-difference automata of Figure 5.
//!
//! The state is purely dynamic; all static data — per-battery parameters,
//! discretization, per-type recovery tables — lives in a
//! [`DiscreteFleet`], which every state-advancing method takes. Fleets may
//! be heterogeneous (e.g. one B1 next to one B2): emptiness tests and
//! recovery dynamics are always evaluated against the battery's own
//! parameters and table.

use crate::{DiscreteBattery, DiscreteFleet, DkibamError};

/// Result of letting one battery serve (a portion of) a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobAdvance {
    /// Time steps that actually elapsed.
    pub steps_consumed: u64,
    /// `true` if the requested number of steps was served completely;
    /// `false` if the active battery was observed empty at a draw instant
    /// before the end (the remaining steps still need to be served by
    /// another battery).
    pub completed: bool,
}

/// The joint discrete state of a fleet of batteries.
///
/// Per-battery state is a [`DiscreteBattery`]; per-battery parameters come
/// from the [`DiscreteFleet`] passed to each method (the paper's systems are
/// uniform fleets, but any mix is supported). The type is `Eq + Hash` so
/// optimal-schedule searches can memoize visited states.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MultiBatteryState {
    batteries: Vec<DiscreteBattery>,
}

impl MultiBatteryState {
    /// Creates a state with every battery of the fleet fully charged.
    #[must_use]
    pub fn new_full(fleet: &DiscreteFleet) -> Self {
        Self {
            batteries: (0..fleet.len())
                .map(|i| DiscreteBattery::full(fleet.params_of(i), fleet.disc()))
                .collect(),
        }
    }

    /// Creates a state from explicit per-battery states.
    #[must_use]
    pub fn from_batteries(batteries: Vec<DiscreteBattery>) -> Self {
        Self { batteries }
    }

    /// Overwrites this state with `other`, reusing the existing allocation
    /// (derived `Clone` cannot; search schedulers restore states millions of
    /// times).
    pub fn copy_from(&mut self, other: &MultiBatteryState) {
        self.batteries.clone_from(&other.batteries);
    }

    /// The number of batteries in the system.
    #[must_use]
    pub fn battery_count(&self) -> usize {
        self.batteries.len()
    }

    /// All per-battery states, in index order.
    #[must_use]
    pub fn batteries(&self) -> &[DiscreteBattery] {
        &self.batteries
    }

    /// The state of battery `index`.
    ///
    /// # Errors
    ///
    /// Returns [`DkibamError::BatteryIndexOutOfRange`] if `index` is not a
    /// valid battery index.
    pub fn battery(&self, index: usize) -> Result<&DiscreteBattery, DkibamError> {
        self.batteries
            .get(index)
            .ok_or(DkibamError::BatteryIndexOutOfRange { index, count: self.batteries.len() })
    }

    /// Indices of the batteries that can still serve a job: not yet observed
    /// empty and not currently satisfying the emptiness criterion.
    #[must_use]
    pub fn available(&self, fleet: &DiscreteFleet) -> Vec<usize> {
        self.batteries
            .iter()
            .enumerate()
            .filter(|&(i, b)| !b.is_empty(fleet.params_of(i)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Fills `out` with the indices of the batteries that can still serve a
    /// job, reusing its allocation. Search schedulers query availability at
    /// every node; this keeps the hot path allocation-free.
    pub fn available_into(&self, fleet: &DiscreteFleet, out: &mut Vec<usize>) {
        out.clear();
        out.extend(
            self.batteries
                .iter()
                .enumerate()
                .filter(|&(i, b)| !b.is_empty(fleet.params_of(i)))
                .map(|(i, _)| i),
        );
    }

    /// Whether at least one battery can still serve a job (the negation of
    /// [`MultiBatteryState::all_empty`], without building an index list).
    #[must_use]
    pub fn any_available(&self, fleet: &DiscreteFleet) -> bool {
        self.batteries.iter().enumerate().any(|(i, b)| !b.is_empty(fleet.params_of(i)))
    }

    /// Whether every battery is empty (the system has reached the end of its
    /// lifetime).
    #[must_use]
    pub fn all_empty(&self, fleet: &DiscreteFleet) -> bool {
        self.batteries.iter().enumerate().all(|(i, b)| b.is_empty(fleet.params_of(i)))
    }

    /// Total remaining charge units over all batteries. This is exactly the
    /// quantity the paper's maximum-finder automaton converts into a cost:
    /// the longest-lived schedule leaves the least charge behind.
    #[must_use]
    pub fn total_charge_units(&self) -> u64 {
        self.batteries.iter().map(|b| u64::from(b.charge_units())).sum()
    }

    /// Total remaining charge in A·min.
    #[must_use]
    pub fn total_charge(&self, fleet: &DiscreteFleet) -> f64 {
        self.total_charge_units() as f64 * fleet.disc().charge_unit()
    }

    /// Lets every battery recover for `steps` time steps (an idle period of
    /// the load, or the portion of a job served by some other battery).
    pub fn advance_idle(&mut self, steps: u64, fleet: &DiscreteFleet) {
        #[cfg(debug_assertions)]
        let total_before = self.total_charge_units();
        for (i, battery) in self.batteries.iter_mut().enumerate() {
            battery.advance_recovery(steps, fleet.table_of(i));
        }
        // Charge conservation: recovery redistributes charge between the
        // bound and available wells; it never changes the fleet total.
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.total_charge_units(),
            total_before,
            "idle recovery changed the total charge"
        );
    }

    /// Lets battery `active` serve a job portion of `steps` time steps with
    /// the given draw pattern while all other batteries recover.
    ///
    /// If the active battery is observed empty at a draw instant (Eq. 8), it
    /// is retired, the remaining steps are *not* served, and the returned
    /// [`JobAdvance`] reports `completed == false` together with the number
    /// of steps that did elapse; the caller then re-schedules the remainder
    /// on another battery, mirroring the scheduler automaton of Figure 5(d).
    ///
    /// # Errors
    ///
    /// Returns [`DkibamError::BatteryIndexOutOfRange`] if `active` is not a
    /// valid battery index.
    pub fn advance_job(
        &mut self,
        active: usize,
        steps: u64,
        draw_interval: u32,
        units_per_draw: u32,
        fleet: &DiscreteFleet,
    ) -> Result<JobAdvance, DkibamError> {
        if active >= self.batteries.len() {
            return Err(DkibamError::BatteryIndexOutOfRange {
                index: active,
                count: self.batteries.len(),
            });
        }
        if draw_interval == 0 || units_per_draw == 0 {
            // Degenerate "job" that draws nothing: just idle time.
            self.advance_idle(steps, fleet);
            return Ok(JobAdvance { steps_consumed: steps, completed: true });
        }
        let active_params = fleet.params_of(active);
        if self.batteries[active].is_empty(active_params) {
            self.batteries[active].mark_observed_empty();
            return Ok(JobAdvance { steps_consumed: 0, completed: false });
        }

        let interval = u64::from(draw_interval);
        let draws = steps / interval;
        let remainder = steps - draws * interval;
        let mut consumed = 0;
        for _ in 0..draws {
            for (i, battery) in self.batteries.iter_mut().enumerate() {
                battery.advance_recovery(interval, fleet.table_of(i));
            }
            consumed += interval;
            // As in the single-battery simulation, the emptiness condition is
            // checked at the draw instant both before and after the draw.
            #[cfg(debug_assertions)]
            let n_before = self.batteries[active].charge_units();
            if !self.batteries[active].is_empty(active_params) {
                self.batteries[active].draw(units_per_draw);
            }
            // Charge conservation: a draw instant removes at most
            // `units_per_draw` units, all from the active battery.
            #[cfg(debug_assertions)]
            debug_assert!(
                n_before - self.batteries[active].charge_units() <= units_per_draw,
                "draw instant removed more than the configured draw"
            );
            if self.batteries[active].is_empty(active_params) {
                self.batteries[active].mark_observed_empty();
                return Ok(JobAdvance { steps_consumed: consumed, completed: false });
            }
        }
        for (i, battery) in self.batteries.iter_mut().enumerate() {
            battery.advance_recovery(remainder, fleet.table_of(i));
        }
        consumed += remainder;
        Ok(JobAdvance { steps_consumed: consumed, completed: true })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Discretization;
    use kibam::{BatteryParams, FleetSpec};

    fn two_b1() -> DiscreteFleet {
        DiscreteFleet::uniform(&BatteryParams::itsy_b1(), &Discretization::paper_default(), 2)
    }

    fn b1_plus_b2() -> DiscreteFleet {
        DiscreteFleet::new(
            FleetSpec::new(vec![BatteryParams::itsy_b1(), BatteryParams::itsy_b2()]).unwrap(),
            Discretization::paper_default(),
        )
    }

    #[test]
    fn new_full_creates_identical_full_batteries() {
        let fleet = two_b1();
        let state = MultiBatteryState::new_full(&fleet);
        assert_eq!(state.battery_count(), 2);
        assert_eq!(state.total_charge_units(), 1100);
        assert!((state.total_charge(&fleet) - 11.0).abs() < 1e-12);
        assert_eq!(state.available(&fleet), vec![0, 1]);
        assert!(!state.all_empty(&fleet));
    }

    #[test]
    fn heterogeneous_fleet_fills_per_battery_capacities() {
        let fleet = b1_plus_b2();
        let state = MultiBatteryState::new_full(&fleet);
        assert_eq!(state.batteries()[0].charge_units(), 550);
        assert_eq!(state.batteries()[1].charge_units(), 1100);
        assert!((state.total_charge(&fleet) - 16.5).abs() < 1e-12);
        assert_eq!(state.available(&fleet), vec![0, 1]);
    }

    #[test]
    fn battery_access_is_bounds_checked() {
        let fleet = two_b1();
        let state = MultiBatteryState::new_full(&fleet);
        assert!(state.battery(1).is_ok());
        assert!(matches!(
            state.battery(2),
            Err(DkibamError::BatteryIndexOutOfRange { index: 2, count: 2 })
        ));
    }

    #[test]
    fn advance_job_discharges_only_the_active_battery() {
        let fleet = two_b1();
        let mut state = MultiBatteryState::new_full(&fleet);
        // One minute of 500 mA: 100 steps, one unit every 2 steps.
        let advance = state.advance_job(0, 100, 2, 1, &fleet).unwrap();
        assert!(advance.completed);
        assert_eq!(advance.steps_consumed, 100);
        assert_eq!(state.batteries()[0].charge_units(), 500);
        assert_eq!(state.batteries()[1].charge_units(), 550);
        assert!(state.batteries()[0].height_units() > 0);
        assert_eq!(state.batteries()[1].height_units(), 0);
    }

    #[test]
    fn advance_job_on_out_of_range_battery_fails() {
        let fleet = two_b1();
        let mut state = MultiBatteryState::new_full(&fleet);
        assert!(state.advance_job(5, 10, 2, 1, &fleet).is_err());
    }

    #[test]
    fn active_battery_is_retired_when_observed_empty() {
        let fleet = two_b1();
        // Battery 0 is nearly dead: few charge units, big height difference.
        let dying = DiscreteBattery::from_units(30, 120);
        let fresh = DiscreteBattery::full(fleet.params_of(1), fleet.disc());
        let mut state = MultiBatteryState::from_batteries(vec![dying, fresh]);
        let advance = state.advance_job(0, 200, 2, 1, &fleet).unwrap();
        assert!(!advance.completed);
        assert!(advance.steps_consumed < 200);
        assert!(state.batteries()[0].is_observed_empty());
        // The other battery is still usable, so the system is not dead yet.
        assert!(!state.all_empty(&fleet));
        assert_eq!(state.available(&fleet), vec![1]);
    }

    #[test]
    fn scheduling_an_already_empty_battery_consumes_no_time() {
        let fleet = two_b1();
        let mut dead = DiscreteBattery::from_units(10, 100);
        assert!(dead.is_empty(fleet.params_of(0)));
        dead.mark_observed_empty();
        let fresh = DiscreteBattery::full(fleet.params_of(1), fleet.disc());
        let mut state = MultiBatteryState::from_batteries(vec![dead, fresh]);
        let advance = state.advance_job(0, 100, 2, 1, &fleet).unwrap();
        assert_eq!(advance.steps_consumed, 0);
        assert!(!advance.completed);
    }

    #[test]
    fn idle_advance_recovers_all_batteries() {
        let fleet = two_b1();
        let used_a = DiscreteBattery::from_units(400, 60);
        let used_b = DiscreteBattery::from_units(300, 80);
        let mut state = MultiBatteryState::from_batteries(vec![used_a, used_b]);
        state.advance_idle(1_000, &fleet);
        assert!(state.batteries()[0].height_units() < 60);
        assert!(state.batteries()[1].height_units() < 80);
        // Total charge never changes during idle periods.
        assert_eq!(state.total_charge_units(), 700);
    }

    #[test]
    fn degenerate_job_with_no_draws_is_idle_time() {
        let fleet = two_b1();
        let mut state = MultiBatteryState::new_full(&fleet);
        let advance = state.advance_job(0, 50, 0, 0, &fleet).unwrap();
        assert!(advance.completed);
        assert_eq!(state.total_charge_units(), 1100);
    }

    #[test]
    fn available_into_matches_available() {
        let fleet =
            DiscreteFleet::uniform(&BatteryParams::itsy_b1(), &Discretization::paper_default(), 3);
        let mut state = MultiBatteryState::new_full(&fleet);
        let mut buf = vec![7usize; 5];
        state.available_into(&fleet, &mut buf);
        assert_eq!(buf, state.available(&fleet));
        assert!(state.any_available(&fleet));
        // Retire battery 1 and check the reduced set.
        let advance = state.advance_job(1, 10_000, 2, 1, &fleet).unwrap();
        assert!(!advance.completed);
        state.available_into(&fleet, &mut buf);
        assert_eq!(buf, vec![0, 2]);
        assert!(state.any_available(&fleet));
    }

    #[test]
    fn mixed_fleet_emptiness_uses_per_battery_parameters() {
        // Drain the B1 of a B1+B2 fleet dry: the (larger) B2 keeps serving.
        let fleet = b1_plus_b2();
        let mut state = MultiBatteryState::new_full(&fleet);
        let advance = state.advance_job(0, 100_000, 2, 1, &fleet).unwrap();
        assert!(!advance.completed);
        assert!(state.batteries()[0].is_observed_empty());
        assert_eq!(state.available(&fleet), vec![1]);
        let advance = state.advance_job(1, 100, 2, 1, &fleet).unwrap();
        assert!(advance.completed);
    }

    #[test]
    fn state_equality_and_hashing_ignore_nothing() {
        use std::collections::HashSet;
        let fleet = two_b1();
        let a = MultiBatteryState::new_full(&fleet);
        let b = MultiBatteryState::new_full(&fleet);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
        let mut c = b.clone();
        c = {
            let mut batteries = c.batteries().to_vec();
            batteries[0].draw(1);
            MultiBatteryState::from_batteries(batteries)
        };
        assert!(!set.contains(&c));
    }
}
