use crate::checked;
use crate::Discretization;
use kibam::BatteryParams;

/// Largest cumulative recovery time (in steps) for which the O(1) inverse
/// lookup table is materialized. The paper's B1 table sums to ~5 600 steps;
/// the gate only matters for pathological discretizations whose ladder is
/// millions of steps long, where the binary-search fallback is used instead.
const INVERSE_TABLE_LIMIT: u64 = 1 << 20;

/// Precomputed recovery times (the paper's `recov_times` array).
///
/// When no charge is being drawn, the height difference `δ` relaxes
/// exponentially (Eq. 4/5 of the paper). With `δ = m · Γ/c`, the time to
/// fall from `m` to `m - 1` units is
///
/// ```text
/// t(m) = -(1/k') · ln((m - 1) / m)        (Eq. 6)
/// ```
///
/// which this table stores rounded to the nearest whole number of time
/// steps, exactly as prescribed in Section 2.3. Entries for `m <= 1` are
/// [`None`]: by Eq. 6 the final unit would take infinitely long to recover
/// (the relaxation is asymptotic), so the automaton never recovers below a
/// height difference of one unit.
///
/// Next to the per-unit times the table carries their **cumulative prefix
/// sums** ([`cumulative_steps`](RecoveryTable::cumulative_steps)) and, when
/// small enough, an inverse lookup array, so a bulk recovery advance
/// ([`skip`](RecoveryTable::skip)) lands on the exact ladder position in
/// O(1) instead of walking one height unit at a time.
///
/// # Example
///
/// ```
/// use dkibam::{Discretization, RecoveryTable};
/// use kibam::BatteryParams;
///
/// let b1 = BatteryParams::itsy_b1();
/// let disc = Discretization::paper_default();
/// let table = RecoveryTable::for_battery(&b1, &disc);
/// // Larger height differences recover faster (shorter per-unit times).
/// assert!(table.steps(10).unwrap() > table.steps(100).unwrap());
/// assert!(table.steps(1).is_none());
/// // A bulk advance lands exactly where the per-unit automaton would.
/// assert_eq!(table.skip(3, 0, table.steps(3).unwrap()), (2, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RecoveryTable {
    steps: Vec<Option<u64>>,
    /// `cumulative[m]` — time steps from `(m, clock 0)` all the way down to
    /// a height difference of one unit: `Σ_{j=2..=m} steps[j]` (saturating;
    /// `cumulative[0] == cumulative[1] == 0`). Strictly increasing from
    /// `m = 2` on, which is what makes the inverse lookup well defined.
    cumulative: Vec<u64>,
    /// `inverse[t]` — the smallest height `m` with `cumulative[m] >= t`,
    /// i.e. the ladder position with `t` steps of work left before height
    /// one. Materialized only when the full ladder fits
    /// [`INVERSE_TABLE_LIMIT`]; [`skip`](RecoveryTable::skip) falls back to
    /// a binary search over `cumulative` otherwise.
    inverse: Option<Vec<u32>>,
}

impl RecoveryTable {
    /// Builds a recovery table covering height differences up to `max_units`.
    #[must_use]
    pub fn new(params: &BatteryParams, disc: &Discretization, max_units: u32) -> Self {
        let k_prime = params.k_prime();
        let time_step = disc.time_step();
        let steps: Vec<Option<u64>> = (0..=max_units)
            .map(|m| {
                if m <= 1 {
                    None
                } else {
                    let minutes = (f64::from(m) / (f64::from(m) - 1.0)).ln() / k_prime;
                    // Rounded to the nearest time step as in the paper; at
                    // least one step so recovery can never be instantaneous.
                    Some(checked::f64_to_u64((minutes / time_step).round()).max(1))
                }
            })
            .collect();
        let mut cumulative = Vec::with_capacity(steps.len());
        let mut total: u64 = 0;
        for entry in &steps {
            total = total.saturating_add(entry.unwrap_or(0));
            cumulative.push(total);
        }
        let inverse = Self::build_inverse(&cumulative);
        Self { steps, cumulative, inverse }
    }

    /// Builds the O(1) inverse ladder lookup, or `None` when the full
    /// ladder is too long to materialize (the binary-search fallback in
    /// [`skip`](RecoveryTable::skip) produces identical results).
    fn build_inverse(cumulative: &[u64]) -> Option<Vec<u32>> {
        let total = *cumulative.last()?;
        if total >= INVERSE_TABLE_LIMIT {
            return None;
        }
        let len = usize::try_from(total).ok()?.checked_add(1)?;
        let mut inverse = vec![1u32; len];
        let mut t: usize = 1;
        for (m, &cum) in cumulative.iter().enumerate().skip(2) {
            let height = checked::to_u32(m);
            let end = usize::try_from(cum).ok()?;
            while t <= end {
                inverse[t] = height;
                t += 1;
            }
        }
        Some(inverse)
    }

    /// Builds a table sized for a full battery: the height difference can
    /// never exceed the number of charge units drawn, so `N = C / Γ` entries
    /// suffice.
    #[must_use]
    pub fn for_battery(params: &BatteryParams, disc: &Discretization) -> Self {
        Self::new(params, disc, disc.charge_units(params.capacity()))
    }

    /// The number of time steps needed to reduce a height difference of `m`
    /// units by one unit, or `None` if `m <= 1` (no further recovery) or `m`
    /// exceeds the table.
    #[must_use]
    pub fn steps(&self, m: u32) -> Option<u64> {
        self.steps.get(checked::index(m)).copied().flatten()
    }

    /// The total time steps from `(m, clock 0)` down to a height difference
    /// of one unit (zero for `m <= 1`; saturated for `m` beyond the table).
    #[must_use]
    pub fn cumulative_steps(&self, m: u32) -> u64 {
        let m = checked::index(m).min(self.cumulative.len().saturating_sub(1));
        self.cumulative.get(m).copied().unwrap_or(0)
    }

    /// The largest height difference covered by this table.
    #[must_use]
    pub fn max_units(&self) -> u32 {
        checked::to_u32(self.steps.len()).saturating_sub(1)
    }

    /// Advances the recovery automaton from `(m, clock)` by `steps` time
    /// steps in bulk, returning the new `(m, clock)`.
    ///
    /// Bit-identical to iterating the per-unit automaton of Figure 5(b) one
    /// `recov_times[m]` interval at a time, including its edge cases:
    ///
    /// * `steps == 0` is a no-op (the clock is preserved);
    /// * at or below one height unit — or beyond the table — the clock is
    ///   cleared and the height stays put;
    /// * a clock at or past the current per-unit time (possible because
    ///   draws raise `m`, shrinking `recov_times[m]` under an accumulated
    ///   clock) credits exactly one level, as the per-unit loop does.
    ///
    /// After the first level the clock is zero and the remaining descent is
    /// a pure prefix-sum lookup: O(1) with the inverse table, O(log levels)
    /// through the binary-search fallback.
    #[must_use]
    pub fn skip(&self, m: u32, clock: u64, steps: u64) -> (u32, u64) {
        if steps == 0 {
            return (m, clock);
        }
        let Some(needed) = self.steps(m) else {
            // No recovery possible at or below one height unit (or beyond
            // the table's coverage).
            return (m, 0);
        };
        // First level by hand: the clock may hold more progress than the
        // current per-unit time requires.
        let remaining = needed.saturating_sub(clock);
        if steps < remaining {
            return (m, clock + steps);
        }
        let steps = steps - remaining;
        let m = m - 1;
        if m <= 1 {
            return (1, 0);
        }
        // From `(m, 0)`: total descent work is `cumulative[m]`.
        let cum_m = self.cumulative[checked::index(m)];
        if steps >= cum_m {
            return (1, 0);
        }
        let target = cum_m - steps; // work left before height one; > 0
        let landed = match &self.inverse {
            // target <= cum_m < inverse.len()
            Some(inverse) => inverse[checked::index_u64(target)],
            None => checked::to_u32(self.cumulative.partition_point(|&c| c < target)),
        };
        let clock = steps - (cum_m - self.cumulative[checked::index(landed)]);
        (landed, clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RecoveryTable {
        RecoveryTable::for_battery(&BatteryParams::itsy_b1(), &Discretization::paper_default())
    }

    /// The pre-prefix-table per-unit loop, kept as the reference the bulk
    /// skip must match bit for bit.
    fn reference_skip(
        table: &RecoveryTable,
        mut m: u32,
        mut clock: u64,
        mut steps: u64,
    ) -> (u32, u64) {
        while steps > 0 {
            let Some(needed) = table.steps(m) else {
                return (m, 0);
            };
            let remaining = needed.saturating_sub(clock);
            if steps < remaining {
                return (m, clock + steps);
            }
            steps -= remaining;
            m -= 1;
            clock = 0;
        }
        (m, clock)
    }

    #[test]
    fn no_recovery_at_or_below_one_unit() {
        let t = table();
        assert_eq!(t.steps(0), None);
        assert_eq!(t.steps(1), None);
        assert!(t.steps(2).is_some());
    }

    #[test]
    fn recovery_times_match_equation_6() {
        let t = table();
        // For m = 2: t = ln(2) / 0.122 ≈ 5.6815 min ≈ 568 steps of 0.01 min.
        assert_eq!(t.steps(2), Some(568));
        // For m = 100: t = ln(100/99)/0.122 ≈ 0.08237 min ≈ 8 steps.
        assert_eq!(t.steps(100), Some(8));
    }

    #[test]
    fn recovery_times_are_non_increasing_in_m() {
        let t = table();
        let mut previous = u64::MAX;
        for m in 2..=t.max_units() {
            let steps = t.steps(m).unwrap();
            assert!(steps <= previous, "recovery must speed up as delta grows");
            previous = steps;
        }
    }

    #[test]
    fn recovery_never_rounds_to_zero_steps() {
        // Even with an extremely coarse time step the table clamps at one
        // step per unit, so simulations can never loop forever.
        let coarse = Discretization::new(5.0, 0.01).unwrap();
        let t = RecoveryTable::new(&BatteryParams::itsy_b1(), &coarse, 1000);
        for m in 2..=1000 {
            assert!(t.steps(m).unwrap() >= 1);
        }
    }

    #[test]
    fn table_covers_full_battery() {
        let t = table();
        assert_eq!(t.max_units(), 550);
        assert!(t.steps(550).is_some());
        assert_eq!(t.steps(551), None);
    }

    #[test]
    fn cumulative_steps_are_prefix_sums_of_the_per_unit_times() {
        let t = table();
        assert_eq!(t.cumulative_steps(0), 0);
        assert_eq!(t.cumulative_steps(1), 0);
        let mut sum = 0;
        for m in 2..=t.max_units() {
            sum += t.steps(m).unwrap();
            assert_eq!(t.cumulative_steps(m), sum);
        }
        // Beyond the table the total saturates at the full ladder.
        assert_eq!(t.cumulative_steps(10_000), t.cumulative_steps(t.max_units()));
    }

    #[test]
    fn paper_table_materializes_the_inverse_lookup() {
        let t = table();
        assert!(t.inverse.is_some(), "the paper ladder is a few thousand steps long");
        // The inverse really inverts the prefix sums.
        let inverse = t.inverse.as_ref().unwrap();
        for m in 2..=t.max_units() {
            let cum = t.cumulative_steps(m);
            assert_eq!(inverse[usize::try_from(cum).unwrap()], m);
            assert_eq!(inverse[usize::try_from(t.cumulative_steps(m - 1) + 1).unwrap()], m);
        }
    }

    #[test]
    fn skip_matches_the_per_unit_reference_everywhere() {
        let t = table();
        let steps_of = |m: u32| t.steps(m).unwrap_or(0);
        for m in [0u32, 1, 2, 3, 5, 50, 100, 300, 549, 550, 551, 600] {
            let clocks: Vec<u64> = vec![
                0,
                1,
                steps_of(m).saturating_sub(1),
                // Over-full clocks arise when a draw raises m under an
                // accumulated clock (recov_times shrink with m).
                steps_of(m) + 3,
                steps_of(m).saturating_mul(2),
            ];
            for &clock in &clocks {
                for steps in [0u64, 1, 2, 7, 100, 568, 569, 1_000, 5_000, 10_000, u64::MAX / 2] {
                    assert_eq!(
                        t.skip(m, clock, steps),
                        reference_skip(&t, m, clock, steps),
                        "m={m} clock={clock} steps={steps}"
                    );
                }
            }
        }
    }

    #[test]
    fn skip_composes_additively() {
        let t = table();
        for m in [2u32, 10, 123, 550] {
            for (a, b) in [(1u64, 1u64), (5, 563), (568, 568), (1_000, 4_000), (0, 7), (7, 0)] {
                let (m1, c1) = t.skip(m, 3, a);
                let split = t.skip(m1, c1, b);
                let fused = t.skip(m, 3, a + b);
                assert_eq!(split, fused, "m={m} a={a} b={b}");
            }
        }
    }

    #[test]
    fn binary_search_fallback_matches_the_inverse_lookup() {
        let t = table();
        let mut fallback = t.clone();
        fallback.inverse = None;
        for m in [2u32, 3, 77, 550] {
            for steps in [1u64, 8, 567, 568, 569, 2_000, 5_641, 100_000] {
                assert_eq!(t.skip(m, 0, steps), fallback.skip(m, 0, steps), "m={m} steps={steps}");
            }
        }
    }

    #[test]
    fn oversized_ladders_skip_the_inverse_table() {
        // A tiny k' makes recovery glacial: the ladder exceeds the limit,
        // so only the prefix sums are kept.
        let params = BatteryParams::new(5.5, 0.166, 1e-6).unwrap();
        let t = RecoveryTable::new(&params, &Discretization::paper_default(), 550);
        assert!(t.inverse.is_none());
        // The fallback still descends correctly.
        let full = t.cumulative_steps(550);
        assert_eq!(t.skip(550, 0, full), (1, 0));
        assert_eq!(t.skip(550, 0, full - 1).0, 2);
    }
}
