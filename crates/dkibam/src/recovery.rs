use crate::Discretization;
use kibam::BatteryParams;

/// Precomputed recovery times (the paper's `recov_times` array).
///
/// When no charge is being drawn, the height difference `δ` relaxes
/// exponentially (Eq. 4/5 of the paper). With `δ = m · Γ/c`, the time to
/// fall from `m` to `m - 1` units is
///
/// ```text
/// t(m) = -(1/k') · ln((m - 1) / m)        (Eq. 6)
/// ```
///
/// which this table stores rounded to the nearest whole number of time
/// steps, exactly as prescribed in Section 2.3. Entries for `m <= 1` are
/// [`None`]: by Eq. 6 the final unit would take infinitely long to recover
/// (the relaxation is asymptotic), so the automaton never recovers below a
/// height difference of one unit.
///
/// # Example
///
/// ```
/// use dkibam::{Discretization, RecoveryTable};
/// use kibam::BatteryParams;
///
/// let b1 = BatteryParams::itsy_b1();
/// let disc = Discretization::paper_default();
/// let table = RecoveryTable::for_battery(&b1, &disc);
/// // Larger height differences recover faster (shorter per-unit times).
/// assert!(table.steps(10).unwrap() > table.steps(100).unwrap());
/// assert!(table.steps(1).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RecoveryTable {
    steps: Vec<Option<u64>>,
}

impl RecoveryTable {
    /// Builds a recovery table covering height differences up to `max_units`.
    #[must_use]
    pub fn new(params: &BatteryParams, disc: &Discretization, max_units: u32) -> Self {
        let k_prime = params.k_prime();
        let time_step = disc.time_step();
        let steps = (0..=max_units)
            .map(|m| {
                if m <= 1 {
                    None
                } else {
                    let minutes = (m as f64 / (m as f64 - 1.0)).ln() / k_prime;
                    // Rounded to the nearest time step as in the paper; at
                    // least one step so recovery can never be instantaneous.
                    Some(((minutes / time_step).round() as u64).max(1))
                }
            })
            .collect();
        Self { steps }
    }

    /// Builds a table sized for a full battery: the height difference can
    /// never exceed the number of charge units drawn, so `N = C / Γ` entries
    /// suffice.
    #[must_use]
    pub fn for_battery(params: &BatteryParams, disc: &Discretization) -> Self {
        Self::new(params, disc, disc.charge_units(params.capacity()))
    }

    /// The number of time steps needed to reduce a height difference of `m`
    /// units by one unit, or `None` if `m <= 1` (no further recovery) or `m`
    /// exceeds the table.
    #[must_use]
    pub fn steps(&self, m: u32) -> Option<u64> {
        self.steps.get(m as usize).copied().flatten()
    }

    /// The largest height difference covered by this table.
    #[must_use]
    pub fn max_units(&self) -> u32 {
        (self.steps.len() as u32).saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RecoveryTable {
        RecoveryTable::for_battery(&BatteryParams::itsy_b1(), &Discretization::paper_default())
    }

    #[test]
    fn no_recovery_at_or_below_one_unit() {
        let t = table();
        assert_eq!(t.steps(0), None);
        assert_eq!(t.steps(1), None);
        assert!(t.steps(2).is_some());
    }

    #[test]
    fn recovery_times_match_equation_6() {
        let t = table();
        // For m = 2: t = ln(2) / 0.122 ≈ 5.6815 min ≈ 568 steps of 0.01 min.
        assert_eq!(t.steps(2), Some(568));
        // For m = 100: t = ln(100/99)/0.122 ≈ 0.08237 min ≈ 8 steps.
        assert_eq!(t.steps(100), Some(8));
    }

    #[test]
    fn recovery_times_are_non_increasing_in_m() {
        let t = table();
        let mut previous = u64::MAX;
        for m in 2..=t.max_units() {
            let steps = t.steps(m).unwrap();
            assert!(steps <= previous, "recovery must speed up as delta grows");
            previous = steps;
        }
    }

    #[test]
    fn recovery_never_rounds_to_zero_steps() {
        // Even with an extremely coarse time step the table clamps at one
        // step per unit, so simulations can never loop forever.
        let coarse = Discretization::new(5.0, 0.01).unwrap();
        let t = RecoveryTable::new(&BatteryParams::itsy_b1(), &coarse, 1000);
        for m in 2..=1000 {
            assert!(t.steps(m).unwrap() >= 1);
        }
    }

    #[test]
    fn table_covers_full_battery() {
        let t = table();
        assert_eq!(t.max_units(), 550);
        assert!(t.steps(550).is_some());
        assert_eq!(t.steps(551), None);
    }
}
