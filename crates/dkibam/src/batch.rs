//! Struct-of-arrays batch stepping for the discretized KiBaM.
//!
//! A [`DiscreteBatch`] holds the dynamic state of N independent battery
//! lanes in columnar form — `n_gamma[]`, `m_delta[]`, `recovery_clock[]`,
//! a retired bitmask — and advances whole lane ranges per kernel call.
//! Combined with the prefix-table bulk skip of
//! [`RecoveryTable::skip`](crate::RecoveryTable::skip) this removes the two
//! scalar-path costs that dominate grid sweeps: per-battery pointer chasing
//! through `Vec<DiscreteBattery>` heaps, and redundant recovery advances of
//! the passive batteries at every draw instant of a job.
//!
//! The kernels are **bit-identical** to [`MultiBatteryState`](crate::multi::MultiBatteryState): every lane's
//! `(n_gamma, m_delta, recovery_clock, observed_empty)` tuple — and hence
//! its [`DiscreteBattery::state_word`] — matches the scalar path after every
//! epoch. For job service this relies on bulk recovery composing
//! additively (`skip(a)` then `skip(b)` equals `skip(a + b)`, because
//! progress is an absolute position on the recovery ladder), so the passive
//! lanes can recover once through the whole served window instead of once
//! per draw.
//!
//! Static data stays in per-type slices (`&[BatteryParams]`,
//! `&[RecoveryTable]`, indexed by the lane's type id), so any number of
//! scenario systems built from the same battery types can share one batch.

use crate::multi::JobAdvance;
use crate::{DiscreteBattery, DiscreteFleet, Discretization, DkibamError};
use kibam::BatteryParams;
use std::ops::Range;

/// N independent discretized-KiBaM cells in struct-of-arrays form.
///
/// Lanes are appended with [`push`](DiscreteBatch::push) /
/// [`push_fleet`](DiscreteBatch::push_fleet) and addressed by index; a
/// simulation driver typically owns one contiguous lane range per scenario
/// system and steps it with the `_range` kernels.
#[derive(Debug, Clone, Default)]
pub struct DiscreteBatch {
    /// Remaining total charge, in charge units, per lane.
    n_gamma: Vec<u32>,
    /// Height difference, in height units, per lane.
    m_delta: Vec<u32>,
    /// Recovery-clock progress within the current height unit, per lane.
    recovery_clock: Vec<u64>,
    /// Observed-empty (retired) flags, 64 lanes per word.
    retired: Vec<u64>,
    /// Battery type-group id per lane, indexing the per-type table slices.
    type_ids: Vec<u32>,
}

impl DiscreteBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `lanes` lanes.
    #[must_use]
    pub fn with_capacity(lanes: usize) -> Self {
        Self {
            n_gamma: Vec::with_capacity(lanes),
            m_delta: Vec::with_capacity(lanes),
            recovery_clock: Vec::with_capacity(lanes),
            retired: Vec::with_capacity(lanes.div_ceil(64)),
            type_ids: Vec::with_capacity(lanes),
        }
    }

    /// The number of lanes held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n_gamma.len()
    }

    /// Whether the batch holds no lanes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n_gamma.is_empty()
    }

    /// Removes all lanes, keeping the allocations.
    pub fn clear(&mut self) {
        self.n_gamma.clear();
        self.m_delta.clear();
        self.recovery_clock.clear();
        self.retired.clear();
        self.type_ids.clear();
    }

    /// Appends one lane holding `battery`'s state, tagged with the battery
    /// type-group id `type_id`; returns the new lane's index.
    pub fn push(&mut self, battery: &DiscreteBattery, type_id: usize) -> usize {
        let lane = self.len();
        self.n_gamma.push(battery.charge_units());
        self.m_delta.push(battery.height_units());
        self.recovery_clock.push(battery.recovery_clock());
        // xlint: allow(panic) -- fleets are bounded far below u32::MAX type groups
        self.type_ids.push(u32::try_from(type_id).expect("type count fits u32"));
        if self.retired.len() * 64 < self.len() {
            self.retired.push(0);
        }
        if battery.is_observed_empty() {
            self.set_retired(lane);
        }
        lane
    }

    /// Appends one fully charged lane per battery of `fleet`, returning the
    /// appended lane range.
    pub fn push_fleet(&mut self, fleet: &DiscreteFleet) -> Range<usize> {
        let start = self.len();
        for i in 0..fleet.len() {
            let battery = DiscreteBattery::full(fleet.params_of(i), fleet.disc());
            self.push(&battery, fleet.type_of(i));
        }
        start..self.len()
    }

    /// Unpacks lane `lane` into the scalar battery form.
    #[must_use]
    pub fn lane(&self, lane: usize) -> DiscreteBattery {
        DiscreteBattery::from_raw_parts(
            self.n_gamma[lane],
            self.m_delta[lane],
            self.recovery_clock[lane],
            self.is_retired(lane),
        )
    }

    /// Overwrites lane `lane` with `battery`'s state.
    pub fn set_lane(&mut self, lane: usize, battery: &DiscreteBattery) {
        self.n_gamma[lane] = battery.charge_units();
        self.m_delta[lane] = battery.height_units();
        self.recovery_clock[lane] = battery.recovery_clock();
        if battery.is_observed_empty() {
            self.set_retired(lane);
        } else {
            self.retired[lane / 64] &= !(1u64 << (lane % 64));
        }
    }

    /// The battery type-group id of lane `lane`.
    #[must_use]
    pub fn type_id(&self, lane: usize) -> usize {
        crate::checked::index(self.type_ids[lane])
    }

    /// Remaining total charge of lane `lane`, in charge units.
    #[must_use]
    pub fn charge_units(&self, lane: usize) -> u32 {
        self.n_gamma[lane]
    }

    /// Whether lane `lane` has been observed empty and retired.
    #[must_use]
    pub fn is_retired(&self, lane: usize) -> bool {
        self.retired[lane / 64] >> (lane % 64) & 1 == 1
    }

    fn set_retired(&mut self, lane: usize) {
        self.retired[lane / 64] |= 1u64 << (lane % 64);
    }

    /// The packed 128-bit state word of lane `lane`
    /// (see [`DiscreteBattery::state_word`]).
    #[must_use]
    pub fn state_word(&self, lane: usize) -> u128 {
        self.lane(lane).state_word()
    }

    /// The emptiness criterion of Eq. 8 for lane `lane`, evaluated against
    /// its own type's parameters; retired lanes are always empty.
    #[must_use]
    pub fn lane_is_empty(&self, lane: usize, type_params: &[BatteryParams]) -> bool {
        self.is_retired(lane) || self.eq8_empty(lane, type_params[self.type_id(lane)].c())
    }

    /// Eq. 8 with a pre-fetched well-share `c` (the job kernel hoists the
    /// active lane's parameters out of the draw loop).
    fn eq8_empty(&self, lane: usize, c: f64) -> bool {
        c * f64::from(self.n_gamma[lane]) <= (1.0 - c) * f64::from(self.m_delta[lane])
    }

    /// Resets every lane of `lanes` to a fully charged battery of its type.
    pub fn reset_range(
        &mut self,
        lanes: Range<usize>,
        type_params: &[BatteryParams],
        disc: &Discretization,
    ) {
        for lane in lanes {
            let params = &type_params[self.type_id(lane)];
            self.set_lane(lane, &DiscreteBattery::full(params, disc));
        }
    }

    /// Lets every lane of `lanes` recover for `steps` time steps — one
    /// prefix-table skip per lane, no per-lane branching. Retired lanes keep
    /// recovering, exactly as in the scalar model.
    pub fn recover_range(
        &mut self,
        lanes: Range<usize>,
        steps: u64,
        tables: &[crate::RecoveryTable],
    ) {
        if steps == 0 {
            return;
        }
        for lane in lanes {
            let table = &tables[crate::checked::index(self.type_ids[lane])];
            let (m, clock) = table.skip(self.m_delta[lane], self.recovery_clock[lane], steps);
            self.m_delta[lane] = m;
            self.recovery_clock[lane] = clock;
        }
    }

    /// Lets lane `active` of the system occupying `lanes` serve a job
    /// portion, mirroring [`MultiBatteryState::advance_job`](crate::multi::MultiBatteryState::advance_job) bit for bit.
    ///
    /// The scalar path recovers *every* battery at *every* draw instant; here
    /// only the active lane walks the draw loop, and the passive lanes
    /// recover once through the whole consumed window afterwards (sound
    /// because bulk recovery composes additively — see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`DkibamError::BatteryIndexOutOfRange`] if `active` does not
    /// lie in `lanes`.
    // The signature is the scalar `advance_job` plus the two shared
    // per-type slices that replace its `&DiscreteFleet`; bundling them
    // would just re-invent the fleet the batch deliberately decouples from.
    #[allow(clippy::too_many_arguments)]
    pub fn advance_job_range(
        &mut self,
        lanes: Range<usize>,
        active: usize,
        steps: u64,
        draw_interval: u32,
        units_per_draw: u32,
        type_params: &[BatteryParams],
        tables: &[crate::RecoveryTable],
    ) -> Result<JobAdvance, DkibamError> {
        if !lanes.contains(&active) {
            return Err(DkibamError::BatteryIndexOutOfRange {
                index: active - lanes.start.min(active),
                count: lanes.len(),
            });
        }
        if draw_interval == 0 || units_per_draw == 0 {
            // Degenerate "job" that draws nothing: just idle time.
            self.recover_range(lanes, steps, tables);
            return Ok(JobAdvance { steps_consumed: steps, completed: true });
        }
        let c = type_params[self.type_id(active)].c();
        let table = &tables[crate::checked::index(self.type_ids[active])];
        if self.is_retired(active) || self.eq8_empty(active, c) {
            self.set_retired(active);
            return Ok(JobAdvance { steps_consumed: 0, completed: false });
        }

        let interval = u64::from(draw_interval);
        let draws = steps / interval;
        let remainder = steps - draws * interval;
        let mut consumed = 0;
        let mut completed = true;
        for _ in 0..draws {
            let (m, clock) =
                table.skip(self.m_delta[active], self.recovery_clock[active], interval);
            self.m_delta[active] = m;
            self.recovery_clock[active] = clock;
            consumed += interval;
            // As in the scalar path, the emptiness condition is checked at
            // the draw instant both before and after the draw.
            #[cfg(debug_assertions)]
            let n_before = self.n_gamma[active];
            if !self.eq8_empty(active, c) {
                self.n_gamma[active] = self.n_gamma[active].saturating_sub(units_per_draw);
                self.m_delta[active] = self.m_delta[active].saturating_add(units_per_draw);
            }
            // Charge conservation, mirroring the scalar kernel: a draw
            // instant removes at most `units_per_draw`, only from `active`.
            #[cfg(debug_assertions)]
            debug_assert!(
                n_before - self.n_gamma[active] <= units_per_draw,
                "batched draw instant removed more than the configured draw"
            );
            if self.eq8_empty(active, c) {
                self.set_retired(active);
                completed = false;
                break;
            }
        }
        if completed {
            let (m, clock) =
                table.skip(self.m_delta[active], self.recovery_clock[active], remainder);
            self.m_delta[active] = m;
            self.recovery_clock[active] = clock;
            consumed += remainder;
        }
        // The passive lanes recover through the whole consumed window in one
        // skip each (additive composition makes this equal to the scalar
        // per-draw advances).
        self.recover_range(lanes.start..active, consumed, tables);
        self.recover_range(active + 1..lanes.end, consumed, tables);
        Ok(JobAdvance { steps_consumed: consumed, completed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::MultiBatteryState;
    use kibam::FleetSpec;

    /// SplitMix64 — deterministic seeded epochs without external crates.
    struct SplitMix64(u64);

    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound
        }
    }

    fn b1_fleet(count: usize) -> DiscreteFleet {
        DiscreteFleet::uniform(&BatteryParams::itsy_b1(), &Discretization::paper_default(), count)
    }

    fn mixed_fleet() -> DiscreteFleet {
        DiscreteFleet::new(
            FleetSpec::new(vec![BatteryParams::itsy_b1(), BatteryParams::itsy_b2()]).unwrap(),
            Discretization::paper_default(),
        )
    }

    fn type_params(fleet: &DiscreteFleet) -> Vec<BatteryParams> {
        (0..fleet.spec().type_count()).map(|t| *fleet.spec().type_params(t)).collect()
    }

    fn assert_lockstep(batch: &DiscreteBatch, lanes: &Range<usize>, scalar: &MultiBatteryState) {
        for (i, battery) in scalar.batteries().iter().enumerate() {
            assert_eq!(
                batch.state_word(lanes.start + i),
                battery.state_word(),
                "lane {i} diverged from the scalar battery"
            );
        }
    }

    /// Drives the batch and the scalar state through an identical seeded
    /// mix of jobs and idle periods, comparing every lane's state word after
    /// every epoch.
    fn exercise_lockstep(fleet: &DiscreteFleet, seed: u64) {
        let params = type_params(fleet);
        let tables = fleet.type_tables();
        let mut batch = DiscreteBatch::new();
        let lanes = batch.push_fleet(fleet);
        let mut scalar = MultiBatteryState::new_full(fleet);
        assert_lockstep(&batch, &lanes, &scalar);

        let mut rng = SplitMix64(seed);
        for _ in 0..200 {
            if rng.below(4) == 0 {
                let steps = rng.below(2_000);
                batch.recover_range(lanes.clone(), steps, tables);
                scalar.advance_idle(steps, fleet);
            } else {
                let active = usize::try_from(rng.below(fleet.len() as u64)).unwrap();
                let steps = rng.below(3_000);
                #[allow(clippy::cast_possible_truncation)]
                let interval = rng.below(5) as u32; // 0 exercises the degenerate job
                #[allow(clippy::cast_possible_truncation)]
                let units = rng.below(3) as u32;
                let batched = batch
                    .advance_job_range(
                        lanes.clone(),
                        lanes.start + active,
                        steps,
                        interval,
                        units,
                        &params,
                        tables,
                    )
                    .unwrap();
                let reference = scalar.advance_job(active, steps, interval, units, fleet).unwrap();
                assert_eq!(batched, reference);
            }
            assert_lockstep(&batch, &lanes, &scalar);
        }
    }

    #[test]
    fn uniform_fleet_steps_bit_identically_to_the_scalar_state() {
        exercise_lockstep(&b1_fleet(2), 0xD5_0909);
        exercise_lockstep(&b1_fleet(3), 7);
    }

    #[test]
    fn mixed_fleet_steps_bit_identically_to_the_scalar_state() {
        exercise_lockstep(&mixed_fleet(), 0xB1B2);
        exercise_lockstep(&mixed_fleet(), 42);
    }

    #[test]
    fn multiple_systems_share_one_batch_independently() {
        let fleet = b1_fleet(2);
        let params = type_params(&fleet);
        let tables = fleet.type_tables();
        let mut batch = DiscreteBatch::with_capacity(4);
        let first = batch.push_fleet(&fleet);
        let second = batch.push_fleet(&fleet);
        // Drain system one only; system two must be untouched.
        batch.advance_job_range(first.clone(), first.start, 10_000, 2, 1, &params, tables).unwrap();
        let fresh = DiscreteBattery::full(fleet.params_of(0), fleet.disc());
        for lane in second.clone() {
            assert_eq!(batch.state_word(lane), fresh.state_word());
        }
        assert!(batch.charge_units(first.start) < fresh.charge_units());
    }

    #[test]
    fn retirement_lives_in_the_bitmask() {
        let fleet = b1_fleet(2);
        let params = type_params(&fleet);
        let tables = fleet.type_tables();
        let mut batch = DiscreteBatch::new();
        let lanes = batch.push_fleet(&fleet);
        let advance = batch
            .advance_job_range(lanes.clone(), lanes.start, 1_000_000, 2, 1, &params, tables)
            .unwrap();
        assert!(!advance.completed);
        assert!(batch.is_retired(lanes.start));
        assert!(batch.lane_is_empty(lanes.start, &params));
        assert!(!batch.is_retired(lanes.start + 1));
        // Unpacked lanes carry the flag.
        assert!(batch.lane(lanes.start).is_observed_empty());
        // Scheduling the retired lane again consumes no time.
        let again = batch
            .advance_job_range(lanes.clone(), lanes.start, 100, 2, 1, &params, tables)
            .unwrap();
        assert_eq!(again, JobAdvance { steps_consumed: 0, completed: false });
    }

    #[test]
    fn out_of_range_active_lane_fails() {
        let fleet = b1_fleet(2);
        let params = type_params(&fleet);
        let mut batch = DiscreteBatch::new();
        let lanes = batch.push_fleet(&fleet);
        let result = batch.advance_job_range(
            lanes.clone(),
            lanes.end,
            10,
            2,
            1,
            &params,
            fleet.type_tables(),
        );
        assert!(result.is_err());
    }

    #[test]
    fn reset_range_refills_lanes_to_full() {
        let fleet = mixed_fleet();
        let params = type_params(&fleet);
        let tables = fleet.type_tables();
        let mut batch = DiscreteBatch::new();
        let lanes = batch.push_fleet(&fleet);
        batch
            .advance_job_range(lanes.clone(), lanes.start, 100_000, 2, 1, &params, tables)
            .unwrap();
        batch.reset_range(lanes.clone(), &params, fleet.disc());
        let scalar = MultiBatteryState::new_full(&fleet);
        assert_lockstep(&batch, &lanes, &scalar);
    }

    #[test]
    fn push_beyond_64_lanes_grows_the_bitmask() {
        let fleet = b1_fleet(1);
        let mut batch = DiscreteBatch::new();
        for _ in 0..130 {
            batch.push_fleet(&fleet);
        }
        assert_eq!(batch.len(), 130);
        assert!(!batch.is_retired(129));
        let battery = {
            let mut b = DiscreteBattery::from_units(10, 100);
            b.mark_observed_empty();
            b
        };
        batch.set_lane(129, &battery);
        assert!(batch.is_retired(129));
        assert!(!batch.is_retired(128));
        batch.set_lane(129, &DiscreteBattery::from_units(10, 100));
        assert!(!batch.is_retired(129));
    }
}
