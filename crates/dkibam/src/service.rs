//! Recovery-coupled service-rate analysis of a battery type.
//!
//! The optimal-schedule search needs an *admissible* answer to the question
//! "how many charge units could this battery possibly still serve within
//! the next `Δ` time steps, given that the load has delivered `D` draw
//! units by then?". Total charge alone wildly overestimates on loads that
//! strand charge (`ILs alt` leaves ~70 % of the capacity behind): batteries
//! die from the emptiness criterion (Eq. 8, `c·n ≤ (1−c)·m`), not from
//! running out of charge, and the height difference `m` only relaxes at the
//! finite rate of the recovery table (Eq. 6). This module precomputes, once
//! per battery type, a reachability analysis of the discrete dynamics that
//! turns three facts into a cheap upper envelope:
//!
//! * the **service frontier** `threshold(n)` — the largest height
//!   difference at which a battery holding `n` charge units is still
//!   non-empty. A battery that serves a draw while the *post-draw* state
//!   violates the frontier is retired on the spot (the observed-empty flag
//!   is sticky), so every draw except a battery's final one must land at
//!   `m ≤ threshold(n)` — and the frontier *shrinks* as charge drains;
//! * the **recovery cost ladder** — Eq. 6 recovery is fastest at large
//!   height differences, and the largest serviceable height after `s`
//!   units have been served is `threshold(n₀ − s) + u`, so the `j`-th
//!   height unit a battery regains can never cost fewer steps than the
//!   table time at that shrinking ceiling;
//! * **demand pacing** — the height difference only *rises* by serving,
//!   and a battery can never have served more units than the whole load
//!   has delivered, so a recovery completing while the load has delivered
//!   `D` units can occur at height at most `m₀ + D − (recoveries so far)`.
//!   Early recoveries are therefore priced at *low* heights — the slow
//!   part of Eq. 6 — which is exactly what makes alternating loads strand
//!   charge.
//!
//! [`ServiceRateTable::build_envelope`] bakes the state-dependent parts
//! into a [`ServiceEnvelope`]; [`ServiceRateTable::units_within`] then
//! answers `(Δ, D)` queries against it in amortized constant time via a
//! monotone [`EnvelopeCursor`]. The `battery-sched` search sums these
//! per-battery envelopes into an availability-aware upper bound on the
//! remaining system lifetime; admissibility (the envelope may never
//! undercount what a real schedule serves) is asserted against brute-force
//! single-battery service enumeration in this module's tests.

use crate::{Discretization, RecoveryTable};
use kibam::BatteryParams;

/// Precomputed service-rate data of one battery type: the emptiness
/// frontier per charge level and the recovery cost structure it couples to.
///
/// Built once per battery type next to the [`RecoveryTable`] (see
/// [`crate::DiscreteFleet`]), shared by every search cell that uses the
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceRateTable {
    /// `threshold[n]` = the largest height difference `m` at which a
    /// battery with `n` charge units is still non-empty under Eq. 8.
    threshold: Vec<u32>,
    /// Per-unit recovery times, indexed by height difference (`None` at or
    /// below one unit — the asymptotic tail never recovers).
    recovery_steps: Vec<Option<u64>>,
    /// `prefix_steps[h]` = Σ of `recovery_steps[2..=h]`, for O(1) sums of
    /// recovery ladders over height ranges.
    prefix_steps: Vec<u64>,
}

/// The state-dependent half of a battery's service envelope, built by
/// [`ServiceRateTable::build_envelope`] and queried through
/// [`ServiceRateTable::units_within`]. Buffers are reused across builds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceEnvelope {
    /// `units_at[r]` = the most charge units servable given `r` completed
    /// recovery units (the shrinking-frontier condition); non-decreasing,
    /// capped at the remaining charge.
    units_at: Vec<u64>,
    /// `frontier_height[j]` = the largest height at which the `j`-th
    /// recovery unit can occur, ignoring demand pacing (1-indexed via
    /// `frontier_height[j - 1]`); non-increasing.
    frontier_height: Vec<u32>,
    /// Prefix sums of `steps(frontier_height[..])`, `frontier_prefix[j]` =
    /// cost of the first `j` frontier-priced recoveries.
    frontier_prefix: Vec<u64>,
    /// The battery's current height difference (for the demand-pacing
    /// branch).
    height: u32,
    /// The battery's remaining charge units.
    charge: u64,
}

impl ServiceEnvelope {
    /// Creates an empty envelope (filled by
    /// [`ServiceRateTable::build_envelope`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The most units this battery can ever serve, regardless of time.
    #[must_use]
    pub fn max_units(&self) -> u64 {
        self.units_at.last().copied().unwrap_or(0)
    }
}

/// Monotone query cursor over a [`ServiceEnvelope`]: windows and demands
/// must be queried in non-decreasing order (rewind by restoring a saved
/// copy). Holds the recovery units granted so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct EnvelopeCursor {
    /// Recovery units granted.
    recovered: usize,
}

impl ServiceRateTable {
    /// Builds the service-rate table for a battery type: the emptiness
    /// frontier for every charge level `0..=N`, the per-unit recovery
    /// times, and their prefix sums.
    #[must_use]
    pub fn for_battery(params: &BatteryParams, disc: &Discretization) -> Self {
        Self::from_recovery(params, disc, &RecoveryTable::for_battery(params, disc))
    }

    /// Like [`ServiceRateTable::for_battery`], reusing an already-built
    /// [`RecoveryTable`] for the same `(params, disc)` instead of paying
    /// the O(N) log evaluations again (see [`crate::DiscreteFleet`]).
    #[must_use]
    pub fn from_recovery(
        params: &BatteryParams,
        disc: &Discretization,
        table: &RecoveryTable,
    ) -> Self {
        let capacity_units = disc.charge_units(params.capacity());
        let c = params.c();
        let ratio = c / (1.0 - c);
        let threshold: Vec<u32> = (0..=capacity_units)
            .map(|n| {
                // Largest m with c·n > (1−c)·m, found from the float
                // estimate and corrected against the exact predicate so the
                // frontier matches `DiscreteBattery::is_empty` bit for bit.
                let mut m = crate::checked::f64_to_u32((ratio * f64::from(n)).floor().max(0.0)) + 1;
                while m > 0 && c * f64::from(n) <= (1.0 - c) * f64::from(m) {
                    m -= 1;
                }
                m
            })
            .collect();
        let recovery_steps: Vec<Option<u64>> =
            (0..=table.max_units()).map(|m| table.steps(m)).collect();
        let mut prefix_steps = Vec::with_capacity(recovery_steps.len());
        let mut sum = 0u64;
        for steps in &recovery_steps {
            sum += steps.unwrap_or(0);
            prefix_steps.push(sum);
        }
        Self { threshold, recovery_steps, prefix_steps }
    }

    /// The largest height difference at which a battery holding `n` charge
    /// units is still non-empty (the Eq. 8 frontier). Saturates at the top
    /// of the table for `n` beyond the capacity.
    #[must_use]
    pub fn service_threshold(&self, n: u32) -> u32 {
        let top = self.threshold.len() - 1;
        self.threshold[crate::checked::index(n).min(top)]
    }

    /// The Eq. 6 recovery time at height difference `m`, saturating at the
    /// top of the table (`None` at or below one unit).
    #[must_use]
    pub fn recovery_steps(&self, m: u32) -> Option<u64> {
        let top = self.recovery_steps.len() - 1;
        self.recovery_steps[crate::checked::index(m).min(top)]
    }

    /// Σ of the recovery times at heights `2..=h` (0 for `h ≤ 1`),
    /// saturating above the table: heights past the top are charged the
    /// top's (fastest) time.
    fn height_range_cost(&self, h: u64) -> u64 {
        let top = crate::checked::to_u64(self.prefix_steps.len() - 1);
        if h <= top {
            return self.prefix_steps[crate::checked::index_u64(h)];
        }
        let extra = h - top;
        let top = crate::checked::index_u64(top);
        self.prefix_steps[top] + extra * self.recovery_steps[top].unwrap_or(0)
    }

    /// Whether a battery at `(n, m)` could serve `s + 1` units without
    /// retiring before the final draw, given `r` completed recovery units:
    /// the height before the final draw, `m + s − r`, must sit on the
    /// frontier of the charge left then. (The final draw itself may
    /// overshoot the frontier — the battery retires serving it.)
    fn can_serve(&self, n: u32, m: u32, s: u64, r: u64) -> bool {
        let charge_left = n.saturating_sub(u32::try_from(s).unwrap_or(u32::MAX));
        u64::from(m) + s <= r + u64::from(self.service_threshold(charge_left))
    }

    /// Fills `out` with the service envelope of a battery currently at
    /// `(n, m)`. `max_units_per_draw` is the largest single draw of the
    /// load ahead (one final draw may overshoot the service frontier by
    /// that much). Buffers inside `out` are reused.
    pub fn build_envelope(
        &self,
        n: u32,
        m: u32,
        max_units_per_draw: u32,
        out: &mut ServiceEnvelope,
    ) {
        out.units_at.clear();
        out.frontier_height.clear();
        out.frontier_prefix.clear();
        out.height = m;
        out.charge = u64::from(n);
        let overshoot = u64::from(max_units_per_draw);

        // units_at[r]: extend while the shrinking-frontier condition holds,
        // granting the final draw its overshoot.
        let mut served: u64 = 0;
        // Crossing pointer for the recovery-height maximization below: the
        // largest prior-serve count S where the climb branch still sits at
        // or under the frontier branch (non-decreasing in j).
        let mut crossing: u64 = 0;
        for recovered in 0u64.. {
            while served < out.charge
                && self.can_serve(n, m, served.saturating_sub(overshoot), recovered)
            {
                served += 1;
            }
            out.units_at.push(served);
            if served >= out.charge {
                break;
            }
            // The j-th recovery's height is capped by both the climb (the
            // height has risen by at most the S serves preceding it:
            // m + S − (j − 1)) and the shrinking service frontier of the
            // charge left after those serves (thr(n − S) + overshoot); the
            // admissible price is the best case over S — the crossing of
            // the rising climb branch and the falling frontier branch —
            // or the start height for recoveries preceding all serving.
            let j = recovered + 1;
            let idle_height = u64::from(m).saturating_sub(j - 1);
            let climb = |s: u64| (u64::from(m) + s + 1).saturating_sub(j);
            // No overshoot here: every priced recovery precedes a further
            // serve, and a battery only keeps serving while its post-draw
            // height sits on the frontier proper.
            let frontier = |s: u64| {
                u64::from(
                    self.service_threshold(n.saturating_sub(u32::try_from(s).unwrap_or(u32::MAX))),
                )
            };
            while crossing < out.charge && climb(crossing + 1) <= frontier(crossing + 1) {
                crossing += 1;
            }
            let mut height = idle_height.max(climb(crossing).min(frontier(crossing)));
            if crossing < out.charge {
                height = height.max(frontier(crossing + 1).min(climb(crossing + 1)));
            }
            if self.recovery_steps(u32::try_from(height).unwrap_or(u32::MAX)).is_none() {
                // The reachable band cannot recover: the envelope ends.
                break;
            }
            // Envelope monotonicity: the recovery frontier only shrinks as
            // units are served, so the priced heights are non-increasing.
            debug_assert!(
                out.frontier_height.last().map_or(true, |&prev| height <= u64::from(prev)),
                "service frontier heights must be non-increasing"
            );
            // `height` was validated against the u32 recovery table above.
            out.frontier_height.push(crate::checked::to_u32(crate::checked::index_u64(height)));
            let cost = self.height_range_cost(height) - self.height_range_cost(height - 1);
            let previous = out.frontier_prefix.last().copied().unwrap_or(0);
            out.frontier_prefix.push(previous + cost);
        }
    }

    /// The minimum time (steps) for the first `r` recovery units of
    /// `envelope` under demand cap `demand_units`: each recovery is priced
    /// at the cheapest (largest) height it could occur at — the frontier
    /// ladder capped by the demand-paced climb `m₀ + D − (j − 1)` — with
    /// the first recovery riding free on a pre-accumulated clock.
    fn recovery_time(&self, envelope: &ServiceEnvelope, r: usize, demand_units: u64) -> u64 {
        if r <= 1 {
            return 0;
        }
        let priced = r - 1;
        // Demand-paced ceiling for recovery j: m₀ + min(D, charge) + 1 − j.
        let climb = u64::from(envelope.height) + envelope.charge.min(demand_units) + 1;
        // The frontier branch governs recoveries j with
        // frontier_height[j] + j ≤ climb; frontier_height[j] + j is
        // non-decreasing (the frontier shrinks by at most one per serve),
        // so that set is a prefix — find its end by binary search over the
        // first `priced` entries (j is 1-based, stored at index j − 1).
        let limit = priced.min(envelope.frontier_height.len());
        let mut lo = 0usize;
        let mut hi = limit;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if u64::from(envelope.frontier_height[mid]) + (crate::checked::to_u64(mid) + 1) <= climb
            {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let split = lo;
        let mut total = if split > 0 { envelope.frontier_prefix[split - 1] } else { 0 };
        if split < priced {
            // Demand-paced heights climb − (split+1) down to climb − priced.
            let high = climb.saturating_sub(crate::checked::to_u64(split) + 1);
            let low = climb.saturating_sub(crate::checked::to_u64(priced));
            if low <= 1 {
                return u64::MAX;
            }
            total = total
                .saturating_add(self.height_range_cost(high))
                .saturating_sub(self.height_range_cost(low - 1));
        }
        total
    }

    /// Upper bound on the units a battery with `envelope` can serve within
    /// `window_steps`, given the load delivers at most `demand_units` over
    /// that window. `cursor` carries the recoveries granted so far and must
    /// be queried with non-decreasing `(window, demand)` pairs (save and
    /// restore it to rewind).
    #[must_use]
    pub fn units_within(
        &self,
        envelope: &ServiceEnvelope,
        cursor: &mut EnvelopeCursor,
        window_steps: u64,
        demand_units: u64,
    ) -> u64 {
        while cursor.recovered + 1 < envelope.units_at.len()
            && self.recovery_time(envelope, cursor.recovered + 1, demand_units) <= window_steps
        {
            cursor.recovered += 1;
        }
        // Charge conservation: no window lets a battery serve more units
        // than the charge it held when the envelope was built.
        debug_assert!(
            envelope.units_at[cursor.recovered] <= envelope.charge,
            "service envelope promised more units than the battery's charge"
        );
        envelope.units_at[cursor.recovered].min(demand_units)
    }

    /// The largest recovery count `r` whose first `r` units fit in
    /// `window_steps` under demand cap `demand_units`
    /// ([`ServiceRateTable::recovery_time`] is non-decreasing in `r`, so
    /// this is a plain binary search — no monotone cursor required).
    fn max_recoveries_within(
        &self,
        envelope: &ServiceEnvelope,
        window_steps: u64,
        demand_units: u64,
    ) -> usize {
        if envelope.units_at.is_empty() {
            return 0;
        }
        let mut lo = 0usize;
        let mut hi = envelope.units_at.len() - 1;
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if self.recovery_time(envelope, mid, demand_units) <= window_steps {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }

    /// **Self-paced** upper bound on the units this battery can serve
    /// within `window_steps`, independent of the load's demand.
    ///
    /// [`ServiceRateTable::units_within`] paces recoveries by the *load's*
    /// delivered units `D` — loose when many batteries share the load,
    /// because a battery's height difference only climbs by its **own**
    /// serves. If the battery itself serves `s` units in the window, its
    /// recoveries are paced by `s`, so `s` must satisfy `s ≤ g(s)` where
    /// `g(s)` is the envelope evaluated with demand cap `s`. `g` is
    /// monotone non-decreasing (larger demand → higher climb → cheaper
    /// recoveries) and `g(s) ≤ s` by the demand cap, so iterating
    /// `s ← g(s)` downward from the unbounded-demand value converges to
    /// the **greatest** fixed point — every true serve count is a fixed
    /// point candidate below the start and can never be stepped over
    /// (`s_k ≥ s* ⇒ g(s_k) ≥ g(s*) ≥ s*`). Admissibility against the real
    /// discrete dynamics is brute-force-checked in this module's tests.
    ///
    /// On the paper's battery types the frontier ladder already prices
    /// recoveries at heights reachable only by serving, so this cap
    /// coincides with the unbounded-demand envelope there; it is kept as a
    /// cheap guard for parameterizations where the ladder is looser.
    #[must_use]
    pub fn self_paced_units(&self, envelope: &ServiceEnvelope, window_steps: u64) -> u64 {
        let mut cursor = EnvelopeCursor::default();
        self.self_paced_units_with(envelope, &mut cursor, window_steps)
    }

    /// [`ServiceRateTable::self_paced_units`] seeded by a monotone cursor:
    /// the unbounded-demand start of the fixed-point iteration advances
    /// the cursor (amortized O(1) over non-decreasing windows); the
    /// downward iteration itself runs on binary searches and leaves the
    /// cursor at the unbounded frontier.
    #[must_use]
    pub fn self_paced_units_with(
        &self,
        envelope: &ServiceEnvelope,
        cursor: &mut EnvelopeCursor,
        window_steps: u64,
    ) -> u64 {
        if envelope.units_at.is_empty() {
            return 0;
        }
        let mut serves = self.units_within(envelope, cursor, window_steps, u64::MAX);
        loop {
            let r = self.max_recoveries_within(envelope, window_steps, serves);
            let paced = envelope.units_at[r].min(serves);
            if paced >= serves {
                return serves;
            }
            serves = paced;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiscreteBattery;

    fn b1_coarse() -> (BatteryParams, Discretization, ServiceRateTable) {
        let params = BatteryParams::itsy_b1();
        let disc = Discretization::coarse();
        let table = ServiceRateTable::for_battery(&params, &disc);
        (params, disc, table)
    }

    /// Evaluates an envelope at a window with unbounded demand, the way a
    /// fresh (non-cursor) caller would.
    fn units_at_window(table: &ServiceRateTable, env: &ServiceEnvelope, window: u64) -> u64 {
        let mut cursor = EnvelopeCursor::default();
        table.units_within(env, &mut cursor, window, u64::MAX)
    }

    #[test]
    fn threshold_matches_the_emptiness_predicate_exactly() {
        let (params, disc, table) = b1_coarse();
        let capacity = disc.charge_units(params.capacity());
        for n in 0..=capacity {
            let threshold = table.service_threshold(n);
            if threshold > 0 {
                let live = DiscreteBattery::from_units(n, threshold);
                assert!(!live.is_empty(&params), "n={n}: m={threshold} must be serviceable");
            }
            let dead = DiscreteBattery::from_units(n, threshold + 1);
            assert!(dead.is_empty(&params), "n={n}: m={} must be empty", threshold + 1);
        }
    }

    #[test]
    fn threshold_is_monotone_in_charge() {
        let (params, disc, table) = b1_coarse();
        let capacity = disc.charge_units(params.capacity());
        let mut previous = 0;
        for n in 0..=capacity {
            let threshold = table.service_threshold(n);
            assert!(threshold >= previous, "the frontier never shrinks as charge grows");
            previous = threshold;
        }
        // Beyond the capacity the lookup saturates instead of panicking.
        assert_eq!(table.service_threshold(capacity + 100), previous);
    }

    #[test]
    fn envelope_is_monotone_and_charge_capped() {
        let (_, _, table) = b1_coarse();
        let mut env = ServiceEnvelope::new();
        for (n, m) in [(110u32, 0u32), (80, 14), (30, 5), (8, 1), (0, 3)] {
            table.build_envelope(n, m, 1, &mut env);
            assert!(!env.units_at.is_empty(), "(n={n}, m={m}): envelopes are never empty");
            assert!(
                env.units_at.windows(2).all(|w| w[0] <= w[1]),
                "(n={n}, m={m}): units monotone"
            );
            assert!(
                env.frontier_prefix.windows(2).all(|w| w[0] <= w[1]),
                "(n={n}, m={m}): costs monotone"
            );
            assert!(
                env.max_units() <= u64::from(n),
                "(n={n}, m={m}): can never serve more than the remaining charge"
            );
            // Queries are monotone in the window and capped by demand.
            let mut previous = 0;
            for window in [0u64, 20, 80, 200, 400, 1_000] {
                let units = units_at_window(&table, &env, window);
                assert!(units >= previous);
                previous = units;
            }
            let mut cursor = EnvelopeCursor::default();
            assert!(table.units_within(&env, &mut cursor, 1_000, 7) <= 7);
        }
    }

    #[test]
    fn demand_pacing_slows_early_recoveries() {
        // A fresh battery's height can only climb as fast as the load
        // delivers draws, so with little demand its recoveries are priced
        // at low (slow) heights and the envelope must shrink.
        let (_, _, table) = b1_coarse();
        let mut env = ServiceEnvelope::new();
        table.build_envelope(110, 0, 1, &mut env);
        let mut starved = EnvelopeCursor::default();
        let mut fed = EnvelopeCursor::default();
        let with_low_demand = table.units_within(&env, &mut starved, 400, 30);
        let with_high_demand = table.units_within(&env, &mut fed, 400, 10_000);
        assert!(
            with_low_demand < with_high_demand,
            "demand pacing must bind: {with_low_demand} vs {with_high_demand}"
        );
    }

    #[test]
    fn worn_batteries_have_smaller_envelopes_than_fresh_ones() {
        let (_, _, table) = b1_coarse();
        let mut fresh = ServiceEnvelope::new();
        let mut worn = ServiceEnvelope::new();
        table.build_envelope(110, 0, 1, &mut fresh);
        table.build_envelope(80, 14, 1, &mut worn);
        for window in [0u64, 20, 80, 200, 400] {
            let fresh_units = units_at_window(&table, &fresh, window);
            let worn_units = units_at_window(&table, &worn, window);
            assert!(
                fresh_units >= worn_units,
                "window {window}: fresh {fresh_units} < worn {worn_units}"
            );
        }
        // A worn battery cannot cover a 500 mA epoch (10 units / 20 steps)
        // the way a fresh one can — the shape the availability bound
        // exploits.
        assert!(units_at_window(&table, &fresh, 20) >= 10);
        assert!(units_at_window(&table, &worn, 20) <= 5);
    }

    #[test]
    fn envelope_never_undercounts_brute_force_service() {
        // Admissibility at the single-battery level: for a sample of
        // states, enumerate every subset of the next `slots` draw slots and
        // count the most units any serving pattern delivers; the envelope
        // evaluated at the window (with demand = the slots offered) must
        // never report less.
        let (params, disc, table) = b1_coarse();
        let recovery = RecoveryTable::for_battery(&params, &disc);
        let mut env = ServiceEnvelope::new();
        for interval in [2u64, 4] {
            let slots = 11u32;
            for (n, m) in [(110, 0), (110, 18), (80, 14), (60, 11), (30, 5), (20, 3), (8, 1)] {
                let best = max_served(
                    DiscreteBattery::from_units(n, m),
                    &params,
                    &recovery,
                    interval,
                    slots,
                );
                table.build_envelope(n, m, 1, &mut env);
                let mut cursor = EnvelopeCursor::default();
                let window = u64::from(slots) * interval;
                let bound = table.units_within(&env, &mut cursor, window, u64::from(slots));
                assert!(
                    bound >= u64::from(best),
                    "(n={n}, m={m}, interval={interval}): envelope {bound} undercounts \
                     brute force {best}"
                );
            }
        }
    }

    #[test]
    fn self_paced_cap_never_undercounts_brute_force_service() {
        // The self-paced bound drops the load-demand crutch entirely — its
        // admissibility rests on the greatest-fixed-point argument, so
        // check it against the same exhaustive serve/skip enumeration.
        let (params, disc, table) = b1_coarse();
        let recovery = RecoveryTable::for_battery(&params, &disc);
        let mut env = ServiceEnvelope::new();
        for interval in [2u64, 4] {
            let slots = 11u32;
            for (n, m) in [(110, 0), (110, 18), (80, 14), (60, 11), (30, 5), (20, 3), (8, 1)] {
                let best = max_served(
                    DiscreteBattery::from_units(n, m),
                    &params,
                    &recovery,
                    interval,
                    slots,
                );
                table.build_envelope(n, m, 1, &mut env);
                let window = u64::from(slots) * interval;
                let bound = table.self_paced_units(&env, window);
                assert!(
                    bound >= u64::from(best),
                    "(n={n}, m={m}, interval={interval}): self-paced {bound} undercounts \
                     brute force {best}"
                );
            }
        }
    }

    #[test]
    fn self_paced_cap_tightens_the_demand_paced_envelope() {
        let (_, _, table) = b1_coarse();
        let mut env = ServiceEnvelope::new();
        table.build_envelope(110, 0, 1, &mut env);
        let mut previous = 0;
        for window in [0u64, 20, 80, 200, 400, 1_000] {
            let self_paced = table.self_paced_units(&env, window);
            // Never looser than the unbounded-demand envelope...
            assert!(self_paced <= units_at_window(&table, &env, window));
            // ...and monotone in the window.
            assert!(self_paced >= previous, "window {window}: self-paced cap not monotone");
            previous = self_paced;
        }
        // Note: on the paper's battery types the two sides coincide — the
        // frontier ladder already prices recoveries at heights the battery
        // can only reach by serving, so the climb cap is implied. The cap
        // stays as a cheap guard for chemistries where the ladder is
        // looser; admissibility is what the brute-force test above pins.
    }

    /// Brute force: the most draws a single battery can serve among the
    /// next `slots` draw instants (spaced `interval` steps), trying every
    /// serve/skip pattern under the real discrete dynamics (including
    /// sticky retirement at a post-draw emptiness observation).
    fn max_served(
        battery: DiscreteBattery,
        params: &BatteryParams,
        recovery: &RecoveryTable,
        interval: u64,
        slots: u32,
    ) -> u32 {
        if slots == 0 {
            return 0;
        }
        // Skip this slot: recover through it.
        let mut skipped = battery;
        skipped.advance_recovery(interval, recovery);
        let mut best = max_served(skipped, params, recovery, interval, slots - 1);
        // Serve this slot if the battery is up to it: recovery runs up to
        // the draw instant, the draw lands if the battery is non-empty
        // there, and a post-draw emptiness observation retires it.
        let mut served = battery;
        served.advance_recovery(interval, recovery);
        if !served.is_empty(params) {
            served.draw(1);
            let rest = if served.is_empty(params) {
                0
            } else {
                max_served(served, params, recovery, interval, slots - 1)
            };
            best = best.max(1 + rest);
        }
        best
    }
}
