//! Checked numeric conversions for model quantities.
//!
//! The discretized kernels constantly move between the continuous domain
//! (charge in mA·min, time in minutes) and the discrete one (charge
//! units, time steps, lane indices). A bare `as` cast at such a seam
//! silently saturates or truncates; these helpers centralize every such
//! conversion behind a `debug_assert!` that the value is actually
//! representable, while compiling to the identical saturating cast in
//! release builds — so lifetimes and golden tables are bit-for-bit
//! unchanged. The workspace linter (`cargo run -p xlint`) bans ad-hoc
//! integer `as` casts in the numeric crates and routes them here.
//!
//! Float-to-integer helpers expect the caller to have already applied its
//! rounding mode (`round`, `floor`, `ceil`): the helper checks and casts,
//! it does not round, so the rounding intent stays visible at the call
//! site.

/// Converts an already-rounded, nonnegative float (charge units, step
/// counts) to `u64`.
#[inline]
#[must_use]
pub fn f64_to_u64(x: f64) -> u64 {
    debug_assert!(
        x.is_finite() && (0.0..=9_007_199_254_740_992.0).contains(&x), // 2^53: exact range
        "f64_to_u64: {x} is not an exactly-representable nonnegative count"
    );
    // xlint: allow(cast) -- the debug_assert above pins the exact-integer range
    x as u64
}

/// Converts an already-rounded, nonnegative float to `u32`.
#[inline]
#[must_use]
pub fn f64_to_u32(x: f64) -> u32 {
    debug_assert!(
        x.is_finite() && (0.0..=f64::from(u32::MAX)).contains(&x),
        "f64_to_u32: {x} out of range"
    );
    // xlint: allow(cast) -- the debug_assert above pins the u32 range
    x as u32
}

/// Converts an already-rounded, nonnegative float to `usize`.
#[inline]
#[must_use]
pub fn f64_to_usize(x: f64) -> usize {
    debug_assert!(
        x.is_finite() && (0.0..=9_007_199_254_740_992.0).contains(&x),
        "f64_to_usize: {x} out of range"
    );
    // xlint: allow(cast) -- the debug_assert above pins the exact-integer range
    x as usize
}

/// Converts an already-rounded float (possibly negative: scaled model
/// constants) to `i64`.
#[inline]
#[must_use]
pub fn f64_to_i64(x: f64) -> i64 {
    debug_assert!(
        x.is_finite() && x.abs() <= 9_007_199_254_740_992.0,
        "f64_to_i64: {x} out of range"
    );
    // xlint: allow(cast) -- the debug_assert above pins the exact-integer range
    x as i64
}

/// Widens a `u32` lane/type/unit id to a `usize` index (lossless on every
/// supported target: `usize` is at least 32 bits).
#[inline]
#[must_use]
pub fn index(value: u32) -> usize {
    // xlint: allow(cast) -- u32 -> usize is lossless on 32/64-bit targets
    value as usize
}

/// Converts a `u64` count to a `usize` index.
#[inline]
#[must_use]
pub fn index_u64(value: u64) -> usize {
    debug_assert!(usize::try_from(value).is_ok(), "index_u64: {value} exceeds usize");
    // xlint: allow(cast) -- the debug_assert above pins the usize range
    value as usize
}

/// Narrows a `usize` length/index to `u32`.
#[inline]
#[must_use]
pub fn to_u32(value: usize) -> u32 {
    debug_assert!(u32::try_from(value).is_ok(), "to_u32: {value} exceeds u32");
    // xlint: allow(cast) -- the debug_assert above pins the u32 range
    value as u32
}

/// Widens a `usize` index to `u64` (lossless on every supported target:
/// `usize` is at most 64 bits).
#[inline]
#[must_use]
pub fn to_u64(value: usize) -> u64 {
    // xlint: allow(cast) -- usize -> u64 is lossless on 32/64-bit targets
    value as u64
}

/// Converts a `u64` step count to `i64` (for the PTA integer domain).
#[inline]
#[must_use]
pub fn u64_to_i64(value: u64) -> i64 {
    debug_assert!(i64::try_from(value).is_ok(), "u64_to_i64: {value} exceeds i64");
    // xlint: allow(cast) -- the debug_assert above pins the i64 range
    value as i64
}

/// Converts a `usize` count to `i64` (for the PTA integer domain).
#[inline]
#[must_use]
pub fn usize_to_i64(value: usize) -> i64 {
    debug_assert!(i64::try_from(value).is_ok(), "usize_to_i64: {value} exceeds i64");
    // xlint: allow(cast) -- the debug_assert above pins the i64 range
    value as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_helpers_match_the_saturating_cast_in_range() {
        assert_eq!(f64_to_u64(0.0), 0);
        assert_eq!(f64_to_u64(42.0), 42);
        assert_eq!(f64_to_u32(7.0), 7);
        assert_eq!(f64_to_usize(3.0), 3);
        assert_eq!(f64_to_i64(-5.0), -5);
        assert_eq!(f64_to_i64(5.0), 5);
    }

    #[test]
    fn integer_helpers_round_trip() {
        assert_eq!(index(9), 9);
        assert_eq!(index_u64(1 << 40), 1usize << 40);
        assert_eq!(to_u32(123), 123);
        assert_eq!(to_u64(usize::MAX), usize::MAX as u64);
        assert_eq!(u64_to_i64(1 << 62), 1i64 << 62);
        assert_eq!(usize_to_i64(77), 77);
    }

    #[test]
    #[should_panic(expected = "f64_to_u32")]
    #[cfg(debug_assertions)]
    fn out_of_range_is_caught_in_debug() {
        let _ = f64_to_u32(f64::from(u32::MAX) + 2.0);
    }

    #[test]
    #[should_panic(expected = "f64_to_u64")]
    #[cfg(debug_assertions)]
    fn nan_is_caught_in_debug() {
        let _ = f64_to_u64(f64::NAN);
    }
}
