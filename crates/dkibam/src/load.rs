use crate::{Discretization, DkibamError};
use workload::LoadProfile;

/// Largest draw-interval denominator tried when converting a current into
/// "`cur` charge units every `cur_times` time steps".
const MAX_DRAW_INTERVAL: u32 = 10_000;

/// One epoch of a discretized load, mirroring one entry of the paper's
/// `load_time` / `cur_times` / `cur` arrays (Section 4.1).
///
/// During a job epoch, `units_per_draw` charge units are subtracted from the
/// serving battery every `draw_interval_steps` time steps, which realises the
/// epoch current `I = cur·Γ / (cur_times·T)` (Eq. 7). Idle epochs draw
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiscreteEpoch {
    duration_steps: u64,
    draw_interval_steps: u32,
    units_per_draw: u32,
}

impl DiscreteEpoch {
    /// An idle epoch of the given number of time steps.
    #[must_use]
    pub fn idle(duration_steps: u64) -> Self {
        Self { duration_steps, draw_interval_steps: 0, units_per_draw: 0 }
    }

    /// A job epoch: `units_per_draw` charge units are drawn every
    /// `draw_interval_steps` time steps for `duration_steps` steps.
    #[must_use]
    pub fn job(duration_steps: u64, draw_interval_steps: u32, units_per_draw: u32) -> Self {
        Self { duration_steps, draw_interval_steps, units_per_draw }
    }

    /// Length of the epoch in time steps.
    #[must_use]
    pub fn duration_steps(&self) -> u64 {
        self.duration_steps
    }

    /// Time steps between two consecutive charge draws (the paper's
    /// `cur_times[j]`); zero for idle epochs.
    #[must_use]
    pub fn draw_interval_steps(&self) -> u32 {
        self.draw_interval_steps
    }

    /// Charge units drawn at each draw instant (the paper's `cur[j]`); zero
    /// for idle epochs.
    #[must_use]
    pub fn units_per_draw(&self) -> u32 {
        self.units_per_draw
    }

    /// Whether the epoch draws no charge.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.units_per_draw == 0 || self.draw_interval_steps == 0
    }

    /// The continuous current realised by this epoch under the given
    /// discretization (Eq. 7 of the paper), in amperes.
    #[must_use]
    pub fn current(&self, disc: &Discretization) -> f64 {
        if self.is_idle() {
            0.0
        } else {
            f64::from(self.units_per_draw) * disc.charge_unit()
                / (f64::from(self.draw_interval_steps) * disc.time_step())
        }
    }

    /// The number of complete draw instants contained in this epoch.
    #[must_use]
    pub fn draws_in_epoch(&self) -> u64 {
        if self.is_idle() {
            0
        } else {
            self.duration_steps / u64::from(self.draw_interval_steps)
        }
    }

    /// Total charge units drawn over the whole epoch.
    #[must_use]
    pub fn total_units(&self) -> u64 {
        self.draws_in_epoch() * u64::from(self.units_per_draw)
    }
}

/// A complete load expressed in the discrete quantities of the TA-KiBaM:
/// a sequence of [`DiscreteEpoch`]s plus the discretization they refer to.
///
/// This corresponds to the three precomputed arrays `load_time`,
/// `cur_times` and `cur` that the paper imports into its timed-automata
/// model ("The three arrays are created using an external program", §4.1 —
/// this type *is* that external program).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiscretizedLoad {
    epochs: Vec<DiscreteEpoch>,
    disc: Discretization,
}

impl DiscretizedLoad {
    /// Discretizes a load profile.
    ///
    /// Cyclic profiles are truncated so that they draw at least
    /// `charge_horizon` A·min — callers typically pass the total capacity of
    /// all batteries involved, guaranteeing the load outlasts them. Finite
    /// profiles are used as-is.
    ///
    /// # Errors
    ///
    /// * [`DkibamError::InvalidHorizon`] if a cyclic profile is given a
    ///   non-positive or non-finite horizon;
    /// * [`DkibamError::UnrepresentableCurrent`] if an epoch current cannot
    ///   be written as an integer number of charge units per integer number
    ///   of time steps;
    /// * [`DkibamError::EmptyLoad`] if the resulting epoch list is empty.
    pub fn from_profile(
        profile: &LoadProfile,
        disc: &Discretization,
        charge_horizon: f64,
    ) -> Result<Self, DkibamError> {
        let finite = if profile.is_cyclic() {
            if !(charge_horizon.is_finite() && charge_horizon > 0.0) {
                return Err(DkibamError::InvalidHorizon { value: charge_horizon });
            }
            profile.truncate_to_charge(charge_horizon)?
        } else {
            profile.clone()
        };
        let mut epochs = Vec::with_capacity(finite.pattern().len());
        for epoch in finite.pattern() {
            let duration_steps = disc.minutes_to_steps(epoch.duration());
            if epoch.is_idle() {
                epochs.push(DiscreteEpoch::idle(duration_steps));
            } else {
                let (units, interval) = represent_current(epoch.current(), disc)?;
                epochs.push(DiscreteEpoch::job(duration_steps, interval, units));
            }
        }
        if epochs.is_empty() {
            return Err(DkibamError::EmptyLoad);
        }
        Ok(Self { epochs, disc: *disc })
    }

    /// The discretized epochs in load order.
    #[must_use]
    pub fn epochs(&self) -> &[DiscreteEpoch] {
        &self.epochs
    }

    /// The discretization this load was built with.
    #[must_use]
    pub fn discretization(&self) -> &Discretization {
        &self.disc
    }

    /// The paper's `load_time` array: the absolute end time of each epoch,
    /// in time steps from the start of the load.
    #[must_use]
    pub fn load_time(&self) -> Vec<u64> {
        let mut total = 0;
        self.epochs
            .iter()
            .map(|e| {
                total += e.duration_steps();
                total
            })
            .collect()
    }

    /// Total duration of the load in time steps.
    #[must_use]
    pub fn total_steps(&self) -> u64 {
        self.epochs.iter().map(DiscreteEpoch::duration_steps).sum()
    }

    /// Total charge units drawn by the whole load.
    #[must_use]
    pub fn total_units(&self) -> u64 {
        self.epochs.iter().map(DiscreteEpoch::total_units).sum()
    }
}

/// Finds the smallest `(units, interval)` pair such that drawing `units`
/// charge units every `interval` time steps realises `current` exactly (to
/// within floating-point tolerance).
fn represent_current(current: f64, disc: &Discretization) -> Result<(u32, u32), DkibamError> {
    // current = units * Γ / (interval * T)  =>  units / interval = current·T/Γ.
    let ratio = current * disc.time_step() / disc.charge_unit();
    if !(ratio.is_finite() && ratio > 0.0) {
        return Err(DkibamError::UnrepresentableCurrent { current });
    }
    for interval in 1..=MAX_DRAW_INTERVAL {
        let units = ratio * f64::from(interval);
        let rounded = units.round();
        if rounded >= 1.0 && (units - rounded).abs() < 1e-9 {
            return Ok((crate::checked::f64_to_u32(rounded), interval));
        }
    }
    Err(DkibamError::UnrepresentableCurrent { current })
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::paper_loads::TestLoad;

    fn disc() -> Discretization {
        Discretization::paper_default()
    }

    #[test]
    fn paper_currents_have_small_representations() {
        // 250 mA: one unit every 4 steps; 500 mA: one unit every 2 steps.
        assert_eq!(represent_current(0.25, &disc()).unwrap(), (1, 4));
        assert_eq!(represent_current(0.5, &disc()).unwrap(), (1, 2));
        // 700 mA (the Itsy maximum): 7 units every 100 steps... actually 7/10.
        assert_eq!(represent_current(0.7, &disc()).unwrap(), (7, 10));
    }

    #[test]
    fn unrepresentable_and_zero_currents_are_rejected() {
        assert!(matches!(
            represent_current(0.0, &disc()),
            Err(DkibamError::UnrepresentableCurrent { .. })
        ));
        assert!(represent_current(f64::NAN, &disc()).is_err());
    }

    #[test]
    fn discrete_epoch_current_round_trips() {
        let epoch = DiscreteEpoch::job(100, 4, 1);
        assert!((epoch.current(&disc()) - 0.25).abs() < 1e-12);
        assert_eq!(epoch.draws_in_epoch(), 25);
        assert_eq!(epoch.total_units(), 25);
        assert!(!epoch.is_idle());
        let idle = DiscreteEpoch::idle(50);
        assert!(idle.is_idle());
        assert_eq!(idle.current(&disc()), 0.0);
        assert_eq!(idle.total_units(), 0);
    }

    #[test]
    fn cyclic_profile_requires_valid_horizon() {
        let profile = TestLoad::Cl250.profile();
        assert!(DiscretizedLoad::from_profile(&profile, &disc(), 0.0).is_err());
        assert!(DiscretizedLoad::from_profile(&profile, &disc(), f64::NAN).is_err());
        assert!(DiscretizedLoad::from_profile(&profile, &disc(), 6.0).is_ok());
    }

    #[test]
    fn discretized_load_draws_at_least_the_horizon() {
        let profile = TestLoad::Ils500.profile();
        let load = DiscretizedLoad::from_profile(&profile, &disc(), 11.0).unwrap();
        let drawn_charge = load.total_units() as f64 * disc().charge_unit();
        assert!(drawn_charge >= 11.0);
    }

    #[test]
    fn load_time_is_cumulative_and_matches_total() {
        let profile = TestLoad::IlsAlt.profile();
        let load = DiscretizedLoad::from_profile(&profile, &disc(), 6.0).unwrap();
        let times = load.load_time();
        assert!(times.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(*times.last().unwrap(), load.total_steps());
    }

    #[test]
    fn paper_load_epochs_have_expected_step_counts() {
        let profile = TestLoad::Ill250.profile();
        let load = DiscretizedLoad::from_profile(&profile, &disc(), 6.0).unwrap();
        // Pattern: one-minute job (100 steps), two-minute idle (200 steps).
        assert_eq!(load.epochs()[0].duration_steps(), 100);
        assert_eq!(load.epochs()[0].draw_interval_steps(), 4);
        assert_eq!(load.epochs()[1].duration_steps(), 200);
        assert!(load.epochs()[1].is_idle());
    }

    #[test]
    fn finite_profiles_are_used_verbatim() {
        let profile = TestLoad::IlsR1.profile();
        let load = DiscretizedLoad::from_profile(&profile, &disc(), 1.0).unwrap();
        assert_eq!(load.epochs().len(), profile.pattern().len());
    }
}
