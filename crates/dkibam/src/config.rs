use crate::checked;
use crate::DkibamError;
use kibam::BatteryParams;

/// Discretization step sizes of the dKiBaM (Section 2.3 of the paper).
///
/// * `time_step` — the length `T` of one discrete time step, in minutes;
/// * `charge_unit` — the size `Γ` of one charge unit, in A·min.
///
/// The height difference is discretized in units of `Γ / c`, which depends on
/// the battery parameters and is therefore exposed as a method.
///
/// # Example
///
/// ```
/// use dkibam::Discretization;
/// use kibam::BatteryParams;
///
/// let disc = Discretization::paper_default();
/// assert_eq!(disc.time_step(), 0.01);
/// assert_eq!(disc.charge_unit(), 0.01);
/// // Battery B1 holds N = 550 charge units.
/// assert_eq!(disc.charge_units(BatteryParams::itsy_b1().capacity()), 550);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Discretization {
    time_step: f64,
    charge_unit: f64,
}

impl Discretization {
    /// Creates a discretization with the given time step `T` (minutes) and
    /// charge unit `Γ` (A·min).
    ///
    /// # Errors
    ///
    /// Returns [`DkibamError::InvalidStepSize`] if either step is not
    /// positive and finite.
    pub fn new(time_step: f64, charge_unit: f64) -> Result<Self, DkibamError> {
        if !(time_step.is_finite() && time_step > 0.0) {
            return Err(DkibamError::InvalidStepSize { which: "time", value: time_step });
        }
        if !(charge_unit.is_finite() && charge_unit > 0.0) {
            return Err(DkibamError::InvalidStepSize { which: "charge", value: charge_unit });
        }
        Ok(Self { time_step, charge_unit })
    }

    /// The discretization used throughout the paper's experiments:
    /// `T = 0.01` min and `Γ = 0.01` A·min.
    #[must_use]
    pub fn paper_default() -> Self {
        Self { time_step: 0.01, charge_unit: 0.01 }
    }

    /// A coarser discretization (`T = 0.05` min, `Γ = 0.05` A·min) that keeps
    /// optimal-schedule searches tractable in tests and benchmarks while
    /// preserving the qualitative behaviour.
    #[must_use]
    pub fn coarse() -> Self {
        Self { time_step: 0.05, charge_unit: 0.05 }
    }

    /// The time step `T` in minutes.
    #[must_use]
    pub fn time_step(&self) -> f64 {
        self.time_step
    }

    /// The charge unit `Γ` in A·min.
    #[must_use]
    pub fn charge_unit(&self) -> f64 {
        self.charge_unit
    }

    /// Number of charge units `N = round(C / Γ)` for a capacity `C` (A·min).
    #[must_use]
    pub fn charge_units(&self, capacity: f64) -> u32 {
        checked::f64_to_u32((capacity / self.charge_unit).round())
    }

    /// Size of one height-difference unit, `Γ / c`, for the given battery.
    #[must_use]
    pub fn height_unit(&self, params: &BatteryParams) -> f64 {
        self.charge_unit / params.c()
    }

    /// Converts a number of time steps into minutes.
    #[must_use]
    pub fn steps_to_minutes(&self, steps: u64) -> f64 {
        steps as f64 * self.time_step
    }

    /// Converts a duration in minutes into the nearest number of time steps.
    #[must_use]
    pub fn minutes_to_steps(&self, minutes: f64) -> u64 {
        checked::f64_to_u64((minutes / self.time_step).round().max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Discretization::new(0.01, 0.01).is_ok());
        assert!(matches!(
            Discretization::new(0.0, 0.01),
            Err(DkibamError::InvalidStepSize { which: "time", .. })
        ));
        assert!(matches!(
            Discretization::new(0.01, -1.0),
            Err(DkibamError::InvalidStepSize { which: "charge", .. })
        ));
        assert!(Discretization::new(f64::NAN, 0.01).is_err());
    }

    #[test]
    fn paper_default_matches_section_5() {
        let disc = Discretization::paper_default();
        assert_eq!(disc.time_step(), 0.01);
        assert_eq!(disc.charge_unit(), 0.01);
        let b1 = BatteryParams::itsy_b1();
        assert_eq!(disc.charge_units(b1.capacity()), 550);
        assert_eq!(disc.charge_units(BatteryParams::itsy_b2().capacity()), 1100);
        // Height unit 0.01 / 0.166 ≈ 0.06 A·min as stated in the paper.
        assert!((disc.height_unit(&b1) - 0.0602).abs() < 0.001);
    }

    #[test]
    fn step_time_conversions_round_trip() {
        let disc = Discretization::paper_default();
        assert_eq!(disc.minutes_to_steps(1.0), 100);
        assert_eq!(disc.steps_to_minutes(100), 1.0);
        assert_eq!(disc.minutes_to_steps(0.999), 100);
        assert_eq!(disc.minutes_to_steps(0.0), 0);
    }

    #[test]
    fn coarse_is_coarser_than_default() {
        assert!(Discretization::coarse().time_step() > Discretization::paper_default().time_step());
        assert!(
            Discretization::coarse().charge_unit() > Discretization::paper_default().charge_unit()
        );
    }
}
