//! Single-battery simulation of the discretized KiBaM.
//!
//! This is the discrete counterpart of [`kibam::lifetime`]: it steps a single
//! battery through a [`DiscretizedLoad`], drawing charge units at the epoch's
//! draw instants while recovery runs concurrently, and reports the time at
//! which the battery is first *observed* empty (Eq. 8 checked at a draw
//! instant, exactly as in the total-charge automaton of Figure 5(a)).
//!
//! Tables 3 and 4 of the paper compare exactly these two computations.

use crate::{DiscreteBattery, Discretization, DiscretizedLoad, DkibamError, RecoveryTable};
use kibam::BatteryParams;

/// Outcome of a single-battery discrete simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOutcome {
    /// Lifetime in minutes, if the battery was observed empty before the
    /// load ended.
    pub lifetime_minutes: Option<f64>,
    /// Lifetime in time steps, if the battery was observed empty.
    pub lifetime_steps: Option<u64>,
    /// The battery state when the simulation stopped.
    pub final_battery: DiscreteBattery,
    /// The number of time steps simulated in total.
    pub steps_simulated: u64,
}

/// Simulates one battery serving the whole load and returns its lifetime.
///
/// # Errors
///
/// Returns [`DkibamError::EmptyLoad`] if the load has no epochs.
pub fn simulate_lifetime(
    params: &BatteryParams,
    disc: &Discretization,
    load: &DiscretizedLoad,
) -> Result<SimOutcome, DkibamError> {
    if load.epochs().is_empty() {
        return Err(DkibamError::EmptyLoad);
    }
    let table = RecoveryTable::for_battery(params, disc);
    let mut battery = DiscreteBattery::full(params, disc);
    let mut elapsed: u64 = 0;

    for epoch in load.epochs() {
        if epoch.is_idle() {
            battery.advance_recovery(epoch.duration_steps(), &table);
            elapsed += epoch.duration_steps();
            continue;
        }
        let interval = u64::from(epoch.draw_interval_steps());
        let draws = epoch.draws_in_epoch();
        let remainder = epoch.duration_steps() - draws * interval;
        for _ in 0..draws {
            battery.advance_recovery(interval, &table);
            elapsed += interval;
            // The emptiness condition (Eq. 8) is a location guard in the
            // total-charge automaton: it can only become true when a draw
            // increases the height difference, so it is checked both before
            // drawing (the battery may already be empty) and immediately
            // after (this draw may have emptied it).
            if !battery.is_empty(params) {
                battery.draw(epoch.units_per_draw());
            }
            if battery.is_empty(params) {
                battery.mark_observed_empty();
                return Ok(SimOutcome {
                    lifetime_minutes: Some(disc.steps_to_minutes(elapsed)),
                    lifetime_steps: Some(elapsed),
                    final_battery: battery,
                    steps_simulated: elapsed,
                });
            }
        }
        battery.advance_recovery(remainder, &table);
        elapsed += remainder;
    }

    Ok(SimOutcome {
        lifetime_minutes: None,
        lifetime_steps: None,
        final_battery: battery,
        steps_simulated: elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::paper_loads::TestLoad;

    fn lifetime(load: TestLoad, params: &BatteryParams) -> f64 {
        let disc = Discretization::paper_default();
        let horizon = 2.0 * params.capacity();
        let dload = DiscretizedLoad::from_profile(&load.profile(), &disc, horizon).unwrap();
        simulate_lifetime(params, &disc, &dload)
            .unwrap()
            .lifetime_minutes
            .expect("paper loads empty the battery")
    }

    /// Table 3 of the paper: the TA-KiBaM (= this discrete simulation)
    /// deviates from the analytical KiBaM by at most ~1%.
    #[test]
    fn discrete_lifetimes_close_to_analytic_for_b1() {
        let b1 = BatteryParams::itsy_b1();
        for load in TestLoad::all() {
            if load.is_random() {
                continue;
            }
            let discrete = lifetime(load, &b1);
            let analytic = kibam::lifetime::lifetime_for_segments(&b1, load.profile().segments())
                .unwrap()
                .lifetime;
            let relative = (discrete - analytic).abs() / analytic;
            assert!(
                relative < 0.02,
                "{load}: discrete {discrete:.3} vs analytic {analytic:.3} ({relative:.3} rel)"
            );
            // The discrete model errs on the long side (rounding of recovery
            // times), as discussed in Section 5 of the paper.
            assert!(discrete >= analytic - 0.02, "{load}: discrete should not undershoot");
        }
    }

    #[test]
    fn cl_500_matches_paper_ta_kibam_value() {
        // Table 3 reports 2.04 min for CL 500 on B1 with the TA-KiBaM.
        let value = lifetime(TestLoad::Cl500, &BatteryParams::itsy_b1());
        assert!((value - 2.04).abs() < 0.03, "got {value}");
    }

    #[test]
    fn ils_250_matches_paper_ta_kibam_value() {
        // Table 3 reports 10.84 min for ILs 250 on B1.
        let value = lifetime(TestLoad::Ils250, &BatteryParams::itsy_b1());
        assert!((value - 10.84).abs() < 0.06, "got {value}");
    }

    #[test]
    fn b2_lifetimes_close_to_analytic() {
        let b2 = BatteryParams::itsy_b2();
        for load in [TestLoad::Cl500, TestLoad::IlsAlt, TestLoad::Ill500] {
            let discrete = lifetime(load, &b2);
            let analytic = kibam::lifetime::lifetime_for_segments(&b2, load.profile().segments())
                .unwrap()
                .lifetime;
            assert!(
                ((discrete - analytic) / analytic).abs() < 0.02,
                "{load}: {discrete} vs {analytic}"
            );
        }
    }

    #[test]
    fn load_that_ends_before_emptying_returns_none() {
        let params = BatteryParams::itsy_b1();
        let disc = Discretization::paper_default();
        let profile = TestLoad::Cl250.profile().truncate_to_duration(1.0).unwrap();
        let load = DiscretizedLoad::from_profile(&profile, &disc, 1.0).unwrap();
        let outcome = simulate_lifetime(&params, &disc, &load).unwrap();
        assert_eq!(outcome.lifetime_minutes, None);
        assert!(outcome.final_battery.charge_units() < 550);
    }

    #[test]
    fn coarse_discretization_still_close() {
        let params = BatteryParams::itsy_b1();
        let disc = Discretization::coarse();
        let load = DiscretizedLoad::from_profile(&TestLoad::Cl250.profile(), &disc, 11.0).unwrap();
        let outcome = simulate_lifetime(&params, &disc, &load).unwrap();
        let lifetime = outcome.lifetime_minutes.unwrap();
        // Within ~5% of the analytic 4.53 min despite the 5x coarser grid.
        assert!((lifetime - 4.53).abs() < 0.25, "got {lifetime}");
    }
}
