use std::error::Error;
use std::fmt;

/// Errors produced by the discretized KiBaM.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DkibamError {
    /// A discretization step size (time or charge) was non-positive, NaN or
    /// infinite.
    InvalidStepSize {
        /// Which step was rejected ("time" or "charge").
        which: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A current could not be expressed as `cur` charge units per
    /// `cur_times` time steps with a reasonable denominator.
    UnrepresentableCurrent {
        /// The offending current (A).
        current: f64,
    },
    /// A load to discretize was cyclic and no horizon was supplied, or the
    /// horizon was invalid.
    InvalidHorizon {
        /// The rejected horizon (A·min of drawn charge).
        value: f64,
    },
    /// The discretized load contains no epochs.
    EmptyLoad,
    /// A battery index was out of range for the multi-battery state.
    BatteryIndexOutOfRange {
        /// The rejected index.
        index: usize,
        /// The number of batteries in the state.
        count: usize,
    },
    /// An underlying continuous-model error (invalid battery parameters or
    /// load values).
    Kibam(kibam::KibamError),
    /// An underlying workload error.
    Workload(workload::WorkloadError),
}

impl fmt::Display for DkibamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DkibamError::InvalidStepSize { which, value } => {
                write!(f, "{which} step size must be positive and finite, got {value}")
            }
            DkibamError::UnrepresentableCurrent { current } => write!(
                f,
                "current {current} A cannot be represented as charge units per time steps"
            ),
            DkibamError::InvalidHorizon { value } => {
                write!(f, "charge horizon must be positive and finite, got {value}")
            }
            DkibamError::EmptyLoad => write!(f, "discretized load contains no epochs"),
            DkibamError::BatteryIndexOutOfRange { index, count } => {
                write!(f, "battery index {index} out of range for {count} batteries")
            }
            DkibamError::Kibam(e) => write!(f, "continuous model error: {e}"),
            DkibamError::Workload(e) => write!(f, "workload error: {e}"),
        }
    }
}

impl Error for DkibamError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DkibamError::Kibam(e) => Some(e),
            DkibamError::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kibam::KibamError> for DkibamError {
    fn from(e: kibam::KibamError) -> Self {
        DkibamError::Kibam(e)
    }
}

impl From<workload::WorkloadError> for DkibamError {
    fn from(e: workload::WorkloadError) -> Self {
        DkibamError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = DkibamError::InvalidStepSize { which: "time", value: -1.0 };
        assert!(e.to_string().contains("time"));
        assert!(DkibamError::EmptyLoad.to_string().contains("no epochs"));
        assert!(DkibamError::UnrepresentableCurrent { current: 0.333 }
            .to_string()
            .contains("0.333"));
        assert!(DkibamError::BatteryIndexOutOfRange { index: 3, count: 2 }
            .to_string()
            .contains('3'));
    }

    #[test]
    fn wraps_underlying_errors_with_source() {
        let inner = kibam::KibamError::InvalidCapacity { value: 0.0 };
        let outer: DkibamError = inner.clone().into();
        assert!(outer.source().is_some());
        assert!(outer.to_string().contains("capacity"));
        let inner = workload::WorkloadError::EmptyProfile;
        let outer: DkibamError = inner.into();
        assert!(outer.source().is_some());
    }

    #[test]
    fn implements_std_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<DkibamError>();
    }
}
