use crate::{Discretization, RecoveryTable};
use kibam::BatteryParams;

/// The integer state of one battery in the discretized KiBaM.
///
/// Mirrors the per-battery variables of the TA-KiBaM (Table 1 of the paper):
///
/// * `n_gamma` — remaining total charge in charge units;
/// * `m_delta` — height difference between the wells, in height units;
/// * a recovery clock counting the time steps since the last height-unit
///   recovery (the `c_recov` clock of the height-difference automaton);
/// * an `observed_empty` flag: once a battery has been observed empty it is
///   never used again, even though it keeps recovering charge (Section 4.3).
///
/// The emptiness criterion is Eq. 8: `c·n ≤ (1 - c)·m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiscreteBattery {
    n_gamma: u32,
    m_delta: u32,
    recovery_clock: u64,
    observed_empty: bool,
}

impl DiscreteBattery {
    /// A freshly charged battery: `n_gamma = N = C / Γ`, `m_delta = 0`.
    #[must_use]
    pub fn full(params: &BatteryParams, disc: &Discretization) -> Self {
        Self {
            n_gamma: disc.charge_units(params.capacity()),
            m_delta: 0,
            recovery_clock: 0,
            observed_empty: false,
        }
    }

    /// Creates a battery state from raw unit counts (used by tests and by
    /// the timed-automata encoding).
    #[must_use]
    pub fn from_units(n_gamma: u32, m_delta: u32) -> Self {
        Self { n_gamma, m_delta, recovery_clock: 0, observed_empty: false }
    }

    /// Remaining total charge in charge units (`n_gamma`).
    #[must_use]
    pub fn charge_units(&self) -> u32 {
        self.n_gamma
    }

    /// Height difference in height units (`m_delta`).
    #[must_use]
    pub fn height_units(&self) -> u32 {
        self.m_delta
    }

    /// Time steps accumulated on the recovery clock since the last recovery.
    #[must_use]
    pub fn recovery_clock(&self) -> u64 {
        self.recovery_clock
    }

    /// Whether this battery has been observed empty and retired.
    #[must_use]
    pub fn is_observed_empty(&self) -> bool {
        self.observed_empty
    }

    /// Marks the battery as observed empty; it will never be used again.
    pub fn mark_observed_empty(&mut self) {
        self.observed_empty = true;
    }

    /// The emptiness criterion of Eq. 8: `c·n ≤ (1 - c)·m`.
    ///
    /// A battery that has been [observed empty](Self::is_observed_empty) is
    /// also reported as empty, even if recovery has since made charge
    /// available again.
    #[must_use]
    pub fn is_empty(&self, params: &BatteryParams) -> bool {
        if self.observed_empty {
            return true;
        }
        let c = params.c();
        c * f64::from(self.n_gamma) <= (1.0 - c) * f64::from(self.m_delta)
    }

    /// Remaining total charge `γ = n · Γ` in A·min.
    #[must_use]
    pub fn total_charge(&self, disc: &Discretization) -> f64 {
        f64::from(self.n_gamma) * disc.charge_unit()
    }

    /// Charge in the available-charge well, `y1 = Γ·(c·n - (1 - c)·m)`,
    /// clamped at zero.
    #[must_use]
    pub fn available_charge(&self, params: &BatteryParams, disc: &Discretization) -> f64 {
        let c = params.c();
        (disc.charge_unit() * (c * f64::from(self.n_gamma) - (1.0 - c) * f64::from(self.m_delta)))
            .max(0.0)
    }

    /// Draws `units` charge units from the battery: the total charge drops
    /// and the height difference rises by the same number of units
    /// (saturating at zero remaining charge).
    pub fn draw(&mut self, units: u32) {
        let n_before = self.n_gamma;
        let drained = self.n_gamma.min(units);
        self.n_gamma = self.n_gamma.saturating_sub(units);
        self.m_delta = self.m_delta.saturating_add(units);
        // Charge conservation: the total charge drops by exactly the
        // drained units (saturating at empty) — a draw never creates
        // charge and never loses more than it drew.
        debug_assert!(self.n_gamma == n_before - drained, "draw broke charge conservation");
    }

    /// Packs the dynamic state into a single 128-bit word: total charge,
    /// height difference, recovery clock and the observed-empty flag. Equal
    /// words are equal states, and the ordering is stable, so search
    /// schedulers can canonicalize a multi-battery state by sorting the
    /// per-battery words — without allocating.
    #[must_use]
    pub fn state_word(&self) -> u128 {
        // The recovery clock is bounded by the largest per-unit recovery
        // time, far below 2^63; the mask keeps the packing total even if a
        // pathological table ever exceeded it.
        let clock = self.recovery_clock & ((1u64 << 63) - 1);
        (u128::from(self.n_gamma) << 96)
            | (u128::from(self.m_delta) << 64)
            | (u128::from(clock) << 1)
            | u128::from(self.observed_empty)
    }

    /// [`DiscreteBattery::dominates`] on packed [state
    /// words](DiscreteBattery::state_word), so search schedulers can compare
    /// canonicalized states without reconstructing batteries. This is the
    /// single source of truth for the dominance rule; `dominates` delegates
    /// here.
    #[must_use]
    pub fn word_dominates(a: u128, b: u128) -> bool {
        let (n_a, m_a, clock_a, empty_a) = unpack(a);
        let (n_b, m_b, clock_b, empty_b) = unpack(b);
        if empty_a && !empty_b {
            return false;
        }
        if n_a < n_b {
            return false;
        }
        m_a < m_b || (m_a == m_b && clock_a >= clock_b)
    }

    /// Whether this battery's state is at least as good as `other`'s in
    /// every component, so that any schedule achievable from `other` is
    /// achievable (or bettered) from `self`:
    ///
    /// * at least as much total charge (`n_gamma`),
    /// * at least as far along in recovery — a strictly smaller height
    ///   difference, or an equal one with an equal-or-ahead recovery clock
    ///   (recovery trajectories are deterministic and never cross),
    /// * not retired unless `other` is retired too.
    ///
    /// Both emptiness (Eq. 8 is monotone in `n` and `m`) and every future
    /// draw/recovery step preserve this ordering, which is what makes
    /// dominance pruning in the optimal search sound.
    #[must_use]
    pub fn dominates(&self, other: &DiscreteBattery) -> bool {
        Self::word_dominates(self.state_word(), other.state_word())
    }

    /// Advances the recovery process by `steps` time steps.
    ///
    /// While the height difference exceeds one unit, each elapsed
    /// `recov_times[m_delta]` time steps reduce it by one unit (the
    /// height-difference automaton of Figure 5(b)). Recovery continues even
    /// for observed-empty batteries, exactly as in the paper's model. The
    /// whole advance is a single prefix-table lookup
    /// ([`RecoveryTable::skip`]) rather than a walk over height units.
    pub fn advance_recovery(&mut self, steps: u64, table: &RecoveryTable) {
        let (m_delta, recovery_clock) = table.skip(self.m_delta, self.recovery_clock, steps);
        // Recovery physics: the height difference is monotone non-increasing
        // under recovery (never below one unit once started), and the total
        // charge n_gamma is untouched — recovery only redistributes charge.
        debug_assert!(m_delta <= self.m_delta.max(1), "recovery raised the height difference");
        self.m_delta = m_delta;
        self.recovery_clock = recovery_clock;
    }

    /// Reassembles a battery from raw state components. The struct-of-arrays
    /// [`batch`](crate::batch) lanes use this to unpack into the scalar form;
    /// it is also handy for tests that need a battery mid-recovery.
    #[must_use]
    pub fn from_raw_parts(
        n_gamma: u32,
        m_delta: u32,
        recovery_clock: u64,
        observed_empty: bool,
    ) -> Self {
        Self { n_gamma, m_delta, recovery_clock, observed_empty }
    }

    /// Advances recovery by a single time step; returns `true` if a height
    /// unit was recovered during this step.
    pub fn tick_recovery(&mut self, table: &RecoveryTable) -> bool {
        let before = self.m_delta;
        self.advance_recovery(1, table);
        self.m_delta < before
    }
}

/// Unpacks a [`DiscreteBattery::state_word`] into
/// `(n_gamma, m_delta, recovery_clock, observed_empty)`.
fn unpack(word: u128) -> (u32, u32, u64, bool) {
    #[allow(clippy::cast_possible_truncation)]
    // xlint: allow(cast) -- masked field extraction from the packed state word
    let n_gamma = (word >> 96) as u32;
    #[allow(clippy::cast_possible_truncation)]
    // xlint: allow(cast) -- masked field extraction from the packed state word
    let m_delta = (word >> 64) as u32;
    #[allow(clippy::cast_possible_truncation)]
    // xlint: allow(cast) -- masked field extraction from the packed state word
    let clock = ((word >> 1) as u64) & ((1u64 << 63) - 1);
    (n_gamma, m_delta, clock, word & 1 == 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (BatteryParams, Discretization, RecoveryTable) {
        let params = BatteryParams::itsy_b1();
        let disc = Discretization::paper_default();
        let table = RecoveryTable::for_battery(&params, &disc);
        (params, disc, table)
    }

    #[test]
    fn full_battery_has_all_units_and_no_height_difference() {
        let (params, disc, _) = setup();
        let battery = DiscreteBattery::full(&params, &disc);
        assert_eq!(battery.charge_units(), 550);
        assert_eq!(battery.height_units(), 0);
        assert!(!battery.is_empty(&params));
        assert!((battery.total_charge(&disc) - 5.5).abs() < 1e-12);
        assert!((battery.available_charge(&params, &disc) - 0.166 * 5.5).abs() < 1e-9);
    }

    #[test]
    fn draw_moves_charge_into_height_difference() {
        let (params, disc, _) = setup();
        let mut battery = DiscreteBattery::full(&params, &disc);
        battery.draw(10);
        assert_eq!(battery.charge_units(), 540);
        assert_eq!(battery.height_units(), 10);
        assert!((battery.total_charge(&disc) - 5.4).abs() < 1e-12);
    }

    #[test]
    fn emptiness_criterion_matches_equation_8() {
        let params = BatteryParams::itsy_b1();
        // c n <= (1 - c) m  <=>  0.166 n <= 0.834 m.
        let boundary = DiscreteBattery::from_units(100, 20);
        // 0.166 * 100 = 16.6; 0.834 * 20 = 16.68 -> empty.
        assert!(boundary.is_empty(&params));
        let not_empty = DiscreteBattery::from_units(100, 19);
        // 0.834 * 19 = 15.846 < 16.6 -> not empty.
        assert!(!not_empty.is_empty(&params));
    }

    #[test]
    fn observed_empty_is_sticky() {
        let (params, disc, table) = setup();
        let mut battery = DiscreteBattery::full(&params, &disc);
        battery.mark_observed_empty();
        assert!(battery.is_empty(&params));
        // Even after a long recovery the battery stays retired.
        battery.advance_recovery(1_000_000, &table);
        assert!(battery.is_empty(&params));
        assert!(battery.is_observed_empty());
    }

    #[test]
    fn recovery_reduces_height_difference_to_one_unit() {
        let (_, _, table) = setup();
        let mut battery = DiscreteBattery::from_units(400, 50);
        battery.advance_recovery(10_000_000, &table);
        assert_eq!(battery.height_units(), 1, "recovery stops at one height unit");
        assert_eq!(battery.charge_units(), 400, "recovery never changes the total charge");
    }

    #[test]
    fn recovery_respects_per_unit_times() {
        let (_, _, table) = setup();
        let mut battery = DiscreteBattery::from_units(400, 3);
        let to_two = table.steps(3).unwrap();
        battery.advance_recovery(to_two - 1, &table);
        assert_eq!(battery.height_units(), 3);
        battery.advance_recovery(1, &table);
        assert_eq!(battery.height_units(), 2);
        // The clock restarts for the next unit.
        let to_one = table.steps(2).unwrap();
        battery.advance_recovery(to_one - 1, &table);
        assert_eq!(battery.height_units(), 2);
        battery.advance_recovery(1, &table);
        assert_eq!(battery.height_units(), 1);
    }

    #[test]
    fn tick_recovery_reports_recovered_units() {
        let (_, _, table) = setup();
        let mut battery = DiscreteBattery::from_units(100, 200);
        let needed = table.steps(200).unwrap();
        let mut recovered = 0;
        for _ in 0..needed {
            if battery.tick_recovery(&table) {
                recovered += 1;
            }
        }
        assert_eq!(recovered, 1);
        assert_eq!(battery.height_units(), 199);
    }

    #[test]
    fn draw_saturates_at_zero_charge() {
        let mut battery = DiscreteBattery::from_units(2, 0);
        battery.draw(5);
        assert_eq!(battery.charge_units(), 0);
        assert_eq!(battery.height_units(), 5);
    }

    #[test]
    fn state_words_are_injective_over_the_dynamic_state() {
        let (params, disc, table) = setup();
        let a = DiscreteBattery::full(&params, &disc);
        let mut b = a;
        assert_eq!(a.state_word(), b.state_word());
        b.draw(1);
        assert_ne!(a.state_word(), b.state_word());
        let mut c = DiscreteBattery::from_units(400, 3);
        let word = c.state_word();
        c.advance_recovery(1, &table);
        assert_ne!(word, c.state_word(), "the recovery clock is part of the state");
        let mut d = c;
        d.mark_observed_empty();
        assert_ne!(c.state_word(), d.state_word());
    }

    #[test]
    fn dominance_is_component_wise() {
        let fresh = DiscreteBattery::from_units(500, 10);
        let drained = DiscreteBattery::from_units(400, 20);
        assert!(fresh.dominates(&drained));
        assert!(!drained.dominates(&fresh));
        // Reflexive.
        assert!(fresh.dominates(&fresh));
        // More charge but a worse height difference: incomparable.
        let mixed = DiscreteBattery::from_units(450, 25);
        assert!(!mixed.dominates(&drained));
        assert!(!drained.dominates(&mixed));
        // A retired battery never dominates a live one.
        let mut retired = fresh;
        retired.mark_observed_empty();
        assert!(!retired.dominates(&fresh));
        assert!(fresh.dominates(&retired));
    }

    #[test]
    fn dominance_breaks_ties_on_the_recovery_clock() {
        let (_, _, table) = setup();
        let behind = DiscreteBattery::from_units(400, 3);
        let mut ahead = behind;
        // Advance less than one full recovery: same m_delta, larger clock.
        ahead.advance_recovery(1, &table);
        assert_eq!(ahead.height_units(), behind.height_units());
        assert!(ahead.dominates(&behind));
        assert!(!behind.dominates(&ahead));
    }

    #[test]
    fn available_charge_is_clamped_at_zero() {
        let (params, disc, _) = setup();
        let battery = DiscreteBattery::from_units(10, 100);
        assert_eq!(battery.available_charge(&params, &disc), 0.0);
    }
}
