use crate::{Discretization, RecoveryTable};
use kibam::BatteryParams;

/// The integer state of one battery in the discretized KiBaM.
///
/// Mirrors the per-battery variables of the TA-KiBaM (Table 1 of the paper):
///
/// * `n_gamma` — remaining total charge in charge units;
/// * `m_delta` — height difference between the wells, in height units;
/// * a recovery clock counting the time steps since the last height-unit
///   recovery (the `c_recov` clock of the height-difference automaton);
/// * an `observed_empty` flag: once a battery has been observed empty it is
///   never used again, even though it keeps recovering charge (Section 4.3).
///
/// The emptiness criterion is Eq. 8: `c·n ≤ (1 - c)·m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiscreteBattery {
    n_gamma: u32,
    m_delta: u32,
    recovery_clock: u64,
    observed_empty: bool,
}

impl DiscreteBattery {
    /// A freshly charged battery: `n_gamma = N = C / Γ`, `m_delta = 0`.
    #[must_use]
    pub fn full(params: &BatteryParams, disc: &Discretization) -> Self {
        Self {
            n_gamma: disc.charge_units(params.capacity()),
            m_delta: 0,
            recovery_clock: 0,
            observed_empty: false,
        }
    }

    /// Creates a battery state from raw unit counts (used by tests and by
    /// the timed-automata encoding).
    #[must_use]
    pub fn from_units(n_gamma: u32, m_delta: u32) -> Self {
        Self { n_gamma, m_delta, recovery_clock: 0, observed_empty: false }
    }

    /// Remaining total charge in charge units (`n_gamma`).
    #[must_use]
    pub fn charge_units(&self) -> u32 {
        self.n_gamma
    }

    /// Height difference in height units (`m_delta`).
    #[must_use]
    pub fn height_units(&self) -> u32 {
        self.m_delta
    }

    /// Time steps accumulated on the recovery clock since the last recovery.
    #[must_use]
    pub fn recovery_clock(&self) -> u64 {
        self.recovery_clock
    }

    /// Whether this battery has been observed empty and retired.
    #[must_use]
    pub fn is_observed_empty(&self) -> bool {
        self.observed_empty
    }

    /// Marks the battery as observed empty; it will never be used again.
    pub fn mark_observed_empty(&mut self) {
        self.observed_empty = true;
    }

    /// The emptiness criterion of Eq. 8: `c·n ≤ (1 - c)·m`.
    ///
    /// A battery that has been [observed empty](Self::is_observed_empty) is
    /// also reported as empty, even if recovery has since made charge
    /// available again.
    #[must_use]
    pub fn is_empty(&self, params: &BatteryParams) -> bool {
        if self.observed_empty {
            return true;
        }
        let c = params.c();
        c * f64::from(self.n_gamma) <= (1.0 - c) * f64::from(self.m_delta)
    }

    /// Remaining total charge `γ = n · Γ` in A·min.
    #[must_use]
    pub fn total_charge(&self, disc: &Discretization) -> f64 {
        f64::from(self.n_gamma) * disc.charge_unit()
    }

    /// Charge in the available-charge well, `y1 = Γ·(c·n - (1 - c)·m)`,
    /// clamped at zero.
    #[must_use]
    pub fn available_charge(&self, params: &BatteryParams, disc: &Discretization) -> f64 {
        let c = params.c();
        (disc.charge_unit() * (c * f64::from(self.n_gamma) - (1.0 - c) * f64::from(self.m_delta)))
            .max(0.0)
    }

    /// Draws `units` charge units from the battery: the total charge drops
    /// and the height difference rises by the same number of units
    /// (saturating at zero remaining charge).
    pub fn draw(&mut self, units: u32) {
        self.n_gamma = self.n_gamma.saturating_sub(units);
        self.m_delta = self.m_delta.saturating_add(units);
    }

    /// Advances the recovery process by `steps` time steps.
    ///
    /// While the height difference exceeds one unit, each elapsed
    /// `recov_times[m_delta]` time steps reduce it by one unit (the
    /// height-difference automaton of Figure 5(b)). Recovery continues even
    /// for observed-empty batteries, exactly as in the paper's model.
    pub fn advance_recovery(&mut self, mut steps: u64, table: &RecoveryTable) {
        while steps > 0 {
            let Some(needed) = table.steps(self.m_delta) else {
                // No recovery possible at or below one height unit.
                self.recovery_clock = 0;
                return;
            };
            let remaining = needed.saturating_sub(self.recovery_clock);
            if steps < remaining {
                self.recovery_clock += steps;
                return;
            }
            steps -= remaining;
            self.m_delta -= 1;
            self.recovery_clock = 0;
        }
    }

    /// Advances recovery by a single time step; returns `true` if a height
    /// unit was recovered during this step.
    pub fn tick_recovery(&mut self, table: &RecoveryTable) -> bool {
        let before = self.m_delta;
        self.advance_recovery(1, table);
        self.m_delta < before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (BatteryParams, Discretization, RecoveryTable) {
        let params = BatteryParams::itsy_b1();
        let disc = Discretization::paper_default();
        let table = RecoveryTable::for_battery(&params, &disc);
        (params, disc, table)
    }

    #[test]
    fn full_battery_has_all_units_and_no_height_difference() {
        let (params, disc, _) = setup();
        let battery = DiscreteBattery::full(&params, &disc);
        assert_eq!(battery.charge_units(), 550);
        assert_eq!(battery.height_units(), 0);
        assert!(!battery.is_empty(&params));
        assert!((battery.total_charge(&disc) - 5.5).abs() < 1e-12);
        assert!((battery.available_charge(&params, &disc) - 0.166 * 5.5).abs() < 1e-9);
    }

    #[test]
    fn draw_moves_charge_into_height_difference() {
        let (params, disc, _) = setup();
        let mut battery = DiscreteBattery::full(&params, &disc);
        battery.draw(10);
        assert_eq!(battery.charge_units(), 540);
        assert_eq!(battery.height_units(), 10);
        assert!((battery.total_charge(&disc) - 5.4).abs() < 1e-12);
    }

    #[test]
    fn emptiness_criterion_matches_equation_8() {
        let params = BatteryParams::itsy_b1();
        // c n <= (1 - c) m  <=>  0.166 n <= 0.834 m.
        let boundary = DiscreteBattery::from_units(100, 20);
        // 0.166 * 100 = 16.6; 0.834 * 20 = 16.68 -> empty.
        assert!(boundary.is_empty(&params));
        let not_empty = DiscreteBattery::from_units(100, 19);
        // 0.834 * 19 = 15.846 < 16.6 -> not empty.
        assert!(!not_empty.is_empty(&params));
    }

    #[test]
    fn observed_empty_is_sticky() {
        let (params, disc, table) = setup();
        let mut battery = DiscreteBattery::full(&params, &disc);
        battery.mark_observed_empty();
        assert!(battery.is_empty(&params));
        // Even after a long recovery the battery stays retired.
        battery.advance_recovery(1_000_000, &table);
        assert!(battery.is_empty(&params));
        assert!(battery.is_observed_empty());
    }

    #[test]
    fn recovery_reduces_height_difference_to_one_unit() {
        let (_, _, table) = setup();
        let mut battery = DiscreteBattery::from_units(400, 50);
        battery.advance_recovery(10_000_000, &table);
        assert_eq!(battery.height_units(), 1, "recovery stops at one height unit");
        assert_eq!(battery.charge_units(), 400, "recovery never changes the total charge");
    }

    #[test]
    fn recovery_respects_per_unit_times() {
        let (_, _, table) = setup();
        let mut battery = DiscreteBattery::from_units(400, 3);
        let to_two = table.steps(3).unwrap();
        battery.advance_recovery(to_two - 1, &table);
        assert_eq!(battery.height_units(), 3);
        battery.advance_recovery(1, &table);
        assert_eq!(battery.height_units(), 2);
        // The clock restarts for the next unit.
        let to_one = table.steps(2).unwrap();
        battery.advance_recovery(to_one - 1, &table);
        assert_eq!(battery.height_units(), 2);
        battery.advance_recovery(1, &table);
        assert_eq!(battery.height_units(), 1);
    }

    #[test]
    fn tick_recovery_reports_recovered_units() {
        let (_, _, table) = setup();
        let mut battery = DiscreteBattery::from_units(100, 200);
        let needed = table.steps(200).unwrap();
        let mut recovered = 0;
        for _ in 0..needed {
            if battery.tick_recovery(&table) {
                recovered += 1;
            }
        }
        assert_eq!(recovered, 1);
        assert_eq!(battery.height_units(), 199);
    }

    #[test]
    fn draw_saturates_at_zero_charge() {
        let mut battery = DiscreteBattery::from_units(2, 0);
        battery.draw(5);
        assert_eq!(battery.charge_units(), 0);
        assert_eq!(battery.height_units(), 5);
    }

    #[test]
    fn available_charge_is_clamped_at_zero() {
        let (params, disc, _) = setup();
        let battery = DiscreteBattery::from_units(10, 100);
        assert_eq!(battery.available_charge(&params, &disc), 0.0);
    }
}
