//! Discretized Kinetic Battery Model (dKiBaM).
//!
//! Section 2.3 of the battery-scheduling paper discretizes the KiBaM in
//! three dimensions so that it can be expressed as a (priced) timed
//! automaton:
//!
//! * **time** in steps of size `T` (0.01 min in the paper);
//! * **total charge** `γ` in `N = C / Γ` units of size `Γ` (0.01 A·min);
//! * **height difference** `δ` in units of size `Γ / c`.
//!
//! Discharge subtracts whole charge units at epoch-specific intervals, and
//! recovery decreases the height difference by one unit after a precomputed
//! number of time steps (Eq. 6). This crate implements that discretization
//! directly — the state space explored here is exactly the state space of
//! the TA-KiBaM of Section 4 — and provides:
//!
//! * [`Discretization`] — the step sizes `T` and `Γ` plus derived quantities;
//! * [`RecoveryTable`] — the `recov_times` array of Eq. 6;
//! * [`ServiceRateTable`] — the recovery-coupled service envelope of a
//!   battery type (the Eq. 8 frontier per charge level plus the fastest
//!   recovery rate on the serviceable band), feeding the availability-aware
//!   search bound of the `battery-sched` crate;
//! * [`ColumnBuilder`] — exact per-battery service columns over a load's
//!   draw-slot timeline (a serve/skip dynamic program with Pareto-front
//!   pruning), the column generator of the `relax` crate's min-cost-flow
//!   relaxation bound;
//! * [`DiscreteBattery`] — the integer battery state (`n_gamma`, `m_delta`)
//!   with discharge, recovery and the emptiness test of Eq. 8;
//! * [`DiscretizedLoad`] — a [`workload::LoadProfile`] converted to the
//!   `load_time` / `cur_times` / `cur` arrays of Section 4.1;
//! * [`simulate_lifetime`](sim::simulate_lifetime) — the single-battery
//!   discrete simulation used to validate the model (Tables 3 and 4);
//! * [`DiscreteFleet`] — the static side of a (possibly heterogeneous)
//!   multi-battery system: per-battery parameters from a
//!   [`kibam::FleetSpec`] plus one recovery table per battery type;
//! * [`MultiBatteryState`](multi::MultiBatteryState) — the multi-battery
//!   discrete state on which the schedulers of the `battery-sched` crate
//!   (including the optimal one) operate;
//! * [`DiscreteBatch`] — the same dynamics over N independent cells in
//!   struct-of-arrays form, stepped by batch kernels that are bit-identical
//!   to the scalar path (grid sweeps pack many scenario systems into one
//!   batch).
//!
//! # Example
//!
//! ```
//! use dkibam::{Discretization, DiscretizedLoad, sim::simulate_lifetime};
//! use kibam::BatteryParams;
//! use workload::paper_loads::TestLoad;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let b1 = BatteryParams::itsy_b1();
//! let disc = Discretization::paper_default();
//! let load = DiscretizedLoad::from_profile(&TestLoad::Cl500.profile(), &disc, 10.0)?;
//! let outcome = simulate_lifetime(&b1, &disc, &load)?;
//! // Table 3: the TA-KiBaM reports 2.04 min for CL 500 on B1.
//! let lifetime = outcome.lifetime_minutes.expect("battery empties");
//! assert!((lifetime - 2.04).abs() < 0.05);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod batch;
mod battery;
pub mod checked;
mod column;
mod config;
mod error;
mod fleet;
mod load;
pub mod multi;
mod recovery;
mod service;
pub mod sim;

pub use batch::DiscreteBatch;
pub use battery::DiscreteBattery;
pub use column::{ColumnBuilder, ServiceColumn, DEFAULT_FRONT_CAP};
pub use config::Discretization;
pub use error::DkibamError;
pub use fleet::DiscreteFleet;
pub use load::{DiscreteEpoch, DiscretizedLoad};
pub use recovery::RecoveryTable;
pub use service::{EnvelopeCursor, ServiceEnvelope, ServiceRateTable};
