//! Static per-fleet data of the discretized model.
//!
//! The discretized KiBaM separates a multi-battery system into *dynamic*
//! state ([`crate::multi::MultiBatteryState`], snapshotted and restored by
//! search schedulers at every node) and *static* data, which never changes
//! during a simulation: the per-battery [`BatteryParams`] of the
//! [`FleetSpec`], the [`Discretization`], and one precomputed
//! [`RecoveryTable`] per battery *type group* (identical batteries share a
//! table, so a `2×B1 + 1×B2` fleet builds two tables, not three). A
//! [`DiscreteFleet`] bundles that static side; every state-advancing method
//! of `MultiBatteryState` takes one.

use crate::{Discretization, RecoveryTable, ServiceRateTable};
use kibam::{BatteryParams, FleetSpec};

/// The static side of a discretized multi-battery system: fleet parameters,
/// discretization and per-type recovery and service-rate tables.
#[derive(Debug, Clone)]
pub struct DiscreteFleet {
    spec: FleetSpec,
    disc: Discretization,
    tables: Vec<RecoveryTable>,
    services: Vec<ServiceRateTable>,
}

impl DiscreteFleet {
    /// Builds the static data for a fleet: one recovery table and one
    /// service-rate table per distinct battery type.
    #[must_use]
    pub fn new(spec: FleetSpec, disc: Discretization) -> Self {
        let tables: Vec<RecoveryTable> = (0..spec.type_count())
            .map(|t| RecoveryTable::for_battery(spec.type_params(t), &disc))
            .collect();
        let services = tables
            .iter()
            .enumerate()
            .map(|(t, table)| ServiceRateTable::from_recovery(spec.type_params(t), &disc, table))
            .collect();
        Self { spec, disc, tables, services }
    }

    /// The static data for `count` identical batteries (the paper's
    /// systems).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero; use [`FleetSpec::uniform`] and
    /// [`DiscreteFleet::new`] to handle the error explicitly.
    #[must_use]
    pub fn uniform(params: &BatteryParams, disc: &Discretization, count: usize) -> Self {
        // xlint: allow(panic) -- documented `# Panics` convenience constructor
        let spec = FleetSpec::uniform(*params, count).expect("battery count must be positive");
        Self::new(spec, *disc)
    }

    /// The fleet description.
    #[must_use]
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// The discretization shared by all batteries.
    #[must_use]
    pub fn disc(&self) -> &Discretization {
        &self.disc
    }

    /// The number of batteries in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spec.len()
    }

    /// Whether the fleet holds no batteries (never true for a constructed
    /// fleet).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spec.is_empty()
    }

    /// The parameters of battery `index`.
    #[must_use]
    pub fn params_of(&self, index: usize) -> &BatteryParams {
        self.spec.battery(index)
    }

    /// The recovery table of battery `index` (shared within its type group).
    #[must_use]
    pub fn table_of(&self, index: usize) -> &RecoveryTable {
        &self.tables[self.spec.type_of(index)]
    }

    /// The service-rate table of battery `index` (shared within its type
    /// group), used by the availability-aware search bound.
    #[must_use]
    pub fn service_of(&self, index: usize) -> &ServiceRateTable {
        &self.services[self.spec.type_of(index)]
    }

    /// The type-group id of battery `index`.
    #[must_use]
    pub fn type_of(&self, index: usize) -> usize {
        self.spec.type_of(index)
    }

    /// The per-type recovery tables, indexed by type-group id (the layout
    /// the struct-of-arrays [`batch`](crate::batch) kernels consume).
    #[must_use]
    pub fn type_tables(&self) -> &[RecoveryTable] {
        &self.tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_shared_within_type_groups() {
        let b1 = BatteryParams::itsy_b1();
        let b2 = BatteryParams::itsy_b2();
        let disc = Discretization::paper_default();
        let fleet = DiscreteFleet::new(FleetSpec::new(vec![b1, b2, b1]).unwrap(), disc);
        assert_eq!(fleet.len(), 3);
        assert!(!fleet.is_empty());
        assert_eq!(fleet.tables.len(), 2, "one table per type, not per battery");
        assert_eq!(fleet.type_of(0), fleet.type_of(2));
        assert!(std::ptr::eq(fleet.table_of(0), fleet.table_of(2)));
        assert!(!std::ptr::eq(fleet.table_of(0), fleet.table_of(1)));
        assert_eq!(fleet.params_of(1), &b2);
        assert_eq!(fleet.disc().time_step(), disc.time_step());
    }

    #[test]
    fn uniform_matches_the_explicit_construction() {
        let b1 = BatteryParams::itsy_b1();
        let disc = Discretization::paper_default();
        let uniform = DiscreteFleet::uniform(&b1, &disc, 2);
        let explicit = DiscreteFleet::new(FleetSpec::uniform(b1, 2).unwrap(), disc);
        assert_eq!(uniform.spec(), explicit.spec());
        assert_eq!(uniform.table_of(0).max_units(), explicit.table_of(0).max_units());
    }

    #[test]
    #[should_panic(expected = "battery count must be positive")]
    fn uniform_rejects_zero_batteries() {
        let _ =
            DiscreteFleet::uniform(&BatteryParams::itsy_b1(), &Discretization::paper_default(), 0);
    }
}
