//! Global states of a network of priced timed automata.

use crate::automaton::LocationId;
use crate::expr::{ClockId, VarId};
use crate::network::AutomatonId;

/// A global state of a network: the current location of every automaton, the
/// values of all clocks and variables, plus the accumulated cost and elapsed
/// time.
///
/// Cost and time are *observations* along a run rather than part of the
/// state identity: two runs reaching the same locations, clocks and
/// variables are considered to have reached the same state (see
/// [`State::key`]), which is what makes minimum-cost search sound.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct State {
    pub(crate) locations: Vec<LocationId>,
    pub(crate) clocks: Vec<u64>,
    pub(crate) vars: Vec<i64>,
    pub(crate) cost: u64,
    pub(crate) time: u64,
}

impl State {
    /// The current location of the given automaton.
    ///
    /// # Panics
    ///
    /// Panics if the automaton identifier does not belong to the network
    /// this state was produced from.
    #[must_use]
    pub fn location(&self, automaton: AutomatonId) -> LocationId {
        self.locations[automaton.index()]
    }

    /// The locations of all automata, in automaton order.
    #[must_use]
    pub fn locations(&self) -> &[LocationId] {
        &self.locations
    }

    /// The value of a clock, in discrete time steps.
    #[must_use]
    pub fn clock(&self, clock: ClockId) -> Option<u64> {
        self.clocks.get(clock.index()).copied()
    }

    /// The value of a variable.
    #[must_use]
    pub fn var(&self, var: VarId) -> Option<i64> {
        self.vars.get(var.index()).copied()
    }

    /// All variable values, in declaration order.
    #[must_use]
    pub fn vars(&self) -> &[i64] {
        &self.vars
    }

    /// The cost accumulated since the initial state.
    #[must_use]
    pub fn cost(&self) -> u64 {
        self.cost
    }

    /// The number of time steps elapsed since the initial state.
    #[must_use]
    pub fn time(&self) -> u64 {
        self.time
    }

    /// The identity of this state for search purposes: locations, clocks and
    /// variables (cost and time excluded).
    #[must_use]
    pub fn key(&self) -> StateKey {
        StateKey {
            locations: self.locations.iter().map(|l| l.index()).collect(),
            clocks: self.clocks.clone(),
            vars: self.vars.clone(),
        }
    }
}

/// The hashable, totally ordered identity of a [`State`] (locations,
/// clocks and variables); the derived `Ord` is what lets the searches use
/// `BTreeMap`/`BTreeSet` for deterministic iteration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateKey {
    locations: Vec<usize>,
    clocks: Vec<u64>,
    vars: Vec<i64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> State {
        State {
            locations: vec![LocationId(0), LocationId(2)],
            clocks: vec![3, 0],
            vars: vec![10, -5],
            cost: 7,
            time: 3,
        }
    }

    #[test]
    fn accessors_return_components() {
        let s = state();
        assert_eq!(s.location(AutomatonId(1)), LocationId(2));
        assert_eq!(s.clock(ClockId(0)), Some(3));
        assert_eq!(s.clock(ClockId(5)), None);
        assert_eq!(s.var(VarId(1)), Some(-5));
        assert_eq!(s.var(VarId(9)), None);
        assert_eq!(s.cost(), 7);
        assert_eq!(s.time(), 3);
        assert_eq!(s.vars(), &[10, -5]);
        assert_eq!(s.locations().len(), 2);
    }

    #[test]
    fn key_ignores_cost_and_time() {
        let a = state();
        let mut b = state();
        b.cost = 999;
        b.time = 999;
        assert_eq!(a.key(), b.key());
        let mut c = state();
        c.vars[0] = 11;
        assert_ne!(a.key(), c.key());
        let mut d = state();
        d.clocks[1] = 1;
        assert_ne!(a.key(), d.key());
    }

    #[test]
    fn keys_hash_consistently() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(state().key());
        assert!(set.contains(&state().key()));
    }
}
