//! Integer and boolean expressions over variables, constant arrays and
//! clocks.
//!
//! Guards, invariants, cost rates and updates in the automata are all
//! expressed with the small expression language defined here. It covers what
//! the paper's TA-KiBaM needs: integer arithmetic over variables, lookups in
//! precomputed constant tables with computed indices (e.g.
//! `recov_time[m_delta[id]]`), comparisons, clock comparisons and boolean
//! combinations.

use crate::PtaError;

/// Identifier of an integer variable declared in a
/// [`Network`](crate::network::Network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VarId(pub(crate) usize);

/// Identifier of a constant lookup table declared in a
/// [`Network`](crate::network::Network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArrayId(pub(crate) usize);

/// Identifier of a clock declared in a [`Network`](crate::network::Network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClockId(pub(crate) usize);

impl VarId {
    /// The raw index of this variable in the network's declaration order.
    #[must_use]
    pub fn index(&self) -> usize {
        self.0
    }
}

impl ArrayId {
    /// The raw index of this array in the network's declaration order.
    #[must_use]
    pub fn index(&self) -> usize {
        self.0
    }
}

impl ClockId {
    /// The raw index of this clock in the network's declaration order.
    #[must_use]
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Comparison operators usable in guards and invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CmpOp {
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Greater than or equal.
    Ge,
    /// Strictly greater than.
    Gt,
}

impl CmpOp {
    /// Applies the comparison to two integers.
    #[must_use]
    pub fn apply(&self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Gt => lhs > rhs,
        }
    }
}

/// An integer expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IntExpr {
    /// An integer literal.
    Const(i64),
    /// The current value of a variable.
    Var(VarId),
    /// An element of a constant table, at a computed index.
    Elem(ArrayId, Box<IntExpr>),
    /// Sum of two expressions.
    Add(Box<IntExpr>, Box<IntExpr>),
    /// Difference of two expressions.
    Sub(Box<IntExpr>, Box<IntExpr>),
    /// Product of two expressions.
    Mul(Box<IntExpr>, Box<IntExpr>),
}

// The `add`/`sub`/`mul` combinators intentionally mirror the operator names:
// they build expression *trees* rather than computing values, so implementing
// the `std::ops` traits (whose contracts imply evaluation) would mislead.
#[allow(clippy::should_implement_trait)]
impl IntExpr {
    /// An integer literal.
    #[must_use]
    pub fn constant(value: i64) -> Self {
        IntExpr::Const(value)
    }

    /// The value of a variable.
    #[must_use]
    pub fn var(var: VarId) -> Self {
        IntExpr::Var(var)
    }

    /// A constant-table lookup `array[index]`.
    #[must_use]
    pub fn elem(array: ArrayId, index: IntExpr) -> Self {
        IntExpr::Elem(array, Box::new(index))
    }

    /// `self + other`.
    #[must_use]
    pub fn add(self, other: IntExpr) -> Self {
        IntExpr::Add(Box::new(self), Box::new(other))
    }

    /// `self - other`.
    #[must_use]
    pub fn sub(self, other: IntExpr) -> Self {
        IntExpr::Sub(Box::new(self), Box::new(other))
    }

    /// `self * other`.
    #[must_use]
    pub fn mul(self, other: IntExpr) -> Self {
        IntExpr::Mul(Box::new(self), Box::new(other))
    }

    /// Evaluates the expression in the given context.
    ///
    /// # Errors
    ///
    /// Returns [`PtaError::UnknownVariable`], [`PtaError::UnknownArray`] or
    /// [`PtaError::IndexOutOfBounds`] if the expression refers to entities
    /// that do not exist in the context.
    pub fn eval(&self, ctx: &EvalContext<'_>) -> Result<i64, PtaError> {
        match self {
            IntExpr::Const(value) => Ok(*value),
            IntExpr::Var(var) => ctx.var(*var),
            IntExpr::Elem(array, index) => {
                let index = index.eval(ctx)?;
                ctx.array_element(*array, index)
            }
            IntExpr::Add(lhs, rhs) => Ok(lhs.eval(ctx)?.wrapping_add(rhs.eval(ctx)?)),
            IntExpr::Sub(lhs, rhs) => Ok(lhs.eval(ctx)?.wrapping_sub(rhs.eval(ctx)?)),
            IntExpr::Mul(lhs, rhs) => Ok(lhs.eval(ctx)?.wrapping_mul(rhs.eval(ctx)?)),
        }
    }
}

impl From<i64> for IntExpr {
    fn from(value: i64) -> Self {
        IntExpr::Const(value)
    }
}

impl From<VarId> for IntExpr {
    fn from(var: VarId) -> Self {
        IntExpr::Var(var)
    }
}

/// A boolean expression used in guards and invariants.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BoolExpr {
    /// Always true (the default guard/invariant).
    True,
    /// Comparison between two integer expressions.
    Cmp(IntExpr, CmpOp, IntExpr),
    /// Comparison between a clock value and an integer expression.
    ClockCmp(ClockId, CmpOp, IntExpr),
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
}

impl BoolExpr {
    /// `lhs op rhs` over integer expressions.
    #[must_use]
    pub fn cmp(lhs: impl Into<IntExpr>, op: CmpOp, rhs: impl Into<IntExpr>) -> Self {
        BoolExpr::Cmp(lhs.into(), op, rhs.into())
    }

    /// `clock <= bound`.
    #[must_use]
    pub fn clock_le(clock: ClockId, bound: impl Into<IntExpr>) -> Self {
        BoolExpr::ClockCmp(clock, CmpOp::Le, bound.into())
    }

    /// `clock >= bound`.
    #[must_use]
    pub fn clock_ge(clock: ClockId, bound: impl Into<IntExpr>) -> Self {
        BoolExpr::ClockCmp(clock, CmpOp::Ge, bound.into())
    }

    /// `clock < bound`.
    #[must_use]
    pub fn clock_lt(clock: ClockId, bound: impl Into<IntExpr>) -> Self {
        BoolExpr::ClockCmp(clock, CmpOp::Lt, bound.into())
    }

    /// `self && other`.
    #[must_use]
    pub fn and(self, other: BoolExpr) -> Self {
        BoolExpr::And(Box::new(self), Box::new(other))
    }

    /// `self || other`.
    #[must_use]
    pub fn or(self, other: BoolExpr) -> Self {
        BoolExpr::Or(Box::new(self), Box::new(other))
    }

    /// `!self`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        BoolExpr::Not(Box::new(self))
    }

    /// Evaluates the expression in the given context.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`IntExpr::eval`] and returns
    /// [`PtaError::UnknownClock`] for clock references outside the context.
    pub fn eval(&self, ctx: &EvalContext<'_>) -> Result<bool, PtaError> {
        match self {
            BoolExpr::True => Ok(true),
            BoolExpr::Cmp(lhs, op, rhs) => Ok(op.apply(lhs.eval(ctx)?, rhs.eval(ctx)?)),
            BoolExpr::ClockCmp(clock, op, rhs) => {
                let clock_value = ctx.clock(*clock)?;
                Ok(op.apply(clock_value, rhs.eval(ctx)?))
            }
            BoolExpr::And(lhs, rhs) => Ok(lhs.eval(ctx)? && rhs.eval(ctx)?),
            BoolExpr::Or(lhs, rhs) => Ok(lhs.eval(ctx)? || rhs.eval(ctx)?),
            BoolExpr::Not(inner) => Ok(!inner.eval(ctx)?),
        }
    }
}

/// The values an expression is evaluated against: variable values, constant
/// tables and clock values.
#[derive(Debug, Clone, Copy)]
pub struct EvalContext<'a> {
    vars: &'a [i64],
    arrays: &'a [Vec<i64>],
    clocks: &'a [u64],
}

impl<'a> EvalContext<'a> {
    /// Creates an evaluation context from slices of variable values,
    /// constant tables and clock values.
    #[must_use]
    pub fn new(vars: &'a [i64], arrays: &'a [Vec<i64>], clocks: &'a [u64]) -> Self {
        Self { vars, arrays, clocks }
    }

    fn var(&self, var: VarId) -> Result<i64, PtaError> {
        self.vars.get(var.0).copied().ok_or(PtaError::UnknownVariable { variable: var.0 })
    }

    fn clock(&self, clock: ClockId) -> Result<i64, PtaError> {
        self.clocks.get(clock.0).map(|&v| v as i64).ok_or(PtaError::UnknownClock { clock: clock.0 })
    }

    fn array_element(&self, array: ArrayId, index: i64) -> Result<i64, PtaError> {
        let table = self.arrays.get(array.0).ok_or(PtaError::UnknownArray { array: array.0 })?;
        if index < 0 || index as usize >= table.len() {
            return Err(PtaError::IndexOutOfBounds { array: array.0, index, length: table.len() });
        }
        Ok(table[index as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(vars: &'a [i64], arrays: &'a [Vec<i64>], clocks: &'a [u64]) -> EvalContext<'a> {
        EvalContext::new(vars, arrays, clocks)
    }

    #[test]
    fn arithmetic_evaluates() {
        let vars = [5, -2];
        let context = ctx(&vars, &[], &[]);
        let expr = IntExpr::var(VarId(0)).mul(IntExpr::constant(3)).add(IntExpr::var(VarId(1)));
        assert_eq!(expr.eval(&context).unwrap(), 13);
        let expr = IntExpr::constant(10).sub(IntExpr::var(VarId(0)));
        assert_eq!(expr.eval(&context).unwrap(), 5);
    }

    #[test]
    fn array_lookup_with_computed_index() {
        let vars = [2];
        let arrays = vec![vec![100, 50, 25, 12]];
        let context = ctx(&vars, &arrays, &[]);
        let expr = IntExpr::elem(ArrayId(0), IntExpr::var(VarId(0)).add(IntExpr::constant(1)));
        assert_eq!(expr.eval(&context).unwrap(), 12);
    }

    #[test]
    fn array_lookup_out_of_bounds_is_an_error() {
        let arrays = vec![vec![1, 2, 3]];
        let context = ctx(&[], &arrays, &[]);
        let expr = IntExpr::elem(ArrayId(0), IntExpr::constant(3));
        assert!(matches!(
            expr.eval(&context),
            Err(PtaError::IndexOutOfBounds { index: 3, length: 3, .. })
        ));
        let negative = IntExpr::elem(ArrayId(0), IntExpr::constant(-1));
        assert!(negative.eval(&context).is_err());
    }

    #[test]
    fn unknown_references_are_errors() {
        let context = ctx(&[], &[], &[]);
        assert!(IntExpr::var(VarId(0)).eval(&context).is_err());
        assert!(IntExpr::elem(ArrayId(0), IntExpr::constant(0)).eval(&context).is_err());
        assert!(BoolExpr::clock_le(ClockId(0), 5).eval(&context).is_err());
    }

    #[test]
    fn comparisons_and_boolean_connectives() {
        let vars = [4];
        let clocks = [7u64];
        let context = ctx(&vars, &[], &clocks);
        assert!(BoolExpr::cmp(VarId(0), CmpOp::Eq, 4).eval(&context).unwrap());
        assert!(BoolExpr::cmp(VarId(0), CmpOp::Lt, 5).eval(&context).unwrap());
        assert!(!BoolExpr::cmp(VarId(0), CmpOp::Gt, 5).eval(&context).unwrap());
        assert!(BoolExpr::clock_ge(ClockId(0), 7).eval(&context).unwrap());
        assert!(!BoolExpr::clock_lt(ClockId(0), 7).eval(&context).unwrap());
        let both = BoolExpr::cmp(VarId(0), CmpOp::Ne, 0).and(BoolExpr::clock_le(ClockId(0), 10));
        assert!(both.eval(&context).unwrap());
        let either = BoolExpr::cmp(VarId(0), CmpOp::Gt, 100).or(BoolExpr::True);
        assert!(either.eval(&context).unwrap());
        assert!(!BoolExpr::True.not().eval(&context).unwrap());
    }

    #[test]
    fn all_comparison_operators_behave() {
        assert!(CmpOp::Lt.apply(1, 2));
        assert!(CmpOp::Le.apply(2, 2));
        assert!(CmpOp::Eq.apply(3, 3));
        assert!(CmpOp::Ne.apply(3, 4));
        assert!(CmpOp::Ge.apply(4, 4));
        assert!(CmpOp::Gt.apply(5, 4));
        assert!(!CmpOp::Gt.apply(4, 4));
    }

    #[test]
    fn conversions_into_int_expr() {
        let from_literal: IntExpr = 42i64.into();
        assert_eq!(from_literal, IntExpr::Const(42));
        let from_var: IntExpr = VarId(3).into();
        assert_eq!(from_var, IntExpr::Var(VarId(3)));
    }
}
