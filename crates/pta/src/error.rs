use std::error::Error;
use std::fmt;

/// Errors produced while building or analysing a network of priced timed
/// automata.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PtaError {
    /// A location identifier referred to a location that does not exist in
    /// the automaton it was used with.
    UnknownLocation {
        /// The automaton name.
        automaton: String,
        /// The offending location index.
        location: usize,
    },
    /// A variable identifier was out of range for the network.
    UnknownVariable {
        /// The offending variable index.
        variable: usize,
    },
    /// A constant-array identifier was out of range for the network.
    UnknownArray {
        /// The offending array index.
        array: usize,
    },
    /// A clock identifier was out of range for the network.
    UnknownClock {
        /// The offending clock index.
        clock: usize,
    },
    /// A channel identifier was out of range for the network.
    UnknownChannel {
        /// The offending channel index.
        channel: usize,
    },
    /// An array was indexed outside its bounds while evaluating an
    /// expression.
    IndexOutOfBounds {
        /// The array that was indexed.
        array: usize,
        /// The evaluated index.
        index: i64,
        /// The array length.
        length: usize,
    },
    /// The network contains no automata.
    EmptyNetwork,
    /// A cost (edge cost or location rate) evaluated to a negative value;
    /// minimum-cost reachability requires non-negative costs.
    NegativeCost {
        /// The offending value.
        value: i64,
    },
    /// The initial state violates a location invariant.
    InitialInvariantViolated {
        /// The automaton whose invariant is violated.
        automaton: String,
    },
    /// The exploration exceeded its state limit before reaching the goal.
    StateLimitExceeded {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// A binary channel send had no matching receiver and can never fire;
    /// reported during validation when requested.
    DanglingBinarySend {
        /// The channel index.
        channel: usize,
    },
}

impl fmt::Display for PtaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtaError::UnknownLocation { automaton, location } => {
                write!(f, "automaton '{automaton}' has no location with index {location}")
            }
            PtaError::UnknownVariable { variable } => {
                write!(f, "unknown variable index {variable}")
            }
            PtaError::UnknownArray { array } => write!(f, "unknown constant array index {array}"),
            PtaError::UnknownClock { clock } => write!(f, "unknown clock index {clock}"),
            PtaError::UnknownChannel { channel } => write!(f, "unknown channel index {channel}"),
            PtaError::IndexOutOfBounds { array, index, length } => write!(
                f,
                "index {index} out of bounds for constant array {array} of length {length}"
            ),
            PtaError::EmptyNetwork => write!(f, "the network contains no automata"),
            PtaError::NegativeCost { value } => {
                write!(f, "costs must be non-negative, evaluated to {value}")
            }
            PtaError::InitialInvariantViolated { automaton } => {
                write!(f, "initial location invariant of automaton '{automaton}' is violated")
            }
            PtaError::StateLimitExceeded { limit } => {
                write!(f, "state exploration exceeded the limit of {limit} states")
            }
            PtaError::DanglingBinarySend { channel } => {
                write!(f, "binary channel {channel} has a send edge but no receive edge")
            }
        }
    }
}

impl Error for PtaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_key_facts() {
        let e = PtaError::UnknownLocation { automaton: "lamp".into(), location: 7 };
        assert!(e.to_string().contains("lamp"));
        assert!(e.to_string().contains('7'));
        assert!(PtaError::EmptyNetwork.to_string().contains("no automata"));
        assert!(PtaError::NegativeCost { value: -3 }.to_string().contains("-3"));
        assert!(PtaError::StateLimitExceeded { limit: 10 }.to_string().contains("10"));
        assert!(PtaError::IndexOutOfBounds { array: 1, index: 9, length: 4 }
            .to_string()
            .contains('9'));
    }

    #[test]
    fn implements_std_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<PtaError>();
    }
}
