//! Plain (uncosted) state-space exploration: reachability checking.
//!
//! The paper checks the TCTL property `A[] not max.done` and lets Cora
//! return a counterexample. The equivalent operation here is
//! [`reachable`]: breadth-first search for a state satisfying a goal
//! predicate. The priced variant — which also returns the cheapest witness —
//! lives in [`crate::mincost`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::network::Network;
use crate::semantics::{Semantics, TransitionLabel};
use crate::state::State;
use crate::trace::{Trace, TraceStep};
use crate::PtaError;

/// The outcome of a reachability query.
#[derive(Debug, Clone)]
pub struct ReachabilityResult {
    /// A goal state, if one is reachable.
    pub goal_state: Option<State>,
    /// A witness trace to the goal state, if one is reachable.
    pub trace: Option<Trace>,
    /// The number of distinct states visited during the search.
    pub states_explored: usize,
}

impl ReachabilityResult {
    /// Whether a goal state was found.
    #[must_use]
    pub fn is_reachable(&self) -> bool {
        self.goal_state.is_some()
    }
}

/// Breadth-first reachability: searches for a state satisfying `goal`,
/// exploring at most `state_limit` distinct states.
///
/// # Errors
///
/// Returns [`PtaError::StateLimitExceeded`] if the limit is hit before the
/// search space is exhausted or the goal is found, and propagates model
/// evaluation errors.
pub fn reachable<G>(
    network: &Network,
    goal: G,
    state_limit: usize,
) -> Result<ReachabilityResult, PtaError>
where
    G: Fn(&State) -> bool,
{
    let semantics = Semantics::new(network)?;
    let initial = semantics.initial_state()?;

    if goal(&initial) {
        return Ok(ReachabilityResult {
            goal_state: Some(initial),
            trace: Some(Trace::new()),
            states_explored: 1,
        });
    }

    // Nodes store states plus back-pointers for trace reconstruction.
    let mut nodes: Vec<(State, Option<(usize, TransitionLabel)>)> = vec![(initial.clone(), None)];
    let mut visited: BTreeSet<_> = BTreeSet::new();
    visited.insert(initial.key());
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);

    while let Some(node_index) = queue.pop_front() {
        let state = nodes[node_index].0.clone();
        for (label, successor) in semantics.successors(&state)? {
            let key = successor.key();
            if visited.contains(&key) {
                continue;
            }
            visited.insert(key);
            if visited.len() > state_limit {
                return Err(PtaError::StateLimitExceeded { limit: state_limit });
            }
            let successor_index = nodes.len();
            let is_goal = goal(&successor);
            nodes.push((successor, Some((node_index, label))));
            if is_goal {
                let trace = rebuild_trace(&nodes, successor_index);
                return Ok(ReachabilityResult {
                    goal_state: Some(nodes[successor_index].0.clone()),
                    trace: Some(trace),
                    states_explored: visited.len(),
                });
            }
            queue.push_back(successor_index);
        }
    }

    Ok(ReachabilityResult { goal_state: None, trace: None, states_explored: visited.len() })
}

/// Counts the number of distinct reachable states (up to `state_limit`).
///
/// # Errors
///
/// Returns [`PtaError::StateLimitExceeded`] if more than `state_limit`
/// states are reachable, and propagates model evaluation errors.
pub fn count_reachable_states(network: &Network, state_limit: usize) -> Result<usize, PtaError> {
    let result = reachable(network, |_| false, state_limit)?;
    Ok(result.states_explored)
}

pub(crate) fn rebuild_trace(
    nodes: &[(State, Option<(usize, TransitionLabel)>)],
    mut index: usize,
) -> Trace {
    let mut steps = Vec::new();
    while let Some((parent, label)) = nodes[index].1.clone() {
        steps.push(TraceStep { label, state: nodes[index].0.clone() });
        index = parent;
    }
    steps.reverse();
    Trace { steps }
}

/// Map-based variant of the visited bookkeeping shared with the min-cost
/// search; exposed for white-box tests.
#[allow(dead_code)]
pub(crate) type BestCosts = BTreeMap<crate::state::StateKey, u64>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Automaton, Edge, Location};
    use crate::expr::{BoolExpr, IntExpr};
    use crate::network::ChannelKind;

    /// Two automata: a producer that can emit up to three items and a
    /// consumer that counts them.
    fn producer_consumer() -> (Network, crate::expr::VarId) {
        let mut network = Network::new();
        let item = network.add_channel("item", ChannelKind::Binary);
        let produced = network.add_var("produced", 0);
        let consumed = network.add_var("consumed", 0);

        let mut producer = Automaton::new("producer");
        let p = producer.add_location(Location::new("p"));
        producer
            .add_edge(
                Edge::new(p, p)
                    .with_guard(BoolExpr::cmp(produced, crate::expr::CmpOp::Lt, 3))
                    .with_send(item)
                    .with_update(produced, IntExpr::var(produced).add(IntExpr::constant(1))),
            )
            .unwrap();
        network.add_automaton(producer).unwrap();

        let mut consumer = Automaton::new("consumer");
        let c = consumer.add_location(Location::new("c"));
        consumer
            .add_edge(
                Edge::new(c, c)
                    .with_receive(item)
                    .with_update(consumed, IntExpr::var(consumed).add(IntExpr::constant(1))),
            )
            .unwrap();
        network.add_automaton(consumer).unwrap();
        (network, consumed)
    }

    #[test]
    fn finds_reachable_goal_with_trace() {
        let (network, consumed) = producer_consumer();
        let result = reachable(&network, |s| s.var(consumed) == Some(3), 10_000).unwrap();
        assert!(result.is_reachable());
        let trace = result.trace.unwrap();
        assert_eq!(trace.actions().count(), 3);
        assert_eq!(result.goal_state.unwrap().var(consumed), Some(3));
    }

    #[test]
    fn unreachable_goal_reports_explored_states() {
        let (network, consumed) = producer_consumer();
        let result = reachable(&network, |s| s.var(consumed) == Some(10), 10_000).unwrap();
        assert!(!result.is_reachable());
        assert!(result.trace.is_none());
        assert!(result.states_explored >= 4);
    }

    #[test]
    fn goal_satisfied_by_initial_state() {
        let (network, _) = producer_consumer();
        let result = reachable(&network, |_| true, 10).unwrap();
        assert!(result.is_reachable());
        assert!(result.trace.unwrap().is_empty());
        assert_eq!(result.states_explored, 1);
    }

    #[test]
    fn state_limit_is_enforced() {
        let (network, consumed) = producer_consumer();
        let result = reachable(&network, |s| s.var(consumed) == Some(3), 2);
        assert!(matches!(result, Err(PtaError::StateLimitExceeded { limit: 2 })));
    }

    #[test]
    fn count_reachable_states_counts_everything() {
        let (network, _) = producer_consumer();
        // States: produced/consumed = 0..=3 plus unbounded time? No clocks,
        // no invariants -> delay leads to identical keys (clocks are empty),
        // so exactly 4 distinct states exist.
        let count = count_reachable_states(&network, 1_000).unwrap();
        assert_eq!(count, 4);
    }
}
