//! Traces (runs) through the state space of a network.
//!
//! A trace is the witness returned by the analyses in [`crate::explore`] and
//! [`crate::mincost`]: the sequence of transitions from the initial state to
//! a goal state. For the battery model, the minimum-cost trace *is* the
//! optimal battery schedule (Section 3.2 of the paper: "the path is the
//! schedule").

use crate::semantics::TransitionLabel;
use crate::state::State;

/// One step of a trace: the transition taken and the state it leads to.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// The transition label.
    pub label: TransitionLabel,
    /// The state reached after the transition.
    pub state: State,
}

/// A run through the state space, starting from the network's initial state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// The steps of the run, in order.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Creates an empty trace (a run that stays in the initial state).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of transitions in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace contains no transitions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The number of delay transitions, i.e. the total elapsed time steps.
    #[must_use]
    pub fn delay_steps(&self) -> usize {
        self.steps.iter().filter(|s| s.label == TransitionLabel::Delay).count()
    }

    /// The number of action (non-delay) transitions.
    #[must_use]
    pub fn action_steps(&self) -> usize {
        self.len() - self.delay_steps()
    }

    /// The final state of the trace, if it has any steps.
    #[must_use]
    pub fn last_state(&self) -> Option<&State> {
        self.steps.last().map(|s| &s.state)
    }

    /// Iterates over the action transitions only, skipping delays.
    pub fn actions(&self) -> impl Iterator<Item = &TraceStep> {
        self.steps.iter().filter(|s| s.label != TransitionLabel::Delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::LocationId;
    use crate::network::AutomatonId;

    fn dummy_state(time: u64) -> State {
        State {
            locations: vec![LocationId::from_index(0)],
            clocks: vec![time],
            vars: vec![],
            cost: 0,
            time,
        }
    }

    #[test]
    fn empty_trace() {
        let trace = Trace::new();
        assert!(trace.is_empty());
        assert_eq!(trace.len(), 0);
        assert_eq!(trace.delay_steps(), 0);
        assert!(trace.last_state().is_none());
    }

    #[test]
    fn counts_delays_and_actions() {
        let trace = Trace {
            steps: vec![
                TraceStep { label: TransitionLabel::Delay, state: dummy_state(1) },
                TraceStep {
                    label: TransitionLabel::Internal { automaton: AutomatonId(0), edge: 0 },
                    state: dummy_state(1),
                },
                TraceStep { label: TransitionLabel::Delay, state: dummy_state(2) },
            ],
        };
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.delay_steps(), 2);
        assert_eq!(trace.action_steps(), 1);
        assert_eq!(trace.actions().count(), 1);
        assert_eq!(trace.last_state().unwrap().time(), 2);
    }
}
