//! Networks of timed automata: shared variables, constant tables, clocks,
//! channels and the parallel composition of automata.

use crate::automaton::{Automaton, ChannelId, SyncDirection};
use crate::expr::{ArrayId, ClockId, VarId};
use crate::PtaError;

/// Identifier of an automaton within a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AutomatonId(pub(crate) usize);

impl AutomatonId {
    /// The raw index of this automaton in the network's declaration order.
    #[must_use]
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Kind of a synchronisation channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ChannelKind {
    /// Hand-shake synchronisation: a send requires exactly one receiver.
    Binary,
    /// Broadcast: a send synchronises with every automaton whose receive
    /// edge is enabled, possibly none.
    Broadcast,
}

#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct VarDecl {
    name: String,
    initial: i64,
}

#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct ArrayDecl {
    name: String,
    values: Vec<i64>,
}

#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct ClockDecl {
    name: String,
}

#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct ChannelDecl {
    name: String,
    kind: ChannelKind,
}

/// A network of priced timed automata sharing variables, constant tables,
/// clocks and channels.
///
/// Build a network by declaring the shared entities first (so that their
/// identifiers can be referenced from guards and updates) and then adding
/// the automata.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Network {
    vars: Vec<VarDecl>,
    arrays: Vec<ArrayDecl>,
    clocks: Vec<ClockDecl>,
    channels: Vec<ChannelDecl>,
    automata: Vec<Automaton>,
}

impl Network {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an integer variable with an initial value.
    pub fn add_var(&mut self, name: impl Into<String>, initial: i64) -> VarId {
        self.vars.push(VarDecl { name: name.into(), initial });
        VarId(self.vars.len() - 1)
    }

    /// Declares a constant lookup table (e.g. the paper's `recov_times`).
    pub fn add_const_array(&mut self, name: impl Into<String>, values: Vec<i64>) -> ArrayId {
        self.arrays.push(ArrayDecl { name: name.into(), values });
        ArrayId(self.arrays.len() - 1)
    }

    /// Declares a clock.
    pub fn add_clock(&mut self, name: impl Into<String>) -> ClockId {
        self.clocks.push(ClockDecl { name: name.into() });
        ClockId(self.clocks.len() - 1)
    }

    /// Declares a synchronisation channel.
    pub fn add_channel(&mut self, name: impl Into<String>, kind: ChannelKind) -> ChannelId {
        self.channels.push(ChannelDecl { name: name.into(), kind });
        ChannelId(self.channels.len() - 1)
    }

    /// Adds an automaton to the network.
    ///
    /// # Errors
    ///
    /// Returns [`PtaError::UnknownChannel`] if any of the automaton's edges
    /// synchronises on a channel that has not been declared, or
    /// [`PtaError::UnknownLocation`] if the automaton has no locations.
    pub fn add_automaton(&mut self, automaton: Automaton) -> Result<AutomatonId, PtaError> {
        if automaton.locations().is_empty() {
            return Err(PtaError::UnknownLocation {
                automaton: automaton.name().to_owned(),
                location: 0,
            });
        }
        for edge in automaton.edges() {
            if let Some(sync) = edge.sync() {
                if sync.channel.index() >= self.channels.len() {
                    return Err(PtaError::UnknownChannel { channel: sync.channel.index() });
                }
            }
        }
        self.automata.push(automaton);
        Ok(AutomatonId(self.automata.len() - 1))
    }

    /// The automata of the network, in declaration order.
    #[must_use]
    pub fn automata(&self) -> &[Automaton] {
        &self.automata
    }

    /// The automaton with the given identifier.
    #[must_use]
    pub fn automaton(&self, id: AutomatonId) -> Option<&Automaton> {
        self.automata.get(id.0)
    }

    /// The number of declared variables.
    #[must_use]
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// The number of declared clocks.
    #[must_use]
    pub fn clock_count(&self) -> usize {
        self.clocks.len()
    }

    /// The number of declared channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Initial values of all variables, in declaration order.
    #[must_use]
    pub fn initial_vars(&self) -> Vec<i64> {
        self.vars.iter().map(|v| v.initial).collect()
    }

    /// The values of all constant tables, in declaration order.
    #[must_use]
    pub fn array_values(&self) -> Vec<Vec<i64>> {
        self.arrays.iter().map(|a| a.values.clone()).collect()
    }

    /// The kind of a channel.
    ///
    /// # Errors
    ///
    /// Returns [`PtaError::UnknownChannel`] if the channel does not exist.
    pub fn channel_kind(&self, channel: ChannelId) -> Result<ChannelKind, PtaError> {
        self.channels
            .get(channel.index())
            .map(|c| c.kind)
            .ok_or(PtaError::UnknownChannel { channel: channel.index() })
    }

    /// The declared name of a variable (useful for diagnostics).
    #[must_use]
    pub fn var_name(&self, var: VarId) -> Option<&str> {
        self.vars.get(var.index()).map(|v| v.name.as_str())
    }

    /// The declared name of an automaton.
    #[must_use]
    pub fn automaton_name(&self, id: AutomatonId) -> Option<&str> {
        self.automata.get(id.0).map(Automaton::name)
    }

    /// Performs structural validation: the network must contain at least one
    /// automaton, and every binary channel with a sender must also have at
    /// least one potential receiver.
    ///
    /// # Errors
    ///
    /// Returns [`PtaError::EmptyNetwork`] or [`PtaError::DanglingBinarySend`].
    pub fn validate(&self) -> Result<(), PtaError> {
        if self.automata.is_empty() {
            return Err(PtaError::EmptyNetwork);
        }
        for (channel_index, channel) in self.channels.iter().enumerate() {
            if channel.kind != ChannelKind::Binary {
                continue;
            }
            let mut has_send = false;
            let mut has_receive = false;
            for automaton in &self.automata {
                for edge in automaton.edges() {
                    if let Some(sync) = edge.sync() {
                        if sync.channel.index() == channel_index {
                            match sync.direction {
                                SyncDirection::Send => has_send = true,
                                SyncDirection::Receive => has_receive = true,
                            }
                        }
                    }
                }
            }
            if has_send && !has_receive {
                return Err(PtaError::DanglingBinarySend { channel: channel_index });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Edge, Location};

    fn two_location_automaton(name: &str) -> (Automaton, crate::automaton::LocationId) {
        let mut automaton = Automaton::new(name);
        let a = automaton.add_location(Location::new("a"));
        let _b = automaton.add_location(Location::new("b"));
        (automaton, a)
    }

    #[test]
    fn declarations_get_sequential_ids() {
        let mut network = Network::new();
        let v0 = network.add_var("x", 1);
        let v1 = network.add_var("y", 2);
        assert_eq!(v0.index(), 0);
        assert_eq!(v1.index(), 1);
        assert_eq!(network.initial_vars(), vec![1, 2]);
        assert_eq!(network.var_name(v1), Some("y"));
        let a0 = network.add_const_array("table", vec![5, 6]);
        assert_eq!(a0.index(), 0);
        assert_eq!(network.array_values(), vec![vec![5, 6]]);
        let c0 = network.add_clock("t");
        assert_eq!(c0.index(), 0);
        assert_eq!(network.clock_count(), 1);
        let ch = network.add_channel("go", ChannelKind::Binary);
        assert_eq!(network.channel_kind(ch).unwrap(), ChannelKind::Binary);
    }

    #[test]
    fn empty_automaton_is_rejected() {
        let mut network = Network::new();
        assert!(network.add_automaton(Automaton::new("empty")).is_err());
    }

    #[test]
    fn automaton_with_undeclared_channel_is_rejected() {
        let mut network = Network::new();
        let (mut automaton, a) = two_location_automaton("a");
        automaton.add_edge(Edge::new(a, a).with_send(ChannelId(3))).unwrap();
        assert!(matches!(
            network.add_automaton(automaton),
            Err(PtaError::UnknownChannel { channel: 3 })
        ));
    }

    #[test]
    fn validate_rejects_empty_network_and_dangling_sends() {
        let network = Network::new();
        assert!(matches!(network.validate(), Err(PtaError::EmptyNetwork)));

        let mut network = Network::new();
        let ch = network.add_channel("go", ChannelKind::Binary);
        let (mut sender, a) = two_location_automaton("sender");
        sender.add_edge(Edge::new(a, a).with_send(ch)).unwrap();
        network.add_automaton(sender).unwrap();
        assert!(matches!(network.validate(), Err(PtaError::DanglingBinarySend { channel: 0 })));

        // Adding a receiver fixes it.
        let (mut receiver, b) = two_location_automaton("receiver");
        receiver.add_edge(Edge::new(b, b).with_receive(ch)).unwrap();
        network.add_automaton(receiver).unwrap();
        assert!(network.validate().is_ok());
    }

    #[test]
    fn broadcast_send_without_receiver_is_fine() {
        let mut network = Network::new();
        let ch = network.add_channel("announce", ChannelKind::Broadcast);
        let (mut sender, a) = two_location_automaton("sender");
        sender.add_edge(Edge::new(a, a).with_send(ch)).unwrap();
        network.add_automaton(sender).unwrap();
        assert!(network.validate().is_ok());
    }

    #[test]
    fn lookup_accessors() {
        let mut network = Network::new();
        let (automaton, _) = two_location_automaton("worker");
        let id = network.add_automaton(automaton).unwrap();
        assert_eq!(network.automaton_name(id), Some("worker"));
        assert!(network.automaton(id).is_some());
        assert_eq!(network.automata().len(), 1);
        assert!(network.channel_kind(ChannelId(0)).is_err());
    }
}
