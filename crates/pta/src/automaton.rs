//! Single timed automata: locations, switches and synchronisation labels.

use crate::expr::{BoolExpr, ClockId, IntExpr, VarId};
use crate::PtaError;

/// Identifier of a location within one automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LocationId(pub(crate) usize);

impl LocationId {
    /// The raw index of this location in the automaton's declaration order.
    #[must_use]
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Identifier of a channel declared in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChannelId(pub(crate) usize);

impl ChannelId {
    /// The raw index of this channel in the network's declaration order.
    #[must_use]
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A location of a timed automaton.
///
/// Locations carry an invariant (when the location may be occupied), a cost
/// rate (cost accumulated per time step while the location is occupied) and
/// the *committed* flag (no delay may happen and committed locations have
/// priority, as in Uppaal/Cora).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Location {
    name: String,
    invariant: BoolExpr,
    cost_rate: IntExpr,
    committed: bool,
}

impl Location {
    /// Creates a location with a true invariant, zero cost rate and no
    /// committed flag.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            invariant: BoolExpr::True,
            cost_rate: IntExpr::Const(0),
            committed: false,
        }
    }

    /// Sets the location invariant.
    #[must_use]
    pub fn with_invariant(mut self, invariant: BoolExpr) -> Self {
        self.invariant = invariant;
        self
    }

    /// Sets the cost rate (`cost' == rate` in Cora syntax): the amount added
    /// to the global cost for every time step spent in this location.
    #[must_use]
    pub fn with_cost_rate(mut self, rate: IntExpr) -> Self {
        self.cost_rate = rate;
        self
    }

    /// Marks the location as committed.
    #[must_use]
    pub fn committed(mut self) -> Self {
        self.committed = true;
        self
    }

    /// The location name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The location invariant.
    #[must_use]
    pub fn invariant(&self) -> &BoolExpr {
        &self.invariant
    }

    /// The cost rate expression.
    #[must_use]
    pub fn cost_rate(&self) -> &IntExpr {
        &self.cost_rate
    }

    /// Whether the location is committed.
    #[must_use]
    pub fn is_committed(&self) -> bool {
        self.committed
    }
}

/// Direction of a synchronisation: `c!` (send) or `c?` (receive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SyncDirection {
    /// The sending side (`channel!`).
    Send,
    /// The receiving side (`channel?`).
    Receive,
}

/// A synchronisation label on an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Sync {
    /// The channel synchronised on.
    pub channel: ChannelId,
    /// Whether this edge sends or receives.
    pub direction: SyncDirection,
}

/// An assignment `variable := expression` performed when an edge fires.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Update {
    /// The variable being assigned.
    pub target: VarId,
    /// The assigned value, evaluated in the pre-update state.
    pub value: IntExpr,
}

/// A switch (edge) of a timed automaton.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Edge {
    source: LocationId,
    target: LocationId,
    guard: BoolExpr,
    sync: Option<Sync>,
    updates: Vec<Update>,
    clock_resets: Vec<ClockId>,
    cost: IntExpr,
}

impl Edge {
    /// Creates an edge from `source` to `target` with a true guard, no
    /// synchronisation, no updates and zero cost.
    #[must_use]
    pub fn new(source: LocationId, target: LocationId) -> Self {
        Self {
            source,
            target,
            guard: BoolExpr::True,
            sync: None,
            updates: Vec::new(),
            clock_resets: Vec::new(),
            cost: IntExpr::Const(0),
        }
    }

    /// Sets the guard.
    #[must_use]
    pub fn with_guard(mut self, guard: BoolExpr) -> Self {
        self.guard = guard;
        self
    }

    /// Labels the edge as sending on `channel` (`channel!`).
    #[must_use]
    pub fn with_send(mut self, channel: ChannelId) -> Self {
        self.sync = Some(Sync { channel, direction: SyncDirection::Send });
        self
    }

    /// Labels the edge as receiving on `channel` (`channel?`).
    #[must_use]
    pub fn with_receive(mut self, channel: ChannelId) -> Self {
        self.sync = Some(Sync { channel, direction: SyncDirection::Receive });
        self
    }

    /// Appends an assignment performed when the edge fires.
    #[must_use]
    pub fn with_update(mut self, target: VarId, value: IntExpr) -> Self {
        self.updates.push(Update { target, value });
        self
    }

    /// Appends a clock reset performed when the edge fires.
    #[must_use]
    pub fn with_reset(mut self, clock: ClockId) -> Self {
        self.clock_resets.push(clock);
        self
    }

    /// Sets the discrete cost added to the global cost when the edge fires
    /// (`cost += value` in Cora syntax).
    #[must_use]
    pub fn with_cost(mut self, cost: IntExpr) -> Self {
        self.cost = cost;
        self
    }

    /// The source location.
    #[must_use]
    pub fn source(&self) -> LocationId {
        self.source
    }

    /// The target location.
    #[must_use]
    pub fn target(&self) -> LocationId {
        self.target
    }

    /// The guard expression.
    #[must_use]
    pub fn guard(&self) -> &BoolExpr {
        &self.guard
    }

    /// The synchronisation label, if any.
    #[must_use]
    pub fn sync(&self) -> Option<&Sync> {
        self.sync.as_ref()
    }

    /// The variable assignments performed when the edge fires.
    #[must_use]
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// The clocks reset when the edge fires.
    #[must_use]
    pub fn clock_resets(&self) -> &[ClockId] {
        &self.clock_resets
    }

    /// The discrete cost expression of the edge.
    #[must_use]
    pub fn cost(&self) -> &IntExpr {
        &self.cost
    }
}

/// A single timed automaton: a set of locations and edges plus an initial
/// location.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Automaton {
    name: String,
    locations: Vec<Location>,
    edges: Vec<Edge>,
    initial: LocationId,
}

impl Automaton {
    /// Creates an empty automaton with the given name. The first added
    /// location becomes the initial location unless
    /// [`set_initial`](Automaton::set_initial) is called.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), locations: Vec::new(), edges: Vec::new(), initial: LocationId(0) }
    }

    /// Adds a location and returns its identifier.
    pub fn add_location(&mut self, location: Location) -> LocationId {
        self.locations.push(location);
        LocationId(self.locations.len() - 1)
    }

    /// Adds an edge.
    ///
    /// # Errors
    ///
    /// Returns [`PtaError::UnknownLocation`] if the edge refers to a
    /// location that has not been added to this automaton.
    pub fn add_edge(&mut self, edge: Edge) -> Result<(), PtaError> {
        for loc in [edge.source, edge.target] {
            if loc.0 >= self.locations.len() {
                return Err(PtaError::UnknownLocation {
                    automaton: self.name.clone(),
                    location: loc.0,
                });
            }
        }
        self.edges.push(edge);
        Ok(())
    }

    /// Sets the initial location.
    ///
    /// # Errors
    ///
    /// Returns [`PtaError::UnknownLocation`] if the location does not exist.
    pub fn set_initial(&mut self, initial: LocationId) -> Result<(), PtaError> {
        if initial.0 >= self.locations.len() {
            return Err(PtaError::UnknownLocation {
                automaton: self.name.clone(),
                location: initial.0,
            });
        }
        self.initial = initial;
        Ok(())
    }

    /// The automaton name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The locations in declaration order.
    #[must_use]
    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// The location with the given identifier.
    #[must_use]
    pub fn location(&self, id: LocationId) -> Option<&Location> {
        self.locations.get(id.0)
    }

    /// The edges in declaration order.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The initial location.
    #[must_use]
    pub fn initial(&self) -> LocationId {
        self.initial
    }

    /// The edges leaving the given location, with their indices.
    pub fn edges_from(&self, source: LocationId) -> impl Iterator<Item = (usize, &Edge)> {
        self.edges.iter().enumerate().filter(move |(_, e)| e.source == source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    #[test]
    fn location_builder_sets_all_attributes() {
        let clockless = Location::new("idle");
        assert_eq!(clockless.name(), "idle");
        assert_eq!(clockless.invariant(), &BoolExpr::True);
        assert!(!clockless.is_committed());

        let fancy = Location::new("busy")
            .with_invariant(BoolExpr::cmp(IntExpr::constant(1), CmpOp::Eq, IntExpr::constant(1)))
            .with_cost_rate(IntExpr::constant(5))
            .committed();
        assert!(fancy.is_committed());
        assert_eq!(fancy.cost_rate(), &IntExpr::Const(5));
    }

    #[test]
    fn edges_validate_location_ids() {
        let mut automaton = Automaton::new("a");
        let l0 = automaton.add_location(Location::new("l0"));
        let l1 = automaton.add_location(Location::new("l1"));
        assert!(automaton.add_edge(Edge::new(l0, l1)).is_ok());
        assert!(matches!(
            automaton.add_edge(Edge::new(l0, LocationId(9))),
            Err(PtaError::UnknownLocation { location: 9, .. })
        ));
        assert!(automaton.set_initial(l1).is_ok());
        assert!(automaton.set_initial(LocationId(5)).is_err());
        assert_eq!(automaton.initial(), l1);
    }

    #[test]
    fn edges_from_filters_by_source() {
        let mut automaton = Automaton::new("a");
        let l0 = automaton.add_location(Location::new("l0"));
        let l1 = automaton.add_location(Location::new("l1"));
        automaton.add_edge(Edge::new(l0, l1)).unwrap();
        automaton.add_edge(Edge::new(l1, l0)).unwrap();
        automaton.add_edge(Edge::new(l0, l0)).unwrap();
        assert_eq!(automaton.edges_from(l0).count(), 2);
        assert_eq!(automaton.edges_from(l1).count(), 1);
    }

    #[test]
    fn edge_builder_accumulates_updates_and_resets() {
        let mut automaton = Automaton::new("a");
        let l0 = automaton.add_location(Location::new("l0"));
        let channel = ChannelId(0);
        let edge = Edge::new(l0, l0)
            .with_guard(BoolExpr::True)
            .with_send(channel)
            .with_update(VarId(0), IntExpr::constant(1))
            .with_update(VarId(1), IntExpr::constant(2))
            .with_reset(ClockId(0))
            .with_cost(IntExpr::constant(3));
        assert_eq!(edge.updates().len(), 2);
        assert_eq!(edge.clock_resets().len(), 1);
        assert_eq!(edge.sync().unwrap().direction, SyncDirection::Send);
        assert_eq!(edge.cost(), &IntExpr::Const(3));
    }
}
