//! Networks of (linear) priced timed automata with discrete-time semantics.
//!
//! The battery-scheduling paper encodes its discretized battery model as a
//! *network of linear priced timed automata* (NLPTA) and uses the Uppaal
//! **Cora** model checker to find minimum-cost schedules (Sections 3–4).
//! This crate is the substrate that replaces Cora in the reproduction. It
//! provides the same modelling ingredients the paper relies on:
//!
//! * **locations** with invariants, cost rates and the *committed* marker;
//! * **switches (edges)** with guards, integer-variable updates, clock
//!   resets, discrete cost updates and channel synchronisation;
//! * **clocks** compared against integer expressions in guards/invariants;
//! * **integer variables** and **constant lookup tables** (the paper's
//!   `recov_times`, `cur_times`, `cur` and `load_time` arrays);
//! * **binary and broadcast channels**;
//! * a **cost** variable accumulated through rates and updates.
//!
//! Semantics are *discrete time*: clocks advance in unit steps. Because the
//! dKiBaM of the paper is already fully discretized (time step `T`), the
//! reachable states of the discrete semantics coincide with the states the
//! dense-time model visits at multiples of `T`, so minimum-cost reachability
//! ([`mincost::min_cost_reachability`]) computes the same optimal schedules
//! Cora would — this substitution is documented in `DESIGN.md`.
//!
//! # Example: the priced lamp of Section 3
//!
//! ```
//! use pta::{
//!     automaton::{Automaton, Edge, Location},
//!     expr::{BoolExpr, IntExpr},
//!     network::{ChannelKind, Network},
//!     mincost::min_cost_reachability,
//! };
//!
//! # fn main() -> Result<(), pta::PtaError> {
//! let mut network = Network::new();
//! let press = network.add_channel("press", ChannelKind::Broadcast);
//! let y = network.add_clock("y");
//!
//! // The lamp: off -> low, with switch-on cost 50 and burn rate 10.
//! let mut lamp = Automaton::new("lamp");
//! let off = lamp.add_location(Location::new("off"));
//! let low = lamp.add_location(
//!     Location::new("low")
//!         .with_invariant(BoolExpr::clock_le(y, IntExpr::constant(10)))
//!         .with_cost_rate(IntExpr::constant(10)),
//! );
//! lamp.add_edge(
//!     Edge::new(off, low)
//!         .with_receive(press)
//!         .with_reset(y)
//!         .with_cost(IntExpr::constant(50)),
//! )?;
//! lamp.add_edge(Edge::new(low, off).with_guard(BoolExpr::clock_ge(y, IntExpr::constant(10))))?;
//! lamp.set_initial(off)?;
//! let lamp_id = network.add_automaton(lamp)?;
//!
//! // The user presses the button once, immediately.
//! let mut user = Automaton::new("user");
//! let idle = user.add_location(Location::new("idle"));
//! let done = user.add_location(Location::new("done"));
//! user.add_edge(Edge::new(idle, done).with_send(press))?;
//! user.set_initial(idle)?;
//! let user_id = network.add_automaton(user)?;
//!
//! // Minimum energy for one full on/off cycle of the lamp.
//! let result = min_cost_reachability(
//!     &network,
//!     |state| state.location(user_id) == done && state.location(lamp_id) == off,
//!     100_000,
//! )?
//! .expect("the lamp can always be switched off again");
//! // 50 for switching on + 10 per time unit for 10 time units.
//! assert_eq!(result.cost, 150);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod automaton;
mod error;
pub mod explore;
pub mod expr;
pub mod mincost;
pub mod network;
pub mod semantics;
pub mod state;
pub mod trace;

pub use error::PtaError;
