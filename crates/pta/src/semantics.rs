//! Discrete-time operational semantics of a network of priced timed
//! automata.
//!
//! A global state evolves either by an **action transition** — an internal
//! edge, a binary hand-shake or a broadcast — or by a **delay transition**
//! of one time step. Committed locations forbid delay and take priority over
//! non-committed action transitions, mirroring Uppaal/Cora. Costs accumulate
//! through edge cost updates and per-step location cost rates.

use crate::automaton::{Edge, LocationId, SyncDirection};
use crate::expr::EvalContext;
use crate::network::{AutomatonId, ChannelKind, Network};
use crate::state::State;
use crate::PtaError;

/// The label of a transition between two global states.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TransitionLabel {
    /// One discrete time step elapsed.
    Delay,
    /// An automaton took an edge without synchronisation.
    Internal {
        /// The automaton that moved.
        automaton: AutomatonId,
        /// The index of the edge (in that automaton's edge list).
        edge: usize,
    },
    /// A channel synchronisation: one sender plus its receivers (exactly one
    /// for binary channels, any number — including zero — for broadcasts).
    Sync {
        /// The channel synchronised on.
        channel: crate::automaton::ChannelId,
        /// The sending automaton and edge index.
        sender: (AutomatonId, usize),
        /// The receiving automata and edge indices, in automaton order.
        receivers: Vec<(AutomatonId, usize)>,
    },
}

/// The operational semantics of a [`Network`]: initial state and successor
/// computation.
#[derive(Debug)]
pub struct Semantics<'a> {
    network: &'a Network,
    arrays: Vec<Vec<i64>>,
    /// Clocks saturate at this value during delays. It exceeds every constant
    /// a clock can be compared against (all literals, table entries and
    /// initial variable values in the model), so saturation never changes
    /// the truth value of any guard or invariant — this is the discrete-time
    /// analogue of the classical maximum-constant (k-extrapolation)
    /// abstraction and is what keeps the reachable state space finite.
    clock_cap: u64,
}

impl<'a> Semantics<'a> {
    /// Creates the semantics of a network after validating it.
    ///
    /// # Errors
    ///
    /// Propagates [`Network::validate`] errors.
    pub fn new(network: &'a Network) -> Result<Self, PtaError> {
        network.validate()?;
        let arrays = network.array_values();
        let clock_cap = clock_cap_for(network, &arrays);
        Ok(Self { network, arrays, clock_cap })
    }

    /// The value at which clocks saturate during delay transitions.
    #[must_use]
    pub fn clock_cap(&self) -> u64 {
        self.clock_cap
    }

    /// The underlying network.
    #[must_use]
    pub fn network(&self) -> &Network {
        self.network
    }

    /// The initial state: every automaton in its initial location, all
    /// clocks and the cost at zero, variables at their declared initial
    /// values.
    ///
    /// # Errors
    ///
    /// Returns [`PtaError::InitialInvariantViolated`] if an initial location
    /// invariant does not hold, or an evaluation error if an invariant is
    /// ill-formed.
    pub fn initial_state(&self) -> Result<State, PtaError> {
        let state = State {
            locations: self.network.automata().iter().map(|a| a.initial()).collect(),
            clocks: vec![0; self.network.clock_count()],
            vars: self.network.initial_vars(),
            cost: 0,
            time: 0,
        };
        for (index, automaton) in self.network.automata().iter().enumerate() {
            if !self.invariant_holds(&state, index)? {
                return Err(PtaError::InitialInvariantViolated {
                    automaton: automaton.name().to_owned(),
                });
            }
        }
        Ok(state)
    }

    /// Computes all successor states of `state`, paired with the transition
    /// labels that produce them.
    ///
    /// # Errors
    ///
    /// Returns evaluation errors for ill-formed expressions and
    /// [`PtaError::NegativeCost`] if a cost expression evaluates negatively.
    pub fn successors(&self, state: &State) -> Result<Vec<(TransitionLabel, State)>, PtaError> {
        let mut result = Vec::new();
        let committed_active = self.any_committed(state);

        // Action transitions.
        for (index, automaton) in self.network.automata().iter().enumerate() {
            let automaton_id = AutomatonId(index);
            let source = state.locations[index];
            for (edge_index, edge) in automaton.edges_from(source) {
                if !self.guard_holds(state, edge)? {
                    continue;
                }
                match edge.sync() {
                    None => {
                        let participants = vec![(automaton_id, edge_index)];
                        if committed_active && !self.involves_committed(state, &participants) {
                            continue;
                        }
                        if let Some(next) = self.apply_action(state, &participants)? {
                            result.push((
                                TransitionLabel::Internal {
                                    automaton: automaton_id,
                                    edge: edge_index,
                                },
                                next,
                            ));
                        }
                    }
                    Some(sync) if sync.direction == SyncDirection::Send => {
                        let kind = self.network.channel_kind(sync.channel)?;
                        match kind {
                            ChannelKind::Binary => {
                                for (recv_auto, recv_edge) in
                                    self.enabled_receivers(state, sync.channel, index)?
                                {
                                    let participants =
                                        vec![(automaton_id, edge_index), (recv_auto, recv_edge)];
                                    if committed_active
                                        && !self.involves_committed(state, &participants)
                                    {
                                        continue;
                                    }
                                    if let Some(next) = self.apply_action(state, &participants)? {
                                        result.push((
                                            TransitionLabel::Sync {
                                                channel: sync.channel,
                                                sender: (automaton_id, edge_index),
                                                receivers: vec![(recv_auto, recv_edge)],
                                            },
                                            next,
                                        ));
                                    }
                                }
                            }
                            ChannelKind::Broadcast => {
                                // Every automaton with an enabled receiving
                                // edge participates with its first such edge.
                                let mut receivers = Vec::new();
                                for other in 0..self.network.automata().len() {
                                    if other == index {
                                        continue;
                                    }
                                    if let Some(first) = self
                                        .enabled_receivers(state, sync.channel, usize::MAX)?
                                        .into_iter()
                                        .find(|(a, _)| a.index() == other)
                                    {
                                        receivers.push(first);
                                    }
                                }
                                let mut participants = vec![(automaton_id, edge_index)];
                                participants.extend(receivers.iter().copied());
                                if committed_active
                                    && !self.involves_committed(state, &participants)
                                {
                                    continue;
                                }
                                if let Some(next) = self.apply_action(state, &participants)? {
                                    result.push((
                                        TransitionLabel::Sync {
                                            channel: sync.channel,
                                            sender: (automaton_id, edge_index),
                                            receivers,
                                        },
                                        next,
                                    ));
                                }
                            }
                        }
                    }
                    // Receive edges never initiate a transition on their own.
                    Some(_) => {}
                }
            }
        }

        // Delay transition of one time step (forbidden while a committed
        // location is occupied).
        if !committed_active {
            if let Some(next) = self.apply_delay(state)? {
                result.push((TransitionLabel::Delay, next));
            }
        }

        Ok(result)
    }

    fn context<'s>(&'s self, state: &'s State) -> EvalContext<'s> {
        EvalContext::new(&state.vars, &self.arrays, &state.clocks)
    }

    fn guard_holds(&self, state: &State, edge: &Edge) -> Result<bool, PtaError> {
        edge.guard().eval(&self.context(state))
    }

    fn invariant_holds(&self, state: &State, automaton_index: usize) -> Result<bool, PtaError> {
        let automaton = &self.network.automata()[automaton_index];
        let location = state.locations[automaton_index];
        let invariant = automaton
            .location(location)
            .map(|l| l.invariant().clone())
            .unwrap_or(crate::expr::BoolExpr::True);
        invariant.eval(&self.context(state))
    }

    fn all_invariants_hold(&self, state: &State) -> Result<bool, PtaError> {
        for index in 0..self.network.automata().len() {
            if !self.invariant_holds(state, index)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn any_committed(&self, state: &State) -> bool {
        self.network.automata().iter().enumerate().any(|(index, automaton)| {
            automaton.location(state.locations[index]).map(|l| l.is_committed()).unwrap_or(false)
        })
    }

    fn involves_committed(&self, state: &State, participants: &[(AutomatonId, usize)]) -> bool {
        participants.iter().any(|(automaton, _)| {
            let index = automaton.index();
            self.network.automata()[index]
                .location(state.locations[index])
                .map(|l| l.is_committed())
                .unwrap_or(false)
        })
    }

    /// Enabled receiving edges on `channel` over all automata except
    /// `exclude` (pass `usize::MAX` to exclude nothing).
    fn enabled_receivers(
        &self,
        state: &State,
        channel: crate::automaton::ChannelId,
        exclude: usize,
    ) -> Result<Vec<(AutomatonId, usize)>, PtaError> {
        let mut receivers = Vec::new();
        for (index, automaton) in self.network.automata().iter().enumerate() {
            if index == exclude {
                continue;
            }
            let source = state.locations[index];
            for (edge_index, edge) in automaton.edges_from(source) {
                let Some(sync) = edge.sync() else { continue };
                if sync.direction != SyncDirection::Receive || sync.channel != channel {
                    continue;
                }
                if self.guard_holds(state, edge)? {
                    receivers.push((AutomatonId(index), edge_index));
                    // Only the first enabled receiving edge per automaton is
                    // considered (sufficient for the TA-KiBaM models, where
                    // at most one receiving edge is enabled at a time).
                    break;
                }
            }
        }
        Ok(receivers)
    }

    /// Applies the edges of all participants (sender/internal first, then
    /// receivers in the given order), checks the invariants of the resulting
    /// state and returns it, or `None` if an invariant is violated.
    fn apply_action(
        &self,
        state: &State,
        participants: &[(AutomatonId, usize)],
    ) -> Result<Option<State>, PtaError> {
        let mut next = state.clone();
        let mut added_cost: u64 = 0;
        for (automaton_id, edge_index) in participants {
            let automaton = &self.network.automata()[automaton_id.index()];
            let edge = &automaton.edges()[*edge_index];
            // Cost and update right-hand sides are evaluated against the
            // current (partially updated) valuation, as in Uppaal's
            // sequential assignment semantics.
            let cost = {
                let ctx = EvalContext::new(&next.vars, &self.arrays, &next.clocks);
                edge.cost().eval(&ctx)?
            };
            if cost < 0 {
                return Err(PtaError::NegativeCost { value: cost });
            }
            added_cost += cost as u64;
            let mut new_values = Vec::with_capacity(edge.updates().len());
            {
                let ctx = EvalContext::new(&next.vars, &self.arrays, &next.clocks);
                for update in edge.updates() {
                    new_values.push((update.target, update.value.eval(&ctx)?));
                }
            }
            for (target, value) in new_values {
                if target.index() >= next.vars.len() {
                    return Err(PtaError::UnknownVariable { variable: target.index() });
                }
                next.vars[target.index()] = value;
            }
            for clock in edge.clock_resets() {
                if clock.index() >= next.clocks.len() {
                    return Err(PtaError::UnknownClock { clock: clock.index() });
                }
                next.clocks[clock.index()] = 0;
            }
            next.locations[automaton_id.index()] = edge.target();
        }
        next.cost = next.cost.saturating_add(added_cost);
        if self.all_invariants_hold(&next)? {
            Ok(Some(next))
        } else {
            Ok(None)
        }
    }

    /// Applies a delay of one time step, or returns `None` if an invariant
    /// forbids it.
    fn apply_delay(&self, state: &State) -> Result<Option<State>, PtaError> {
        let mut next = state.clone();
        for clock in &mut next.clocks {
            *clock = (*clock + 1).min(self.clock_cap);
        }
        next.time += 1;
        // Cost rates are evaluated in the state in which the time passes.
        let mut rate_sum: u64 = 0;
        {
            let ctx = self.context(state);
            for (index, automaton) in self.network.automata().iter().enumerate() {
                let location = state.locations[index];
                let rate = automaton
                    .location(location)
                    .map(|l| l.cost_rate().eval(&ctx))
                    .transpose()?
                    .unwrap_or(0);
                if rate < 0 {
                    return Err(PtaError::NegativeCost { value: rate });
                }
                rate_sum += rate as u64;
            }
        }
        next.cost = next.cost.saturating_add(rate_sum);
        if self.all_invariants_hold(&next)? {
            Ok(Some(next))
        } else {
            Ok(None)
        }
    }
}

/// Computes the clock saturation bound for a network: one more than the
/// largest non-negative integer appearing as a literal in any expression, as
/// an entry of any constant table, or as an initial variable value.
fn clock_cap_for(network: &Network, arrays: &[Vec<i64>]) -> u64 {
    let mut max: i64 = 0;
    let mut visit_int = |expr: &crate::expr::IntExpr| {
        let mut stack = vec![expr];
        while let Some(e) = stack.pop() {
            match e {
                crate::expr::IntExpr::Const(v) => max = max.max(*v),
                crate::expr::IntExpr::Var(_) => {}
                crate::expr::IntExpr::Elem(_, index) => stack.push(index),
                crate::expr::IntExpr::Add(a, b)
                | crate::expr::IntExpr::Sub(a, b)
                | crate::expr::IntExpr::Mul(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
            }
        }
    };
    fn visit_bool(expr: &crate::expr::BoolExpr, visit_int: &mut impl FnMut(&crate::expr::IntExpr)) {
        match expr {
            crate::expr::BoolExpr::True => {}
            crate::expr::BoolExpr::Cmp(a, _, b) => {
                visit_int(a);
                visit_int(b);
            }
            crate::expr::BoolExpr::ClockCmp(_, _, b) => visit_int(b),
            crate::expr::BoolExpr::And(a, b) | crate::expr::BoolExpr::Or(a, b) => {
                visit_bool(a, visit_int);
                visit_bool(b, visit_int);
            }
            crate::expr::BoolExpr::Not(a) => visit_bool(a, visit_int),
        }
    }
    for automaton in network.automata() {
        for location in automaton.locations() {
            visit_bool(location.invariant(), &mut visit_int);
            visit_int(location.cost_rate());
        }
        for edge in automaton.edges() {
            visit_bool(edge.guard(), &mut visit_int);
            visit_int(edge.cost());
            for update in edge.updates() {
                visit_int(&update.value);
            }
        }
    }
    for table in arrays {
        for &value in table {
            max = max.max(value);
        }
    }
    for value in network.initial_vars() {
        max = max.max(value);
    }
    (max as u64).saturating_add(1)
}

/// Convenience: location identifier constructors for tests and model
/// builders that index locations positionally.
impl LocationId {
    /// Creates a location identifier from a raw index. Only meaningful for
    /// locations that exist in the automaton it is used with.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        LocationId(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Automaton, Edge, Location};
    use crate::expr::{BoolExpr, CmpOp, IntExpr};
    use crate::network::ChannelKind;

    /// A single automaton that counts to three using a clock with guard and
    /// invariant, accumulating cost at rate 2 while waiting.
    fn counting_network() -> (Network, crate::expr::VarId) {
        let mut network = Network::new();
        let x = network.add_clock("x");
        let count = network.add_var("count", 0);
        let mut automaton = Automaton::new("counter");
        let wait = automaton.add_location(
            Location::new("wait")
                .with_invariant(BoolExpr::clock_le(x, IntExpr::constant(3)))
                .with_cost_rate(IntExpr::constant(2)),
        );
        let done = automaton.add_location(Location::new("done"));
        automaton
            .add_edge(
                Edge::new(wait, done)
                    .with_guard(BoolExpr::clock_ge(x, IntExpr::constant(3)))
                    .with_update(count, IntExpr::var(count).add(IntExpr::constant(1))),
            )
            .unwrap();
        network.add_automaton(automaton).unwrap();
        (network, count)
    }

    #[test]
    fn initial_state_has_declared_values() {
        let (network, count) = counting_network();
        let semantics = Semantics::new(&network).unwrap();
        let initial = semantics.initial_state().unwrap();
        assert_eq!(initial.var(count), Some(0));
        assert_eq!(initial.cost(), 0);
        assert_eq!(initial.time(), 0);
    }

    #[test]
    fn delay_respects_invariant_and_accumulates_cost() {
        let (network, count) = counting_network();
        let semantics = Semantics::new(&network).unwrap();
        let mut state = semantics.initial_state().unwrap();
        // Three delays are possible, each costing 2; then the invariant
        // blocks further delay and only the edge remains.
        for step in 1..=3 {
            let successors = semantics.successors(&state).unwrap();
            let (_, delayed) = successors
                .iter()
                .find(|(label, _)| *label == TransitionLabel::Delay)
                .expect("delay must be possible");
            state = delayed.clone();
            assert_eq!(state.time(), step);
            assert_eq!(state.cost(), 2 * step);
        }
        let successors = semantics.successors(&state).unwrap();
        assert!(
            successors.iter().all(|(label, _)| *label != TransitionLabel::Delay),
            "invariant x <= 3 must forbid a fourth delay"
        );
        let (_, after_edge) = successors
            .iter()
            .find(|(label, _)| matches!(label, TransitionLabel::Internal { .. }))
            .expect("the guarded edge is enabled at x == 3");
        assert_eq!(after_edge.var(count), Some(1));
    }

    #[test]
    fn guard_blocks_edge_until_clock_reaches_bound() {
        let (network, _) = counting_network();
        let semantics = Semantics::new(&network).unwrap();
        let initial = semantics.initial_state().unwrap();
        let successors = semantics.successors(&initial).unwrap();
        assert!(
            successors.iter().all(|(label, _)| !matches!(label, TransitionLabel::Internal { .. })),
            "the edge guard x >= 3 must block at time 0"
        );
    }

    #[test]
    fn binary_synchronisation_moves_both_automata() {
        let mut network = Network::new();
        let go = network.add_channel("go", ChannelKind::Binary);
        let token = network.add_var("token", 0);

        let mut sender = Automaton::new("sender");
        let s0 = sender.add_location(Location::new("s0"));
        let s1 = sender.add_location(Location::new("s1"));
        sender
            .add_edge(Edge::new(s0, s1).with_send(go).with_update(token, IntExpr::constant(1)))
            .unwrap();
        let sender_id = network.add_automaton(sender).unwrap();

        let mut receiver = Automaton::new("receiver");
        let r0 = receiver.add_location(Location::new("r0"));
        let r1 = receiver.add_location(Location::new("r1"));
        receiver
            .add_edge(
                Edge::new(r0, r1)
                    .with_receive(go)
                    // The receiver sees the sender's update (sequential semantics).
                    .with_update(token, IntExpr::var(token).add(IntExpr::constant(10))),
            )
            .unwrap();
        let receiver_id = network.add_automaton(receiver).unwrap();

        let semantics = Semantics::new(&network).unwrap();
        let initial = semantics.initial_state().unwrap();
        let successors = semantics.successors(&initial).unwrap();
        let sync = successors
            .iter()
            .find(|(label, _)| matches!(label, TransitionLabel::Sync { .. }))
            .expect("the hand-shake must be enabled");
        let (_, next) = sync;
        assert_eq!(next.location(sender_id), s1);
        assert_eq!(next.location(receiver_id), r1);
        assert_eq!(next.var(token), Some(11));
    }

    #[test]
    fn broadcast_reaches_all_ready_receivers_and_fires_without_any() {
        let mut network = Network::new();
        let all = network.add_channel("all", ChannelKind::Broadcast);
        let hits = network.add_var("hits", 0);

        let mut sender = Automaton::new("sender");
        let s0 = sender.add_location(Location::new("s0"));
        let s1 = sender.add_location(Location::new("s1"));
        sender.add_edge(Edge::new(s0, s1).with_send(all)).unwrap();
        network.add_automaton(sender).unwrap();

        for name in ["r1", "r2"] {
            let mut receiver = Automaton::new(name);
            let r0 = receiver.add_location(Location::new("r0"));
            let r1 = receiver.add_location(Location::new("r1"));
            receiver
                .add_edge(
                    Edge::new(r0, r1)
                        .with_receive(all)
                        .with_update(hits, IntExpr::var(hits).add(IntExpr::constant(1))),
                )
                .unwrap();
            network.add_automaton(receiver).unwrap();
        }

        let semantics = Semantics::new(&network).unwrap();
        let initial = semantics.initial_state().unwrap();
        let successors = semantics.successors(&initial).unwrap();
        let (label, next) = successors
            .iter()
            .find(|(label, _)| matches!(label, TransitionLabel::Sync { .. }))
            .expect("broadcast is enabled");
        assert_eq!(next.var(hits), Some(2));
        if let TransitionLabel::Sync { receivers, .. } = label {
            assert_eq!(receivers.len(), 2);
        }
    }

    #[test]
    fn committed_locations_forbid_delay_and_take_priority() {
        let mut network = Network::new();
        let flag = network.add_var("flag", 0);

        // Automaton A sits in a committed location with an outgoing edge.
        let mut a = Automaton::new("a");
        let a0 = a.add_location(Location::new("a0").committed());
        let a1 = a.add_location(Location::new("a1"));
        a.add_edge(Edge::new(a0, a1).with_update(flag, IntExpr::constant(1))).unwrap();
        network.add_automaton(a).unwrap();

        // Automaton B has an unrelated edge that must be suppressed while A
        // is committed.
        let mut b = Automaton::new("b");
        let b0 = b.add_location(Location::new("b0"));
        let b1 = b.add_location(Location::new("b1"));
        b.add_edge(Edge::new(b0, b1)).unwrap();
        let b_id = network.add_automaton(b).unwrap();

        let semantics = Semantics::new(&network).unwrap();
        let initial = semantics.initial_state().unwrap();
        let successors = semantics.successors(&initial).unwrap();
        assert!(successors.iter().all(|(label, _)| *label != TransitionLabel::Delay));
        for (_, next) in &successors {
            assert_eq!(next.location(b_id), b0, "b may not move while a is committed");
        }
        assert_eq!(successors.len(), 1);
    }

    #[test]
    fn negative_edge_cost_is_rejected() {
        let mut network = Network::new();
        let mut a = Automaton::new("a");
        let l0 = a.add_location(Location::new("l0"));
        let l1 = a.add_location(Location::new("l1"));
        a.add_edge(Edge::new(l0, l1).with_cost(IntExpr::constant(-5))).unwrap();
        network.add_automaton(a).unwrap();
        let semantics = Semantics::new(&network).unwrap();
        let initial = semantics.initial_state().unwrap();
        assert!(matches!(
            semantics.successors(&initial),
            Err(PtaError::NegativeCost { value: -5 })
        ));
    }

    #[test]
    fn initial_invariant_violation_is_reported() {
        let mut network = Network::new();
        let v = network.add_var("v", 0);
        let mut a = Automaton::new("a");
        a.add_location(Location::new("impossible").with_invariant(BoolExpr::cmp(
            v,
            CmpOp::Gt,
            IntExpr::constant(0),
        )));
        network.add_automaton(a).unwrap();
        let semantics = Semantics::new(&network).unwrap();
        assert!(matches!(
            semantics.initial_state(),
            Err(PtaError::InitialInvariantViolated { .. })
        ));
    }

    #[test]
    fn variable_invariants_can_block_action_transitions() {
        let mut network = Network::new();
        let v = network.add_var("v", 0);
        let mut a = Automaton::new("a");
        let l0 = a.add_location(Location::new("l0"));
        // Target location requires v == 0, but the edge sets v to 1.
        let l1 = a.add_location(Location::new("l1").with_invariant(BoolExpr::cmp(
            v,
            CmpOp::Eq,
            IntExpr::constant(0),
        )));
        a.add_edge(Edge::new(l0, l1).with_update(v, IntExpr::constant(1))).unwrap();
        network.add_automaton(a).unwrap();
        let semantics = Semantics::new(&network).unwrap();
        let initial = semantics.initial_state().unwrap();
        let successors = semantics.successors(&initial).unwrap();
        assert!(
            successors.iter().all(|(label, _)| !matches!(label, TransitionLabel::Internal { .. })),
            "the move to l1 violates its invariant and must be pruned"
        );
    }
}
