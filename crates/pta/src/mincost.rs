//! Minimum-cost reachability — the core service Uppaal Cora provides to the
//! paper.
//!
//! Given a network whose locations carry cost rates and whose edges carry
//! cost updates, [`min_cost_reachability`] finds a goal state with the least
//! accumulated cost and returns the witness trace. For the TA-KiBaM, the
//! goal is "all batteries empty" and the cost is the charge left behind in
//! the batteries, so the cheapest path is the longest-lived schedule
//! (Section 4.3 of the paper).
//!
//! The search is a uniform-cost (Dijkstra) search over the discrete state
//! space: costs are non-negative by construction (negative costs are
//! rejected during successor computation), so the first time a goal state is
//! popped from the frontier its cost is optimal.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use crate::network::Network;
use crate::semantics::{Semantics, TransitionLabel};
use crate::state::{State, StateKey};
use crate::trace::Trace;
use crate::PtaError;

/// The outcome of a successful minimum-cost reachability query.
#[derive(Debug, Clone)]
pub struct MinCostResult {
    /// The minimal accumulated cost over all paths to a goal state.
    pub cost: u64,
    /// The goal state that realises the minimal cost.
    pub goal_state: State,
    /// The witness trace from the initial state to the goal state.
    pub trace: Trace,
    /// The number of distinct states settled during the search.
    pub states_explored: usize,
}

/// Finds a cheapest path (with respect to accumulated cost) from the initial
/// state to a state satisfying `goal`, exploring at most `state_limit`
/// distinct states.
///
/// Returns `Ok(None)` if no goal state is reachable.
///
/// # Errors
///
/// Returns [`PtaError::StateLimitExceeded`] if the limit is exceeded, and
/// propagates model validation/evaluation errors.
pub fn min_cost_reachability<G>(
    network: &Network,
    goal: G,
    state_limit: usize,
) -> Result<Option<MinCostResult>, PtaError>
where
    G: Fn(&State) -> bool,
{
    let semantics = Semantics::new(network)?;
    let initial = semantics.initial_state()?;

    // Node arena with back-pointers for trace reconstruction.
    let mut nodes: Vec<(State, Option<(usize, TransitionLabel)>)> = vec![(initial.clone(), None)];
    // Best known cost per state identity.
    let mut best: BTreeMap<StateKey, u64> = BTreeMap::new();
    best.insert(initial.key(), 0);
    // Frontier ordered by (cost, node index) — the index breaks ties
    // deterministically.
    let mut frontier: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    frontier.push(Reverse((0, 0)));
    let mut settled = 0usize;

    while let Some(Reverse((cost, node_index))) = frontier.pop() {
        let state = nodes[node_index].0.clone();
        // Skip stale frontier entries.
        if best.get(&state.key()).copied().unwrap_or(u64::MAX) < cost {
            continue;
        }
        settled += 1;
        if goal(&state) {
            let trace = crate::explore::rebuild_trace(&nodes, node_index);
            return Ok(Some(MinCostResult {
                cost,
                goal_state: state,
                trace,
                states_explored: settled,
            }));
        }
        for (label, successor) in semantics.successors(&state)? {
            let key = successor.key();
            let successor_cost = successor.cost();
            let known = best.get(&key).copied();
            if known.map(|c| successor_cost >= c).unwrap_or(false) {
                continue;
            }
            best.insert(key, successor_cost);
            if best.len() > state_limit {
                return Err(PtaError::StateLimitExceeded { limit: state_limit });
            }
            let successor_index = nodes.len();
            nodes.push((successor, Some((node_index, label))));
            frontier.push(Reverse((successor_cost, successor_index)));
        }
    }

    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{Automaton, Edge, Location};
    use crate::expr::{BoolExpr, CmpOp, IntExpr};

    /// A chooser automaton with two ways to reach `done`: an expensive
    /// immediate edge (cost 10) and a cheap one (cost 1) that only opens
    /// after waiting 3 time steps in a location with cost rate 2.
    /// Cheapest path: wait 3 (cost 6) + cheap edge (1) = 7 < 10.
    fn chooser() -> (Network, crate::network::AutomatonId, crate::automaton::LocationId) {
        let mut network = Network::new();
        let x = network.add_clock("x");
        let mut automaton = Automaton::new("chooser");
        let start =
            automaton.add_location(Location::new("start").with_cost_rate(IntExpr::constant(2)));
        let done = automaton.add_location(Location::new("done"));
        automaton.add_edge(Edge::new(start, done).with_cost(IntExpr::constant(10))).unwrap();
        automaton
            .add_edge(
                Edge::new(start, done)
                    .with_guard(BoolExpr::clock_ge(x, IntExpr::constant(3)))
                    .with_cost(IntExpr::constant(1)),
            )
            .unwrap();
        automaton.set_initial(start).unwrap();
        let id = network.add_automaton(automaton).unwrap();
        (network, id, done)
    }

    #[test]
    fn picks_the_cheaper_of_two_strategies() {
        let (network, id, done) = chooser();
        let result =
            min_cost_reachability(&network, |s| s.location(id) == done, 100_000).unwrap().unwrap();
        assert_eq!(result.cost, 7);
        // Three delays plus one action.
        assert_eq!(result.trace.delay_steps(), 3);
        assert_eq!(result.trace.action_steps(), 1);
        assert_eq!(result.goal_state.time(), 3);
    }

    #[test]
    fn expensive_edge_wins_when_waiting_is_pricier() {
        // Same model but with a much higher cost rate: waiting 3 steps would
        // cost 30, so the immediate edge (10) is optimal.
        let mut network = Network::new();
        let x = network.add_clock("x");
        let mut automaton = Automaton::new("chooser");
        let start =
            automaton.add_location(Location::new("start").with_cost_rate(IntExpr::constant(10)));
        let done = automaton.add_location(Location::new("done"));
        automaton.add_edge(Edge::new(start, done).with_cost(IntExpr::constant(10))).unwrap();
        automaton
            .add_edge(
                Edge::new(start, done)
                    .with_guard(BoolExpr::clock_ge(x, IntExpr::constant(3)))
                    .with_cost(IntExpr::constant(1)),
            )
            .unwrap();
        let id = network.add_automaton(automaton).unwrap();
        let result =
            min_cost_reachability(&network, |s| s.location(id) == done, 100_000).unwrap().unwrap();
        assert_eq!(result.cost, 10);
        assert_eq!(result.trace.delay_steps(), 0);
    }

    #[test]
    fn unreachable_goal_returns_none() {
        // A clock-free automaton whose second location has no incoming edge:
        // the state space is finite and the goal is unreachable.
        let mut network = Network::new();
        let mut automaton = Automaton::new("stuck");
        let start = automaton.add_location(Location::new("start"));
        let unreachable = automaton.add_location(Location::new("unreachable"));
        automaton.add_edge(Edge::new(start, start)).unwrap();
        let id = network.add_automaton(automaton).unwrap();
        let result =
            min_cost_reachability(&network, |s| s.location(id) == unreachable, 10_000).unwrap();
        assert!(result.is_none());
    }

    #[test]
    fn state_limit_is_enforced() {
        let (network, id, done) = chooser();
        let result = min_cost_reachability(&network, |s| s.location(id) == done, 1);
        assert!(matches!(result, Err(PtaError::StateLimitExceeded { limit: 1 })));
    }

    #[test]
    fn goal_in_initial_state_costs_nothing() {
        let (network, id, _) = chooser();
        let start = crate::automaton::LocationId::from_index(0);
        let result =
            min_cost_reachability(&network, |s| s.location(id) == start, 10).unwrap().unwrap();
        assert_eq!(result.cost, 0);
        assert!(result.trace.is_empty());
    }

    #[test]
    fn cost_rate_depends_on_variables() {
        // The cost rate references a variable that an edge can lower before
        // waiting; the optimal strategy lowers it first.
        let mut network = Network::new();
        let x = network.add_clock("x");
        let rate = network.add_var("rate", 5);
        let mut automaton = Automaton::new("saver");
        let start = automaton.add_location(
            Location::new("start")
                .with_cost_rate(IntExpr::var(rate))
                .with_invariant(BoolExpr::clock_le(x, IntExpr::constant(4))),
        );
        let done = automaton.add_location(Location::new("done"));
        // Lower the rate (can be taken immediately, costs nothing).
        automaton
            .add_edge(
                Edge::new(start, start)
                    .with_guard(BoolExpr::cmp(rate, CmpOp::Eq, 5))
                    .with_update(rate, IntExpr::constant(1)),
            )
            .unwrap();
        // Leave after 4 time steps.
        automaton
            .add_edge(
                Edge::new(start, done).with_guard(BoolExpr::clock_ge(x, IntExpr::constant(4))),
            )
            .unwrap();
        let id = network.add_automaton(automaton).unwrap();
        let result =
            min_cost_reachability(&network, |s| s.location(id) == done, 100_000).unwrap().unwrap();
        // Optimal: drop the rate to 1 immediately, then wait 4 steps -> 4.
        assert_eq!(result.cost, 4);
    }
}
