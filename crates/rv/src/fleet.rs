//! Static per-fleet data of the discretized RV model.
//!
//! Exactly like `dkibam::DiscreteFleet`, the discretized RV model separates
//! dynamic state (the [`RvCell`]s, snapshotted and restored by search
//! schedulers at every node) from static data: the [`FleetSpec`], the
//! [`Discretization`], and one precomputed [`RvStepTable`] per battery
//! *type group* (identical batteries share a table). The RV parameters of
//! each type are derived from its KiBaM parameters through the cross-model
//! fit ([`RvParams::from_kibam`]), so the same `FleetSpec` drives every
//! backend of the comparison.

use crate::{RvParams, RvStepTable};
use dkibam::Discretization;
use kibam::{BatteryParams, FleetSpec};

/// The static side of a discretized RV multi-battery system: fleet
/// parameters, discretization and per-type correction tables.
#[derive(Debug, Clone)]
pub struct RvFleet {
    spec: FleetSpec,
    disc: Discretization,
    tables: Vec<RvStepTable>,
}

impl RvFleet {
    /// Builds the static data for a fleet: one correction table per
    /// distinct battery type, with RV parameters fitted from the type's
    /// KiBaM parameters.
    #[must_use]
    pub fn new(spec: FleetSpec, disc: Discretization) -> Self {
        let tables = (0..spec.type_count())
            .map(|t| {
                RvStepTable::new(&RvParams::from_kibam(spec.type_params(t)), &disc)
                    // xlint: allow(panic) -- fitted_terms is clamped to MAX_STEP_TERMS
                    .expect("fitted truncation orders stay within the stepping form's cap")
            })
            .collect();
        Self { spec, disc, tables }
    }

    /// The static data for `count` identical batteries.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero; use [`FleetSpec::uniform`] and
    /// [`RvFleet::new`] to handle the error explicitly.
    #[must_use]
    pub fn uniform(params: &BatteryParams, disc: &Discretization, count: usize) -> Self {
        // xlint: allow(panic) -- documented `# Panics` convenience constructor
        let spec = FleetSpec::uniform(*params, count).expect("battery count must be positive");
        Self::new(spec, *disc)
    }

    /// The fleet description.
    #[must_use]
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// The discretization shared by all batteries.
    #[must_use]
    pub fn disc(&self) -> &Discretization {
        &self.disc
    }

    /// The number of batteries in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spec.len()
    }

    /// Whether the fleet holds no batteries (never true for a constructed
    /// fleet).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spec.is_empty()
    }

    /// The KiBaM parameters of battery `index` (the fit's input).
    #[must_use]
    pub fn params_of(&self, index: usize) -> &BatteryParams {
        self.spec.battery(index)
    }

    /// The fitted RV parameters of battery `index` (shared within its type
    /// group).
    #[must_use]
    pub fn rv_params_of(&self, index: usize) -> &RvParams {
        self.table_of(index).params()
    }

    /// The correction table of battery `index` (shared within its type
    /// group).
    #[must_use]
    pub fn table_of(&self, index: usize) -> &RvStepTable {
        &self.tables[self.spec.type_of(index)]
    }

    /// The type-group id of battery `index`.
    #[must_use]
    pub fn type_of(&self, index: usize) -> usize {
        self.spec.type_of(index)
    }

    /// The per-type correction tables, indexed by type-group id (the layout
    /// the struct-of-arrays [`batch`](crate::batch) kernels consume).
    #[must_use]
    pub fn type_tables(&self) -> &[RvStepTable] {
        &self.tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_shared_within_type_groups() {
        let b1 = BatteryParams::itsy_b1();
        let b2 = BatteryParams::itsy_b2();
        let disc = Discretization::paper_default();
        let fleet = RvFleet::new(FleetSpec::new(vec![b1, b2, b1]).unwrap(), disc);
        assert_eq!(fleet.len(), 3);
        assert!(!fleet.is_empty());
        assert_eq!(fleet.tables.len(), 2, "one table per type, not per battery");
        assert!(std::ptr::eq(fleet.table_of(0), fleet.table_of(2)));
        assert!(!std::ptr::eq(fleet.table_of(0), fleet.table_of(1)));
        assert_eq!(fleet.type_of(0), fleet.type_of(2));
        assert_eq!(fleet.params_of(1), &b2);
        assert_eq!(fleet.rv_params_of(1).alpha(), 11.0);
        // Both types share the fitted diffusion rate (same c and k').
        assert_eq!(fleet.rv_params_of(0).beta_squared(), fleet.rv_params_of(1).beta_squared());
    }

    #[test]
    fn uniform_matches_the_explicit_construction() {
        let b1 = BatteryParams::itsy_b1();
        let disc = Discretization::paper_default();
        let uniform = RvFleet::uniform(&b1, &disc, 2);
        let explicit = RvFleet::new(FleetSpec::uniform(b1, 2).unwrap(), disc);
        assert_eq!(uniform.spec(), explicit.spec());
        assert_eq!(uniform.table_of(0), explicit.table_of(0));
        assert_eq!(uniform.disc().time_step(), disc.time_step());
    }

    #[test]
    #[should_panic(expected = "battery count must be positive")]
    fn uniform_rejects_zero_batteries() {
        let _ = RvFleet::uniform(&BatteryParams::itsy_b1(), &Discretization::paper_default(), 0);
    }
}
