use crate::RvError;
use kibam::BatteryParams;

/// The truncation order the cross-model fit picks for a KiBaM battery:
/// `M = round((1-c)/(2c))`, clamped to `1..=`[`crate::MAX_STEP_TERMS`].
///
/// At `t → 0` every RV correction term responds identically, so the
/// truncated deficit grows as `2M·I·t`, while the KiBaM's unavailable
/// charge grows as `((1-c)/c)·I·t` — equating the two slopes fixes `M`
/// from the well fraction alone. For the paper's Itsy cell (`c = 0.166`,
/// slope 5.02) this lands on `M = 3`; together with the `β²` gain match of
/// [`RvParams::from_kibam`] the fit pins *both* ends of the response curve,
/// leaving only the genuinely diffusion-shaped transients in between to
/// differ. (Rakhmatov and Vrudhula used ten terms for voltage-accurate
/// traces; for lifetime prediction the sum converges much faster, and the
/// fit re-solves `β²` per order, so the model is self-consistent at any
/// `M`.)
#[must_use]
pub fn fitted_terms(params: &BatteryParams) -> usize {
    let slope = (1.0 - params.c()) / (2.0 * params.c());
    let terms = dkibam::checked::f64_to_usize(slope.round().max(1.0));
    terms.clamp(1, crate::MAX_STEP_TERMS)
}

/// Parameters of a Rakhmatov–Vrudhula (RV) diffusion battery.
///
/// The RV model describes the battery as one-dimensional diffusion of the
/// electroactive species towards the electrode. For a load `i(τ)` the
/// *apparent charge lost* by time `t` is
///
/// ```text
/// σ(t) = ∫₀ᵗ i(τ) dτ  +  2 Σ_{m=1}^{M} ∫₀ᵗ i(τ) e^{-β²m²(t-τ)} dτ
/// ```
///
/// — the charge actually consumed plus a diffusion deficit that *recovers*
/// (decays) during idle periods — and the battery is empty when `σ(t) = α`.
/// The infinite exponential sum is truncated at `M = terms`.
///
/// Two parameters describe a battery:
///
/// * `alpha` — the apparent-charge capacity `α` in A·min (the battery dies
///   when the apparent charge lost reaches it);
/// * `beta_squared` — the diffusion rate `β²` in 1/min, governing how fast
///   the deficit dissipates (larger `β²` ⇒ weaker rate-capacity and
///   recovery effects).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RvParams {
    alpha: f64,
    beta_squared: f64,
    terms: usize,
}

impl RvParams {
    /// Creates RV parameters after validating them.
    ///
    /// # Errors
    ///
    /// Returns [`RvError::InvalidAlpha`] if `alpha` is not positive and
    /// finite, [`RvError::InvalidDiffusionRate`] if `beta_squared` is not
    /// positive and finite, and [`RvError::InvalidTerms`] if `terms` is zero
    /// or above [`crate::MAX_TERMS`].
    pub fn new(alpha: f64, beta_squared: f64, terms: usize) -> Result<Self, RvError> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(RvError::InvalidAlpha { value: alpha });
        }
        if !(beta_squared.is_finite() && beta_squared > 0.0) {
            return Err(RvError::InvalidDiffusionRate { value: beta_squared });
        }
        if terms == 0 || terms > crate::MAX_TERMS {
            return Err(RvError::InvalidTerms { value: terms });
        }
        Ok(Self { alpha, beta_squared, terms })
    }

    /// Fits RV parameters to a KiBaM battery: shared capacity, matched
    /// response slopes at both ends.
    ///
    /// The fit shares the battery's **capacity** (`α = C`, so both models
    /// store the same total charge), picks the truncation order from the
    /// well fraction ([`fitted_terms`]: `M = round((1-c)/(2c))`, matching
    /// the *instantaneous* deficit response `2M·I ≈ ((1-c)/c)·I`), and
    /// matches the **steady-state recovery gain**: under a sustained
    /// current `I`, the KiBaM's unavailable charge settles at
    /// `I·(1-c)/(c·k')` ([`BatteryParams::recovery_gain`]) while the
    /// truncated RV deficit settles at `2I·Σ_{m=1}^{M} 1/(β²m²)`.
    /// Equating the two gives the closed form
    ///
    /// ```text
    /// β² = 2·H₂(M) / recovery_gain,    H₂(M) = Σ_{m=1}^{M} 1/m²
    /// ```
    ///
    /// With both the short-time slope and the long-run gain pinned, the two
    /// models agree at the extremes of the response curve and differ only
    /// in the genuinely diffusion-shaped transients between them — which is
    /// exactly the cross-model difference the scheduling comparison is
    /// after.
    #[must_use]
    pub fn from_kibam(params: &BatteryParams) -> Self {
        Self::from_kibam_with_terms(params, fitted_terms(params))
            // xlint: allow(panic) -- fitted_terms is clamped to the valid range above
            .expect("fitted_terms stays within the valid range")
    }

    /// [`RvParams::from_kibam`] at an explicit truncation order.
    ///
    /// # Errors
    ///
    /// Returns [`RvError::InvalidTerms`] if `terms` is zero or above
    /// [`crate::MAX_TERMS`].
    pub fn from_kibam_with_terms(params: &BatteryParams, terms: usize) -> Result<Self, RvError> {
        if terms == 0 || terms > crate::MAX_TERMS {
            return Err(RvError::InvalidTerms { value: terms });
        }
        #[allow(clippy::cast_precision_loss)]
        let h2: f64 = (1..=terms).map(|m| 1.0 / (m * m) as f64).sum();
        let beta_squared = 2.0 * h2 / params.recovery_gain();
        Self::new(params.capacity(), beta_squared, terms)
    }

    /// The RV fit of the paper's battery **B1** (5.5 A·min Itsy cell).
    #[must_use]
    pub fn itsy_b1() -> Self {
        Self::from_kibam(&BatteryParams::itsy_b1())
    }

    /// The RV fit of the paper's battery **B2** (11 A·min Itsy cell).
    #[must_use]
    pub fn itsy_b2() -> Self {
        Self::from_kibam(&BatteryParams::itsy_b2())
    }

    /// The apparent-charge capacity `α` in A·min.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The diffusion rate `β²` in 1/min.
    #[must_use]
    pub fn beta_squared(&self) -> f64 {
        self.beta_squared
    }

    /// The truncation order `M` of the exponential-sum correction term.
    #[must_use]
    pub fn terms(&self) -> usize {
        self.terms
    }

    /// The decay rate `β²·m²` of correction term `m` (1-based), in 1/min.
    #[must_use]
    pub fn rate(&self, m: usize) -> f64 {
        debug_assert!(m >= 1 && m <= self.terms);
        #[allow(clippy::cast_precision_loss)]
        let m2 = (m * m) as f64;
        self.beta_squared * m2
    }

    /// The steady-state deficit per ampere of sustained load,
    /// `2·Σ_{m=1}^{M} 1/(β²m²)` in minutes — the RV analogue of
    /// [`BatteryParams::recovery_gain`], which [`RvParams::from_kibam`]
    /// matches exactly.
    #[must_use]
    pub fn recovery_gain(&self) -> f64 {
        (1..=self.terms).map(|m| 2.0 / self.rate(m)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(matches!(RvParams::new(0.0, 0.1, 4), Err(RvError::InvalidAlpha { .. })));
        assert!(matches!(
            RvParams::new(5.5, f64::NAN, 4),
            Err(RvError::InvalidDiffusionRate { .. })
        ));
        assert!(matches!(RvParams::new(5.5, 0.1, 0), Err(RvError::InvalidTerms { value: 0 })));
        assert!(matches!(
            RvParams::new(5.5, 0.1, crate::MAX_TERMS + 1),
            Err(RvError::InvalidTerms { .. })
        ));
        assert!(RvParams::new(5.5, 0.1, 4).is_ok());
    }

    #[test]
    fn fit_preserves_capacity_and_recovery_gain() {
        let b1 = BatteryParams::itsy_b1();
        let rv = RvParams::from_kibam(&b1);
        assert_eq!(rv.alpha(), b1.capacity());
        // The defining properties of the fit: equal steady-state gains and
        // the slope-matched truncation order.
        assert_eq!(rv.terms(), fitted_terms(&b1));
        assert!((rv.recovery_gain() - b1.recovery_gain()).abs() < 1e-9);
    }

    #[test]
    fn fitted_terms_match_the_short_time_slope() {
        // Itsy cell: (1 - c) / (2c) = 0.834 / 0.332 = 2.51 -> M = 3.
        assert_eq!(fitted_terms(&BatteryParams::itsy_b1()), 3);
        // A balanced-well battery responds like a single mode.
        assert_eq!(fitted_terms(&BatteryParams::new(1.0, 0.4, 0.1).unwrap()), 1);
        // Tiny well fractions clamp at the stepping form's term cap.
        assert_eq!(
            fitted_terms(&BatteryParams::new(1.0, 0.05, 0.1).unwrap()),
            crate::MAX_STEP_TERMS
        );
    }

    #[test]
    fn fit_matches_the_closed_form() {
        // beta^2 = 2 * H2(3) / gain with H2(3) = 1 + 1/4 + 1/9 and
        // gain = (1 - c) / (c k') = 0.834 / (0.166 * 0.122).
        let rv = RvParams::itsy_b1();
        assert_eq!(rv.terms(), 3);
        let h2 = 1.0 + 0.25 + 1.0 / 9.0;
        let gain = 0.834 / (0.166 * 0.122);
        assert!((rv.beta_squared() - 2.0 * h2 / gain).abs() < 1e-12);
    }

    #[test]
    fn b2_differs_from_b1_only_in_capacity() {
        let b1 = RvParams::itsy_b1();
        let b2 = RvParams::itsy_b2();
        assert_eq!(b2.alpha(), 11.0);
        assert_eq!(b1.beta_squared(), b2.beta_squared());
        assert_eq!(b1.terms(), b2.terms());
    }

    #[test]
    fn rates_grow_quadratically() {
        let rv = RvParams::itsy_b1();
        assert!((rv.rate(2) - 4.0 * rv.rate(1)).abs() < 1e-12);
        assert!((rv.rate(3) - 9.0 * rv.rate(1)).abs() < 1e-12);
    }

    #[test]
    fn higher_truncation_orders_refit_beta() {
        let b1 = BatteryParams::itsy_b1();
        let four = RvParams::from_kibam_with_terms(&b1, 4).unwrap();
        let ten = RvParams::from_kibam_with_terms(&b1, 10).unwrap();
        assert!(ten.beta_squared() > four.beta_squared(), "more terms need a faster base rate");
        // Both orders still reproduce the KiBaM gain.
        assert!((ten.recovery_gain() - b1.recovery_gain()).abs() < 1e-9);
        assert!(RvParams::from_kibam_with_terms(&b1, 0).is_err());
    }
}
