//! Closed-form solution of the RV diffusion model under constant current.
//!
//! The truncated σ(t) of [`crate::RvParams`] admits an exact state-space
//! form: with the *diffusion moments*
//!
//! ```text
//! u_m(t) = ∫₀ᵗ i(τ) e^{-β²m²(t-τ)} dτ,        m = 1..M,
//! ```
//!
//! the apparent charge lost is `σ(t) = consumed(t) + 2·Σ_m u_m(t)`, and for
//! a constant current `I` over an interval of length `d` each moment evolves
//! linearly:
//!
//! ```text
//! u_m(t+d) = u_m(t)·e^{-β²m²d} + I·(1 - e^{-β²m²d}) / (β²m²)
//! consumed(t+d) = consumed(t) + I·d
//! ```
//!
//! This module provides that evolution, the closed-form σ(t) for a constant
//! current from a fresh battery (the textbook RV discharge curve, used as
//! the golden reference by the tests), and a robust first-crossing solver
//! for the time to empty — the exact analogue of [`kibam::analytic`] for
//! the diffusion model.

use crate::{RvError, RvParams};

/// Charge quantities below this value (A·min) are treated as zero.
pub const CHARGE_EPSILON: f64 = 1e-9;

/// Number of scan intervals used to bracket the first empty-crossing before
/// bisection refines it.
const SCAN_STEPS: usize = 4096;
/// Number of bisection iterations; 80 halvings reduce any bracket far below
/// f64 resolution.
const BISECTION_ITERS: usize = 80;

/// The continuous state of one RV battery: consumed charge plus the
/// diffusion moments of the truncated correction term.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffusionState {
    /// Charge actually consumed so far, in A·min.
    pub consumed: f64,
    /// The diffusion moments `u_1..u_M`, in A·min.
    pub moments: Vec<f64>,
}

impl DiffusionState {
    /// The state of a freshly charged battery: nothing consumed, no
    /// diffusion deficit.
    #[must_use]
    pub fn full(params: &RvParams) -> Self {
        Self { consumed: 0.0, moments: vec![0.0; params.terms()] }
    }

    /// The apparent charge lost, `σ = consumed + 2·Σ_m u_m`, in A·min.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.consumed + 2.0 * self.moments.iter().sum::<f64>()
    }

    /// The margin to emptiness, `α - σ`, in A·min (negative once the
    /// battery has over-consumed past the criterion).
    #[must_use]
    pub fn margin(&self, params: &RvParams) -> f64 {
        params.alpha() - self.sigma()
    }

    /// The apparent remaining charge `max(α - σ, 0)` in A·min — what a
    /// scheduling policy sees as "available".
    #[must_use]
    pub fn apparent_charge(&self, params: &RvParams) -> f64 {
        self.margin(params).max(0.0)
    }

    /// The emptiness criterion `σ(t) ≥ α` (with [`CHARGE_EPSILON`] slack).
    #[must_use]
    pub fn is_empty(&self, params: &RvParams) -> bool {
        self.margin(params) <= CHARGE_EPSILON
    }
}

/// Evolves an RV state under a constant current `current` for `duration`
/// minutes, using the exact solution of the moment recurrences.
///
/// A zero current models an idle (recovery) period: the consumed charge
/// stays constant while the diffusion moments — and with them the apparent
/// charge lost — relax towards zero.
///
/// # Errors
///
/// Returns [`RvError::InvalidCurrent`] for negative or non-finite currents
/// and [`RvError::InvalidDuration`] for negative or non-finite durations.
///
/// # Example
///
/// ```
/// use rv::analytic::{evolve, DiffusionState};
/// use rv::RvParams;
///
/// # fn main() -> Result<(), rv::RvError> {
/// let b1 = RvParams::itsy_b1();
/// let full = DiffusionState::full(&b1);
/// // One minute at 500 mA: half an A·min consumed, a positive deficit.
/// let after = evolve(&b1, &full, 0.5, 1.0)?;
/// assert!((after.consumed - 0.5).abs() < 1e-12);
/// assert!(after.sigma() > after.consumed);
/// # Ok(())
/// # }
/// ```
pub fn evolve(
    params: &RvParams,
    state: &DiffusionState,
    current: f64,
    duration: f64,
) -> Result<DiffusionState, RvError> {
    validate_current(current)?;
    validate_duration(duration)?;
    Ok(evolve_unchecked(params, state, current, duration))
}

/// Evolution without argument validation; shared by the scanning routines.
pub(crate) fn evolve_unchecked(
    params: &RvParams,
    state: &DiffusionState,
    current: f64,
    duration: f64,
) -> DiffusionState {
    // xlint: allow(float-eq) -- exact-zero duration is the no-op sentinel
    if duration == 0.0 {
        return state.clone();
    }
    let moments = state
        .moments
        .iter()
        .enumerate()
        .map(|(index, &u)| {
            let rate = params.rate(index + 1);
            let decay = (-rate * duration).exp();
            u * decay + current * (1.0 - decay) / rate
        })
        .collect();
    DiffusionState { consumed: state.consumed + current * duration, moments }
}

/// The closed-form apparent charge lost `σ(t)` of a **fresh** battery under
/// a constant current — the textbook RV discharge expression
///
/// ```text
/// σ(t) = I·t + 2I·Σ_{m=1}^{M} (1 - e^{-β²m²t}) / (β²m²)
/// ```
///
/// The state-space evolution must reproduce this exactly; the tests pin the
/// agreement, which makes this the independent golden reference for the
/// stepping implementations.
#[must_use]
pub fn sigma_constant(params: &RvParams, current: f64, t: f64) -> f64 {
    let correction: f64 = (1..=params.terms())
        .map(|m| {
            let rate = params.rate(m);
            (1.0 - (-rate * t).exp()) / rate
        })
        .sum();
    current * t + 2.0 * current * correction
}

/// Computes the time until the battery first satisfies the emptiness
/// criterion `σ(t) = α` when a constant current is drawn from the given
/// state.
///
/// Returns `Ok(None)` if the battery never empties under this current — in
/// particular for `current == 0` (idle periods only dissipate the deficit).
/// Returns `Ok(Some(0.0))` if the state is already empty.
///
/// # Errors
///
/// Returns [`RvError::InvalidCurrent`] for negative or non-finite currents.
pub fn time_to_empty(
    params: &RvParams,
    state: &DiffusionState,
    current: f64,
) -> Result<Option<f64>, RvError> {
    validate_current(current)?;
    if state.is_empty(params) {
        return Ok(Some(0.0));
    }
    if current <= CHARGE_EPSILON {
        // Idle: consumed constant, moments decay, the margin only grows.
        return Ok(None);
    }
    // Upper bound: σ(t) ≥ consumed + I·t, so the crossing lies at or before
    // the point where the *true* remaining charge runs out.
    let t_max = ((params.alpha() - state.consumed) / current).max(0.0);
    // xlint: allow(float-eq) -- max(0.0) pins the exact-zero boundary case
    if t_max == 0.0 {
        return Ok(Some(0.0));
    }
    let margin_at =
        |t: f64| evolve_unchecked(params, state, current, t).margin(params) - CHARGE_EPSILON;

    // The margin is positive at t = 0 and non-positive at t_max. σ is not
    // monotone from arbitrary states (a stressed battery recovers under a
    // light load), so scan for the *first* sign change, then bisect.
    #[allow(clippy::cast_precision_loss)]
    let step = t_max / SCAN_STEPS as f64;
    let mut lo = 0.0_f64;
    let mut hi = t_max;
    let mut found = false;
    for i in 1..=SCAN_STEPS {
        #[allow(clippy::cast_precision_loss)]
        let t = step * i as f64;
        if margin_at(t) <= 0.0 {
            #[allow(clippy::cast_precision_loss)]
            let previous = step * (i - 1) as f64;
            lo = previous;
            hi = t;
            found = true;
            break;
        }
    }
    if !found {
        // Numerical corner case: treat the upper bound as the crossing.
        return Ok(Some(t_max));
    }
    for _ in 0..BISECTION_ITERS {
        let mid = 0.5 * (lo + hi);
        if margin_at(mid) <= 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(0.5 * (lo + hi)))
}

/// Lifetime of a full battery under a constant discharge current — the
/// single-battery `CL` case. Returns `Ok(None)` for a zero current.
///
/// # Errors
///
/// Returns [`RvError::InvalidCurrent`] for negative or non-finite currents.
pub fn lifetime_constant_current(params: &RvParams, current: f64) -> Result<Option<f64>, RvError> {
    time_to_empty(params, &DiffusionState::full(params), current)
}

fn validate_current(current: f64) -> Result<(), RvError> {
    if !(current.is_finite() && current >= 0.0) {
        return Err(RvError::InvalidCurrent { value: current });
    }
    Ok(())
}

fn validate_duration(duration: f64) -> Result<(), RvError> {
    if !(duration.is_finite() && duration >= 0.0) {
        return Err(RvError::InvalidDuration { value: duration });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b1() -> RvParams {
        RvParams::itsy_b1()
    }

    #[test]
    fn evolve_validates_arguments() {
        let params = b1();
        let full = DiffusionState::full(&params);
        assert!(matches!(evolve(&params, &full, -0.1, 1.0), Err(RvError::InvalidCurrent { .. })));
        assert!(matches!(evolve(&params, &full, 0.1, -1.0), Err(RvError::InvalidDuration { .. })));
        assert!(matches!(
            evolve(&params, &full, f64::NAN, 1.0),
            Err(RvError::InvalidCurrent { .. })
        ));
    }

    #[test]
    fn zero_duration_is_identity() {
        let params = b1();
        let state = DiffusionState { consumed: 1.2, moments: vec![0.3; params.terms()] };
        assert_eq!(evolve(&params, &state, 0.5, 0.0).unwrap(), state);
    }

    #[test]
    fn evolution_from_fresh_matches_the_closed_form_sigma() {
        // The state-space recurrences and the textbook σ(t) expression are
        // two forms of the same solution; they must agree to float
        // precision at every probed time and current.
        let params = b1();
        let full = DiffusionState::full(&params);
        for &current in &[0.1, 0.25, 0.5] {
            for &t in &[0.1, 0.5, 1.0, 2.0, 5.0] {
                let stepped = evolve(&params, &full, current, t).unwrap().sigma();
                let closed = sigma_constant(&params, current, t);
                assert!(
                    (stepped - closed).abs() < 1e-12,
                    "I={current} t={t}: {stepped} vs {closed}"
                );
            }
        }
    }

    #[test]
    fn piecewise_evolution_composes() {
        // Evolving 2 minutes in one go equals evolving twice 1 minute.
        let params = b1();
        let full = DiffusionState::full(&params);
        let once = evolve(&params, &full, 0.5, 2.0).unwrap();
        let half = evolve(&params, &full, 0.5, 1.0).unwrap();
        let twice = evolve(&params, &half, 0.5, 1.0).unwrap();
        assert!((once.sigma() - twice.sigma()).abs() < 1e-12);
        assert!((once.consumed - twice.consumed).abs() < 1e-12);
    }

    #[test]
    fn idle_periods_dissipate_the_deficit() {
        let params = b1();
        let full = DiffusionState::full(&params);
        let stressed = evolve(&params, &full, 0.5, 1.0).unwrap();
        let rested = evolve(&params, &stressed, 0.0, 5.0).unwrap();
        assert_eq!(rested.consumed, stressed.consumed, "idle consumes nothing");
        assert!(rested.sigma() < stressed.sigma(), "the deficit decays");
        assert!(rested.apparent_charge(&params) > stressed.apparent_charge(&params));
        // Each moment decays exponentially at its own rate.
        for (index, (&before, &after)) in stressed.moments.iter().zip(&rested.moments).enumerate() {
            let expected = before * (-params.rate(index + 1) * 5.0).exp();
            assert!((after - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn deficit_approaches_the_steady_state_gain() {
        // Under a sustained light current the deficit settles at
        // recovery_gain * I — the quantity the KiBaM fit matches.
        let params = b1();
        let long = evolve(&params, &DiffusionState::full(&params), 0.01, 2000.0).unwrap();
        let deficit = long.sigma() - long.consumed;
        assert!((deficit - params.recovery_gain() * 0.01).abs() < 1e-9);
    }

    #[test]
    fn lifetime_golden_values_for_the_b1_fit() {
        // Golden discharge times of the fitted B1 under the paper's two
        // current levels, pinned against the closed-form σ(t) solution
        // (σ(t*) = α). The fit matches the deficit response at t → 0 and
        // t → ∞; over a full constant-rate discharge the diffusion
        // transients integrate into somewhat longer lives than the KiBaM's
        // Table 3 values (4.53 / 2.02 min) — the documented cross-model
        // difference, which shrinks to a few percent on the intermittent
        // scheduling loads (see the BENCH_crossmodel table).
        let params = b1();
        let cl250 = lifetime_constant_current(&params, 0.25).unwrap().unwrap();
        let cl500 = lifetime_constant_current(&params, 0.5).unwrap().unwrap();
        assert!((sigma_constant(&params, 0.25, cl250) - params.alpha()).abs() < 1e-6);
        assert!((sigma_constant(&params, 0.5, cl500) - params.alpha()).abs() < 1e-6);
        assert!((cl250 - 4.918).abs() < 0.01, "CL 250 lifetime {cl250}");
        assert!((cl500 - 1.958).abs() < 0.01, "CL 500 lifetime {cl500}");
        assert!((cl250 / 4.53 - 1.0).abs() < 0.12, "CL 250 stays in the KiBaM's range");
        assert!((cl500 / 2.02 - 1.0).abs() < 0.12, "CL 500 stays in the KiBaM's range");
    }

    #[test]
    fn b2_at_double_current_matches_b1_scaled() {
        // α scales linearly and β² is shared, so B2 at 2I lives exactly as
        // long as B1 at I (the same scale invariance as Tables 3/4).
        let l1 = lifetime_constant_current(&RvParams::itsy_b1(), 0.25).unwrap().unwrap();
        let l2 = lifetime_constant_current(&RvParams::itsy_b2(), 0.5).unwrap().unwrap();
        assert!((l1 - l2).abs() < 1e-6);
    }

    #[test]
    fn zero_current_never_empties() {
        assert_eq!(lifetime_constant_current(&b1(), 0.0).unwrap(), None);
    }

    #[test]
    fn already_empty_state_has_zero_time_to_empty() {
        let params = b1();
        let mut state = DiffusionState::full(&params);
        state.consumed = params.alpha();
        assert!(state.is_empty(&params));
        assert_eq!(time_to_empty(&params, &state, 0.5).unwrap(), Some(0.0));
    }

    #[test]
    fn higher_current_delivers_less_charge_rate_capacity_effect() {
        let params = b1();
        let low = lifetime_constant_current(&params, 0.25).unwrap().unwrap();
        let high = lifetime_constant_current(&params, 0.5).unwrap().unwrap();
        assert!(0.25 * low > 0.5 * high);
    }

    #[test]
    fn time_to_empty_is_monotone_in_current() {
        let params = b1();
        let full = DiffusionState::full(&params);
        let mut previous = f64::INFINITY;
        for current in [0.1, 0.2, 0.3, 0.5, 0.7, 1.0] {
            let t = time_to_empty(&params, &full, current).unwrap().unwrap();
            assert!(t < previous, "lifetime must shrink as current grows");
            previous = t;
        }
    }

    #[test]
    fn recovery_extends_the_remaining_lifetime() {
        // Serve hard, then compare continuing immediately vs after a rest:
        // the rested battery must last longer — the recovery effect the
        // scheduling policies exploit.
        let params = b1();
        let stressed = evolve(&params, &DiffusionState::full(&params), 0.5, 1.0).unwrap();
        let immediately = time_to_empty(&params, &stressed, 0.5).unwrap().unwrap();
        let rested = evolve(&params, &stressed, 0.0, 2.0).unwrap();
        let after_rest = time_to_empty(&params, &rested, 0.5).unwrap().unwrap();
        assert!(after_rest > immediately);
    }
}
