//! Rakhmatov–Vrudhula (RV) diffusion battery model.
//!
//! The battery-scheduling paper's lifetime results rest on the KiBaM's
//! recovery and rate-capacity effects. This crate implements the standard
//! *analytical diffusion* battery model of Rakhmatov and Vrudhula — the
//! reference chemistry of battery-aware task-scheduling work (Khan &
//! Vemuri; Shi et al.) — as an independent cross-model check: if the
//! scheduling conclusions (policy rankings, the value of recovery-aware
//! schedules) reproduce under a structurally different battery model, they
//! are properties of battery-powered systems, not artifacts of one model.
//!
//! The model tracks the *apparent charge lost* by time `t`,
//!
//! ```text
//! σ(t) = ∫₀ᵗ i(τ) dτ + 2 Σ_{m=1}^{M} ∫₀ᵗ i(τ) e^{-β²m²(t-τ)} dτ,
//! ```
//!
//! with emptiness at `σ(t) = α`: the first integral is the charge actually
//! consumed, the truncated exponential sum a diffusion deficit that builds
//! under load (rate-capacity effect) and dissipates when idle (recovery
//! effect). The KiBaM is exactly the one-term (`M = 1`) shape of this law,
//! which is what makes the comparison sharp: same two effects, different
//! spectrum.
//!
//! The crate provides:
//!
//! * [`RvParams`] — capacity `α`, diffusion rate `β²`, truncation order
//!   `M`, with the cross-model **fit** from KiBaM parameters
//!   ([`RvParams::from_kibam`]: shared capacity, matched steady-state
//!   recovery gain) and presets for the paper's B1/B2 cells;
//! * [`analytic`] — the exact moment-space evolution under constant
//!   current, the closed-form σ(t) golden reference, and a robust
//!   time-to-empty solver (the diffusion analogue of `kibam::analytic`);
//! * [`RvStepTable`] / [`RvCell`] — the **discretized stepping form** on
//!   the scheduling grid (integer charge units, fixed-point diffusion
//!   moments, emptiness observed at draw instants), with the per-type
//!   correction table cached like `dkibam`'s recovery table;
//! * [`RvFleet`] — the static side of a (possibly heterogeneous)
//!   multi-battery system, one table per battery type;
//! * [`RvBatch`] — the same stepping form over N independent cells in
//!   struct-of-arrays form, driven by batch kernels that share the scalar
//!   path's raw serve/recover routines (bit-identical states).
//!
//! The `battery-sched` crate wires the stepping form in as the `rv`
//! backend of its `BatteryModel` trait, which puts every scheduling policy,
//! the scenario engine and the optimal branch-and-bound search on this
//! model unchanged.
//!
//! # Example
//!
//! ```
//! use rv::analytic::lifetime_constant_current;
//! use rv::RvParams;
//!
//! // The RV fit of the paper's B1 cell under a constant 500 mA load dies
//! // in the same range as the KiBaM's Table 3 value (2.02 min).
//! let b1 = RvParams::itsy_b1();
//! let lifetime = lifetime_constant_current(&b1, 0.5).unwrap().unwrap();
//! assert!((lifetime / 2.02 - 1.0).abs() < 0.1, "got {lifetime}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod analytic;
pub mod batch;
mod cell;
mod error;
mod fleet;
mod params;
mod table;

pub use batch::RvBatch;
pub use cell::RvCell;
pub use error::RvError;
pub use fleet::RvFleet;
pub use params::{fitted_terms, RvParams};
pub use table::{RvStepTable, StepAdvance};

/// The largest truncation order the analytic model accepts.
pub const MAX_TERMS: usize = 64;

/// The truncation order of the discretized stepping form: [`RvCell`] keeps
/// its moments in a fixed-size array so search snapshots stay `Copy` and
/// allocation-free, and four 24-bit fixed-point moments (plus the consumed
/// units and the retired flag) pack into one 128-bit canonical state word.
pub const MAX_STEP_TERMS: usize = 4;

/// Fixed-point quanta per charge unit for the diffusion moments of the
/// stepping form: the moment grid is `Γ / MOMENT_SCALE` (≈ 10 µA·min at
/// the paper's `Γ = 0.01`), fine enough that the grid never shows in
/// lifetimes yet exact enough to pack states into canonical search keys.
pub const MOMENT_SCALE: f64 = 1024.0;
