//! The discretized RV stepping form and its precomputed correction table.
//!
//! The analytic model ([`crate::analytic`]) evolves continuous moments with
//! one `exp` per term per interval. Scheduling simulations and the optimal
//! search instead step on the discretization grid of the scheduling paper
//! (time steps `T`, charge units `Γ`), so this module precomputes, per
//! battery *type*, everything the per-draw hot loop needs — the term rates
//! `β²m²`, the per-step decay factors `e^{-β²m²T}`, the fixed-point grid of
//! the moments and the emptiness threshold — exactly like `dkibam` caches a
//! [`dkibam::RecoveryTable`] per type: built once per fleet (and shared
//! through the engine's worker caches), never per cell or per node.

use crate::{RvCell, RvError, RvParams, MAX_STEP_TERMS, MOMENT_SCALE};
use dkibam::Discretization;

/// Result of letting one battery serve (a portion of) a job through the
/// stepping form. Mirrors `dkibam::multi::JobAdvance`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepAdvance {
    /// Time steps that actually elapsed.
    pub steps_consumed: u64,
    /// `true` if the requested number of steps was served completely;
    /// `false` if the battery was observed empty at a draw instant before
    /// the end.
    pub completed: bool,
}

/// The precomputed per-type correction table of the discretized RV model.
///
/// Holds the validated [`RvParams`] next to the derived per-term decay
/// factors and the fixed-point moment grid, and implements the stepping
/// operations ([`serve`](RvStepTable::serve) /
/// [`recover`](RvStepTable::recover)) on [`RvCell`] states. Within one
/// `serve` call the draw pattern's constant current is applied with the
/// exact closed-form moment update between draw instants, consumption is
/// counted in whole charge units at the draw instants (as in the
/// discretized KiBaM), and emptiness (`σ ≥ α`) is *observed* at draw
/// instants only.
#[derive(Debug, Clone, PartialEq)]
pub struct RvStepTable {
    params: RvParams,
    disc: Discretization,
    /// Per-term decay rates `β²m²`, 1/min.
    rates: [f64; MAX_STEP_TERMS],
    /// Per-term single-step decay factors `e^{-β²m²·T}`.
    step_decays: [f64; MAX_STEP_TERMS],
    /// Charge units of a full battery, `round(α / Γ)`.
    capacity_units: u32,
    /// Fixed-point grid spacing of the moments, `Γ /` [`MOMENT_SCALE`].
    moment_quantum: f64,
    /// σ at or above this value means empty (`α` minus a relative slack).
    empty_threshold: f64,
}

impl RvStepTable {
    /// Builds the correction table for one battery type.
    ///
    /// # Errors
    ///
    /// Returns [`RvError::InvalidTerms`] if the parameters carry more than
    /// [`MAX_STEP_TERMS`] correction terms — the stepping form keeps the
    /// moments in a fixed-size cell, and silently truncating the sum would
    /// change σ, so oversized orders are refused (the analytic module
    /// handles them).
    pub fn new(params: &RvParams, disc: &Discretization) -> Result<Self, RvError> {
        if params.terms() > MAX_STEP_TERMS {
            return Err(RvError::InvalidTerms { value: params.terms() });
        }
        let mut rates = [0.0; MAX_STEP_TERMS];
        let mut step_decays = [0.0; MAX_STEP_TERMS];
        for m in 0..params.terms() {
            rates[m] = params.rate(m + 1);
            step_decays[m] = (-rates[m] * disc.time_step()).exp();
        }
        Ok(Self {
            params: *params,
            disc: *disc,
            rates,
            step_decays,
            capacity_units: disc.charge_units(params.alpha()),
            moment_quantum: disc.charge_unit() / MOMENT_SCALE,
            empty_threshold: params.alpha() * (1.0 - 1e-9),
        })
    }

    /// The battery parameters behind this table.
    #[must_use]
    pub fn params(&self) -> &RvParams {
        &self.params
    }

    /// The discretization this table was built for.
    #[must_use]
    pub fn disc(&self) -> &Discretization {
        &self.disc
    }

    /// Charge units of a full battery.
    #[must_use]
    pub fn capacity_units(&self) -> u32 {
        self.capacity_units
    }

    /// The fixed-point grid spacing of the diffusion moments, in A·min.
    #[must_use]
    pub fn moment_quantum(&self) -> f64 {
        self.moment_quantum
    }

    /// A freshly charged cell.
    #[must_use]
    pub fn fresh_cell(&self) -> RvCell {
        RvCell::fresh()
    }

    /// The apparent charge lost, `σ = consumed·Γ + 2·Σ_m u_m`, in A·min.
    #[must_use]
    pub fn sigma(&self, cell: &RvCell) -> f64 {
        self.sigma_raw(cell.consumed_units, &cell.moments)
    }

    /// [`sigma`](RvStepTable::sigma) on raw state components (the
    /// struct-of-arrays batch kernels hold cells columnar).
    pub(crate) fn sigma_raw(&self, consumed_units: u32, moments: &[f64; MAX_STEP_TERMS]) -> f64 {
        f64::from(consumed_units) * self.disc.charge_unit() + 2.0 * moments.iter().sum::<f64>()
    }

    /// True remaining charge `max(α - consumed·Γ, 0)` in A·min (the last
    /// draw before the emptiness observation may overshoot slightly).
    #[must_use]
    pub fn total_charge(&self, cell: &RvCell) -> f64 {
        (self.params.alpha() - f64::from(cell.consumed_units) * self.disc.charge_unit()).max(0.0)
    }

    /// Apparent remaining charge `max(α - σ, 0)` in A·min — what a
    /// scheduling policy sees as available.
    #[must_use]
    pub fn apparent_charge(&self, cell: &RvCell) -> f64 {
        (self.params.alpha() - self.sigma(cell)).max(0.0)
    }

    /// The emptiness criterion `σ ≥ α`, sticky once the battery has been
    /// observed empty.
    #[must_use]
    pub fn is_empty(&self, cell: &RvCell) -> bool {
        self.is_empty_raw(cell.observed_empty, cell.consumed_units, &cell.moments)
    }

    pub(crate) fn is_empty_raw(
        &self,
        observed_empty: bool,
        consumed_units: u32,
        moments: &[f64; MAX_STEP_TERMS],
    ) -> bool {
        observed_empty || self.sigma_raw(consumed_units, moments) >= self.empty_threshold
    }

    /// The per-term decay factors for a recovery advance of `steps` time
    /// steps, `e^{-β²m²·T·steps}` (computed as the per-step factor raised to
    /// `steps`). The batch kernels hoist these per type per call instead of
    /// recomputing them per cell; the values are bit-identical either way
    /// (same inputs, same `powi`).
    #[must_use]
    pub fn recovery_decays(&self, steps: u64) -> [f64; MAX_STEP_TERMS] {
        let mut decays = [0.0; MAX_STEP_TERMS];
        for (decay, step_decay) in
            decays.iter_mut().zip(&self.step_decays).take(self.params.terms())
        {
            *decay = decay_pow(*step_decay, steps);
        }
        decays
    }

    /// Applies precomputed recovery decay factors to raw moments and
    /// re-aligns them to the grid — the recovery kernel shared by the scalar
    /// and batch paths.
    pub(crate) fn apply_recovery_decays(
        &self,
        moments: &mut [f64; MAX_STEP_TERMS],
        decays: &[f64; MAX_STEP_TERMS],
    ) {
        for m in 0..self.params.terms() {
            moments[m] *= decays[m];
        }
        self.align_raw(moments);
    }

    /// Lets the battery recover (zero current) for `steps` time steps: each
    /// moment decays by its per-step factor, then re-aligns to the grid.
    pub fn recover(&self, cell: &mut RvCell, steps: u64) {
        if steps == 0 {
            return;
        }
        self.apply_recovery_decays(&mut cell.moments, &self.recovery_decays(steps));
    }

    /// Lets the battery serve a job portion of `steps` time steps with the
    /// given draw pattern (one draw of `units_per_draw` charge units every
    /// `draw_interval_steps` steps, i.e. the constant current
    /// `units·Γ / (interval·T)`).
    ///
    /// Between draw instants the moments follow the exact constant-current
    /// solution; at each draw instant the units are consumed, the state
    /// re-aligns to the grid, and emptiness is checked — if `σ ≥ α` the
    /// battery is observed empty there, retired, and the advance reports
    /// `completed == false`. Steps after the last full draw interval are
    /// recovery, exactly as in the discretized KiBaM.
    pub fn serve(
        &self,
        cell: &mut RvCell,
        steps: u64,
        draw_interval_steps: u32,
        units_per_draw: u32,
    ) -> StepAdvance {
        let RvCell { consumed_units, moments, observed_empty } = cell;
        self.serve_raw(
            consumed_units,
            moments,
            observed_empty,
            steps,
            draw_interval_steps,
            units_per_draw,
        )
    }

    /// [`serve`](RvStepTable::serve) on raw state components — the single
    /// serve kernel shared by the scalar cells and the struct-of-arrays
    /// batch lanes, so both paths run the same floating-point operations in
    /// the same order.
    pub(crate) fn serve_raw(
        &self,
        consumed_units: &mut u32,
        moments: &mut [f64; MAX_STEP_TERMS],
        observed_empty: &mut bool,
        steps: u64,
        draw_interval_steps: u32,
        units_per_draw: u32,
    ) -> StepAdvance {
        debug_assert!(draw_interval_steps > 0 && units_per_draw > 0);
        let interval = u64::from(draw_interval_steps);
        let interval_minutes = self.disc.steps_to_minutes(interval);
        let current = f64::from(units_per_draw) * self.disc.charge_unit() / interval_minutes;
        let draws = steps / interval;
        let remainder = steps - draws * interval;

        // Per-interval factors, derived from the cached per-step decays once
        // per call (the interval is constant within a job portion).
        let mut interval_decay = [0.0; MAX_STEP_TERMS];
        let mut interval_gain = [0.0; MAX_STEP_TERMS];
        for m in 0..self.params.terms() {
            interval_decay[m] = decay_pow(self.step_decays[m], interval);
            interval_gain[m] = current * (1.0 - interval_decay[m]) / self.rates[m];
        }

        let mut consumed: u64 = 0;
        for _ in 0..draws {
            for m in 0..self.params.terms() {
                moments[m] = moments[m] * interval_decay[m] + interval_gain[m];
            }
            *consumed_units = consumed_units.saturating_add(units_per_draw);
            self.align_raw(moments);
            consumed += interval;
            if self.is_empty_raw(*observed_empty, *consumed_units, moments) {
                *observed_empty = true;
                return StepAdvance { steps_consumed: consumed, completed: false };
            }
        }
        if remainder > 0 {
            self.apply_recovery_decays(moments, &self.recovery_decays(remainder));
        }
        consumed += remainder;
        StepAdvance { steps_consumed: consumed, completed: true }
    }

    /// Packs a cell into a canonical state word
    /// ([`RvCell::state_word`] with this table's grid), or `None` for
    /// oversized components.
    #[must_use]
    pub fn state_word(&self, cell: &RvCell) -> Option<u128> {
        cell.state_word(self.moment_quantum)
    }

    /// Rounds every moment to the fixed-point grid. Called after every state
    /// transition, so cells are always grid-aligned (which makes
    /// [`state_word`](RvStepTable::state_word) exact).
    fn align_raw(&self, moments: &mut [f64; MAX_STEP_TERMS]) {
        for moment in moments.iter_mut().take(self.params.terms()) {
            *moment = (*moment / self.moment_quantum).round() * self.moment_quantum;
        }
    }
}

/// `decay^steps` for a per-step decay factor in `(0, 1)`, via exact integer
/// exponentiation (the discretized model's decay is the per-step factor
/// iterated, so two advances of `n` and `m` steps compose like one advance
/// of `n + m` steps up to grid rounding).
fn decay_pow(decay: f64, steps: u64) -> f64 {
    match i32::try_from(steps) {
        Ok(steps) => decay.powi(steps),
        // Far beyond any load horizon; the decay has long underflowed.
        Err(_) => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{evolve, DiffusionState};

    fn table() -> RvStepTable {
        RvStepTable::new(&RvParams::itsy_b1(), &Discretization::paper_default()).unwrap()
    }

    #[test]
    fn construction_validates_the_truncation_order() {
        let disc = Discretization::paper_default();
        let oversized = RvParams::new(5.5, 0.07, MAX_STEP_TERMS + 1).unwrap();
        assert!(matches!(RvStepTable::new(&oversized, &disc), Err(RvError::InvalidTerms { .. })));
        let t = table();
        assert_eq!(t.capacity_units(), 550);
        assert!((t.moment_quantum() - 0.01 / MOMENT_SCALE).abs() < 1e-15);
    }

    #[test]
    fn fresh_cell_is_full_and_available() {
        let t = table();
        let cell = t.fresh_cell();
        assert_eq!(t.sigma(&cell), 0.0);
        assert!((t.total_charge(&cell) - 5.5).abs() < 1e-12);
        assert!((t.apparent_charge(&cell) - 5.5).abs() < 1e-12);
        assert!(!t.is_empty(&cell));
    }

    #[test]
    fn serving_consumes_integer_units_and_builds_a_deficit() {
        let t = table();
        let mut cell = t.fresh_cell();
        // One minute of 500 mA: 100 steps, one unit every 2 steps.
        let advance = t.serve(&mut cell, 100, 2, 1);
        assert!(advance.completed);
        assert_eq!(advance.steps_consumed, 100);
        assert_eq!(cell.consumed_units(), 50);
        assert!((t.total_charge(&cell) - 5.0).abs() < 1e-12);
        assert!(t.sigma(&cell) > 0.5, "the diffusion deficit adds to the consumed charge");
        assert!(t.apparent_charge(&cell) < t.total_charge(&cell));
    }

    #[test]
    fn stepping_tracks_the_analytic_solution() {
        // After a minute of 500 mA the stepped σ must agree with the
        // analytic constant-current solution to within the fixed-point
        // grid (the per-draw alignment is the only difference).
        let t = table();
        let params = RvParams::itsy_b1();
        let mut cell = t.fresh_cell();
        t.serve(&mut cell, 100, 2, 1);
        let analytic = evolve(&params, &DiffusionState::full(&params), 0.5, 1.0).unwrap();
        assert!(
            (t.sigma(&cell) - analytic.sigma()).abs() < 1e-3,
            "stepped {} vs analytic {}",
            t.sigma(&cell),
            analytic.sigma()
        );
        // Recovery agrees too.
        let mut rested = cell;
        t.recover(&mut rested, 200);
        let analytic_rested = evolve(&params, &analytic, 0.0, 2.0).unwrap();
        assert!((t.sigma(&rested) - analytic_rested.sigma()).abs() < 1e-3);
    }

    #[test]
    fn recovery_composes_additively_on_the_grid() {
        let t = table();
        let mut cell = t.fresh_cell();
        t.serve(&mut cell, 100, 2, 1);
        let mut once = cell;
        t.recover(&mut once, 300);
        let mut twice = cell;
        t.recover(&mut twice, 150);
        t.recover(&mut twice, 150);
        for (a, b) in once.moments().iter().zip(twice.moments()) {
            assert!((a - b).abs() <= 2.0 * t.moment_quantum(), "{a} vs {b}");
        }
    }

    #[test]
    fn a_long_job_observes_the_battery_empty_at_a_draw_instant() {
        let t = table();
        let mut cell = t.fresh_cell();
        let advance = t.serve(&mut cell, 1_000_000, 2, 1);
        assert!(!advance.completed);
        assert_eq!(advance.steps_consumed % 2, 0, "death lands on a draw instant");
        assert!(cell.is_observed_empty());
        assert!(t.is_empty(&cell));
        // The battery died from the apparent-charge criterion with real
        // charge still inside (the rate-capacity effect).
        assert!(t.total_charge(&cell) > 0.0);
        // Close to the analytic CL 500 lifetime of the fitted model.
        let minutes = t.disc().steps_to_minutes(advance.steps_consumed);
        let analytic =
            crate::analytic::lifetime_constant_current(&RvParams::itsy_b1(), 0.5).unwrap().unwrap();
        assert!((minutes - analytic).abs() < 0.05, "stepped {minutes} vs analytic {analytic}");
    }

    #[test]
    fn observed_empty_is_sticky_through_recovery() {
        let t = table();
        let mut cell = t.fresh_cell();
        t.serve(&mut cell, 1_000_000, 2, 1);
        t.recover(&mut cell, 1_000_000);
        assert!(t.apparent_charge(&cell) > 0.0, "the deficit dissipated");
        assert!(t.is_empty(&cell), "but the battery stays retired");
    }

    #[test]
    fn cells_stay_grid_aligned_for_exact_packing() {
        let t = table();
        let mut cell = t.fresh_cell();
        t.serve(&mut cell, 250, 2, 1);
        t.recover(&mut cell, 37);
        for &moment in cell.moments() {
            let quanta = moment / t.moment_quantum();
            assert!((quanta - quanta.round()).abs() < 1e-6, "moment off-grid: {moment}");
        }
        assert!(t.state_word(&cell).is_some());
    }
}
