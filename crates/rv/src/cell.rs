use crate::MAX_STEP_TERMS;

/// Number of bits per packed field of an [`RvCell::state_word`] (consumed
/// units and each fixed-point diffusion moment).
const FIELD_BITS: u32 = 24;
/// Largest value a packed field can hold.
const FIELD_MAX: u64 = (1 << FIELD_BITS) - 1;

/// The state of one battery in the discretized RV stepping form.
///
/// The discretization mirrors Section 2.3 of the scheduling paper: time
/// advances in steps of `T`, consumed charge in integer units of `Γ`, and
/// the diffusion moments `u_1..u_M` live on a fixed-point grid of
/// [`crate::MOMENT_SCALE`] quanta per charge unit (the
/// [`crate::RvStepTable`] re-aligns them after every draw and recovery
/// advance). Keeping every component on a finite grid is what makes the
/// state exactly packable into a canonical search key
/// ([`RvCell::state_word`]) — the diffusion analogue of
/// `dkibam::DiscreteBattery`'s integer `(n_gamma, m_delta)` state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RvCell {
    /// Charge units consumed so far.
    pub(crate) consumed_units: u32,
    /// Grid-aligned diffusion moments, in A·min (slots beyond the table's
    /// truncation order stay zero).
    pub(crate) moments: [f64; MAX_STEP_TERMS],
    /// Whether this battery has been observed empty and retired.
    pub(crate) observed_empty: bool,
}

impl RvCell {
    /// The state of a freshly charged battery.
    #[must_use]
    pub fn fresh() -> Self {
        Self { consumed_units: 0, moments: [0.0; MAX_STEP_TERMS], observed_empty: false }
    }

    /// Charge units consumed so far.
    #[must_use]
    pub fn consumed_units(&self) -> u32 {
        self.consumed_units
    }

    /// The grid-aligned diffusion moments, in A·min.
    #[must_use]
    pub fn moments(&self) -> &[f64; MAX_STEP_TERMS] {
        &self.moments
    }

    /// Whether this battery has been observed empty and retired.
    #[must_use]
    pub fn is_observed_empty(&self) -> bool {
        self.observed_empty
    }

    /// Marks the battery as observed empty; it will never be used again.
    pub fn mark_observed_empty(&mut self) {
        self.observed_empty = true;
    }

    /// Packs the dynamic state into a single 128-bit word, or `None` if a
    /// component exceeds its 24-bit field (batteries beyond ~167 A·min at
    /// the paper's `Γ`; such systems simply opt out of memoization).
    ///
    /// Equal words are equal states — the moments are grid-aligned, so
    /// `moments[m] / quantum` is an exact integer — which is what makes the
    /// packing sound as a transposition-table key. `quantum` is the
    /// moment grid spacing ([`crate::RvStepTable::moment_quantum`]).
    #[must_use]
    pub fn state_word(&self, quantum: f64) -> Option<u128> {
        let consumed = u64::from(self.consumed_units);
        if consumed > FIELD_MAX {
            return None;
        }
        let mut word = (u128::from(consumed) << 1) | u128::from(self.observed_empty);
        let mut shift = 1 + FIELD_BITS;
        for &moment in &self.moments {
            let quanta = (moment / quantum).round();
            #[allow(clippy::cast_precision_loss)]
            if !(quanta >= 0.0 && quanta <= FIELD_MAX as f64) {
                return None;
            }
            let quanta = dkibam::checked::f64_to_u64(quanta);
            word |= u128::from(quanta) << shift;
            shift += FIELD_BITS;
        }
        Some(word)
    }

    /// Component-wise dominance on packed [state words](RvCell::state_word):
    /// `a` dominates `b` when it has consumed no more charge, carries no
    /// larger diffusion deficit in *every* moment, and is not retired unless
    /// `b` is retired too.
    ///
    /// Every transition of the stepping form is monotone in each component
    /// (moments evolve by `u·D + g` with `D > 0`, consumption adds equal
    /// increments, and the grid rounding is monotone), and the emptiness
    /// criterion `σ ≥ α` is monotone in all of them, so any schedule
    /// achievable from `b` is achievable (or bettered) from `a` — the
    /// property that makes dominance pruning in the optimal search sound.
    #[must_use]
    pub fn word_dominates(a: u128, b: u128) -> bool {
        let (consumed_a, quanta_a, empty_a) = unpack(a);
        let (consumed_b, quanta_b, empty_b) = unpack(b);
        if empty_a && !empty_b {
            return false;
        }
        consumed_a <= consumed_b && quanta_a.iter().zip(&quanta_b).all(|(qa, qb)| qa <= qb)
    }
}

/// Unpacks a [`RvCell::state_word`] into
/// `(consumed_units, moment_quanta, observed_empty)`.
fn unpack(word: u128) -> (u64, [u64; MAX_STEP_TERMS], bool) {
    let empty = word & 1 == 1;
    #[allow(clippy::cast_possible_truncation)]
    // xlint: allow(cast) -- masked field extraction from the packed state word
    let consumed = ((word >> 1) as u64) & FIELD_MAX;
    let mut quanta = [0u64; MAX_STEP_TERMS];
    let mut shift = 1 + FIELD_BITS;
    for slot in &mut quanta {
        #[allow(clippy::cast_possible_truncation)]
        // xlint: allow(cast) -- masked field extraction from the packed state word
        let value = ((word >> shift) as u64) & FIELD_MAX;
        *slot = value;
        shift += FIELD_BITS;
    }
    (consumed, quanta, empty)
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUANTUM: f64 = 0.01 / crate::MOMENT_SCALE;

    fn cell(consumed: u32, quanta: [u64; MAX_STEP_TERMS]) -> RvCell {
        let mut moments = [0.0; MAX_STEP_TERMS];
        for (slot, &q) in moments.iter_mut().zip(&quanta) {
            #[allow(clippy::cast_precision_loss)]
            {
                *slot = q as f64 * QUANTUM;
            }
        }
        RvCell { consumed_units: consumed, moments, observed_empty: false }
    }

    #[test]
    fn state_words_are_injective_over_the_grid_state() {
        let a = cell(10, [1, 2, 3, 4]);
        let mut b = a;
        assert_eq!(a.state_word(QUANTUM), b.state_word(QUANTUM));
        b.consumed_units += 1;
        assert_ne!(a.state_word(QUANTUM), b.state_word(QUANTUM));
        let mut c = a;
        c.moments[3] += QUANTUM;
        assert_ne!(a.state_word(QUANTUM), c.state_word(QUANTUM));
        let mut d = a;
        d.mark_observed_empty();
        assert_ne!(a.state_word(QUANTUM), d.state_word(QUANTUM));
    }

    #[test]
    fn oversized_components_opt_out_of_packing() {
        assert!(cell(u32::MAX, [0; MAX_STEP_TERMS]).state_word(QUANTUM).is_none());
        let mut huge = cell(0, [0; MAX_STEP_TERMS]);
        huge.moments[0] = 1e9;
        assert!(huge.state_word(QUANTUM).is_none());
        assert!(cell(100, [5, 5, 5, 5]).state_word(QUANTUM).is_some());
    }

    #[test]
    fn dominance_is_component_wise() {
        let word = |c: &RvCell| c.state_word(QUANTUM).unwrap();
        let fresh = cell(0, [0, 0, 0, 0]);
        let used = cell(50, [9, 4, 2, 1]);
        assert!(RvCell::word_dominates(word(&fresh), word(&used)));
        assert!(!RvCell::word_dominates(word(&used), word(&fresh)));
        // Reflexive.
        assert!(RvCell::word_dominates(word(&used), word(&used)));
        // Less consumed but a larger deficit: incomparable.
        let stressed = cell(40, [20, 4, 2, 1]);
        assert!(!RvCell::word_dominates(word(&stressed), word(&used)));
        assert!(!RvCell::word_dominates(word(&used), word(&stressed)));
        // A retired battery never dominates a live one.
        let mut retired = fresh;
        retired.mark_observed_empty();
        assert!(!RvCell::word_dominates(word(&retired), word(&used)));
        assert!(RvCell::word_dominates(word(&fresh), word(&retired)));
    }
}
