//! Struct-of-arrays batch stepping for the discretized RV model.
//!
//! The diffusion analogue of `dkibam::batch`: an [`RvBatch`] holds N
//! independent cells in columnar form — `consumed_units[]`, lane-major
//! moment rows, a retired bitmask — and advances whole lane ranges per
//! kernel call. The kernels reuse the *same* raw serve/recover routines as
//! the scalar [`RvCell`] path (`RvStepTable::serve_raw` and friends), so
//! both paths execute identical floating-point operations in identical
//! order: every lane's `(consumed_units, moments, observed_empty)` tuple —
//! and hence its [`RvStepTable::state_word`] — is bit-identical to the
//! scalar path after every epoch.
//!
//! The batch win on this backend is locality plus hoisting: the per-type
//! recovery decay factors `e^{-β²m²·T·steps}` are computed once per kernel
//! call instead of once per cell (same inputs, same `powi`, same bits), and
//! the moment rows of a lane range stream through the cache instead of
//! chasing per-system `Vec<RvCell>` allocations.

use crate::{RvCell, RvFleet, RvStepTable, StepAdvance, MAX_STEP_TERMS};
use std::ops::Range;

/// N independent discretized-RV cells in struct-of-arrays form.
///
/// Lanes are appended with [`push`](RvBatch::push) /
/// [`push_fleet`](RvBatch::push_fleet) and addressed by index; a simulation
/// driver typically owns one contiguous lane range per scenario system and
/// steps it with the `_range` kernels.
#[derive(Debug, Clone, Default)]
pub struct RvBatch {
    /// Charge units consumed so far, per lane.
    consumed_units: Vec<u32>,
    /// Grid-aligned diffusion moments, lane-major.
    moments: Vec<[f64; MAX_STEP_TERMS]>,
    /// Observed-empty (retired) flags, 64 lanes per word.
    retired: Vec<u64>,
    /// Battery type-group id per lane, indexing the per-type table slice.
    type_ids: Vec<u32>,
}

impl RvBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `lanes` lanes.
    #[must_use]
    pub fn with_capacity(lanes: usize) -> Self {
        Self {
            consumed_units: Vec::with_capacity(lanes),
            moments: Vec::with_capacity(lanes),
            retired: Vec::with_capacity(lanes.div_ceil(64)),
            type_ids: Vec::with_capacity(lanes),
        }
    }

    /// The number of lanes held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.consumed_units.len()
    }

    /// Whether the batch holds no lanes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.consumed_units.is_empty()
    }

    /// Removes all lanes, keeping the allocations.
    pub fn clear(&mut self) {
        self.consumed_units.clear();
        self.moments.clear();
        self.retired.clear();
        self.type_ids.clear();
    }

    /// Appends one lane holding `cell`'s state, tagged with the battery
    /// type-group id `type_id`; returns the new lane's index.
    pub fn push(&mut self, cell: &RvCell, type_id: usize) -> usize {
        let lane = self.len();
        self.consumed_units.push(cell.consumed_units);
        self.moments.push(cell.moments);
        // xlint: allow(panic) -- fleets are bounded far below u32::MAX type groups
        self.type_ids.push(u32::try_from(type_id).expect("type count fits u32"));
        if self.retired.len() * 64 < self.len() {
            self.retired.push(0);
        }
        if cell.observed_empty {
            self.set_retired(lane);
        }
        lane
    }

    /// Appends one freshly charged lane per battery of `fleet`, returning
    /// the appended lane range.
    pub fn push_fleet(&mut self, fleet: &RvFleet) -> Range<usize> {
        let start = self.len();
        for i in 0..fleet.len() {
            self.push(&RvCell::fresh(), fleet.type_of(i));
        }
        start..self.len()
    }

    /// Unpacks lane `lane` into the scalar cell form.
    #[must_use]
    pub fn lane(&self, lane: usize) -> RvCell {
        RvCell {
            consumed_units: self.consumed_units[lane],
            moments: self.moments[lane],
            observed_empty: self.is_retired(lane),
        }
    }

    /// Overwrites lane `lane` with `cell`'s state.
    pub fn set_lane(&mut self, lane: usize, cell: &RvCell) {
        self.consumed_units[lane] = cell.consumed_units;
        self.moments[lane] = cell.moments;
        if cell.observed_empty {
            self.set_retired(lane);
        } else {
            self.retired[lane / 64] &= !(1u64 << (lane % 64));
        }
    }

    /// The battery type-group id of lane `lane`.
    #[must_use]
    pub fn type_id(&self, lane: usize) -> usize {
        dkibam::checked::index(self.type_ids[lane])
    }

    /// Whether lane `lane` has been observed empty and retired.
    #[must_use]
    pub fn is_retired(&self, lane: usize) -> bool {
        self.retired[lane / 64] >> (lane % 64) & 1 == 1
    }

    fn set_retired(&mut self, lane: usize) {
        self.retired[lane / 64] |= 1u64 << (lane % 64);
    }

    /// The emptiness criterion `σ ≥ α` for lane `lane` against its own
    /// type's table; retired lanes are always empty.
    #[must_use]
    pub fn lane_is_empty(&self, lane: usize, tables: &[RvStepTable]) -> bool {
        tables[self.type_id(lane)].is_empty_raw(
            self.is_retired(lane),
            self.consumed_units[lane],
            &self.moments[lane],
        )
    }

    /// The packed canonical state word of lane `lane`
    /// (see [`RvStepTable::state_word`]).
    #[must_use]
    pub fn state_word(&self, lane: usize, tables: &[RvStepTable]) -> Option<u128> {
        tables[self.type_id(lane)].state_word(&self.lane(lane))
    }

    /// Resets every lane of `lanes` to a freshly charged cell.
    pub fn reset_range(&mut self, lanes: Range<usize>) {
        for lane in lanes {
            self.set_lane(lane, &RvCell::fresh());
        }
    }

    /// Lets every lane of `lanes` recover (zero current) for `steps` time
    /// steps. The per-type decay factors are hoisted out of the lane loop;
    /// retired lanes keep recovering, exactly as in the scalar model.
    pub fn recover_range(&mut self, lanes: Range<usize>, steps: u64, tables: &[RvStepTable]) {
        if steps == 0 {
            return;
        }
        let decays: Vec<[f64; MAX_STEP_TERMS]> =
            tables.iter().map(|t| t.recovery_decays(steps)).collect();
        for lane in lanes {
            let ty = dkibam::checked::index(self.type_ids[lane]);
            tables[ty].apply_recovery_decays(&mut self.moments[lane], &decays[ty]);
        }
    }

    /// Lets lane `active` of the system occupying `lanes` serve a job
    /// portion while the other lanes recover through the consumed window —
    /// the batch mirror of the `rv` backend's `advance_job` (serve the
    /// active cell, then recover every other cell once by the steps that
    /// actually elapsed).
    ///
    /// # Panics
    ///
    /// Panics if `active` does not lie in `lanes`; callers bounds-check
    /// battery indices before packing them into lane indices.
    pub fn advance_job_range(
        &mut self,
        lanes: Range<usize>,
        active: usize,
        steps: u64,
        draw_interval_steps: u32,
        units_per_draw: u32,
        tables: &[RvStepTable],
    ) -> StepAdvance {
        assert!(lanes.contains(&active), "active lane {active} outside {lanes:?}");
        if draw_interval_steps == 0 || units_per_draw == 0 {
            // Degenerate "job" that draws nothing: just idle time.
            self.recover_range(lanes, steps, tables);
            return StepAdvance { steps_consumed: steps, completed: true };
        }
        let table = &tables[dkibam::checked::index(self.type_ids[active])];
        if self.lane_is_empty(active, tables) {
            self.set_retired(active);
            return StepAdvance { steps_consumed: 0, completed: false };
        }
        let mut observed = self.is_retired(active);
        let advance = table.serve_raw(
            &mut self.consumed_units[active],
            &mut self.moments[active],
            &mut observed,
            steps,
            draw_interval_steps,
            units_per_draw,
        );
        if observed {
            self.set_retired(active);
        }
        self.recover_range(lanes.start..active, advance.steps_consumed, tables);
        self.recover_range(active + 1..lanes.end, advance.steps_consumed, tables);
        advance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkibam::Discretization;
    use kibam::{BatteryParams, FleetSpec};

    /// SplitMix64 — deterministic seeded epochs without external crates.
    struct SplitMix64(u64);

    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound
        }
    }

    fn b1_fleet(count: usize) -> RvFleet {
        RvFleet::uniform(&BatteryParams::itsy_b1(), &Discretization::paper_default(), count)
    }

    fn mixed_fleet() -> RvFleet {
        RvFleet::new(
            FleetSpec::new(vec![BatteryParams::itsy_b1(), BatteryParams::itsy_b2()]).unwrap(),
            Discretization::paper_default(),
        )
    }

    /// The scalar reference: per-cell stepping exactly as the `rv` backend
    /// of the scheduling trait drives it (serve the active cell, recover
    /// every other cell once by the consumed steps).
    fn scalar_advance_job(
        cells: &mut [RvCell],
        fleet: &RvFleet,
        active: usize,
        steps: u64,
        interval: u32,
        units: u32,
    ) -> StepAdvance {
        if interval == 0 || units == 0 {
            for (i, cell) in cells.iter_mut().enumerate() {
                fleet.table_of(i).recover(cell, steps);
            }
            return StepAdvance { steps_consumed: steps, completed: true };
        }
        let table = fleet.table_of(active);
        if table.is_empty(&cells[active]) {
            cells[active].mark_observed_empty();
            return StepAdvance { steps_consumed: 0, completed: false };
        }
        let advance = table.serve(&mut cells[active], steps, interval, units);
        for (i, cell) in cells.iter_mut().enumerate() {
            if i != active {
                fleet.table_of(i).recover(cell, advance.steps_consumed);
            }
        }
        advance
    }

    fn assert_lockstep(batch: &RvBatch, lanes: &Range<usize>, cells: &[RvCell]) {
        for (i, cell) in cells.iter().enumerate() {
            let lane = batch.lane(lanes.start + i);
            assert_eq!(lane.consumed_units, cell.consumed_units, "lane {i} consumed");
            assert_eq!(lane.observed_empty, cell.observed_empty, "lane {i} retired");
            for (a, b) in lane.moments.iter().zip(&cell.moments) {
                assert_eq!(a.to_bits(), b.to_bits(), "lane {i} moment bits diverged");
            }
        }
    }

    fn exercise_lockstep(fleet: &RvFleet, seed: u64) {
        let tables = fleet.type_tables();
        let mut batch = RvBatch::new();
        let lanes = batch.push_fleet(fleet);
        let mut cells: Vec<RvCell> = (0..fleet.len()).map(|_| RvCell::fresh()).collect();
        assert_lockstep(&batch, &lanes, &cells);

        let mut rng = SplitMix64(seed);
        for _ in 0..150 {
            if rng.below(4) == 0 {
                let steps = rng.below(2_000);
                batch.recover_range(lanes.clone(), steps, tables);
                if steps > 0 {
                    for (i, cell) in cells.iter_mut().enumerate() {
                        fleet.table_of(i).recover(cell, steps);
                    }
                }
            } else {
                let active = usize::try_from(rng.below(fleet.len() as u64)).unwrap();
                let steps = rng.below(3_000);
                #[allow(clippy::cast_possible_truncation)]
                let interval = rng.below(5) as u32; // 0 exercises the degenerate job
                #[allow(clippy::cast_possible_truncation)]
                let units = rng.below(3) as u32;
                let batched = batch.advance_job_range(
                    lanes.clone(),
                    lanes.start + active,
                    steps,
                    interval,
                    units,
                    tables,
                );
                let reference =
                    scalar_advance_job(&mut cells, fleet, active, steps, interval, units);
                assert_eq!(batched, reference);
            }
            assert_lockstep(&batch, &lanes, &cells);
        }
    }

    #[test]
    fn uniform_fleet_steps_bit_identically_to_the_scalar_cells() {
        exercise_lockstep(&b1_fleet(2), 0xD5_0909);
        exercise_lockstep(&b1_fleet(3), 11);
    }

    #[test]
    fn mixed_fleet_steps_bit_identically_to_the_scalar_cells() {
        exercise_lockstep(&mixed_fleet(), 0xB1B2);
        exercise_lockstep(&mixed_fleet(), 1234);
    }

    #[test]
    fn hoisted_recovery_decays_match_per_cell_recovery() {
        let fleet = mixed_fleet();
        let tables = fleet.type_tables();
        let mut batch = RvBatch::new();
        let lanes = batch.push_fleet(&fleet);
        let mut cells: Vec<RvCell> = (0..fleet.len()).map(|_| RvCell::fresh()).collect();
        // Build distinct deficits, then recover in bulk.
        for (i, cell) in cells.iter_mut().enumerate() {
            fleet.table_of(i).serve(cell, 100 + 20 * u64::try_from(i).unwrap(), 2, 1);
            batch.set_lane(lanes.start + i, cell);
        }
        batch.recover_range(lanes.clone(), 777, tables);
        for (i, cell) in cells.iter_mut().enumerate() {
            fleet.table_of(i).recover(cell, 777);
        }
        assert_lockstep(&batch, &lanes, &cells);
    }

    #[test]
    fn retirement_lives_in_the_bitmask() {
        let fleet = b1_fleet(2);
        let tables = fleet.type_tables();
        let mut batch = RvBatch::new();
        let lanes = batch.push_fleet(&fleet);
        let advance = batch.advance_job_range(lanes.clone(), lanes.start, 1_000_000, 2, 1, tables);
        assert!(!advance.completed);
        assert!(batch.is_retired(lanes.start));
        assert!(batch.lane_is_empty(lanes.start, tables));
        assert!(!batch.is_retired(lanes.start + 1));
        assert!(batch.lane(lanes.start).is_observed_empty());
        // Scheduling the retired lane again consumes no time.
        let again = batch.advance_job_range(lanes.clone(), lanes.start, 100, 2, 1, tables);
        assert_eq!(again, StepAdvance { steps_consumed: 0, completed: false });
    }

    #[test]
    fn state_words_match_the_scalar_packing() {
        let fleet = b1_fleet(2);
        let tables = fleet.type_tables();
        let mut batch = RvBatch::new();
        let lanes = batch.push_fleet(&fleet);
        batch.advance_job_range(lanes.clone(), lanes.start, 250, 2, 1, tables);
        let cell = batch.lane(lanes.start);
        assert_eq!(batch.state_word(lanes.start, tables), fleet.table_of(0).state_word(&cell));
        assert!(batch.state_word(lanes.start, tables).is_some());
    }

    #[test]
    #[should_panic(expected = "active lane")]
    fn out_of_range_active_lane_panics() {
        let fleet = b1_fleet(2);
        let mut batch = RvBatch::new();
        let lanes = batch.push_fleet(&fleet);
        let _ = batch.advance_job_range(lanes.clone(), lanes.end, 10, 2, 1, fleet.type_tables());
    }

    #[test]
    fn reset_range_refreshes_lanes() {
        let fleet = b1_fleet(2);
        let tables = fleet.type_tables();
        let mut batch = RvBatch::new();
        let lanes = batch.push_fleet(&fleet);
        batch.advance_job_range(lanes.clone(), lanes.start, 1_000_000, 2, 1, tables);
        batch.reset_range(lanes.clone());
        let fresh: Vec<RvCell> = (0..fleet.len()).map(|_| RvCell::fresh()).collect();
        assert_lockstep(&batch, &lanes, &fresh);
    }
}
