use std::error::Error;
use std::fmt;

/// Errors produced when constructing or using Rakhmatov–Vrudhula model
/// entities.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RvError {
    /// The capacity parameter `α` was zero, negative, NaN or infinite.
    InvalidAlpha {
        /// The rejected capacity value (A·min).
        value: f64,
    },
    /// The diffusion rate `β²` was zero, negative, NaN or infinite.
    InvalidDiffusionRate {
        /// The rejected rate (1/min).
        value: f64,
    },
    /// The exponential-sum truncation order was zero or above
    /// [`crate::MAX_TERMS`].
    InvalidTerms {
        /// The rejected truncation order.
        value: usize,
    },
    /// A discharge current was negative, NaN or infinite.
    InvalidCurrent {
        /// The rejected current (A).
        value: f64,
    },
    /// A duration was negative, NaN or infinite.
    InvalidDuration {
        /// The rejected duration (min).
        value: f64,
    },
}

impl fmt::Display for RvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RvError::InvalidAlpha { value } => {
                write!(f, "RV capacity alpha must be positive and finite, got {value}")
            }
            RvError::InvalidDiffusionRate { value } => {
                write!(f, "RV diffusion rate beta^2 must be positive and finite, got {value}")
            }
            RvError::InvalidTerms { value } => {
                write!(f, "RV truncation order must lie in 1..={}, got {value}", crate::MAX_TERMS)
            }
            RvError::InvalidCurrent { value } => {
                write!(f, "discharge current must be non-negative and finite, got {value}")
            }
            RvError::InvalidDuration { value } => {
                write!(f, "duration must be non-negative and finite, got {value}")
            }
        }
    }
}

impl Error for RvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offending_value() {
        assert!(RvError::InvalidAlpha { value: -1.0 }.to_string().contains("-1"));
        assert!(RvError::InvalidDiffusionRate { value: 0.0 }.to_string().contains('0'));
        assert!(RvError::InvalidTerms { value: 99 }.to_string().contains("99"));
        assert!(RvError::InvalidCurrent { value: f64::NAN }.to_string().contains("NaN"));
        assert!(RvError::InvalidDuration { value: -2.0 }.to_string().contains("-2"));
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<RvError>();
    }
}
