//! The backend-agnostic battery-stepping contract.
//!
//! The simulator and the optimal-schedule search only need a handful of
//! operations from a battery model: let one battery serve (a portion of) a
//! job while the rest recover, let every battery recover through an idle
//! period, test for emptiness and take charge snapshots. This module
//! extracts that contract into the [`BatteryModel`] trait so the same
//! scheduling machinery runs against different battery backends:
//!
//! * [`crate::backends::DiscretizedKibam`] — the paper's discretized KiBaM
//!   (integer charge/height units), the model behind Tables 3–5;
//! * [`crate::backends::ContinuousKibam`] — the closed-form continuous KiBaM,
//!   which cross-validates the discretization and is much cheaper to step
//!   over long horizons;
//! * [`crate::backends::RvDiffusion`] — the Rakhmatov–Vrudhula diffusion
//!   model, parameter-fitted from the fleet's KiBaM parameters: the
//!   structurally different chemistry of the cross-model comparison;
//! * [`crate::backends::IdealBattery`] — the linear battery baseline with no
//!   rate-capacity or recovery effect.
//!
//! Backends are built from a [`kibam::FleetSpec`] and may hold
//! heterogeneous fleets; [`BatteryModel::type_of`] exposes the fleet's
//! type groups so searches prune symmetry only within a group.
//!
//! Time is always measured in discrete *steps* of the [`Discretization`]
//! that produced the load — the load's job boundaries and draw instants are
//! the scheduling points, no matter how a backend represents battery state
//! internally. Backends expose a cheap save/restore state (the
//! [`BatteryModel::State`] associated type) so that search-based schedulers
//! can branch without cloning static data such as recovery tables.
//!
//! [`Discretization`]: dkibam::Discretization

use crate::schedule::BatteryCharge;
use crate::SchedError;

/// Result of letting one battery serve (a portion of) a job.
///
/// Mirrors `dkibam::multi::JobAdvance`, but at the trait layer so that
/// non-discretized backends can report the same information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelAdvance {
    /// Time steps that actually elapsed.
    pub steps_consumed: u64,
    /// `true` if the requested number of steps was served completely;
    /// `false` if the active battery was observed empty before the end (the
    /// remaining steps still need to be served by another battery).
    pub completed: bool,
}

/// The largest battery count a [`StateKey`] can canonicalize inline.
///
/// Keys are fixed-size so transposition tables never allocate per node;
/// systems with more batteries simply opt out of memoization
/// ([`BatteryModel::memo_key`] returns `None`).
pub const MAX_KEY_BATTERIES: usize = 4;

/// A fixed-size, allocation-free canonical key over a backend's dynamic
/// state, used by search schedulers as a transposition-table key.
///
/// The backend packs each battery's dynamic state into one opaque `u128`
/// word (equal words ⇔ equal states) tagged with the battery's *type-group*
/// id (see [`kibam::FleetSpec`]); the key sorts the `(type, word)` pairs so
/// that permutations of identical-type batteries — which have identical
/// futures — collide in the table, while batteries of different types never
/// exchange positions: a drained B1 next to a fresh B2 and a fresh B1 next
/// to a drained B2 keep distinct keys. Uniform fleets tag every battery
/// with type 0, which reduces to a plain global sort (bit-identical to the
/// homogeneous-key behaviour this key type replaced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateKey {
    len: u8,
    types: [u8; MAX_KEY_BATTERIES],
    words: [u128; MAX_KEY_BATTERIES],
}

// Hash only the occupied slots: unused slots are always zero, so equality
// over the full arrays coincides with equality over the prefix, and
// skipping the padding halves the hashing cost for two-battery systems (the
// common case) on the search's per-node hot path.
impl std::hash::Hash for StateKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u8(self.len);
        for i in 0..usize::from(self.len) {
            state.write_u8(self.types[i]);
            state.write_u128(self.words[i]);
        }
    }
}

impl StateKey {
    /// Builds a canonical key from per-battery `(type-group id, state word)`
    /// pairs, or `None` if there are more than [`MAX_KEY_BATTERIES`] of
    /// them or a type id exceeds `u8::MAX` (fleets never assign that many
    /// distinct types below the battery cap). Pairs are sorted by
    /// `(type, word)`, so words permute only within their type group.
    pub fn from_typed_words(pairs: impl IntoIterator<Item = (usize, u128)>) -> Option<Self> {
        let mut buf = [(0u8, 0u128); MAX_KEY_BATTERIES];
        let mut len = 0usize;
        for (type_id, word) in pairs {
            if len == MAX_KEY_BATTERIES {
                return None;
            }
            buf[len] = (u8::try_from(type_id).ok()?, word);
            len += 1;
        }
        buf[..len].sort_unstable();
        let mut types = [0u8; MAX_KEY_BATTERIES];
        let mut words = [0u128; MAX_KEY_BATTERIES];
        for (slot, &(type_id, word)) in buf[..len].iter().enumerate() {
            types[slot] = type_id;
            words[slot] = word;
        }
        #[allow(clippy::cast_possible_truncation)]
        // xlint: allow(cast) -- len <= MAX_KEY_BATTERIES, far below u8::MAX
        Some(Self { len: len as u8, types, words })
    }

    /// Builds a canonical key for a *uniform* fleet: every battery belongs
    /// to type group 0, so the words sort globally.
    pub fn from_words(words: impl IntoIterator<Item = u128>) -> Option<Self> {
        Self::from_typed_words(words.into_iter().map(|word| (0, word)))
    }

    /// The number of battery words in the key.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Whether the key holds no battery words.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The canonical (type-grouped, sorted-within-group) per-battery state
    /// words.
    #[must_use]
    pub fn words(&self) -> &[u128] {
        &self.words[..usize::from(self.len)]
    }

    /// The type-group id of each canonical slot (non-decreasing).
    #[must_use]
    pub fn types(&self) -> &[u8] {
        &self.types[..usize::from(self.len)]
    }

    /// Whether `self` and `other` describe fleets with the same type-group
    /// layout (same battery count, same type id in every canonical slot).
    /// Dominance comparisons are only meaningful within one layout; see
    /// [`BatteryModel::key_dominates`].
    #[must_use]
    pub fn same_layout(&self, other: &StateKey) -> bool {
        self.len == other.len && self.types() == other.types()
    }

    /// Slot-wise dominance between two same-layout keys, with the per-word
    /// rule supplied by the backend. Both keys are sorted by `(type, word)`,
    /// so within a type group, matching the i-th word of one key against
    /// the i-th of the other is a valid witness schedule mapping for
    /// identical battery types (any perfect matching would do — the sorted
    /// pairing is the cheap one, and this runs on the search's per-node hot
    /// path). Across type groups no pairing is meaningful — a B1 word never
    /// dominates a B2 word — so mismatched layouts claim nothing
    /// (`debug_assert` + `false`). Backends implement
    /// [`BatteryModel::key_dominates`] with this helper so the layout guard
    /// lives in exactly one place.
    #[must_use]
    pub fn dominates_pairwise(
        &self,
        other: &StateKey,
        word_dominates: impl Fn(u128, u128) -> bool,
    ) -> bool {
        debug_assert!(
            self.same_layout(other),
            "key_dominates compared keys with different type-group layouts"
        );
        // Partial-order law: per-word dominance must be reflexive, or the
        // Pareto fronts would prune a state against itself.
        debug_assert!(
            self.words().iter().all(|&x| word_dominates(x, x)),
            "word dominance must be reflexive"
        );
        self.same_layout(other)
            && self.words().iter().zip(other.words()).all(|(&x, &y)| word_dominates(x, y))
    }
}

/// A multi-battery battery model that the scheduling engine can step.
///
/// Implementations hold the joint state of all batteries in the system plus
/// whatever static data they need (parameters, recovery tables). The
/// contract, in the paper's terms (Sections 2 and 4):
///
/// * [`advance_job`](Self::advance_job) — one battery serves a job portion
///   with a given draw pattern while the others recover; the battery is
///   *observed empty* at a draw instant and retired if the emptiness
///   criterion holds there;
/// * [`advance_idle`](Self::advance_idle) — every battery recovers;
/// * [`is_empty`](Self::is_empty) / [`available`](Self::available) — the
///   emptiness test (Eq. 3 continuous, Eq. 8 discretized), sticky once a
///   battery has been observed empty;
/// * [`charge`](Self::charge) — total / available charge snapshots, the
///   quantities policies decide on and traces record.
pub trait BatteryModel {
    /// A cheap snapshot of the dynamic state of all batteries, used by
    /// search-based schedulers to branch. Static data (parameters, recovery
    /// tables) must not live in the state.
    type State: Clone;

    /// A short name identifying the backend in reports and JSON output.
    fn backend_name(&self) -> &'static str;

    /// The number of batteries in the system.
    fn battery_count(&self) -> usize;

    /// The type-group id of battery `index`: batteries with identical
    /// parameters share a group (see [`kibam::FleetSpec::type_of`]), and
    /// only same-group batteries are interchangeable for symmetry pruning
    /// and canonical state keys. The default declares every battery the
    /// same type, which is exact for uniform fleets.
    fn type_of(&self, index: usize) -> usize {
        let _ = index;
        0
    }

    /// Returns every battery to the freshly-charged state.
    fn reset(&mut self);

    /// Captures the current dynamic state.
    fn save_state(&self) -> Self::State;

    /// Captures the current dynamic state into `out`, reusing whatever `out`
    /// already holds. Search schedulers snapshot at every node; backends
    /// should override the default (which allocates a fresh state) with an
    /// in-place copy.
    fn save_state_into(&self, out: &mut Self::State) {
        *out = self.save_state();
    }

    /// Restores a previously captured dynamic state.
    fn restore_state(&mut self, state: &Self::State);

    /// Whether battery `index` is empty: either currently satisfying the
    /// emptiness criterion or already observed empty and retired.
    fn is_empty(&self, index: usize) -> bool;

    /// Indices of the batteries that can still serve a job.
    fn available(&self) -> Vec<usize> {
        (0..self.battery_count()).filter(|&i| !self.is_empty(i)).collect()
    }

    /// Fills `out` with the indices of the batteries that can still serve a
    /// job, reusing its allocation (the allocation-free counterpart of
    /// [`available`](Self::available)).
    fn available_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend((0..self.battery_count()).filter(|&i| !self.is_empty(i)));
    }

    /// Whether at least one battery can still serve a job. Search hot paths
    /// use this instead of materializing an index list.
    fn any_available(&self) -> bool {
        (0..self.battery_count()).any(|i| !self.is_empty(i))
    }

    /// A canonical, hashable key of the current dynamic state for
    /// transposition tables, or `None` if the backend cannot key its state
    /// exactly (e.g. continuous backends with floating-point state). The
    /// default claims no key; discrete backends should provide one.
    fn memo_key(&self) -> Option<StateKey> {
        None
    }

    /// Whether the state behind canonical key `a` is component-wise at least
    /// as good as the state behind key `b` — every schedule achievable from
    /// `b` is achievable (or bettered) from `a`, so a search need not expand
    /// `b` once `a` has been expanded from the same position. Both keys must
    /// come from this backend's [`memo_key`](Self::memo_key), and therefore
    /// share one type-group layout ([`StateKey::same_layout`]); comparing
    /// keys across layouts would pair batteries of different types, so
    /// implementations must refuse it (`debug_assert` + `false`). The
    /// conservative default claims nothing, which disables dominance pruning
    /// for the backend.
    fn key_dominates(&self, a: &StateKey, b: &StateKey) -> bool {
        let _ = (a, b);
        false
    }

    /// Charge snapshot (total and available charge, A·min) of battery
    /// `index`.
    fn charge(&self, index: usize) -> BatteryCharge;

    /// Charge snapshots of all batteries, in index order.
    fn charges(&self) -> Vec<BatteryCharge> {
        (0..self.battery_count()).map(|i| self.charge(i)).collect()
    }

    /// Fills `out` with the charge snapshots of all batteries, reusing its
    /// allocation. The simulation loop snapshots at every scheduling
    /// decision, so this avoids a per-decision allocation.
    fn charges_into(&self, out: &mut Vec<BatteryCharge>) {
        out.clear();
        out.extend((0..self.battery_count()).map(|i| self.charge(i)));
    }

    /// Total remaining charge over all batteries, in A·min (including
    /// retired ones — their stranded charge is what the paper's residual
    /// observations count).
    fn total_charge(&self) -> f64 {
        (0..self.battery_count()).map(|i| self.charge(i).total).sum()
    }

    /// Total remaining charge over the batteries that have *not* been
    /// retired, in A·min. Upper-bound computations in search schedulers use
    /// this: retired charge can never be delivered.
    fn usable_charge(&self) -> f64;

    /// Builds the recovery-coupled service envelope of battery `index` —
    /// an admissible upper bound on the charge units it could serve within
    /// any future window, given its *current* state — into `out`, and
    /// returns the battery type's [`dkibam::ServiceRateTable`] for
    /// querying it ([`dkibam::ServiceRateTable::units_within`]).
    /// `max_units_per_draw` is the largest single-draw size of the load
    /// ahead (one final draw may overshoot the battery's service
    /// frontier).
    ///
    /// The envelope may never undercount what a real schedule can extract
    /// — the availability-aware bound of the optimal search prunes on it,
    /// and an undercount would prune optimal schedules. Backends that
    /// cannot bound service return `None` (the default), which disables
    /// the availability bound and degrades the search to pure charge
    /// accounting. Retired batteries must report an envelope capped at
    /// zero units.
    fn service_envelope_into(
        &self,
        index: usize,
        max_units_per_draw: u32,
        out: &mut dkibam::ServiceEnvelope,
    ) -> Option<&dkibam::ServiceRateTable> {
        let _ = (index, max_units_per_draw, out);
        None
    }

    /// The exact discrete inputs for battery `index`'s service column —
    /// its current [`dkibam::DiscreteBattery`] state plus its type's
    /// parameters and recovery table — used by the relaxation bound of the
    /// optimal search to run the exact single-battery serve/skip DP
    /// ([`dkibam::ColumnBuilder`]). Backends whose state is not the
    /// discrete KiBaM return `None` (the default), which disables the
    /// relaxation bound for them.
    fn column_inputs(
        &self,
        index: usize,
    ) -> Option<(dkibam::DiscreteBattery, &kibam::BatteryParams, &dkibam::RecoveryTable)> {
        let _ = index;
        None
    }

    /// Whether batteries `a` and `b` are in identical states, so a search
    /// need only branch on one of them (symmetry pruning).
    fn states_identical(&self, a: usize, b: usize) -> bool;

    /// Lets every battery recover for `steps` time steps.
    fn advance_idle(&mut self, steps: u64);

    /// Lets battery `active` serve a job portion of `steps` time steps with
    /// the given draw pattern (one draw of `units_per_draw` charge units
    /// every `draw_interval_steps` steps) while all other batteries recover.
    ///
    /// If the active battery is observed empty at a draw instant it is
    /// retired and the advance reports `completed == false` together with
    /// the steps that did elapse; the caller re-schedules the remainder.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidBatteryIndex`] (or a backend error) if
    /// `active` is out of range.
    fn advance_job(
        &mut self,
        active: usize,
        steps: u64,
        draw_interval_steps: u32,
        units_per_draw: u32,
    ) -> Result<ModelAdvance, SchedError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{ContinuousKibam, DiscretizedKibam, RvDiffusion};
    use dkibam::Discretization;
    use kibam::BatteryParams;

    fn backends() -> (DiscretizedKibam, ContinuousKibam, RvDiffusion) {
        let params = BatteryParams::itsy_b1();
        let disc = Discretization::paper_default();
        (
            DiscretizedKibam::new(&params, &disc, 2),
            ContinuousKibam::new(&params, &disc, 2),
            RvDiffusion::new(&params, &disc, 2),
        )
    }

    fn exercise<M: BatteryModel>(model: &mut M) {
        assert_eq!(model.battery_count(), 2);
        assert_eq!(model.available(), vec![0, 1]);
        let full = model.total_charge();
        assert!((full - 11.0).abs() < 1e-9, "{}: {full}", model.backend_name());
        assert!((model.usable_charge() - full).abs() < 1e-9);
        assert!(model.states_identical(0, 1));

        let mut buf = vec![9usize; 4];
        model.available_into(&mut buf);
        assert_eq!(buf, vec![0, 1]);
        assert!(model.any_available());

        // One minute of 500 mA on battery 0: one charge unit every 2 steps.
        let saved = model.save_state();
        let advance = model.advance_job(0, 100, 2, 1).unwrap();
        assert!(advance.completed);
        assert_eq!(advance.steps_consumed, 100);
        assert!(!model.states_identical(0, 1));
        let after = model.charges();
        assert!((after[0].total - 5.0).abs() < 1e-9, "{}: {:?}", model.backend_name(), after);
        assert!((after[1].total - 5.5).abs() < 1e-9);
        assert!(after[0].available < after[1].available);

        // Idle recovery raises the served battery's available charge.
        model.advance_idle(100);
        assert!(model.charge(0).available > after[0].available);

        // Save/restore round-trips, including the in-place variant.
        let mut scratch = model.save_state();
        model.restore_state(&saved);
        assert!((model.total_charge() - full).abs() < 1e-9);
        assert!(model.states_identical(0, 1));
        model.advance_job(0, 100, 2, 1).unwrap();
        model.save_state_into(&mut scratch);
        let drained = model.total_charge();
        model.restore_state(&saved);
        model.restore_state(&scratch);
        assert!((model.total_charge() - drained).abs() < 1e-9);
        model.restore_state(&saved);

        // Reset returns to full no matter what happened before.
        model.advance_job(1, 200, 2, 1).unwrap();
        model.reset();
        assert!((model.total_charge() - full).abs() < 1e-9);
        assert_eq!(model.available(), vec![0, 1]);
    }

    #[test]
    fn discretized_backend_honours_the_contract() {
        let (mut discrete, _, _) = backends();
        exercise(&mut discrete);
    }

    #[test]
    fn continuous_backend_honours_the_contract() {
        let (_, mut continuous, _) = backends();
        exercise(&mut continuous);
    }

    #[test]
    fn rv_backend_honours_the_contract() {
        let (_, _, mut rv) = backends();
        exercise(&mut rv);
    }

    #[test]
    fn out_of_range_battery_is_rejected_by_every_backend() {
        let (mut discrete, mut continuous, mut rv) = backends();
        assert!(discrete.advance_job(7, 10, 2, 1).is_err());
        assert!(continuous.advance_job(7, 10, 2, 1).is_err());
        assert!(rv.advance_job(7, 10, 2, 1).is_err());
    }

    #[test]
    fn state_keys_canonicalize_battery_permutations() {
        let key_a = StateKey::from_words([3u128, 1, 2]).unwrap();
        let key_b = StateKey::from_words([1u128, 2, 3]).unwrap();
        assert_eq!(key_a, key_b);
        assert_eq!(key_a.len(), 3);
        assert!(!key_a.is_empty());
        assert_ne!(key_a, StateKey::from_words([1u128, 2, 4]).unwrap());
        // Length is part of the key: [1, 0] and [1] differ.
        assert_ne!(
            StateKey::from_words([1u128, 0]).unwrap(),
            StateKey::from_words([1u128]).unwrap()
        );
        // Too many batteries: no key, so callers skip memoization.
        assert!(StateKey::from_words([0u128; MAX_KEY_BATTERIES + 1]).is_none());
    }

    #[test]
    fn typed_state_keys_sort_only_within_type_groups() {
        // All-type-0 keys reduce to the global sort of the uniform path.
        let uniform = StateKey::from_words([3u128, 1]).unwrap();
        let typed = StateKey::from_typed_words([(0usize, 3u128), (0, 1)]).unwrap();
        assert_eq!(uniform, typed);

        // Words never swap across type groups: a drained type-0 next to a
        // fresh type-1 differs from the mirrored state.
        let ab = StateKey::from_typed_words([(0usize, 3u128), (1, 1)]).unwrap();
        let ba = StateKey::from_typed_words([(0usize, 1u128), (1, 3)]).unwrap();
        assert_ne!(ab, ba);
        assert!(ab.same_layout(&ba));
        assert_eq!(ab.types(), &[0, 1]);

        // Permutations within a type group still collide.
        let x = StateKey::from_typed_words([(0usize, 5u128), (0, 2), (1, 9)]).unwrap();
        let y = StateKey::from_typed_words([(0usize, 2u128), (0, 5), (1, 9)]).unwrap();
        assert_eq!(x, y);
        assert_eq!(x.words(), &[2, 5, 9]);

        // Different layouts never compare as the same fleet shape.
        assert!(!uniform.same_layout(&ab));

        // Type ids beyond u8 (and too many batteries) yield no key.
        assert!(StateKey::from_typed_words([(usize::from(u8::MAX) + 1, 0u128)]).is_none());
        assert!(StateKey::from_typed_words((0..5).map(|_| (0usize, 0u128))).is_none());
    }

    #[test]
    fn memo_keys_exist_for_exactly_keyable_backends() {
        let (mut discrete, continuous, rv) = backends();
        // Float-state continuous cells cannot be keyed exactly; the
        // grid-aligned RV cells can.
        assert!(continuous.memo_key().is_none());
        assert!(rv.memo_key().is_some());
        let fresh = discrete.memo_key().unwrap();
        // Draining battery 0 vs battery 1 yields the same canonical key.
        let saved = discrete.save_state();
        discrete.advance_job(0, 100, 2, 1).unwrap();
        let key_0 = discrete.memo_key().unwrap();
        discrete.restore_state(&saved);
        discrete.advance_job(1, 100, 2, 1).unwrap();
        let key_1 = discrete.memo_key().unwrap();
        assert_eq!(key_0, key_1, "permuted states share a canonical key");
        assert_ne!(fresh, key_0);
    }
}
