//! The backend-agnostic battery-stepping contract.
//!
//! The simulator and the optimal-schedule search only need a handful of
//! operations from a battery model: let one battery serve (a portion of) a
//! job while the rest recover, let every battery recover through an idle
//! period, test for emptiness and take charge snapshots. This module
//! extracts that contract into the [`BatteryModel`] trait so the same
//! scheduling machinery runs against different battery backends:
//!
//! * [`crate::backends::DiscretizedKibam`] — the paper's discretized KiBaM
//!   (integer charge/height units), the model behind Tables 3–5;
//! * [`crate::backends::ContinuousKibam`] — the closed-form continuous KiBaM,
//!   which cross-validates the discretization and is much cheaper to step
//!   over long horizons.
//!
//! Time is always measured in discrete *steps* of the [`Discretization`]
//! that produced the load — the load's job boundaries and draw instants are
//! the scheduling points, no matter how a backend represents battery state
//! internally. Backends expose a cheap save/restore state (the
//! [`BatteryModel::State`] associated type) so that search-based schedulers
//! can branch without cloning static data such as recovery tables.
//!
//! [`Discretization`]: dkibam::Discretization

use crate::schedule::BatteryCharge;
use crate::SchedError;

/// Result of letting one battery serve (a portion of) a job.
///
/// Mirrors `dkibam::multi::JobAdvance`, but at the trait layer so that
/// non-discretized backends can report the same information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelAdvance {
    /// Time steps that actually elapsed.
    pub steps_consumed: u64,
    /// `true` if the requested number of steps was served completely;
    /// `false` if the active battery was observed empty before the end (the
    /// remaining steps still need to be served by another battery).
    pub completed: bool,
}

/// A multi-battery battery model that the scheduling engine can step.
///
/// Implementations hold the joint state of all batteries in the system plus
/// whatever static data they need (parameters, recovery tables). The
/// contract, in the paper's terms (Sections 2 and 4):
///
/// * [`advance_job`](Self::advance_job) — one battery serves a job portion
///   with a given draw pattern while the others recover; the battery is
///   *observed empty* at a draw instant and retired if the emptiness
///   criterion holds there;
/// * [`advance_idle`](Self::advance_idle) — every battery recovers;
/// * [`is_empty`](Self::is_empty) / [`available`](Self::available) — the
///   emptiness test (Eq. 3 continuous, Eq. 8 discretized), sticky once a
///   battery has been observed empty;
/// * [`charge`](Self::charge) — total / available charge snapshots, the
///   quantities policies decide on and traces record.
pub trait BatteryModel {
    /// A cheap snapshot of the dynamic state of all batteries, used by
    /// search-based schedulers to branch. Static data (parameters, recovery
    /// tables) must not live in the state.
    type State: Clone;

    /// A short name identifying the backend in reports and JSON output.
    fn backend_name(&self) -> &'static str;

    /// The number of batteries in the system.
    fn battery_count(&self) -> usize;

    /// Returns every battery to the freshly-charged state.
    fn reset(&mut self);

    /// Captures the current dynamic state.
    fn save_state(&self) -> Self::State;

    /// Restores a previously captured dynamic state.
    fn restore_state(&mut self, state: &Self::State);

    /// Whether battery `index` is empty: either currently satisfying the
    /// emptiness criterion or already observed empty and retired.
    fn is_empty(&self, index: usize) -> bool;

    /// Indices of the batteries that can still serve a job.
    fn available(&self) -> Vec<usize> {
        (0..self.battery_count()).filter(|&i| !self.is_empty(i)).collect()
    }

    /// Charge snapshot (total and available charge, A·min) of battery
    /// `index`.
    fn charge(&self, index: usize) -> BatteryCharge;

    /// Charge snapshots of all batteries, in index order.
    fn charges(&self) -> Vec<BatteryCharge> {
        (0..self.battery_count()).map(|i| self.charge(i)).collect()
    }

    /// Fills `out` with the charge snapshots of all batteries, reusing its
    /// allocation. The simulation loop snapshots at every scheduling
    /// decision, so this avoids a per-decision allocation.
    fn charges_into(&self, out: &mut Vec<BatteryCharge>) {
        out.clear();
        out.extend((0..self.battery_count()).map(|i| self.charge(i)));
    }

    /// Total remaining charge over all batteries, in A·min (including
    /// retired ones — their stranded charge is what the paper's residual
    /// observations count).
    fn total_charge(&self) -> f64 {
        (0..self.battery_count()).map(|i| self.charge(i).total).sum()
    }

    /// Total remaining charge over the batteries that have *not* been
    /// retired, in A·min. Upper-bound computations in search schedulers use
    /// this: retired charge can never be delivered.
    fn usable_charge(&self) -> f64;

    /// Whether batteries `a` and `b` are in identical states, so a search
    /// need only branch on one of them (symmetry pruning).
    fn states_identical(&self, a: usize, b: usize) -> bool;

    /// Lets every battery recover for `steps` time steps.
    fn advance_idle(&mut self, steps: u64);

    /// Lets battery `active` serve a job portion of `steps` time steps with
    /// the given draw pattern (one draw of `units_per_draw` charge units
    /// every `draw_interval_steps` steps) while all other batteries recover.
    ///
    /// If the active battery is observed empty at a draw instant it is
    /// retired and the advance reports `completed == false` together with
    /// the steps that did elapse; the caller re-schedules the remainder.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidBatteryIndex`] (or a backend error) if
    /// `active` is out of range.
    fn advance_job(
        &mut self,
        active: usize,
        steps: u64,
        draw_interval_steps: u32,
        units_per_draw: u32,
    ) -> Result<ModelAdvance, SchedError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{ContinuousKibam, DiscretizedKibam};
    use dkibam::Discretization;
    use kibam::BatteryParams;

    fn backends() -> (DiscretizedKibam, ContinuousKibam) {
        let params = BatteryParams::itsy_b1();
        let disc = Discretization::paper_default();
        (DiscretizedKibam::new(&params, &disc, 2), ContinuousKibam::new(&params, &disc, 2))
    }

    fn exercise<M: BatteryModel>(model: &mut M) {
        assert_eq!(model.battery_count(), 2);
        assert_eq!(model.available(), vec![0, 1]);
        let full = model.total_charge();
        assert!((full - 11.0).abs() < 1e-9, "{}: {full}", model.backend_name());
        assert!((model.usable_charge() - full).abs() < 1e-9);
        assert!(model.states_identical(0, 1));

        // One minute of 500 mA on battery 0: one charge unit every 2 steps.
        let saved = model.save_state();
        let advance = model.advance_job(0, 100, 2, 1).unwrap();
        assert!(advance.completed);
        assert_eq!(advance.steps_consumed, 100);
        assert!(!model.states_identical(0, 1));
        let after = model.charges();
        assert!((after[0].total - 5.0).abs() < 1e-9, "{}: {:?}", model.backend_name(), after);
        assert!((after[1].total - 5.5).abs() < 1e-9);
        assert!(after[0].available < after[1].available);

        // Idle recovery raises the served battery's available charge.
        model.advance_idle(100);
        assert!(model.charge(0).available > after[0].available);

        // Save/restore round-trips.
        model.restore_state(&saved);
        assert!((model.total_charge() - full).abs() < 1e-9);
        assert!(model.states_identical(0, 1));

        // Reset returns to full no matter what happened before.
        model.advance_job(1, 200, 2, 1).unwrap();
        model.reset();
        assert!((model.total_charge() - full).abs() < 1e-9);
        assert_eq!(model.available(), vec![0, 1]);
    }

    #[test]
    fn discretized_backend_honours_the_contract() {
        let (mut discrete, _) = backends();
        exercise(&mut discrete);
    }

    #[test]
    fn continuous_backend_honours_the_contract() {
        let (_, mut continuous) = backends();
        exercise(&mut continuous);
    }

    #[test]
    fn out_of_range_battery_is_rejected_by_both_backends() {
        let (mut discrete, mut continuous) = backends();
        assert!(discrete.advance_job(7, 10, 2, 1).is_err());
        assert!(continuous.advance_job(7, 10, 2, 1).is_err());
    }
}
