//! Battery scheduling for maximizing system lifetime.
//!
//! This crate is the primary contribution of the reproduction of
//! *"Maximizing System Lifetime by Battery Scheduling"* (Jongerden et al.,
//! DSN 2009). Given a device powered by several batteries and a load made of
//! jobs and idle periods, it answers the question the paper poses: **which
//! battery should serve each job so that the system as a whole lives as long
//! as possible?**
//!
//! The construction API is **fleet-first**: systems are described by a
//! [`kibam::FleetSpec`] — an ordered list of per-battery parameters, so
//! heterogeneous mixes like one B1 next to one B2 are first-class — with
//! `params × count` convenience constructors for the paper's uniform
//! systems.
//!
//! The crate provides:
//!
//! * the [`model::BatteryModel`] trait — the backend-agnostic
//!   battery-stepping contract — with four backends:
//!   [`backends::DiscretizedKibam`] (the paper's discretized model),
//!   [`backends::ContinuousKibam`] (closed-form analytic stepping),
//!   [`backends::RvDiffusion`] (the Rakhmatov–Vrudhula diffusion model,
//!   fitted from the fleet's KiBaM parameters — the cross-model check) and
//!   [`backends::IdealBattery`] (the linear cross-model baseline);
//! * the three deterministic scheduling policies compared in the paper —
//!   [`policy::Sequential`], [`policy::RoundRobin`] and
//!   [`policy::BestAvailable`] ("best of two") — a fleet-aware
//!   [`policy::CapacityWeightedRoundRobin`] baseline, plus replay of
//!   explicit schedules ([`policy::FixedSchedule`]);
//! * a multi-battery system simulator, generic over the backend
//!   ([`system::simulate_policy_with`]; [`system::simulate_policy`] runs the
//!   discretized default) that produces lifetimes, schedules and charge
//!   traces (the ingredients of Tables 5 and Figure 6);
//! * the **optimal scheduler** ([`optimal::OptimalScheduler`]) — a
//!   memoized branch-and-bound search over the discrete battery state that
//!   plays the role of the Uppaal Cora query in the paper;
//! * the faithful **TA-KiBaM** encoding ([`ta_model`]) of Figure 5 on top of
//!   the [`pta`] crate, used to cross-validate the direct search on small
//!   instances;
//! * lifetime analysis helpers ([`report`]) used by the benchmark harness to
//!   regenerate the paper's tables.
//!
//! # Quick example: Table 5, one row
//!
//! ```
//! use battery_sched::policy::{BestAvailable, RoundRobin, Sequential};
//! use battery_sched::system::{simulate_policy, SystemConfig};
//! use dkibam::Discretization;
//! use kibam::BatteryParams;
//! use workload::paper_loads::TestLoad;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SystemConfig::new(BatteryParams::itsy_b1(), Discretization::paper_default(), 2)?;
//! let load = TestLoad::Ils500.profile();
//!
//! let seq = simulate_policy(&config, &load, &mut Sequential::new())?;
//! let rr = simulate_policy(&config, &load, &mut RoundRobin::new())?;
//! let best = simulate_policy(&config, &load, &mut BestAvailable::new())?;
//!
//! // Table 5 (ILs 500): sequential 8.60, round robin 10.48, best-of-two 10.48.
//! assert!(seq.lifetime_minutes().unwrap() < rr.lifetime_minutes().unwrap());
//! assert!((rr.lifetime_minutes().unwrap() - best.lifetime_minutes().unwrap()).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod backends;
mod error;
pub mod model;
pub mod optimal;
pub mod policy;
pub mod report;
pub mod schedule;
pub mod system;
pub mod ta_model;

pub use error::SchedError;
pub use model::{BatteryModel, ModelAdvance, StateKey, MAX_KEY_BATTERIES};
