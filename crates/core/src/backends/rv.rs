//! The Rakhmatov–Vrudhula diffusion backend: cross-model validation.
//!
//! Wraps the discretized RV stepping form of the [`rv`] crate as a
//! [`BatteryModel`] backend, the way [`super::DiscretizedKibam`] wraps
//! `dkibam`. RV parameters are fitted per battery *type* from the fleet's
//! KiBaM parameters ([`rv::RvParams::from_kibam`]: shared capacity,
//! matched steady-state recovery gain), and the per-type correction tables
//! live in a static [`rv::RvFleet`] so that search snapshots carry only the
//! dynamic [`RvCell`]s.
//!
//! The backend is a full search citizen: cells keep integer consumed units
//! and *grid-aligned* fixed-point diffusion moments, so canonical
//! [`StateKey`]s are exact (equal words ⇔ equal states) and both the
//! transposition table and dominance pruning of the optimal search engage —
//! unlike the float-state continuous backend, which opts out of keying.
//! Like the continuous backend, it explicitly opts **out** of
//! [`BatteryModel::service_envelope_into`]: the availability bound's
//! service-frontier analysis is a KiBaM-shaped (Eq. 8) computation, and a
//! diffusion battery has no equivalent precomputed frontier, so the search
//! soundly degrades to the charge bound on this backend.
//!
//! Scheduling semantics mirror the discretized KiBaM: draws consume whole
//! charge units at draw instants, the other batteries recover meanwhile,
//! and emptiness (`σ ≥ α`) is *observed* at draw instants and sticky once
//! observed (Section 4.3 of the paper).

use crate::model::{BatteryModel, ModelAdvance, StateKey};
use crate::schedule::BatteryCharge;
use crate::SchedError;
use dkibam::Discretization;
use kibam::{BatteryParams, FleetSpec};
use rv::{RvCell, RvFleet};

/// The Rakhmatov–Vrudhula diffusion model as a [`BatteryModel`] backend.
#[derive(Debug, Clone)]
pub struct RvDiffusion {
    fleet: RvFleet,
    cells: Vec<RvCell>,
}

impl RvDiffusion {
    /// Creates a system of `count` identical, freshly charged batteries.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero; use [`RvDiffusion::from_fleet`] with a
    /// validated [`FleetSpec`] to handle the error explicitly.
    #[must_use]
    pub fn new(params: &BatteryParams, disc: &Discretization, count: usize) -> Self {
        // xlint: allow(panic) -- documented `# Panics` convenience constructor
        let fleet = FleetSpec::uniform(*params, count).expect("battery count must be positive");
        Self::from_fleet(&fleet, disc)
    }

    /// Creates a freshly charged system from a (possibly heterogeneous)
    /// fleet. Each battery type's RV parameters are fitted from its KiBaM
    /// parameters.
    #[must_use]
    pub fn from_fleet(fleet: &FleetSpec, disc: &Discretization) -> Self {
        let fleet = RvFleet::new(fleet.clone(), *disc);
        let cells = (0..fleet.len()).map(|i| fleet.table_of(i).fresh_cell()).collect();
        Self { fleet, cells }
    }

    /// The per-battery states, in index order.
    #[must_use]
    pub fn cells(&self) -> &[RvCell] {
        &self.cells
    }

    /// The static fleet data (fitted parameters and correction tables).
    #[must_use]
    pub fn fleet(&self) -> &RvFleet {
        &self.fleet
    }

    /// Lets every battery except `active` (pass `None` for an idle period)
    /// recover for `steps` time steps.
    fn recover_others(&mut self, active: Option<usize>, steps: u64) {
        for (index, cell) in self.cells.iter_mut().enumerate() {
            if Some(index) != active {
                self.fleet.table_of(index).recover(cell, steps);
            }
        }
    }
}

impl BatteryModel for RvDiffusion {
    type State = Vec<RvCell>;

    fn backend_name(&self) -> &'static str {
        "rv"
    }

    fn battery_count(&self) -> usize {
        self.cells.len()
    }

    fn type_of(&self, index: usize) -> usize {
        self.fleet.type_of(index)
    }

    fn reset(&mut self) {
        for (index, cell) in self.cells.iter_mut().enumerate() {
            *cell = self.fleet.table_of(index).fresh_cell();
        }
    }

    fn save_state(&self) -> Vec<RvCell> {
        self.cells.clone()
    }

    fn save_state_into(&self, out: &mut Vec<RvCell>) {
        out.clear();
        out.extend_from_slice(&self.cells);
    }

    fn restore_state(&mut self, state: &Vec<RvCell>) {
        self.cells.clone_from(state);
    }

    fn is_empty(&self, index: usize) -> bool {
        self.fleet.table_of(index).is_empty(&self.cells[index])
    }

    fn memo_key(&self) -> Option<StateKey> {
        let mut words = [(0usize, 0u128); crate::model::MAX_KEY_BATTERIES];
        if self.cells.len() > words.len() {
            return None;
        }
        for (index, cell) in self.cells.iter().enumerate() {
            let word = self.fleet.table_of(index).state_word(cell)?;
            words[index] = (self.fleet.type_of(index), word);
        }
        StateKey::from_typed_words(words.into_iter().take(self.cells.len()))
    }

    fn key_dominates(&self, a: &StateKey, b: &StateKey) -> bool {
        a.dominates_pairwise(b, RvCell::word_dominates)
    }

    fn charge(&self, index: usize) -> BatteryCharge {
        let table = self.fleet.table_of(index);
        let cell = &self.cells[index];
        // Policies decide on `available`, which for the RV model is the
        // apparent remaining charge α - σ: it shrinks under load faster
        // than the true charge and recovers when idle, exactly the signal
        // best-of-two needs.
        BatteryCharge { total: table.total_charge(cell), available: table.apparent_charge(cell) }
    }

    fn usable_charge(&self) -> f64 {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, cell)| !cell.is_observed_empty())
            .map(|(index, cell)| self.fleet.table_of(index).total_charge(cell))
            .sum()
    }

    // `service_envelope_into` deliberately stays at the trait default
    // (`None`): the availability bound's service envelopes are built from
    // the discretized KiBaM's Eq. 8 reachability analysis, which has no RV
    // counterpart here, so the search degrades to the (still admissible)
    // charge bound — the same explicit opt-out as the continuous backend.

    fn states_identical(&self, a: usize, b: usize) -> bool {
        self.fleet.type_of(a) == self.fleet.type_of(b) && self.cells[a] == self.cells[b]
    }

    fn advance_idle(&mut self, steps: u64) {
        self.recover_others(None, steps);
    }

    fn advance_job(
        &mut self,
        active: usize,
        steps: u64,
        draw_interval_steps: u32,
        units_per_draw: u32,
    ) -> Result<ModelAdvance, SchedError> {
        if active >= self.cells.len() {
            return Err(SchedError::InvalidBatteryIndex { index: active, count: self.cells.len() });
        }
        if draw_interval_steps == 0 || units_per_draw == 0 {
            // Degenerate "job" that draws nothing: just idle time.
            self.advance_idle(steps);
            return Ok(ModelAdvance { steps_consumed: steps, completed: true });
        }
        if self.is_empty(active) {
            self.cells[active].mark_observed_empty();
            return Ok(ModelAdvance { steps_consumed: 0, completed: false });
        }

        let table = self.fleet.table_of(active);
        let advance =
            table.serve(&mut self.cells[active], steps, draw_interval_steps, units_per_draw);
        self.recover_others(Some(active), advance.steps_consumed);
        Ok(ModelAdvance { steps_consumed: advance.steps_consumed, completed: advance.completed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv::RvParams;

    fn b1_pair() -> RvDiffusion {
        RvDiffusion::new(&BatteryParams::itsy_b1(), &Discretization::paper_default(), 2)
    }

    #[test]
    fn constant_load_matches_the_analytic_rv_lifetime() {
        let disc = Discretization::paper_default();
        let mut model = RvDiffusion::new(&BatteryParams::itsy_b1(), &disc, 1);
        let advance = model.advance_job(0, 1_000_000, 2, 1).unwrap();
        assert!(!advance.completed);
        let minutes = disc.steps_to_minutes(advance.steps_consumed);
        let analytic =
            rv::analytic::lifetime_constant_current(&RvParams::itsy_b1(), 0.5).unwrap().unwrap();
        assert!((minutes - analytic).abs() < 0.05, "died at {minutes}, analytic {analytic}");
        assert!(model.is_empty(0));
        assert!(model.available().is_empty());
    }

    #[test]
    fn idle_periods_recover_apparent_charge() {
        let mut model = b1_pair();
        model.advance_job(0, 100, 2, 1).unwrap();
        let after_job = model.charge(0);
        model.advance_idle(100);
        let after_idle = model.charge(0);
        assert!(after_idle.available > after_job.available);
        assert!((after_idle.total - after_job.total).abs() < 1e-12, "idle consumes nothing");
    }

    #[test]
    fn passive_batteries_recover_while_the_active_one_serves() {
        let mut model = b1_pair();
        // Stress battery 1, then serve on battery 0: battery 1 recovers.
        model.advance_job(1, 100, 2, 1).unwrap();
        let stressed = model.charge(1);
        model.advance_job(0, 100, 2, 1).unwrap();
        assert!(model.charge(1).available > stressed.available);
    }

    #[test]
    fn observed_empty_is_sticky_even_after_recovery() {
        let mut model =
            RvDiffusion::new(&BatteryParams::itsy_b1(), &Discretization::paper_default(), 1);
        let advance = model.advance_job(0, 1_000_000, 2, 1).unwrap();
        assert!(!advance.completed);
        model.advance_idle(1_000_000);
        assert!(model.charge(0).available > 0.0, "the deficit dissipated");
        assert!(model.is_empty(0), "but the battery stays retired");
        assert!((model.usable_charge() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn scheduling_an_empty_battery_consumes_no_time() {
        let mut model = b1_pair();
        let first = model.advance_job(0, 1_000_000, 2, 1).unwrap();
        assert!(!first.completed);
        let again = model.advance_job(0, 100, 2, 1).unwrap();
        assert_eq!(again.steps_consumed, 0);
        assert!(!again.completed);
        assert!(model.advance_job(9, 100, 2, 1).is_err());
    }

    #[test]
    fn memo_keys_canonicalize_same_type_permutations() {
        let mut model = b1_pair();
        let fresh = model.save_state();
        let fresh_key = model.memo_key().expect("RV states pack into exact keys");
        model.advance_job(0, 100, 2, 1).unwrap();
        let key_0 = model.memo_key().unwrap();
        model.restore_state(&fresh);
        model.advance_job(1, 100, 2, 1).unwrap();
        let key_1 = model.memo_key().unwrap();
        assert_eq!(key_0, key_1, "permuted same-type drains share a canonical key");
        assert_ne!(fresh_key, key_0);
        // Dominance: the fresh fleet dominates the drained one.
        assert!(model.key_dominates(&fresh_key, &key_0));
        assert!(!model.key_dominates(&key_0, &fresh_key));
    }

    #[test]
    fn mixed_fleet_keys_do_not_swap_batteries_across_types() {
        let fleet =
            FleetSpec::new(vec![BatteryParams::itsy_b1(), BatteryParams::itsy_b2()]).unwrap();
        let mut model = RvDiffusion::from_fleet(&fleet, &Discretization::paper_default());
        assert_eq!(model.type_of(0), 0);
        assert_eq!(model.type_of(1), 1);
        assert!(!model.states_identical(0, 1), "different types are never symmetric");
        let initial = model.save_state();
        model.advance_job(0, 100, 2, 1).unwrap();
        let drained_b1 = model.memo_key().unwrap();
        model.restore_state(&initial);
        model.advance_job(1, 100, 2, 1).unwrap();
        let drained_b2 = model.memo_key().unwrap();
        assert_ne!(drained_b1, drained_b2, "cross-type states must not collide");
        assert!(drained_b1.same_layout(&drained_b2));
    }

    #[test]
    fn mixed_fleet_tracks_per_battery_capacity() {
        let fleet =
            FleetSpec::new(vec![BatteryParams::itsy_b1(), BatteryParams::itsy_b2()]).unwrap();
        let mut model = RvDiffusion::from_fleet(&fleet, &Discretization::paper_default());
        assert!((model.total_charge() - 16.5).abs() < 1e-9);
        let b1_death = model.advance_job(0, 1_000_000, 2, 1).unwrap();
        assert!(!b1_death.completed);
        let b2_death = model.advance_job(1, 1_000_000, 2, 1).unwrap();
        assert!(!b2_death.completed);
        assert!(
            b2_death.steps_consumed > b1_death.steps_consumed,
            "the larger B2 outlives the B1 under the same load"
        );
        model.reset();
        assert!((model.total_charge() - 16.5).abs() < 1e-9);
        assert_eq!(model.available(), vec![0, 1]);
    }

    #[test]
    fn save_restore_round_trips_including_in_place() {
        let mut model = b1_pair();
        let fresh = model.save_state();
        model.advance_job(0, 500, 2, 1).unwrap();
        let mut scratch = model.save_state();
        model.advance_job(1, 300, 2, 1).unwrap();
        model.save_state_into(&mut scratch);
        let drained = model.total_charge();
        model.restore_state(&fresh);
        assert!((model.total_charge() - 11.0).abs() < 1e-12);
        model.restore_state(&scratch);
        assert!((model.total_charge() - drained).abs() < 1e-12);
    }

    #[test]
    fn degenerate_draw_pattern_is_idle_time() {
        let mut model = b1_pair();
        let advance = model.advance_job(0, 50, 0, 0).unwrap();
        assert!(advance.completed);
        assert!((model.total_charge() - 11.0).abs() < 1e-12);
    }
}
