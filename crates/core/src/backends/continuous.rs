//! The continuous-KiBaM backend: closed-form analytic stepping.
//!
//! Jobs arrive from the engine in the discretized form of Section 4.1 (a
//! draw of `units_per_draw` charge units every `draw_interval_steps` time
//! steps). This backend maps that pattern back onto the equivalent constant
//! current `I = units·Γ / (interval·T)` and evolves every battery with the
//! exact analytical solution of Eq. 2, so stepping cost is independent of
//! the grid resolution. Emptiness is still *observed* at draw instants, as
//! in the discretized model and the paper's TA encoding: the battery is
//! retired at the first draw instant at or after the continuous
//! time-to-empty crossing.
//!
//! The backend is fleet-aware: every cell evolves under its own battery's
//! parameters, so heterogeneous (e.g. B1 + B2) systems work unchanged.

use crate::model::{BatteryModel, ModelAdvance};
use crate::schedule::BatteryCharge;
use crate::SchedError;
use dkibam::Discretization;
use kibam::analytic::{evolve, time_to_empty};
use kibam::{BatteryParams, FleetSpec, TransformedState};

/// One battery of the continuous backend: its transformed state plus the
/// sticky observed-empty flag of Section 4.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuousCell {
    /// The battery state in the transformed `(δ, γ)` coordinates.
    pub state: TransformedState,
    /// Whether this battery has been observed empty and retired.
    pub observed_empty: bool,
}

/// The continuous KiBaM of Section 2.2 as a [`BatteryModel`] backend.
#[derive(Debug, Clone)]
pub struct ContinuousKibam {
    fleet: FleetSpec,
    disc: Discretization,
    cells: Vec<ContinuousCell>,
}

impl ContinuousKibam {
    /// Creates a system of `count` identical, freshly charged batteries.
    ///
    /// The [`Discretization`] defines the time base: the engine hands this
    /// backend durations in time steps, and the draw patterns of the
    /// discretized load are converted back to constant currents with it.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero; use [`ContinuousKibam::from_fleet`] with a
    /// validated [`FleetSpec`] to handle the error explicitly.
    #[must_use]
    pub fn new(params: &BatteryParams, disc: &Discretization, count: usize) -> Self {
        // xlint: allow(panic) -- documented `# Panics` convenience constructor
        let fleet = FleetSpec::uniform(*params, count).expect("battery count must be positive");
        Self::from_fleet(&fleet, disc)
    }

    /// Creates a freshly charged system from a (possibly heterogeneous)
    /// fleet.
    #[must_use]
    pub fn from_fleet(fleet: &FleetSpec, disc: &Discretization) -> Self {
        let cells = fleet
            .params()
            .iter()
            .map(|params| ContinuousCell {
                state: TransformedState::full(params),
                observed_empty: false,
            })
            .collect();
        Self { fleet: fleet.clone(), disc: *disc, cells }
    }

    /// The per-battery states, in index order.
    #[must_use]
    pub fn cells(&self) -> &[ContinuousCell] {
        &self.cells
    }

    /// The fleet description.
    #[must_use]
    pub fn fleet(&self) -> &FleetSpec {
        &self.fleet
    }

    /// Evolves every battery except `active` (pass `None` for an idle
    /// period) for `minutes` under zero current.
    fn recover_others(&mut self, active: Option<usize>, minutes: f64) {
        for (index, cell) in self.cells.iter_mut().enumerate() {
            if Some(index) != active {
                cell.state = evolve(self.fleet.battery(index), cell.state, 0.0, minutes)
                    // xlint: allow(panic) -- zero current and nonnegative durations always validate
                    .expect("zero current and non-negative durations are always valid");
            }
        }
    }
}

impl BatteryModel for ContinuousKibam {
    type State = Vec<ContinuousCell>;

    fn backend_name(&self) -> &'static str {
        "continuous"
    }

    fn battery_count(&self) -> usize {
        self.cells.len()
    }

    fn type_of(&self, index: usize) -> usize {
        self.fleet.type_of(index)
    }

    fn reset(&mut self) {
        for (cell, params) in self.cells.iter_mut().zip(self.fleet.params()) {
            *cell = ContinuousCell { state: TransformedState::full(params), observed_empty: false };
        }
    }

    fn save_state(&self) -> Vec<ContinuousCell> {
        self.cells.clone()
    }

    fn save_state_into(&self, out: &mut Vec<ContinuousCell>) {
        out.clear();
        out.extend_from_slice(&self.cells);
    }

    fn restore_state(&mut self, state: &Vec<ContinuousCell>) {
        self.cells.clone_from(state);
    }

    fn any_available(&self) -> bool {
        (0..self.cells.len()).any(|i| !self.is_empty(i))
    }

    fn is_empty(&self, index: usize) -> bool {
        let cell = &self.cells[index];
        cell.observed_empty || cell.state.is_empty(self.fleet.battery(index))
    }

    fn charge(&self, index: usize) -> BatteryCharge {
        let state = self.cells[index].state;
        // Serving until the observation draw instant can push gamma slightly
        // past zero (mirroring the discretized draw semantics); snapshots
        // clamp so consumers always see non-negative charge.
        BatteryCharge {
            total: state.gamma.max(0.0),
            available: state.available_charge(self.fleet.battery(index)),
        }
    }

    fn usable_charge(&self) -> f64 {
        self.cells.iter().filter(|c| !c.observed_empty).map(|c| c.state.gamma.max(0.0)).sum()
    }

    fn states_identical(&self, a: usize, b: usize) -> bool {
        self.fleet.type_of(a) == self.fleet.type_of(b) && self.cells[a] == self.cells[b]
    }

    fn advance_idle(&mut self, steps: u64) {
        let minutes = self.disc.steps_to_minutes(steps);
        self.recover_others(None, minutes);
    }

    fn advance_job(
        &mut self,
        active: usize,
        steps: u64,
        draw_interval_steps: u32,
        units_per_draw: u32,
    ) -> Result<ModelAdvance, SchedError> {
        if active >= self.cells.len() {
            return Err(SchedError::InvalidBatteryIndex { index: active, count: self.cells.len() });
        }
        if draw_interval_steps == 0 || units_per_draw == 0 {
            // Degenerate "job" that draws nothing: just idle time.
            self.advance_idle(steps);
            return Ok(ModelAdvance { steps_consumed: steps, completed: true });
        }
        if self.is_empty(active) {
            self.cells[active].observed_empty = true;
            return Ok(ModelAdvance { steps_consumed: 0, completed: false });
        }

        let params = *self.fleet.battery(active);
        let time_step = self.disc.time_step();
        let interval_minutes = f64::from(draw_interval_steps) * time_step;
        let current = f64::from(units_per_draw) * self.disc.charge_unit() / interval_minutes;
        let duration = steps as f64 * time_step;

        let crossing = time_to_empty(&params, self.cells[active].state, current)?;
        // The battery is *observed* empty at the first draw instant at or
        // after the continuous empty crossing; if that instant lies beyond
        // this job portion, the portion completes and the emptiness is
        // caught at the next scheduling point.
        let observation = crossing.map(|t| {
            let draws = dkibam::checked::f64_to_u64((t / interval_minutes).ceil().max(1.0));
            draws.saturating_mul(u64::from(draw_interval_steps))
        });

        match observation {
            Some(observed_steps) if observed_steps <= steps => {
                let minutes = observed_steps as f64 * time_step;
                self.cells[active].state =
                    evolve(&params, self.cells[active].state, current, minutes)?;
                self.cells[active].observed_empty = true;
                self.recover_others(Some(active), minutes);
                Ok(ModelAdvance { steps_consumed: observed_steps, completed: false })
            }
            _ => {
                self.cells[active].state =
                    evolve(&params, self.cells[active].state, current, duration)?;
                self.recover_others(Some(active), duration);
                Ok(ModelAdvance { steps_consumed: steps, completed: true })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b1_pair() -> ContinuousKibam {
        ContinuousKibam::new(&BatteryParams::itsy_b1(), &Discretization::paper_default(), 2)
    }

    #[test]
    fn constant_load_matches_the_analytic_lifetime() {
        // A single battery under continuous 500 mA: serve one long job and
        // compare the observed death time with Table 3's 2.02 min.
        let mut model =
            ContinuousKibam::new(&BatteryParams::itsy_b1(), &Discretization::paper_default(), 1);
        // 500 mA = 1 charge unit every 2 steps; ask for far more steps than
        // the battery can serve.
        let advance = model.advance_job(0, 100_000, 2, 1).unwrap();
        assert!(!advance.completed);
        let minutes = Discretization::paper_default().steps_to_minutes(advance.steps_consumed);
        assert!((minutes - 2.02).abs() < 0.03, "died at {minutes} min");
        assert!(model.is_empty(0));
        assert!(model.available().is_empty());
    }

    #[test]
    fn idle_periods_recover_available_charge() {
        let mut model = b1_pair();
        model.advance_job(0, 100, 2, 1).unwrap();
        let after_job = model.charge(0);
        model.advance_idle(100);
        let after_idle = model.charge(0);
        assert!(after_idle.available > after_job.available);
        assert!((after_idle.total - after_job.total).abs() < 1e-12);
    }

    #[test]
    fn degenerate_draw_pattern_is_idle_time() {
        let mut model = b1_pair();
        let advance = model.advance_job(0, 50, 0, 0).unwrap();
        assert!(advance.completed);
        assert!((model.total_charge() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn observed_empty_is_sticky_even_after_recovery() {
        let mut model =
            ContinuousKibam::new(&BatteryParams::itsy_b1(), &Discretization::paper_default(), 1);
        let advance = model.advance_job(0, 100_000, 2, 1).unwrap();
        assert!(!advance.completed);
        model.advance_idle(100_000);
        // Recovery made charge available again, but the battery stays
        // retired, exactly as in the discretized model (Section 4.3).
        assert!(model.charge(0).available > 0.0);
        assert!(model.is_empty(0));
        assert!((model.usable_charge() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn scheduling_an_empty_battery_consumes_no_time() {
        let mut model = b1_pair();
        let first = model.advance_job(0, 100_000, 2, 1).unwrap();
        assert!(!first.completed);
        let again = model.advance_job(0, 100, 2, 1).unwrap();
        assert_eq!(again.steps_consumed, 0);
        assert!(!again.completed);
    }

    #[test]
    fn mixed_fleet_evolves_each_battery_under_its_own_parameters() {
        let fleet =
            FleetSpec::new(vec![BatteryParams::itsy_b1(), BatteryParams::itsy_b2()]).unwrap();
        let mut model = ContinuousKibam::from_fleet(&fleet, &Discretization::paper_default());
        assert!(!model.states_identical(0, 1), "different types are never symmetric");
        assert!((model.total_charge() - 16.5).abs() < 1e-9);
        // The B1 dies under sustained 500 mA around its Table 3 lifetime;
        // the B2 then serves roughly twice as long (Table 4: 4.82 min).
        let b1_death = model.advance_job(0, 100_000, 2, 1).unwrap();
        assert!(!b1_death.completed);
        let b2_death = model.advance_job(1, 100_000, 2, 1).unwrap();
        assert!(!b2_death.completed);
        assert!(
            b2_death.steps_consumed > b1_death.steps_consumed,
            "the larger B2 outlives the B1 under the same load"
        );
        assert_eq!(model.type_of(0), 0);
        assert_eq!(model.type_of(1), 1);
        // Reset restores per-battery capacities.
        model.reset();
        assert!((model.total_charge() - 16.5).abs() < 1e-9);
    }
}
