//! Battery-model backends implementing [`crate::model::BatteryModel`].
//!
//! Four backends ship with the crate, all constructible from a
//! heterogeneous [`kibam::FleetSpec`] (with a uniform `params × count`
//! convenience constructor):
//!
//! * [`DiscretizedKibam`] — the discretized KiBaM of Section 2.3 (integer
//!   charge and height units, precomputed per-type recovery tables). This
//!   is the model the paper's TA encoding explores and the default for all
//!   Table 5 experiments.
//! * [`ContinuousKibam`] — the closed-form continuous KiBaM of Section 2.2.
//!   Jobs become constant-current intervals solved analytically, which makes
//!   stepping cost independent of the discretization and provides an
//!   independent cross-check of the discretized results (the ~1–2 %
//!   agreement of Tables 3 and 4).
//! * [`RvDiffusion`] — the Rakhmatov–Vrudhula diffusion model (the `rv`
//!   crate), parameter-fitted per battery type from the fleet's KiBaM
//!   parameters: the structurally different chemistry that cross-validates
//!   the scheduling conclusions (same recovery and rate-capacity effects,
//!   different spectrum — the KiBaM is its one-term truncation).
//! * [`IdealBattery`] — a linear battery with no rate-capacity or recovery
//!   effect: the cross-model baseline that isolates how much the battery
//!   nonlinearities cost on a given load.

mod continuous;
mod discrete;
mod ideal;
mod rv;

pub use continuous::{ContinuousCell, ContinuousKibam};
pub use discrete::DiscretizedKibam;
pub use ideal::{IdealBattery, IdealCell};
pub use rv::RvDiffusion;
