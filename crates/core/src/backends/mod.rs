//! Battery-model backends implementing [`crate::model::BatteryModel`].
//!
//! Two backends ship with the crate:
//!
//! * [`DiscretizedKibam`] — the discretized KiBaM of Section 2.3 (integer
//!   charge and height units, precomputed recovery table). This is the model
//!   the paper's TA encoding explores and the default for all Table 5
//!   experiments.
//! * [`ContinuousKibam`] — the closed-form continuous KiBaM of Section 2.2.
//!   Jobs become constant-current intervals solved analytically, which makes
//!   stepping cost independent of the discretization and provides an
//!   independent cross-check of the discretized results (the ~1–2 %
//!   agreement of Tables 3 and 4).

mod continuous;
mod discrete;

pub use continuous::{ContinuousCell, ContinuousKibam};
pub use discrete::DiscretizedKibam;
