//! The ideal (linear) battery backend: a cross-model baseline.
//!
//! An ideal battery delivers every stored coulomb regardless of the
//! discharge rate — no rate-capacity effect, no recovery effect, no bound
//! charge. Under an ideal model the system lifetime is the same for *every*
//! non-wasteful schedule (the load simply runs until the combined capacity
//! is exhausted), which is exactly what makes it a useful baseline: the gap
//! between an ideal-backend lifetime and a KiBaM-backend lifetime isolates
//! how much the battery nonlinearities — the effects scheduling exploits —
//! cost on a given load (Section 2.1 of the paper introduces KiBaM by
//! contrast with this model).
//!
//! The backend is fleet-aware from day one: each battery holds its own
//! capacity in discrete charge units, heterogeneous fleets mix freely, and
//! canonical state keys use the same sort-within-type-group layout as the
//! discretized KiBaM, so the optimal search memoizes ideal fleets too.

use crate::model::{BatteryModel, ModelAdvance, StateKey};
use crate::schedule::BatteryCharge;
use crate::SchedError;
use dkibam::Discretization;
use kibam::{BatteryParams, FleetSpec};

/// One battery of the ideal backend: remaining charge units plus the sticky
/// observed-empty flag shared by all backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdealCell {
    /// Remaining charge in discrete charge units.
    pub charge_units: u32,
    /// Whether this battery has been observed empty and retired.
    pub observed_empty: bool,
}

impl IdealCell {
    /// Packs the cell into a state word (equal words ⇔ equal states, and
    /// the ordering is stable under draws).
    fn state_word(self) -> u128 {
        (u128::from(self.charge_units) << 1) | u128::from(self.observed_empty)
    }

    /// Component-wise dominance on packed words: at least as much charge
    /// and not retired unless the other is retired too. Draws preserve the
    /// ordering (an ideal battery has no other dynamics), which makes
    /// dominance pruning sound for this backend.
    fn word_dominates(a: u128, b: u128) -> bool {
        let (units_a, empty_a) = (a >> 1, a & 1 == 1);
        let (units_b, empty_b) = (b >> 1, b & 1 == 1);
        (!empty_a || empty_b) && units_a >= units_b
    }
}

/// The ideal (linear) battery model as a [`BatteryModel`] backend.
#[derive(Debug, Clone)]
pub struct IdealBattery {
    fleet: FleetSpec,
    disc: Discretization,
    cells: Vec<IdealCell>,
}

impl IdealBattery {
    /// Creates a system of `count` identical, freshly charged batteries.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero; use [`IdealBattery::from_fleet`] with a
    /// validated [`FleetSpec`] to handle the error explicitly.
    #[must_use]
    pub fn new(params: &BatteryParams, disc: &Discretization, count: usize) -> Self {
        // xlint: allow(panic) -- documented `# Panics` convenience constructor
        let fleet = FleetSpec::uniform(*params, count).expect("battery count must be positive");
        Self::from_fleet(&fleet, disc)
    }

    /// Creates a freshly charged system from a (possibly heterogeneous)
    /// fleet. Only each battery's capacity matters to the ideal model; the
    /// KiBaM shape parameters (`c`, `k'`) are carried for type identity but
    /// never enter the dynamics.
    #[must_use]
    pub fn from_fleet(fleet: &FleetSpec, disc: &Discretization) -> Self {
        let cells = fleet
            .params()
            .iter()
            .map(|params| IdealCell {
                charge_units: disc.charge_units(params.capacity()),
                observed_empty: false,
            })
            .collect();
        Self { fleet: fleet.clone(), disc: *disc, cells }
    }

    /// The per-battery states, in index order.
    #[must_use]
    pub fn cells(&self) -> &[IdealCell] {
        &self.cells
    }

    /// The fleet description.
    #[must_use]
    pub fn fleet(&self) -> &FleetSpec {
        &self.fleet
    }
}

impl BatteryModel for IdealBattery {
    type State = Vec<IdealCell>;

    fn backend_name(&self) -> &'static str {
        "ideal"
    }

    fn battery_count(&self) -> usize {
        self.cells.len()
    }

    fn type_of(&self, index: usize) -> usize {
        self.fleet.type_of(index)
    }

    fn reset(&mut self) {
        for (cell, params) in self.cells.iter_mut().zip(self.fleet.params()) {
            *cell = IdealCell {
                charge_units: self.disc.charge_units(params.capacity()),
                observed_empty: false,
            };
        }
    }

    fn save_state(&self) -> Vec<IdealCell> {
        self.cells.clone()
    }

    fn save_state_into(&self, out: &mut Vec<IdealCell>) {
        out.clear();
        out.extend_from_slice(&self.cells);
    }

    fn restore_state(&mut self, state: &Vec<IdealCell>) {
        self.cells.clone_from(state);
    }

    fn is_empty(&self, index: usize) -> bool {
        let cell = &self.cells[index];
        cell.observed_empty || cell.charge_units == 0
    }

    fn memo_key(&self) -> Option<StateKey> {
        StateKey::from_typed_words(
            self.cells.iter().enumerate().map(|(i, c)| (self.fleet.type_of(i), c.state_word())),
        )
    }

    fn key_dominates(&self, a: &StateKey, b: &StateKey) -> bool {
        a.dominates_pairwise(b, IdealCell::word_dominates)
    }

    fn charge(&self, index: usize) -> BatteryCharge {
        let total = f64::from(self.cells[index].charge_units) * self.disc.charge_unit();
        // All stored charge is available in an ideal battery.
        BatteryCharge { total, available: total }
    }

    fn usable_charge(&self) -> f64 {
        self.cells
            .iter()
            .filter(|c| !c.observed_empty)
            .map(|c| f64::from(c.charge_units) * self.disc.charge_unit())
            .sum()
    }

    // `service_envelope_into` deliberately stays at the trait default
    // (`None`): an ideal battery has no recovery dynamics to couple to, so
    // the availability bound has nothing to add over charge accounting —
    // the search degrades to the plain charge bound, which is exact for
    // linear batteries.

    fn states_identical(&self, a: usize, b: usize) -> bool {
        self.fleet.type_of(a) == self.fleet.type_of(b) && self.cells[a] == self.cells[b]
    }

    fn advance_idle(&mut self, _steps: u64) {
        // No recovery effect: idle time does not change an ideal battery.
    }

    fn advance_job(
        &mut self,
        active: usize,
        steps: u64,
        draw_interval_steps: u32,
        units_per_draw: u32,
    ) -> Result<ModelAdvance, SchedError> {
        if active >= self.cells.len() {
            return Err(SchedError::InvalidBatteryIndex { index: active, count: self.cells.len() });
        }
        if draw_interval_steps == 0 || units_per_draw == 0 {
            return Ok(ModelAdvance { steps_consumed: steps, completed: true });
        }
        if self.is_empty(active) {
            self.cells[active].observed_empty = true;
            return Ok(ModelAdvance { steps_consumed: 0, completed: false });
        }

        // Mirror the discretized draw loop: draws land every
        // `draw_interval_steps`, and emptiness is observed at draw instants
        // (here simply "no charge left").
        let interval = u64::from(draw_interval_steps);
        let draws = steps / interval;
        let remainder = steps - draws * interval;
        let mut consumed = 0;
        for _ in 0..draws {
            consumed += interval;
            let cell = &mut self.cells[active];
            cell.charge_units = cell.charge_units.saturating_sub(units_per_draw);
            if cell.charge_units == 0 {
                cell.observed_empty = true;
                return Ok(ModelAdvance { steps_consumed: consumed, completed: false });
            }
        }
        consumed += remainder;
        Ok(ModelAdvance { steps_consumed: consumed, completed: true })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b1_pair() -> IdealBattery {
        IdealBattery::new(&BatteryParams::itsy_b1(), &Discretization::paper_default(), 2)
    }

    #[test]
    fn lifetime_is_capacity_over_current() {
        // One B1 (5.5 A·min) under 500 mA: an ideal battery lasts exactly
        // C / I = 11 minutes (vs. 2.02 min for the KiBaM, Table 3).
        let disc = Discretization::paper_default();
        let mut model = IdealBattery::new(&BatteryParams::itsy_b1(), &disc, 1);
        let advance = model.advance_job(0, 1_000_000, 2, 1).unwrap();
        assert!(!advance.completed);
        let minutes = disc.steps_to_minutes(advance.steps_consumed);
        assert!((minutes - 11.0).abs() < 0.05, "died at {minutes} min");
        assert!(model.is_empty(0));
    }

    #[test]
    fn idle_time_changes_nothing() {
        let mut model = b1_pair();
        model.advance_job(0, 100, 2, 1).unwrap();
        let before = model.charge(0);
        model.advance_idle(10_000);
        assert_eq!(model.charge(0), before, "ideal batteries do not recover");
    }

    #[test]
    fn all_charge_is_available() {
        let model = b1_pair();
        let charge = model.charge(0);
        assert!((charge.total - 5.5).abs() < 1e-12);
        assert!((charge.available - charge.total).abs() < 1e-12);
        assert!((model.usable_charge() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn save_restore_and_reset_round_trip() {
        let mut model = b1_pair();
        let fresh = model.save_state();
        model.advance_job(0, 500, 2, 1).unwrap();
        let mut scratch = model.save_state();
        model.save_state_into(&mut scratch);
        let drained_total = model.total_charge();
        model.restore_state(&fresh);
        assert!((model.total_charge() - 11.0).abs() < 1e-12);
        model.restore_state(&scratch);
        assert!((model.total_charge() - drained_total).abs() < 1e-12);
        model.reset();
        assert!((model.total_charge() - 11.0).abs() < 1e-12);
        assert_eq!(model.available(), vec![0, 1]);
    }

    #[test]
    fn memo_keys_canonicalize_same_type_permutations() {
        let mut model = b1_pair();
        let fresh = model.save_state();
        model.advance_job(0, 100, 2, 1).unwrap();
        let key_0 = model.memo_key().unwrap();
        model.restore_state(&fresh);
        model.advance_job(1, 100, 2, 1).unwrap();
        let key_1 = model.memo_key().unwrap();
        assert_eq!(key_0, key_1, "same-type drains share a canonical key");
        model.restore_state(&fresh);
        let fresh_key = model.memo_key().unwrap();
        assert!(model.key_dominates(&fresh_key, &key_0));
        assert!(!model.key_dominates(&key_0, &fresh_key));
    }

    #[test]
    fn mixed_fleet_tracks_per_battery_capacity() {
        let fleet =
            FleetSpec::new(vec![BatteryParams::itsy_b1(), BatteryParams::itsy_b2()]).unwrap();
        let disc = Discretization::paper_default();
        let mut model = IdealBattery::from_fleet(&fleet, &disc);
        assert!((model.total_charge() - 16.5).abs() < 1e-12);
        assert!(!model.states_identical(0, 1));
        let b1_death = model.advance_job(0, 10_000_000, 2, 1).unwrap();
        assert!(!b1_death.completed);
        let b2_death = model.advance_job(1, 10_000_000, 2, 1).unwrap();
        assert_eq!(
            b2_death.steps_consumed,
            2 * b1_death.steps_consumed,
            "twice the capacity serves exactly twice as long"
        );
    }

    #[test]
    fn scheduling_an_empty_battery_consumes_no_time() {
        let disc = Discretization::paper_default();
        let mut model = IdealBattery::new(&BatteryParams::itsy_b1(), &disc, 2);
        let first = model.advance_job(0, 10_000_000, 2, 1).unwrap();
        assert!(!first.completed);
        let again = model.advance_job(0, 100, 2, 1).unwrap();
        assert_eq!(again.steps_consumed, 0);
        assert!(!again.completed);
        assert!(model.advance_job(9, 100, 2, 1).is_err());
    }
}
