//! The discretized-KiBaM backend: a thin [`BatteryModel`] wrapper around
//! [`dkibam::multi::MultiBatteryState`].

use crate::model::{BatteryModel, ModelAdvance, StateKey};
use crate::schedule::BatteryCharge;
use crate::SchedError;
use dkibam::multi::MultiBatteryState;
use dkibam::{DiscreteBattery, Discretization, RecoveryTable};
use kibam::BatteryParams;

/// The discretized KiBaM of Section 2.3 as a [`BatteryModel`] backend.
///
/// Holds the static data (battery parameters, discretization, recovery
/// table) next to the dynamic [`MultiBatteryState`], so that searches can
/// snapshot just the dynamic part.
#[derive(Debug, Clone)]
pub struct DiscretizedKibam {
    params: BatteryParams,
    disc: Discretization,
    table: RecoveryTable,
    count: usize,
    state: MultiBatteryState,
}

impl DiscretizedKibam {
    /// Creates a system of `count` identical, freshly charged batteries.
    #[must_use]
    pub fn new(params: &BatteryParams, disc: &Discretization, count: usize) -> Self {
        Self {
            params: *params,
            disc: *disc,
            table: RecoveryTable::for_battery(params, disc),
            count,
            state: MultiBatteryState::new_full(params, disc, count),
        }
    }

    /// The current joint discrete state.
    #[must_use]
    pub fn state(&self) -> &MultiBatteryState {
        &self.state
    }

    /// The battery parameters.
    #[must_use]
    pub fn params(&self) -> &BatteryParams {
        &self.params
    }

    /// The discretization in use.
    #[must_use]
    pub fn disc(&self) -> &Discretization {
        &self.disc
    }
}

impl BatteryModel for DiscretizedKibam {
    type State = MultiBatteryState;

    fn backend_name(&self) -> &'static str {
        "discretized"
    }

    fn battery_count(&self) -> usize {
        self.count
    }

    fn reset(&mut self) {
        self.state = MultiBatteryState::new_full(&self.params, &self.disc, self.count);
    }

    fn save_state(&self) -> MultiBatteryState {
        self.state.clone()
    }

    fn save_state_into(&self, out: &mut MultiBatteryState) {
        out.copy_from(&self.state);
    }

    fn restore_state(&mut self, state: &MultiBatteryState) {
        self.state.copy_from(state);
    }

    fn is_empty(&self, index: usize) -> bool {
        self.state.batteries()[index].is_empty(&self.params)
    }

    fn available(&self) -> Vec<usize> {
        self.state.available(&self.params)
    }

    fn available_into(&self, out: &mut Vec<usize>) {
        self.state.available_into(&self.params, out);
    }

    fn any_available(&self) -> bool {
        self.state.any_available(&self.params)
    }

    fn memo_key(&self) -> Option<StateKey> {
        StateKey::from_words(self.state.batteries().iter().map(DiscreteBattery::state_word))
    }

    fn key_dominates(&self, a: &StateKey, b: &StateKey) -> bool {
        // Both keys are sorted ascending by state word; matching the i-th
        // battery of one state against the i-th of the other is a valid
        // witness schedule mapping for identical battery types (any perfect
        // matching would do — the sorted pairing is the cheap one, and this
        // runs on the search's per-node hot path).
        a.len() == b.len()
            && a.words().iter().zip(b.words()).all(|(&x, &y)| DiscreteBattery::word_dominates(x, y))
    }

    fn charge(&self, index: usize) -> BatteryCharge {
        let battery = &self.state.batteries()[index];
        BatteryCharge {
            total: battery.total_charge(&self.disc),
            available: battery.available_charge(&self.params, &self.disc),
        }
    }

    fn total_charge(&self) -> f64 {
        self.state.total_charge(&self.disc)
    }

    fn usable_charge(&self) -> f64 {
        self.state
            .batteries()
            .iter()
            .filter(|b| !b.is_observed_empty())
            .map(|b| f64::from(b.charge_units()) * self.disc.charge_unit())
            .sum()
    }

    fn states_identical(&self, a: usize, b: usize) -> bool {
        self.state.batteries()[a] == self.state.batteries()[b]
    }

    fn advance_idle(&mut self, steps: u64) {
        self.state.advance_idle(steps, &self.table);
    }

    fn advance_job(
        &mut self,
        active: usize,
        steps: u64,
        draw_interval_steps: u32,
        units_per_draw: u32,
    ) -> Result<ModelAdvance, SchedError> {
        let advance = self.state.advance_job(
            active,
            steps,
            draw_interval_steps,
            units_per_draw,
            &self.table,
            &self.params,
        )?;
        Ok(ModelAdvance { steps_consumed: advance.steps_consumed, completed: advance.completed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_the_underlying_multi_battery_state() {
        let params = BatteryParams::itsy_b1();
        let disc = Discretization::paper_default();
        let mut model = DiscretizedKibam::new(&params, &disc, 2);
        assert_eq!(model.state().total_charge_units(), 1100);
        model.advance_job(0, 100, 2, 1).unwrap();
        assert_eq!(model.state().total_charge_units(), 1050);
        assert_eq!(model.backend_name(), "discretized");
        assert!((model.usable_charge() - 10.5).abs() < 1e-12);
    }

    #[test]
    fn key_dominance_is_permutation_invariant() {
        let params = BatteryParams::itsy_b1();
        let disc = Discretization::paper_default();
        let mut model = DiscretizedKibam::new(&params, &disc, 2);
        let fresh = model.memo_key().unwrap();
        let initial = model.save_state();
        model.advance_job(0, 100, 2, 1).unwrap();
        let drained_0 = model.memo_key().unwrap();
        model.restore_state(&initial);
        model.advance_job(1, 100, 2, 1).unwrap();
        let drained_1 = model.memo_key().unwrap();

        // A fresh system dominates a drained one, never the reverse.
        assert!(model.key_dominates(&fresh, &drained_0));
        assert!(!model.key_dominates(&drained_0, &fresh));
        // Permuted drains dominate each other (identical canonical keys).
        assert!(model.key_dominates(&drained_0, &drained_1));
        assert!(model.key_dominates(&drained_1, &drained_0));
        // Reflexive.
        assert!(model.key_dominates(&drained_0, &drained_0));
    }

    #[test]
    fn usable_charge_excludes_retired_batteries() {
        let params = BatteryParams::itsy_b1();
        let disc = Discretization::paper_default();
        let mut model = DiscretizedKibam::new(&params, &disc, 2);
        // Drain battery 0 until it is observed empty.
        let advance = model.advance_job(0, 2_000, 2, 1).unwrap();
        assert!(!advance.completed);
        assert!(model.usable_charge() < model.total_charge());
    }
}
