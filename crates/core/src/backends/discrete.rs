//! The discretized-KiBaM backend: a thin [`BatteryModel`] wrapper around
//! [`dkibam::multi::MultiBatteryState`] driven by a [`DiscreteFleet`].

use crate::model::{BatteryModel, ModelAdvance, StateKey};
use crate::schedule::BatteryCharge;
use crate::SchedError;
use dkibam::multi::MultiBatteryState;
use dkibam::{DiscreteFleet, Discretization};
use kibam::{BatteryParams, FleetSpec};

/// The discretized KiBaM of Section 2.3 as a [`BatteryModel`] backend.
///
/// Holds the static data (the fleet: per-battery parameters,
/// discretization, per-type recovery tables) next to the dynamic
/// [`MultiBatteryState`], so that searches can snapshot just the dynamic
/// part. Fleets may be heterogeneous; [`DiscretizedKibam::new`] is the
/// uniform convenience constructor the paper's systems use.
#[derive(Debug, Clone)]
pub struct DiscretizedKibam {
    fleet: DiscreteFleet,
    state: MultiBatteryState,
}

impl DiscretizedKibam {
    /// Creates a system of `count` identical, freshly charged batteries.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero; use [`DiscretizedKibam::from_fleet`] with
    /// a validated [`FleetSpec`] to handle the error explicitly.
    #[must_use]
    pub fn new(params: &BatteryParams, disc: &Discretization, count: usize) -> Self {
        Self::from_fleet_data(DiscreteFleet::uniform(params, disc, count))
    }

    /// Creates a freshly charged system from a (possibly heterogeneous)
    /// fleet.
    #[must_use]
    pub fn from_fleet(fleet: &FleetSpec, disc: &Discretization) -> Self {
        Self::from_fleet_data(DiscreteFleet::new(fleet.clone(), *disc))
    }

    fn from_fleet_data(fleet: DiscreteFleet) -> Self {
        let state = MultiBatteryState::new_full(&fleet);
        Self { fleet, state }
    }

    /// The current joint discrete state.
    #[must_use]
    pub fn state(&self) -> &MultiBatteryState {
        &self.state
    }

    /// The static fleet data (per-battery parameters and recovery tables).
    #[must_use]
    pub fn fleet(&self) -> &DiscreteFleet {
        &self.fleet
    }

    /// The discretization in use.
    #[must_use]
    pub fn disc(&self) -> &Discretization {
        self.fleet.disc()
    }
}

impl BatteryModel for DiscretizedKibam {
    type State = MultiBatteryState;

    fn backend_name(&self) -> &'static str {
        "discretized"
    }

    fn battery_count(&self) -> usize {
        self.fleet.len()
    }

    fn type_of(&self, index: usize) -> usize {
        self.fleet.type_of(index)
    }

    fn reset(&mut self) {
        self.state = MultiBatteryState::new_full(&self.fleet);
    }

    fn save_state(&self) -> MultiBatteryState {
        self.state.clone()
    }

    fn save_state_into(&self, out: &mut MultiBatteryState) {
        out.copy_from(&self.state);
    }

    fn restore_state(&mut self, state: &MultiBatteryState) {
        self.state.copy_from(state);
    }

    fn is_empty(&self, index: usize) -> bool {
        self.state.batteries()[index].is_empty(self.fleet.params_of(index))
    }

    fn available(&self) -> Vec<usize> {
        self.state.available(&self.fleet)
    }

    fn available_into(&self, out: &mut Vec<usize>) {
        self.state.available_into(&self.fleet, out);
    }

    fn any_available(&self) -> bool {
        self.state.any_available(&self.fleet)
    }

    fn memo_key(&self) -> Option<StateKey> {
        StateKey::from_typed_words(
            self.state
                .batteries()
                .iter()
                .enumerate()
                .map(|(i, b)| (self.fleet.type_of(i), b.state_word())),
        )
    }

    fn key_dominates(&self, a: &StateKey, b: &StateKey) -> bool {
        a.dominates_pairwise(b, dkibam::DiscreteBattery::word_dominates)
    }

    fn charge(&self, index: usize) -> BatteryCharge {
        let battery = &self.state.batteries()[index];
        BatteryCharge {
            total: battery.total_charge(self.fleet.disc()),
            available: battery.available_charge(self.fleet.params_of(index), self.fleet.disc()),
        }
    }

    fn total_charge(&self) -> f64 {
        self.state.total_charge(&self.fleet)
    }

    fn usable_charge(&self) -> f64 {
        self.state
            .batteries()
            .iter()
            .filter(|b| !b.is_observed_empty())
            .map(|b| f64::from(b.charge_units()) * self.fleet.disc().charge_unit())
            .sum()
    }

    fn service_envelope_into(
        &self,
        index: usize,
        max_units_per_draw: u32,
        out: &mut dkibam::ServiceEnvelope,
    ) -> Option<&dkibam::ServiceRateTable> {
        let battery = &self.state.batteries()[index];
        let table = self.fleet.service_of(index);
        // A retired battery serves nothing, ever: build from zero charge.
        let charge = if battery.is_observed_empty() { 0 } else { battery.charge_units() };
        table.build_envelope(charge, battery.height_units(), max_units_per_draw, out);
        Some(table)
    }

    fn column_inputs(
        &self,
        index: usize,
    ) -> Option<(dkibam::DiscreteBattery, &kibam::BatteryParams, &dkibam::RecoveryTable)> {
        let battery = self.state.batteries()[index];
        Some((battery, self.fleet.params_of(index), self.fleet.table_of(index)))
    }

    fn states_identical(&self, a: usize, b: usize) -> bool {
        self.fleet.type_of(a) == self.fleet.type_of(b)
            && self.state.batteries()[a] == self.state.batteries()[b]
    }

    fn advance_idle(&mut self, steps: u64) {
        self.state.advance_idle(steps, &self.fleet);
    }

    fn advance_job(
        &mut self,
        active: usize,
        steps: u64,
        draw_interval_steps: u32,
        units_per_draw: u32,
    ) -> Result<ModelAdvance, SchedError> {
        let advance = self.state.advance_job(
            active,
            steps,
            draw_interval_steps,
            units_per_draw,
            &self.fleet,
        )?;
        Ok(ModelAdvance { steps_consumed: advance.steps_consumed, completed: advance.completed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b1_plus_b2() -> DiscretizedKibam {
        let fleet =
            FleetSpec::new(vec![BatteryParams::itsy_b1(), BatteryParams::itsy_b2()]).unwrap();
        DiscretizedKibam::from_fleet(&fleet, &Discretization::paper_default())
    }

    #[test]
    fn tracks_the_underlying_multi_battery_state() {
        let params = BatteryParams::itsy_b1();
        let disc = Discretization::paper_default();
        let mut model = DiscretizedKibam::new(&params, &disc, 2);
        assert_eq!(model.state().total_charge_units(), 1100);
        model.advance_job(0, 100, 2, 1).unwrap();
        assert_eq!(model.state().total_charge_units(), 1050);
        assert_eq!(model.backend_name(), "discretized");
        assert!((model.usable_charge() - 10.5).abs() < 1e-12);
    }

    #[test]
    fn key_dominance_is_permutation_invariant() {
        let params = BatteryParams::itsy_b1();
        let disc = Discretization::paper_default();
        let mut model = DiscretizedKibam::new(&params, &disc, 2);
        let fresh = model.memo_key().unwrap();
        let initial = model.save_state();
        model.advance_job(0, 100, 2, 1).unwrap();
        let drained_0 = model.memo_key().unwrap();
        model.restore_state(&initial);
        model.advance_job(1, 100, 2, 1).unwrap();
        let drained_1 = model.memo_key().unwrap();

        // A fresh system dominates a drained one, never the reverse.
        assert!(model.key_dominates(&fresh, &drained_0));
        assert!(!model.key_dominates(&drained_0, &fresh));
        // Permuted drains dominate each other (identical canonical keys).
        assert!(model.key_dominates(&drained_0, &drained_1));
        assert!(model.key_dominates(&drained_1, &drained_0));
        // Reflexive.
        assert!(model.key_dominates(&drained_0, &drained_0));
    }

    #[test]
    fn usable_charge_excludes_retired_batteries() {
        let params = BatteryParams::itsy_b1();
        let disc = Discretization::paper_default();
        let mut model = DiscretizedKibam::new(&params, &disc, 2);
        // Drain battery 0 until it is observed empty.
        let advance = model.advance_job(0, 2_000, 2, 1).unwrap();
        assert!(!advance.completed);
        assert!(model.usable_charge() < model.total_charge());
    }

    #[test]
    fn mixed_fleet_keys_do_not_swap_batteries_across_types() {
        // Drain the B1 vs. drain the B2 by the same amount: under the old
        // global sort these states could collide; with type groups they
        // must stay distinct.
        let mut model = b1_plus_b2();
        assert_eq!(model.type_of(0), 0);
        assert_eq!(model.type_of(1), 1);
        let initial = model.save_state();
        model.advance_job(0, 100, 2, 1).unwrap();
        let drained_b1 = model.memo_key().unwrap();
        model.restore_state(&initial);
        model.advance_job(1, 100, 2, 1).unwrap();
        let drained_b2 = model.memo_key().unwrap();
        assert_ne!(drained_b1, drained_b2, "cross-type states must not collide");
        assert!(drained_b1.same_layout(&drained_b2));
        // Same layout, comparable within groups: the fresh system dominates
        // both drained variants.
        let fresh = {
            model.restore_state(&initial);
            model.memo_key().unwrap()
        };
        assert!(model.key_dominates(&fresh, &drained_b1));
        assert!(model.key_dominates(&fresh, &drained_b2));
        assert!(!model.key_dominates(&drained_b1, &fresh));
    }

    #[test]
    fn mixed_fleet_batteries_are_never_symmetric() {
        let model = b1_plus_b2();
        // Both fresh, but different types: not interchangeable.
        assert!(!model.states_identical(0, 1));
        let uniform =
            DiscretizedKibam::new(&BatteryParams::itsy_b1(), &Discretization::paper_default(), 2);
        assert!(uniform.states_identical(0, 1));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "different type-group layouts")]
    fn cross_layout_dominance_is_rejected_in_debug_builds() {
        let mixed = b1_plus_b2();
        let mixed_key = mixed.memo_key().unwrap();
        let uniform =
            DiscretizedKibam::new(&BatteryParams::itsy_b1(), &Discretization::paper_default(), 2);
        let uniform_key = uniform.memo_key().unwrap();
        let _ = mixed.key_dominates(&mixed_key, &uniform_key);
    }
}
