//! Multi-battery system simulation under a scheduling policy.
//!
//! This is the executable counterpart of the paper's Table 5 experiments:
//! given a system of `B` identical batteries, a load and a policy, the
//! simulator plays the load against the discretized KiBaM, consulting the
//! policy at every scheduling point, and reports the system lifetime (the
//! time at which the *last* battery is observed empty), the schedule and a
//! charge trace.

use crate::policy::{DecisionContext, SchedulingPolicy};
use crate::schedule::{Assignment, BatteryCharge, Schedule, SystemTrace, SystemTracePoint};
use crate::SchedError;
use dkibam::multi::MultiBatteryState;
use dkibam::{DiscretizedLoad, Discretization, RecoveryTable};
use kibam::BatteryParams;
use workload::LoadProfile;

/// Margin applied to the total battery capacity when truncating cyclic loads
/// so that the load always outlasts the batteries.
const HORIZON_MARGIN: f64 = 1.25;

/// Configuration of a multi-battery system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    params: BatteryParams,
    disc: Discretization,
    battery_count: usize,
    sample_interval_steps: Option<u64>,
}

impl SystemConfig {
    /// Creates a configuration of `battery_count` identical batteries.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::NoBatteries`] if `battery_count` is zero.
    pub fn new(
        params: BatteryParams,
        disc: Discretization,
        battery_count: usize,
    ) -> Result<Self, SchedError> {
        if battery_count == 0 {
            return Err(SchedError::NoBatteries);
        }
        Ok(Self { params, disc, battery_count, sample_interval_steps: None })
    }

    /// The paper's two-battery setup: 2 × B1 with the paper discretization.
    #[must_use]
    pub fn paper_two_b1() -> Self {
        Self {
            params: BatteryParams::itsy_b1(),
            disc: Discretization::paper_default(),
            battery_count: 2,
            sample_interval_steps: None,
        }
    }

    /// Enables trace sampling roughly every `steps` time steps (samples are
    /// aligned to draw instants, so the effective spacing may differ
    /// slightly). Required to regenerate Figure 6.
    #[must_use]
    pub fn with_sampling(mut self, steps: u64) -> Self {
        self.sample_interval_steps = Some(steps.max(1));
        self
    }

    /// The battery parameters.
    #[must_use]
    pub fn params(&self) -> &BatteryParams {
        &self.params
    }

    /// The discretization.
    #[must_use]
    pub fn disc(&self) -> &Discretization {
        &self.disc
    }

    /// The number of batteries.
    #[must_use]
    pub fn battery_count(&self) -> usize {
        self.battery_count
    }

    /// The charge horizon used to truncate cyclic loads: a bit more than the
    /// combined capacity of all batteries.
    #[must_use]
    pub fn charge_horizon(&self) -> f64 {
        self.params.capacity() * self.battery_count as f64 * HORIZON_MARGIN
    }

    /// Discretizes a load profile with this configuration's horizon.
    ///
    /// # Errors
    ///
    /// Propagates discretization errors.
    pub fn discretize(&self, profile: &LoadProfile) -> Result<DiscretizedLoad, SchedError> {
        Ok(DiscretizedLoad::from_profile(profile, &self.disc, self.charge_horizon())?)
    }
}

/// The result of simulating a policy on a load.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemOutcome {
    lifetime_steps: Option<u64>,
    disc: Discretization,
    schedule: Schedule,
    trace: SystemTrace,
    final_state: MultiBatteryState,
}

impl SystemOutcome {
    /// System lifetime in time steps (the time at which the last battery was
    /// observed empty), or `None` if the load ended first.
    #[must_use]
    pub fn lifetime_steps(&self) -> Option<u64> {
        self.lifetime_steps
    }

    /// System lifetime in minutes.
    #[must_use]
    pub fn lifetime_minutes(&self) -> Option<f64> {
        self.lifetime_steps.map(|s| self.disc.steps_to_minutes(s))
    }

    /// The schedule that was executed.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The sampled charge trace (non-empty only if sampling was enabled in
    /// the [`SystemConfig`]).
    #[must_use]
    pub fn trace(&self) -> &SystemTrace {
        &self.trace
    }

    /// The battery states when the simulation stopped.
    #[must_use]
    pub fn final_state(&self) -> &MultiBatteryState {
        &self.final_state
    }

    /// Total charge left in the batteries at the end, in A·min. The paper
    /// observes that roughly 70 % of the original energy remains in the
    /// `ILs alt` two-battery experiment.
    #[must_use]
    pub fn residual_charge(&self) -> f64 {
        self.final_state.total_charge(&self.disc)
    }
}

/// Simulates `policy` on `profile` under `config`.
///
/// # Errors
///
/// Propagates discretization errors and
/// [`SchedError::InvalidBatteryIndex`] if the policy returns an index
/// outside the system.
pub fn simulate_policy(
    config: &SystemConfig,
    profile: &LoadProfile,
    policy: &mut dyn SchedulingPolicy,
) -> Result<SystemOutcome, SchedError> {
    let load = config.discretize(profile)?;
    simulate_policy_on(config, &load, policy)
}

/// Simulates `policy` on an already-discretized load.
///
/// # Errors
///
/// Same as [`simulate_policy`].
pub fn simulate_policy_on(
    config: &SystemConfig,
    load: &DiscretizedLoad,
    policy: &mut dyn SchedulingPolicy,
) -> Result<SystemOutcome, SchedError> {
    policy.reset();
    let params = &config.params;
    let disc = &config.disc;
    let table = RecoveryTable::for_battery(params, disc);
    let mut state = MultiBatteryState::new_full(params, disc, config.battery_count);
    let mut elapsed: u64 = 0;
    let mut job_index: usize = 0;
    let mut decision_index: usize = 0;
    let mut schedule = Schedule::default();
    let mut trace = SystemTrace::default();
    let sampling = config.sample_interval_steps;

    record_sample(&mut trace, sampling, elapsed, &state, None, params, disc);

    for epoch in load.epochs() {
        if epoch.is_idle() {
            advance_idle_sampled(
                &mut state, &mut elapsed, epoch.duration_steps(), &table, sampling, &mut trace,
                params, disc,
            );
            continue;
        }

        let interval = u64::from(epoch.draw_interval_steps());
        let mut remaining = epoch.duration_steps();
        let mut continuation = false;
        while remaining > 0 {
            let available = state.available(params);
            if available.is_empty() {
                // All batteries are empty: the system died at `elapsed`.
                return Ok(finish(Some(elapsed), config, schedule, trace, state));
            }
            let ctx = DecisionContext {
                job_index,
                continuation,
                available: &available,
                batteries: state.batteries(),
                params,
                disc,
            };
            let Some(chosen) = policy.choose(&ctx) else {
                return Ok(finish(Some(elapsed), config, schedule, trace, state));
            };
            if chosen >= config.battery_count {
                return Err(SchedError::InvalidBatteryIndex {
                    index: chosen,
                    count: config.battery_count,
                });
            }

            let start_step = elapsed;
            // Serve the job in sampling-aligned chunks (multiples of the draw
            // interval) so the trace stays faithful to the draw schedule.
            let mut battery_died = false;
            while remaining > 0 {
                let chunk = chunk_size(remaining, interval, sampling);
                let advance = state.advance_job(
                    chosen,
                    chunk,
                    epoch.draw_interval_steps(),
                    epoch.units_per_draw(),
                    &table,
                    params,
                )?;
                elapsed += advance.steps_consumed;
                remaining -= advance.steps_consumed;
                record_sample(&mut trace, sampling, elapsed, &state, Some(chosen), params, disc);
                if !advance.completed {
                    battery_died = true;
                    break;
                }
            }
            schedule.assignments.push(Assignment {
                decision_index,
                job_index,
                battery: chosen,
                start_step,
                end_step: elapsed,
                continuation,
            });
            decision_index += 1;
            if battery_died {
                if state.available(params).is_empty() {
                    // The last battery died while serving: system lifetime.
                    return Ok(finish(Some(elapsed), config, schedule, trace, state));
                }
                continuation = true;
            }
        }
        job_index += 1;
    }

    Ok(finish(None, config, schedule, trace, state))
}

fn finish(
    lifetime_steps: Option<u64>,
    config: &SystemConfig,
    schedule: Schedule,
    trace: SystemTrace,
    state: MultiBatteryState,
) -> SystemOutcome {
    SystemOutcome { lifetime_steps, disc: config.disc, schedule, trace, final_state: state }
}

/// Chooses the next chunk of a job: a multiple of the draw interval close to
/// the sampling interval (or the whole remainder when not sampling).
fn chunk_size(remaining: u64, interval: u64, sampling: Option<u64>) -> u64 {
    match sampling {
        None => remaining,
        Some(sample) => {
            let aligned = if interval == 0 {
                sample
            } else {
                (sample.max(interval) / interval) * interval
            };
            aligned.max(1).min(remaining)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn advance_idle_sampled(
    state: &mut MultiBatteryState,
    elapsed: &mut u64,
    duration: u64,
    table: &RecoveryTable,
    sampling: Option<u64>,
    trace: &mut SystemTrace,
    params: &BatteryParams,
    disc: &Discretization,
) {
    let mut remaining = duration;
    while remaining > 0 {
        let chunk = sampling.unwrap_or(remaining).max(1).min(remaining);
        state.advance_idle(chunk, table);
        *elapsed += chunk;
        remaining -= chunk;
        record_sample(trace, sampling, *elapsed, state, None, params, disc);
    }
}

fn record_sample(
    trace: &mut SystemTrace,
    sampling: Option<u64>,
    elapsed: u64,
    state: &MultiBatteryState,
    active: Option<usize>,
    params: &BatteryParams,
    disc: &Discretization,
) {
    if sampling.is_none() {
        return;
    }
    trace.points.push(SystemTracePoint {
        time: disc.steps_to_minutes(elapsed),
        charges: state
            .batteries()
            .iter()
            .map(|b| BatteryCharge {
                total: b.total_charge(disc),
                available: b.available_charge(params, disc),
            })
            .collect(),
        active,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BestAvailable, FixedSchedule, RoundRobin, Sequential};
    use workload::paper_loads::TestLoad;

    fn two_b1() -> SystemConfig {
        SystemConfig::paper_two_b1()
    }

    fn lifetime(policy: &mut dyn SchedulingPolicy, load: TestLoad) -> f64 {
        simulate_policy(&two_b1(), &load.profile(), policy)
            .unwrap()
            .lifetime_minutes()
            .expect("paper loads exhaust both batteries")
    }

    #[test]
    fn config_rejects_zero_batteries() {
        assert!(matches!(
            SystemConfig::new(BatteryParams::itsy_b1(), Discretization::paper_default(), 0),
            Err(SchedError::NoBatteries)
        ));
    }

    #[test]
    fn sequential_matches_table_5_on_cl_500() {
        // Table 5: sequential on CL 500 gives 4.10 min.
        let value = lifetime(&mut Sequential::new(), TestLoad::Cl500);
        assert!((value - 4.10).abs() < 0.06, "got {value}");
    }

    #[test]
    fn round_robin_matches_table_5_on_cl_500() {
        // Table 5: round robin on CL 500 gives 4.53 min.
        let value = lifetime(&mut RoundRobin::new(), TestLoad::Cl500);
        assert!((value - 4.53).abs() < 0.06, "got {value}");
    }

    #[test]
    fn round_robin_matches_table_5_on_ils_500() {
        // Table 5: round robin on ILs 500 gives 10.48 min.
        let value = lifetime(&mut RoundRobin::new(), TestLoad::Ils500);
        assert!((value - 10.48).abs() < 0.12, "got {value}");
    }

    #[test]
    fn best_of_two_beats_round_robin_on_alternating_load() {
        // Table 5 (ILs alt): round robin 12.82, best-of-two 16.30 (+27 %).
        let rr = lifetime(&mut RoundRobin::new(), TestLoad::IlsAlt);
        let best = lifetime(&mut BestAvailable::new(), TestLoad::IlsAlt);
        assert!(best > rr * 1.15, "best-of-two {best} should clearly beat round robin {rr}");
    }

    #[test]
    fn sequential_is_never_better_than_round_robin() {
        for load in TestLoad::all() {
            let seq = lifetime(&mut Sequential::new(), load);
            let rr = lifetime(&mut RoundRobin::new(), load);
            assert!(seq <= rr + 0.03, "{load}: sequential {seq} must not beat round robin {rr}");
        }
    }

    #[test]
    fn best_of_two_equals_round_robin_on_uniform_loads() {
        // The paper observes that the two schemes only differ on the
        // alternating (and random) loads.
        for load in [TestLoad::Cl250, TestLoad::Cl500, TestLoad::Ils500, TestLoad::Ill250] {
            let rr = lifetime(&mut RoundRobin::new(), load);
            let best = lifetime(&mut BestAvailable::new(), load);
            assert!((rr - best).abs() < 1e-9, "{load}: {rr} vs {best}");
        }
    }

    #[test]
    fn two_batteries_last_longer_than_one() {
        let single = SystemConfig::new(
            BatteryParams::itsy_b1(),
            Discretization::paper_default(),
            1,
        )
        .unwrap();
        let one = simulate_policy(&single, &TestLoad::Ils500.profile(), &mut Sequential::new())
            .unwrap()
            .lifetime_minutes()
            .unwrap();
        let two = lifetime(&mut Sequential::new(), TestLoad::Ils500);
        assert!(two > one * 1.5);
    }

    #[test]
    fn schedule_records_assignments_and_switches() {
        let outcome =
            simulate_policy(&two_b1(), &TestLoad::Ils500.profile(), &mut RoundRobin::new())
                .unwrap();
        let schedule = outcome.schedule();
        assert!(!schedule.assignments.is_empty());
        assert!(schedule.switches() > 0, "round robin alternates batteries");
        let per_battery = schedule.assignments_per_battery(2);
        assert!(per_battery[0] > 0 && per_battery[1] > 0);
        // Assignment steps are consistent and ordered.
        for assignment in &schedule.assignments {
            assert!(assignment.end_step >= assignment.start_step);
        }
    }

    #[test]
    fn trace_is_recorded_only_when_sampling_enabled() {
        let without = simulate_policy(&two_b1(), &TestLoad::Cl500.profile(), &mut RoundRobin::new())
            .unwrap();
        assert!(without.trace().is_empty());
        let with = simulate_policy(
            &two_b1().with_sampling(10),
            &TestLoad::Cl500.profile(),
            &mut RoundRobin::new(),
        )
        .unwrap();
        assert!(with.trace().len() > 10);
        // Times are non-decreasing and totals never increase.
        for pair in with.trace().points.windows(2) {
            assert!(pair[1].time >= pair[0].time);
            let sum_before: f64 = pair[0].charges.iter().map(|c| c.total).sum();
            let sum_after: f64 = pair[1].charges.iter().map(|c| c.total).sum();
            assert!(sum_after <= sum_before + 1e-9);
        }
    }

    #[test]
    fn residual_charge_is_large_for_ils_alt() {
        // Section 6: about 70 % of the original energy remains in the
        // batteries for the ILs alt load on 2 x B1.
        let outcome =
            simulate_policy(&two_b1(), &TestLoad::IlsAlt.profile(), &mut BestAvailable::new())
                .unwrap();
        let fraction = outcome.residual_charge() / (2.0 * 5.5);
        assert!(fraction > 0.5 && fraction < 0.85, "residual fraction {fraction}");
    }

    #[test]
    fn replaying_a_schedule_reproduces_its_lifetime() {
        let original =
            simulate_policy(&two_b1(), &TestLoad::IlsAlt.profile(), &mut BestAvailable::new())
                .unwrap();
        let mut replay = FixedSchedule::new(original.schedule().decisions());
        let replayed =
            simulate_policy(&two_b1(), &TestLoad::IlsAlt.profile(), &mut replay).unwrap();
        assert_eq!(original.lifetime_steps(), replayed.lifetime_steps());
    }

    #[test]
    fn load_that_ends_early_gives_no_lifetime() {
        let profile = TestLoad::Cl500.profile().truncate_to_duration(1.0).unwrap();
        let outcome = simulate_policy(&two_b1(), &profile, &mut Sequential::new()).unwrap();
        assert_eq!(outcome.lifetime_steps(), None);
        assert!(outcome.residual_charge() > 10.0);
    }
}
