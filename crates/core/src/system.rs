//! Multi-battery system simulation under a scheduling policy.
//!
//! This is the executable counterpart of the paper's Table 5 experiments:
//! given a system of `B` identical batteries, a load and a policy, the
//! simulator plays the load against a battery backend, consulting the policy
//! at every scheduling point, and reports the system lifetime (the time at
//! which the *last* battery is observed empty), the schedule and a charge
//! trace.
//!
//! The simulation loop is generic over the [`BatteryModel`] backend
//! ([`simulate_policy_with`]); the [`simulate_policy`] / [`simulate_policy_on`]
//! entry points run it against the paper's discretized KiBaM, which keeps
//! the original call sites unchanged.

use crate::backends::{ContinuousKibam, DiscretizedKibam, IdealBattery, RvDiffusion};
use crate::model::BatteryModel;
use crate::policy::{DecisionContext, SchedulingPolicy};
use crate::schedule::{Assignment, BatteryCharge, Schedule, SystemTrace, SystemTracePoint};
use crate::SchedError;
use dkibam::{Discretization, DiscretizedLoad};
use kibam::{BatteryParams, FleetSpec};
use workload::LoadProfile;

/// Margin applied to the total battery capacity when truncating cyclic loads
/// so that the load always outlasts the batteries.
const HORIZON_MARGIN: f64 = 1.25;

/// Configuration of a multi-battery system: a battery fleet (uniform or
/// heterogeneous) plus the discretization that defines its time base.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    fleet: FleetSpec,
    disc: Discretization,
    sample_interval_steps: Option<u64>,
}

impl SystemConfig {
    /// Creates a configuration of `battery_count` identical batteries (the
    /// uniform convenience constructor; [`SystemConfig::from_fleet`] takes
    /// an arbitrary fleet).
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::NoBatteries`] if `battery_count` is zero.
    pub fn new(
        params: BatteryParams,
        disc: Discretization,
        battery_count: usize,
    ) -> Result<Self, SchedError> {
        let fleet =
            FleetSpec::uniform(params, battery_count).map_err(|_| SchedError::NoBatteries)?;
        Ok(Self::from_fleet(fleet, disc))
    }

    /// Creates a configuration from a (possibly heterogeneous) fleet.
    #[must_use]
    pub fn from_fleet(fleet: FleetSpec, disc: Discretization) -> Self {
        Self { fleet, disc, sample_interval_steps: None }
    }

    /// The paper's two-battery setup: 2 × B1 with the paper discretization.
    #[must_use]
    pub fn paper_two_b1() -> Self {
        Self::new(BatteryParams::itsy_b1(), Discretization::paper_default(), 2)
            // xlint: allow(panic) -- two batteries are always a valid fleet
            .expect("two batteries are a valid fleet")
    }

    /// Enables trace sampling roughly every `steps` time steps (samples are
    /// aligned to draw instants, so the effective spacing may differ
    /// slightly). Required to regenerate Figure 6.
    #[must_use]
    pub fn with_sampling(mut self, steps: u64) -> Self {
        self.sample_interval_steps = Some(steps.max(1));
        self
    }

    /// The battery fleet.
    #[must_use]
    pub fn fleet(&self) -> &FleetSpec {
        &self.fleet
    }

    /// The discretization.
    #[must_use]
    pub fn disc(&self) -> &Discretization {
        &self.disc
    }

    /// The number of batteries.
    #[must_use]
    pub fn battery_count(&self) -> usize {
        self.fleet.len()
    }

    /// A freshly charged discretized-KiBaM backend for this configuration
    /// (the paper's default model).
    #[must_use]
    pub fn discretized_model(&self) -> DiscretizedKibam {
        DiscretizedKibam::from_fleet(&self.fleet, &self.disc)
    }

    /// A freshly charged continuous-KiBaM backend for this configuration.
    #[must_use]
    pub fn continuous_model(&self) -> ContinuousKibam {
        ContinuousKibam::from_fleet(&self.fleet, &self.disc)
    }

    /// A freshly charged ideal-battery backend for this configuration (the
    /// linear cross-model baseline).
    #[must_use]
    pub fn ideal_model(&self) -> IdealBattery {
        IdealBattery::from_fleet(&self.fleet, &self.disc)
    }

    /// A freshly charged Rakhmatov–Vrudhula diffusion backend for this
    /// configuration (RV parameters fitted per battery type from the
    /// fleet's KiBaM parameters — the cross-model validation chemistry).
    #[must_use]
    pub fn rv_model(&self) -> RvDiffusion {
        RvDiffusion::from_fleet(&self.fleet, &self.disc)
    }

    /// The charge horizon used to truncate cyclic loads: a bit more than the
    /// combined capacity of all batteries.
    #[must_use]
    pub fn charge_horizon(&self) -> f64 {
        self.fleet.total_capacity() * HORIZON_MARGIN
    }

    /// Discretizes a load profile with this configuration's horizon.
    ///
    /// # Errors
    ///
    /// Propagates discretization errors.
    pub fn discretize(&self, profile: &LoadProfile) -> Result<DiscretizedLoad, SchedError> {
        Ok(DiscretizedLoad::from_profile(profile, &self.disc, self.charge_horizon())?)
    }
}

/// The result of simulating a policy on a load.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemOutcome {
    lifetime_steps: Option<u64>,
    disc: Discretization,
    backend: &'static str,
    schedule: Schedule,
    trace: SystemTrace,
    final_charges: Vec<BatteryCharge>,
    residual_charge: f64,
}

impl SystemOutcome {
    /// System lifetime in time steps (the time at which the last battery was
    /// observed empty), or `None` if the load ended first.
    #[must_use]
    pub fn lifetime_steps(&self) -> Option<u64> {
        self.lifetime_steps
    }

    /// System lifetime in minutes.
    #[must_use]
    pub fn lifetime_minutes(&self) -> Option<f64> {
        self.lifetime_steps.map(|s| self.disc.steps_to_minutes(s))
    }

    /// The name of the battery backend that produced this outcome.
    #[must_use]
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// The schedule that was executed.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The sampled charge trace (non-empty only if sampling was enabled in
    /// the [`SystemConfig`]).
    #[must_use]
    pub fn trace(&self) -> &SystemTrace {
        &self.trace
    }

    /// Per-battery charge snapshots when the simulation stopped.
    #[must_use]
    pub fn final_charges(&self) -> &[BatteryCharge] {
        &self.final_charges
    }

    /// Total charge left in the batteries at the end, in A·min. The paper
    /// observes that roughly 70 % of the original energy remains in the
    /// `ILs alt` two-battery experiment.
    #[must_use]
    pub fn residual_charge(&self) -> f64 {
        self.residual_charge
    }
}

/// Simulates `policy` on `profile` under `config`, using the discretized
/// KiBaM backend (the paper's model).
///
/// # Errors
///
/// Propagates discretization errors and
/// [`SchedError::InvalidBatteryIndex`] if the policy returns an index
/// outside the system.
pub fn simulate_policy(
    config: &SystemConfig,
    profile: &LoadProfile,
    policy: &mut dyn SchedulingPolicy,
) -> Result<SystemOutcome, SchedError> {
    let load = config.discretize(profile)?;
    simulate_policy_on(config, &load, policy)
}

/// Simulates `policy` on an already-discretized load, using the discretized
/// KiBaM backend.
///
/// # Errors
///
/// Same as [`simulate_policy`].
pub fn simulate_policy_on(
    config: &SystemConfig,
    load: &DiscretizedLoad,
    policy: &mut dyn SchedulingPolicy,
) -> Result<SystemOutcome, SchedError> {
    let mut model = config.discretized_model();
    simulate_policy_with(config, load, policy, &mut model)
}

/// Simulates `policy` on an already-discretized load against an arbitrary
/// [`BatteryModel`] backend.
///
/// The model is [`reset`](BatteryModel::reset) before the run, so the same
/// backend instance can be reused across simulations. The backend must have
/// been built for the same battery parameters and discretization as
/// `config` (the [`SystemConfig::discretized_model`] and
/// [`SystemConfig::continuous_model`] constructors guarantee this).
///
/// # Errors
///
/// Propagates backend errors and [`SchedError::InvalidBatteryIndex`] if the
/// policy returns an index outside the system.
pub fn simulate_policy_with<M: BatteryModel>(
    config: &SystemConfig,
    load: &DiscretizedLoad,
    policy: &mut dyn SchedulingPolicy,
    model: &mut M,
) -> Result<SystemOutcome, SchedError> {
    policy.reset();
    model.reset();
    let battery_count = model.battery_count();
    let mut elapsed: u64 = 0;
    let mut job_index: usize = 0;
    let mut decision_index: usize = 0;
    let mut schedule = Schedule::default();
    let mut trace = SystemTrace::default();
    let mut charges = Vec::with_capacity(battery_count);
    let sampling = config.sample_interval_steps;

    record_sample(&mut trace, sampling, elapsed, model, None, config.disc());

    for epoch in load.epochs() {
        if epoch.is_idle() {
            advance_idle_sampled(
                model,
                &mut elapsed,
                epoch.duration_steps(),
                sampling,
                &mut trace,
                config.disc(),
            );
            continue;
        }

        let interval = u64::from(epoch.draw_interval_steps());
        let mut remaining = epoch.duration_steps();
        let mut continuation = false;
        while remaining > 0 {
            let available = model.available();
            if available.is_empty() {
                // All batteries are empty: the system died at `elapsed`.
                return Ok(finish(Some(elapsed), config, model, schedule, trace));
            }
            model.charges_into(&mut charges);
            let ctx = DecisionContext {
                job_index,
                continuation,
                available: &available,
                charges: &charges,
            };
            let Some(chosen) = policy.choose(&ctx) else {
                return Ok(finish(Some(elapsed), config, model, schedule, trace));
            };
            if chosen >= battery_count {
                return Err(SchedError::InvalidBatteryIndex {
                    index: chosen,
                    count: battery_count,
                });
            }

            let start_step = elapsed;
            // Serve the job in sampling-aligned chunks (multiples of the draw
            // interval) so the trace stays faithful to the draw schedule.
            let mut battery_died = false;
            while remaining > 0 {
                let chunk = chunk_size(remaining, interval, sampling);
                let advance = model.advance_job(
                    chosen,
                    chunk,
                    epoch.draw_interval_steps(),
                    epoch.units_per_draw(),
                )?;
                elapsed += advance.steps_consumed;
                remaining -= advance.steps_consumed;
                record_sample(&mut trace, sampling, elapsed, model, Some(chosen), config.disc());
                if !advance.completed {
                    battery_died = true;
                    break;
                }
            }
            schedule.assignments.push(Assignment {
                decision_index,
                job_index,
                battery: chosen,
                start_step,
                end_step: elapsed,
                continuation,
            });
            decision_index += 1;
            if battery_died {
                if model.available().is_empty() {
                    // The last battery died while serving: system lifetime.
                    return Ok(finish(Some(elapsed), config, model, schedule, trace));
                }
                continuation = true;
            }
        }
        job_index += 1;
    }

    Ok(finish(None, config, model, schedule, trace))
}

fn finish<M: BatteryModel>(
    lifetime_steps: Option<u64>,
    config: &SystemConfig,
    model: &M,
    schedule: Schedule,
    trace: SystemTrace,
) -> SystemOutcome {
    SystemOutcome {
        lifetime_steps,
        disc: config.disc,
        backend: model.backend_name(),
        schedule,
        trace,
        final_charges: model.charges(),
        residual_charge: model.total_charge(),
    }
}

/// Chooses the next chunk of a job: a multiple of the draw interval close to
/// the sampling interval (or the whole remainder when not sampling).
fn chunk_size(remaining: u64, interval: u64, sampling: Option<u64>) -> u64 {
    match sampling {
        None => remaining,
        Some(sample) => {
            let aligned = match sample.max(interval).checked_div(interval) {
                None => sample,
                Some(quotient) => quotient * interval,
            };
            aligned.max(1).min(remaining)
        }
    }
}

fn advance_idle_sampled<M: BatteryModel>(
    model: &mut M,
    elapsed: &mut u64,
    duration: u64,
    sampling: Option<u64>,
    trace: &mut SystemTrace,
    disc: &Discretization,
) {
    let mut remaining = duration;
    while remaining > 0 {
        let chunk = sampling.unwrap_or(remaining).max(1).min(remaining);
        model.advance_idle(chunk);
        *elapsed += chunk;
        remaining -= chunk;
        record_sample(trace, sampling, *elapsed, model, None, disc);
    }
}

fn record_sample<M: BatteryModel>(
    trace: &mut SystemTrace,
    sampling: Option<u64>,
    elapsed: u64,
    model: &M,
    active: Option<usize>,
    disc: &Discretization,
) {
    if sampling.is_none() {
        return;
    }
    trace.points.push(SystemTracePoint {
        time: disc.steps_to_minutes(elapsed),
        charges: model.charges(),
        active,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BestAvailable, FixedSchedule, RoundRobin, Sequential};
    use workload::paper_loads::TestLoad;

    fn two_b1() -> SystemConfig {
        SystemConfig::paper_two_b1()
    }

    fn lifetime(policy: &mut dyn SchedulingPolicy, load: TestLoad) -> f64 {
        simulate_policy(&two_b1(), &load.profile(), policy)
            .unwrap()
            .lifetime_minutes()
            .expect("paper loads exhaust both batteries")
    }

    fn continuous_lifetime(policy: &mut dyn SchedulingPolicy, load: TestLoad) -> f64 {
        let config = two_b1();
        let discretized = config.discretize(&load.profile()).unwrap();
        let mut model = config.continuous_model();
        simulate_policy_with(&config, &discretized, policy, &mut model)
            .unwrap()
            .lifetime_minutes()
            .expect("paper loads exhaust both batteries")
    }

    #[test]
    fn config_rejects_zero_batteries() {
        assert!(matches!(
            SystemConfig::new(BatteryParams::itsy_b1(), Discretization::paper_default(), 0),
            Err(SchedError::NoBatteries)
        ));
    }

    #[test]
    fn sequential_matches_table_5_on_cl_500() {
        // Table 5: sequential on CL 500 gives 4.10 min.
        let value = lifetime(&mut Sequential::new(), TestLoad::Cl500);
        assert!((value - 4.10).abs() < 0.06, "got {value}");
    }

    #[test]
    fn round_robin_matches_table_5_on_cl_500() {
        // Table 5: round robin on CL 500 gives 4.53 min.
        let value = lifetime(&mut RoundRobin::new(), TestLoad::Cl500);
        assert!((value - 4.53).abs() < 0.06, "got {value}");
    }

    #[test]
    fn round_robin_matches_table_5_on_ils_500() {
        // Table 5: round robin on ILs 500 gives 10.48 min.
        let value = lifetime(&mut RoundRobin::new(), TestLoad::Ils500);
        assert!((value - 10.48).abs() < 0.12, "got {value}");
    }

    #[test]
    fn best_of_two_beats_round_robin_on_alternating_load() {
        // Table 5 (ILs alt): round robin 12.82, best-of-two 16.30 (+27 %).
        let rr = lifetime(&mut RoundRobin::new(), TestLoad::IlsAlt);
        let best = lifetime(&mut BestAvailable::new(), TestLoad::IlsAlt);
        assert!(best > rr * 1.15, "best-of-two {best} should clearly beat round robin {rr}");
    }

    #[test]
    fn sequential_is_never_better_than_round_robin() {
        for load in TestLoad::all() {
            let seq = lifetime(&mut Sequential::new(), load);
            let rr = lifetime(&mut RoundRobin::new(), load);
            assert!(seq <= rr + 0.03, "{load}: sequential {seq} must not beat round robin {rr}");
        }
    }

    #[test]
    fn best_of_two_equals_round_robin_on_uniform_loads() {
        // The paper observes that the two schemes only differ on the
        // alternating (and random) loads.
        for load in [TestLoad::Cl250, TestLoad::Cl500, TestLoad::Ils500, TestLoad::Ill250] {
            let rr = lifetime(&mut RoundRobin::new(), load);
            let best = lifetime(&mut BestAvailable::new(), load);
            assert!((rr - best).abs() < 1e-9, "{load}: {rr} vs {best}");
        }
    }

    #[test]
    fn two_batteries_last_longer_than_one() {
        let single =
            SystemConfig::new(BatteryParams::itsy_b1(), Discretization::paper_default(), 1)
                .unwrap();
        let one = simulate_policy(&single, &TestLoad::Ils500.profile(), &mut Sequential::new())
            .unwrap()
            .lifetime_minutes()
            .unwrap();
        let two = lifetime(&mut Sequential::new(), TestLoad::Ils500);
        assert!(two > one * 1.5);
    }

    #[test]
    fn schedule_records_assignments_and_switches() {
        let outcome =
            simulate_policy(&two_b1(), &TestLoad::Ils500.profile(), &mut RoundRobin::new())
                .unwrap();
        let schedule = outcome.schedule();
        assert!(!schedule.assignments.is_empty());
        assert!(schedule.switches() > 0, "round robin alternates batteries");
        let per_battery = schedule.assignments_per_battery(2);
        assert!(per_battery[0] > 0 && per_battery[1] > 0);
        // Assignment steps are consistent and ordered.
        for assignment in &schedule.assignments {
            assert!(assignment.end_step >= assignment.start_step);
        }
    }

    #[test]
    fn trace_is_recorded_only_when_sampling_enabled() {
        let without =
            simulate_policy(&two_b1(), &TestLoad::Cl500.profile(), &mut RoundRobin::new()).unwrap();
        assert!(without.trace().is_empty());
        let with = simulate_policy(
            &two_b1().with_sampling(10),
            &TestLoad::Cl500.profile(),
            &mut RoundRobin::new(),
        )
        .unwrap();
        assert!(with.trace().len() > 10);
        // Times are non-decreasing and totals never increase.
        for pair in with.trace().points.windows(2) {
            assert!(pair[1].time >= pair[0].time);
            let sum_before: f64 = pair[0].charges.iter().map(|c| c.total).sum();
            let sum_after: f64 = pair[1].charges.iter().map(|c| c.total).sum();
            assert!(sum_after <= sum_before + 1e-9);
        }
    }

    #[test]
    fn residual_charge_is_large_for_ils_alt() {
        // Section 6: about 70 % of the original energy remains in the
        // batteries for the ILs alt load on 2 x B1.
        let outcome =
            simulate_policy(&two_b1(), &TestLoad::IlsAlt.profile(), &mut BestAvailable::new())
                .unwrap();
        let fraction = outcome.residual_charge() / (2.0 * 5.5);
        assert!(fraction > 0.5 && fraction < 0.85, "residual fraction {fraction}");
        assert_eq!(outcome.final_charges().len(), 2);
        let from_snapshots: f64 = outcome.final_charges().iter().map(|c| c.total).sum();
        assert!((from_snapshots - outcome.residual_charge()).abs() < 1e-9);
    }

    #[test]
    fn replaying_a_schedule_reproduces_its_lifetime() {
        let original =
            simulate_policy(&two_b1(), &TestLoad::IlsAlt.profile(), &mut BestAvailable::new())
                .unwrap();
        let mut replay = FixedSchedule::new(original.schedule().decisions());
        let replayed =
            simulate_policy(&two_b1(), &TestLoad::IlsAlt.profile(), &mut replay).unwrap();
        assert_eq!(original.lifetime_steps(), replayed.lifetime_steps());
    }

    #[test]
    fn load_that_ends_early_gives_no_lifetime() {
        let profile = TestLoad::Cl500.profile().truncate_to_duration(1.0).unwrap();
        let outcome = simulate_policy(&two_b1(), &profile, &mut Sequential::new()).unwrap();
        assert_eq!(outcome.lifetime_steps(), None);
        assert!(outcome.residual_charge() > 10.0);
    }

    #[test]
    fn backend_name_is_reported() {
        let config = two_b1();
        let load = config.discretize(&TestLoad::Cl500.profile()).unwrap();
        let discrete = simulate_policy_on(&config, &load, &mut RoundRobin::new()).unwrap();
        assert_eq!(discrete.backend(), "discretized");
        let mut model = config.continuous_model();
        let continuous =
            simulate_policy_with(&config, &load, &mut RoundRobin::new(), &mut model).unwrap();
        assert_eq!(continuous.backend(), "continuous");
    }

    #[test]
    fn continuous_backend_agrees_with_discretized_within_tolerance() {
        // Tables 3 and 4 report ~1-2 % agreement between the continuous and
        // discretized models; the same must hold for the two-battery system
        // simulation through the trait path.
        for load in [TestLoad::Cl500, TestLoad::Ils500, TestLoad::IlsAlt] {
            let discrete = lifetime(&mut RoundRobin::new(), load);
            let continuous = continuous_lifetime(&mut RoundRobin::new(), load);
            let relative = (discrete - continuous).abs() / continuous;
            assert!(
                relative < 0.03,
                "{load}: discretized {discrete:.3} vs continuous {continuous:.3}"
            );
        }
    }

    #[test]
    fn continuous_backend_can_be_reused_across_runs() {
        let config = two_b1();
        let load = config.discretize(&TestLoad::Ils500.profile()).unwrap();
        let mut model = config.continuous_model();
        let first = simulate_policy_with(&config, &load, &mut RoundRobin::new(), &mut model)
            .unwrap()
            .lifetime_steps();
        let second = simulate_policy_with(&config, &load, &mut RoundRobin::new(), &mut model)
            .unwrap()
            .lifetime_steps();
        assert_eq!(first, second, "the model is reset between runs");
    }
}
