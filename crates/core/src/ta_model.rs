//! The TA-KiBaM: the paper's network of priced timed automata (Figure 5).
//!
//! This module encodes the discretized battery-scheduling problem as a
//! network of priced timed automata on top of the [`pta`] crate, mirroring
//! the five automaton types of the paper:
//!
//! * a **total charge** automaton per battery (Figure 5(a));
//! * a **height difference** automaton per battery (Figure 5(b));
//! * the **load** automaton stepping through the epochs (Figure 5(c));
//! * the **scheduler**, whose nondeterministic `go_on` choice *is* the
//!   schedule being sought (Figure 5(d));
//! * the **maximum finder**, which converts the charge left behind into a
//!   cost once all batteries are empty (Figure 5(e)).
//!
//! Minimum-cost reachability of the maximum finder's `done` location then
//! yields the schedule with the least residual charge — i.e. the longest
//! system lifetime (Section 4.3).
//!
//! The encoding is used to cross-validate the direct branch-and-bound search
//! of [`crate::optimal`] on small instances; the paper's full discretization
//! (550 charge units per battery) is far beyond what explicit-state search
//! can explore, exactly as the paper notes for Cora ("it is possible to
//! model only a limited total battery capacity", Section 6).

use crate::SchedError;
use dkibam::{Discretization, DiscretizedLoad, RecoveryTable};
use kibam::{BatteryParams, FleetSpec};
use pta::automaton::{Automaton, Edge, Location};
use pta::expr::{BoolExpr, CmpOp, IntExpr, VarId};
use pta::mincost::min_cost_reachability;
use pta::network::{AutomatonId, ChannelKind, Network};

/// Scale factor used to express the well fraction `c` as an integer, as in
/// the paper's guards (`(1000 - c) * m_delta >= c * n_gamma`).
const C_SCALE: f64 = 1000.0;

/// The TA-KiBaM model for a given load and battery configuration.
#[derive(Debug)]
pub struct TaKibamModel {
    network: Network,
    max_finder: AutomatonId,
    done: pta::automaton::LocationId,
    charge_left: VarId,
    battery_count: usize,
}

/// The optimum found by minimum-cost reachability on the TA-KiBaM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaOptimal {
    /// System lifetime in time steps (the instant the last battery was
    /// observed empty).
    pub lifetime_steps: u64,
    /// Charge units left behind in the batteries (the Cora cost).
    pub residual_charge_units: u64,
    /// Number of states settled by the search.
    pub states_explored: usize,
}

impl TaKibamModel {
    /// The underlying network (useful for inspection and for the `pta`
    /// analyses beyond minimum-cost reachability).
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The number of batteries in the model.
    #[must_use]
    pub fn battery_count(&self) -> usize {
        self.battery_count
    }

    /// Runs minimum-cost reachability of the maximum finder's `done`
    /// location and converts the result into a lifetime.
    ///
    /// Returns `Ok(None)` if `done` is unreachable within the state limit
    /// budget semantics of the underlying engine (which, for a well-formed
    /// load that outlasts the batteries, does not happen).
    ///
    /// # Errors
    ///
    /// Propagates engine errors, including
    /// [`pta::PtaError::StateLimitExceeded`] wrapped in
    /// [`SchedError::Pta`].
    pub fn optimal_lifetime(&self, state_limit: usize) -> Result<Option<TaOptimal>, SchedError> {
        let max_finder = self.max_finder;
        let done = self.done;
        let result =
            min_cost_reachability(&self.network, |s| s.location(max_finder) == done, state_limit)?;
        Ok(result.map(|r| {
            let residual = r.cost;
            TaOptimal {
                lifetime_steps: r.goal_state.time().saturating_sub(residual),
                residual_charge_units: residual,
                states_explored: r.states_explored,
            }
        }))
    }
}

/// Builds the TA-KiBaM network for `battery_count` identical batteries and a
/// discretized load (the uniform convenience wrapper around
/// [`build_ta_kibam_fleet`]).
///
/// # Errors
///
/// Returns [`SchedError::NoBatteries`] for an empty system and propagates
/// network-construction errors.
pub fn build_ta_kibam(
    params: &BatteryParams,
    disc: &Discretization,
    load: &DiscretizedLoad,
    battery_count: usize,
) -> Result<TaKibamModel, SchedError> {
    let fleet = FleetSpec::uniform(*params, battery_count).map_err(|_| SchedError::NoBatteries)?;
    build_ta_kibam_fleet(&fleet, disc, load)
}

/// Builds the TA-KiBaM network for a (possibly heterogeneous) battery fleet
/// and a discretized load: per-battery automata use their own battery's
/// well fraction, capacity and recovery table, so mixed (e.g. B1 + B2)
/// systems are encoded faithfully.
///
/// # Errors
///
/// Propagates network-construction errors.
pub fn build_ta_kibam_fleet(
    fleet: &FleetSpec,
    disc: &Discretization,
    load: &DiscretizedLoad,
) -> Result<TaKibamModel, SchedError> {
    let battery_count = fleet.len();
    let mut network = Network::new();
    let c_ints: Vec<i64> = fleet
        .params()
        .iter()
        .map(|p| dkibam::checked::f64_to_i64((p.c() * C_SCALE).round()))
        .collect();
    let capacity_units: Vec<i64> =
        fleet.params().iter().map(|p| i64::from(disc.charge_units(p.capacity()))).collect();

    // ---- constant tables -------------------------------------------------
    let epochs = load.epochs();
    let epoch_count = epochs.len();
    let total_steps: i64 = dkibam::checked::u64_to_i64(load.total_steps());
    // A value larger than any time the model can reach, used as "never".
    let never = total_steps + capacity_units.iter().sum::<i64>() + 16;

    let mut load_time_values: Vec<i64> =
        load.load_time().iter().map(|&t| dkibam::checked::u64_to_i64(t)).collect();
    let mut cur_times_values: Vec<i64> =
        epochs.iter().map(|e| i64::from(e.draw_interval_steps().max(1))).collect();
    let mut cur_values: Vec<i64> = epochs.iter().map(|e| i64::from(e.units_per_draw())).collect();
    // Sentinel entries so that expressions indexed by `j` stay in bounds
    // after the final epoch.
    load_time_values.push(never);
    cur_times_values.push(1);
    cur_values.push(0);

    // One recovery table per battery *type* (identical batteries share
    // one), each sized so that `recov_time[m + cur[j]]` stays in bounds
    // even when a full battery of that type takes its next draw.
    let max_units_per_draw = epochs.iter().map(|e| e.units_per_draw()).max().unwrap_or(1);
    let recov_time_by_type: Vec<_> = (0..fleet.type_count())
        .map(|t| {
            let params = fleet.type_params(t);
            let recovery = RecoveryTable::new(
                params,
                disc,
                disc.charge_units(params.capacity()) + max_units_per_draw,
            );
            let recov_values: Vec<i64> = (0..=recovery.max_units())
                .map(|m| recovery.steps(m).map(dkibam::checked::u64_to_i64).unwrap_or(never))
                .collect();
            network.add_const_array(format!("recov_time_{t}"), recov_values)
        })
        .collect();
    let recov_time_of = |i: usize| recov_time_by_type[fleet.type_of(i)];

    let load_time = network.add_const_array("load_time", load_time_values);
    let cur_times = network.add_const_array("cur_times", cur_times_values);
    let cur = network.add_const_array("cur", cur_values);

    // ---- shared variables, clocks, channels --------------------------------
    let j = network.add_var("j", 0);
    let empty_count = network.add_var("empty_count", 0);
    let charge_left = network.add_var("charge_left", 0);
    let n_gamma: Vec<VarId> = (0..battery_count)
        .map(|i| network.add_var(format!("n_gamma_{i}"), capacity_units[i]))
        .collect();
    let m_delta: Vec<VarId> =
        (0..battery_count).map(|i| network.add_var(format!("m_delta_{i}"), 0)).collect();

    let t_clock = network.add_clock("t");
    let c_cost = network.add_clock("c_cost");
    let c_disch: Vec<_> =
        (0..battery_count).map(|i| network.add_clock(format!("c_disch_{i}"))).collect();
    let c_recov: Vec<_> =
        (0..battery_count).map(|i| network.add_clock(format!("c_recov_{i}"))).collect();

    let new_job = network.add_channel("new_job", ChannelKind::Binary);
    let go_on = network.add_channel("go_on", ChannelKind::Binary);
    let go_off = network.add_channel("go_off", ChannelKind::Binary);
    let emptied = network.add_channel("emptied", ChannelKind::Binary);
    let all_empty = network.add_channel("all_empty", ChannelKind::Broadcast);
    let use_charge: Vec<_> = (0..battery_count)
        .map(|i| network.add_channel(format!("use_charge_{i}"), ChannelKind::Binary))
        .collect();

    // Helper expressions.
    let cur_j = || IntExpr::elem(cur, IntExpr::var(j));
    let cur_times_j = || IntExpr::elem(cur_times, IntExpr::var(j));
    let load_time_j = || IntExpr::elem(load_time, IntExpr::var(j));
    // Eq. 8 scaled by 1000 with battery `i`'s own well fraction:
    // (1000 - c_i) * m >= c_i * n means "empty".
    let is_empty = |i: usize| {
        BoolExpr::cmp(
            IntExpr::constant(1000 - c_ints[i]).mul(IntExpr::var(m_delta[i])),
            CmpOp::Ge,
            IntExpr::constant(c_ints[i]).mul(IntExpr::var(n_gamma[i])),
        )
    };
    let not_empty = |i: usize| {
        BoolExpr::cmp(
            IntExpr::constant(1000 - c_ints[i]).mul(IntExpr::var(m_delta[i])),
            CmpOp::Lt,
            IntExpr::constant(c_ints[i]).mul(IntExpr::var(n_gamma[i])),
        )
    };

    // ---- total charge automata (Figure 5(a)) -------------------------------
    for i in 0..battery_count {
        let mut automaton = Automaton::new(format!("total_charge_{i}"));
        let idle = automaton.add_location(Location::new("idle"));
        let on = automaton.add_location(
            Location::new("on").with_invariant(BoolExpr::clock_le(c_disch[i], cur_times_j())),
        );
        let empty_signal = automaton.add_location(Location::new("empty_signal").committed());
        let empty = automaton.add_location(Location::new("empty"));

        automaton.add_edge(
            Edge::new(idle, on).with_receive(go_on).with_guard(not_empty(i)).with_reset(c_disch[i]),
        )?;
        automaton.add_edge(
            Edge::new(on, on)
                .with_guard(BoolExpr::clock_ge(c_disch[i], cur_times_j()).and(not_empty(i)))
                .with_send(use_charge[i])
                .with_update(n_gamma[i], IntExpr::var(n_gamma[i]).sub(cur_j()))
                .with_reset(c_disch[i]),
        )?;
        automaton
            .add_edge(Edge::new(on, empty_signal).with_guard(is_empty(i)).with_send(emptied))?;
        // A battery may only be switched off while it is still non-empty, so
        // that emptiness is always observed (and the battery retired).
        automaton.add_edge(Edge::new(on, idle).with_receive(go_off).with_guard(not_empty(i)))?;
        automaton.add_edge(Edge::new(empty_signal, empty).with_send(new_job))?;
        automaton.set_initial(idle)?;
        network.add_automaton(automaton)?;
    }

    // ---- height difference automata (Figure 5(b)) ---------------------------
    //
    // The `track` location carries the invariant `c_recov <= recov_time[m]`
    // so that recovery is taken as soon as it is due (the entries for
    // `m <= 1` are "never", so the invariant is vacuous there). A draw that
    // would immediately make the invariant false — because the larger height
    // difference recovers faster — is folded with its catch-up recovery into
    // a single edge, mirroring how the discrete simulator catches up at the
    // next step.
    for i in 0..battery_count {
        let recov_time = recov_time_of(i);
        let mut automaton = Automaton::new(format!("height_difference_{i}"));
        let track = automaton.add_location(Location::new("track").with_invariant(
            BoolExpr::clock_le(c_recov[i], IntExpr::elem(recov_time, IntExpr::var(m_delta[i]))),
        ));
        let off = automaton.add_location(Location::new("off"));
        let recov_after_draw = IntExpr::elem(recov_time, IntExpr::var(m_delta[i]).add(cur_j()));
        // Draw without pending catch-up.
        automaton.add_edge(
            Edge::new(track, track)
                .with_receive(use_charge[i])
                .with_guard(BoolExpr::ClockCmp(c_recov[i], CmpOp::Lt, recov_after_draw.clone()))
                .with_update(m_delta[i], IntExpr::var(m_delta[i]).add(cur_j())),
        )?;
        // Draw whose new height difference is already due for recovery: the
        // catch-up recovery is applied together with the draw.
        automaton.add_edge(
            Edge::new(track, track)
                .with_receive(use_charge[i])
                .with_guard(BoolExpr::ClockCmp(c_recov[i], CmpOp::Ge, recov_after_draw))
                .with_update(
                    m_delta[i],
                    IntExpr::var(m_delta[i]).add(cur_j()).sub(IntExpr::constant(1)),
                )
                .with_reset(c_recov[i]),
        )?;
        // Ordinary recovery of one height unit.
        automaton.add_edge(
            Edge::new(track, track)
                .with_guard(BoolExpr::cmp(m_delta[i], CmpOp::Ge, 2).and(BoolExpr::clock_ge(
                    c_recov[i],
                    IntExpr::elem(recov_time, IntExpr::var(m_delta[i])),
                )))
                .with_update(m_delta[i], IntExpr::var(m_delta[i]).sub(IntExpr::constant(1)))
                .with_reset(c_recov[i]),
        )?;
        automaton.add_edge(Edge::new(track, off).with_receive(all_empty))?;
        automaton.set_initial(track)?;
        network.add_automaton(automaton)?;
    }

    // ---- load automaton (Figure 5(c)) ---------------------------------------
    {
        let mut automaton = Automaton::new("load");
        let start = automaton.add_location(Location::new("start").committed());
        let load_on = automaton.add_location(
            Location::new("load_on").with_invariant(BoolExpr::clock_le(t_clock, load_time_j())),
        );
        let dispatch = automaton.add_location(Location::new("dispatch").committed());
        let finished = automaton.add_location(Location::new("finished"));
        let off = automaton.add_location(Location::new("off"));

        let first_is_job = BoolExpr::cmp(IntExpr::elem(cur, IntExpr::constant(0)), CmpOp::Gt, 0);
        let first_is_idle = BoolExpr::cmp(IntExpr::elem(cur, IntExpr::constant(0)), CmpOp::Eq, 0);
        automaton
            .add_edge(Edge::new(start, load_on).with_guard(first_is_job).with_send(new_job))?;
        automaton.add_edge(Edge::new(start, load_on).with_guard(first_is_idle))?;

        let epoch_over = BoolExpr::clock_ge(t_clock, load_time_j());
        let job_epoch = BoolExpr::cmp(cur_j(), CmpOp::Gt, 0);
        let idle_epoch = BoolExpr::cmp(cur_j(), CmpOp::Eq, 0);
        automaton.add_edge(
            Edge::new(load_on, dispatch)
                .with_guard(epoch_over.clone().and(job_epoch.clone()))
                .with_send(go_off)
                .with_update(j, IntExpr::var(j).add(IntExpr::constant(1))),
        )?;
        automaton.add_edge(
            Edge::new(load_on, dispatch)
                .with_guard(epoch_over.and(idle_epoch.clone()))
                .with_update(j, IntExpr::var(j).add(IntExpr::constant(1))),
        )?;
        let more_epochs = BoolExpr::cmp(
            j,
            CmpOp::Lt,
            IntExpr::constant(dkibam::checked::usize_to_i64(epoch_count)),
        );
        automaton.add_edge(
            Edge::new(dispatch, load_on)
                .with_guard(more_epochs.clone().and(job_epoch))
                .with_send(new_job),
        )?;
        automaton.add_edge(Edge::new(dispatch, load_on).with_guard(more_epochs.and(idle_epoch)))?;
        automaton.add_edge(Edge::new(dispatch, finished).with_guard(BoolExpr::cmp(
            j,
            CmpOp::Ge,
            IntExpr::constant(dkibam::checked::usize_to_i64(epoch_count)),
        )))?;
        automaton.add_edge(Edge::new(load_on, off).with_receive(all_empty))?;
        automaton.add_edge(Edge::new(dispatch, off).with_receive(all_empty))?;
        automaton.set_initial(start)?;
        network.add_automaton(automaton)?;
    }

    // ---- scheduler automaton (Figure 5(d)) -----------------------------------
    {
        let mut automaton = Automaton::new("scheduler");
        let wait = automaton.add_location(Location::new("wait"));
        let choose = automaton.add_location(Location::new("choose"));
        let off = automaton.add_location(Location::new("off"));
        automaton.add_edge(Edge::new(wait, choose).with_receive(new_job))?;
        automaton.add_edge(Edge::new(choose, wait).with_send(go_on))?;
        automaton.add_edge(Edge::new(wait, off).with_receive(all_empty))?;
        automaton.add_edge(Edge::new(choose, off).with_receive(all_empty))?;
        automaton.set_initial(wait)?;
        network.add_automaton(automaton)?;
    }

    // ---- maximum finder automaton (Figure 5(e)) ------------------------------
    let (max_finder, done) = {
        let mut automaton = Automaton::new("maximum_finder");
        let counting = automaton.add_location(Location::new("counting"));
        let announce = automaton.add_location(Location::new("announce").committed());
        let converting = automaton.add_location(
            Location::new("converting")
                .with_invariant(BoolExpr::clock_le(c_cost, IntExpr::var(charge_left)))
                .with_cost_rate(IntExpr::constant(1)),
        );
        let done = automaton.add_location(Location::new("done"));

        automaton.add_edge(
            Edge::new(counting, counting)
                .with_receive(emptied)
                .with_guard(BoolExpr::cmp(
                    empty_count,
                    CmpOp::Lt,
                    IntExpr::constant(dkibam::checked::usize_to_i64(battery_count) - 1),
                ))
                .with_update(empty_count, IntExpr::var(empty_count).add(IntExpr::constant(1))),
        )?;
        let sum_gamma = n_gamma
            .iter()
            .skip(1)
            .fold(IntExpr::var(n_gamma[0]), |acc, &v| acc.add(IntExpr::var(v)));
        automaton.add_edge(
            Edge::new(counting, announce)
                .with_receive(emptied)
                .with_guard(BoolExpr::cmp(
                    empty_count,
                    CmpOp::Ge,
                    IntExpr::constant(dkibam::checked::usize_to_i64(battery_count) - 1),
                ))
                .with_update(charge_left, sum_gamma),
        )?;
        automaton
            .add_edge(Edge::new(announce, converting).with_send(all_empty).with_reset(c_cost))?;
        automaton.add_edge(
            Edge::new(converting, done)
                .with_guard(BoolExpr::clock_ge(c_cost, IntExpr::var(charge_left))),
        )?;
        automaton.set_initial(counting)?;
        (network.add_automaton(automaton)?, done)
    };

    Ok(TaKibamModel { network, max_finder, done, charge_left, battery_count })
}

impl TaKibamModel {
    /// The variable holding the residual charge once all batteries are
    /// empty; exposed for white-box inspection in tests and tools.
    #[must_use]
    pub fn charge_left_var(&self) -> VarId {
        self.charge_left
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::OptimalScheduler;
    use crate::system::SystemConfig;
    use workload::builder::LoadProfileBuilder;

    /// A deliberately tiny battery/discretization so the explicit-state
    /// search stays small: 0.04 A·min capacity in units of 0.01 A·min,
    /// `c = 0.5`, fast recovery, 0.05-minute time steps and a light
    /// intermittent load.
    fn tiny_setup() -> (BatteryParams, Discretization, workload::LoadProfile) {
        let params = BatteryParams::new(0.04, 0.5, 2.0).unwrap();
        let disc = Discretization::new(0.05, 0.01).unwrap();
        let profile = LoadProfileBuilder::new().job(0.1, 0.2).idle(0.2).build_cyclic().unwrap();
        (params, disc, profile)
    }

    #[test]
    fn build_produces_expected_structure() {
        let (params, disc, profile) = tiny_setup();
        let load = DiscretizedLoad::from_profile(&profile, &disc, 0.15).unwrap();
        let model = build_ta_kibam(&params, &disc, &load, 2).unwrap();
        // 2 total-charge + 2 height-difference + load + scheduler + max finder.
        assert_eq!(model.network().automata().len(), 7);
        assert_eq!(model.battery_count(), 2);
        assert!(model.network().validate().is_ok());
    }

    #[test]
    fn mixed_fleet_builds_per_battery_tables_and_dominates_direct_search() {
        let (small, disc, _) = tiny_setup();
        let big = BatteryParams::new(0.06, 0.5, 2.0).unwrap();
        let fleet = FleetSpec::new(vec![small, big]).unwrap();
        let config = SystemConfig::from_fleet(fleet.clone(), disc);
        // A slightly heavier load than `tiny_setup`'s so the mixed system
        // dies quickly and the explicit-state search stays small.
        let profile = LoadProfileBuilder::new().job(0.2, 0.2).idle(0.1).build_cyclic().unwrap();
        let load = config.discretize(&profile).unwrap();

        let model = build_ta_kibam_fleet(&fleet, &disc, &load).unwrap();
        assert_eq!(model.battery_count(), 2);
        assert!(model.network().validate().is_ok());

        let direct = OptimalScheduler::new().find_optimal_on(&config, &load).unwrap();
        let ta = model
            .optimal_lifetime(2_000_000)
            .unwrap()
            .expect("the tiny mixed instance exhausts both batteries");
        // Same relaxation argument as the uniform test below: the TA
        // optimum dominates the direct search but stays within the load.
        assert!(
            ta.lifetime_steps >= direct.lifetime_steps,
            "TA optimum {} must not be worse than the direct optimum {}",
            ta.lifetime_steps,
            direct.lifetime_steps
        );
        assert!(ta.lifetime_steps <= load.total_steps());
    }

    #[test]
    fn rejects_zero_batteries() {
        let (params, disc, profile) = tiny_setup();
        let load = DiscretizedLoad::from_profile(&profile, &disc, 0.15).unwrap();
        assert!(matches!(build_ta_kibam(&params, &disc, &load, 0), Err(SchedError::NoBatteries)));
    }

    #[test]
    fn ta_kibam_optimum_matches_branch_and_bound_on_tiny_instance() {
        let (params, disc, profile) = tiny_setup();
        let config = SystemConfig::new(params, disc, 2).unwrap();
        let load = config.discretize(&profile).unwrap();

        let direct = OptimalScheduler::new().find_optimal_on(&config, &load).unwrap();
        let model = build_ta_kibam(&params, &disc, &load, 2).unwrap();
        let ta = model
            .optimal_lifetime(2_000_000)
            .unwrap()
            .expect("the tiny instance exhausts both batteries");

        // The TA is a relaxation of the direct search: it may postpone the
        // observation of emptiness by up to one draw interval and may skip a
        // draw that coincides exactly with a job end (both the load and the
        // draw are enabled at that instant, and Cora-style optimisation picks
        // whichever helps). Its optimum therefore dominates the direct one
        // but stays within the load horizon.
        assert!(
            ta.lifetime_steps >= direct.lifetime_steps,
            "TA optimum {} must not be worse than the direct optimum {}",
            ta.lifetime_steps,
            direct.lifetime_steps
        );
        assert!(
            ta.lifetime_steps <= load.total_steps(),
            "TA optimum {} cannot exceed the load horizon {}",
            ta.lifetime_steps,
            load.total_steps()
        );
        let initial_units = 2 * u64::from(disc.charge_units(params.capacity()));
        assert!(ta.residual_charge_units < initial_units, "some charge must have been drawn");
    }
}
