use std::error::Error;
use std::fmt;

/// Errors produced by the battery-scheduling library.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchedError {
    /// A system was configured with no batteries.
    NoBatteries,
    /// A fixed schedule referred to a battery index outside the system.
    InvalidBatteryIndex {
        /// The offending index.
        index: usize,
        /// The number of batteries in the system.
        count: usize,
    },
    /// The optimal-schedule search exceeded its node budget.
    SearchBudgetExceeded {
        /// The budget that was exceeded.
        budget: usize,
    },
    /// An error from the discretized battery model.
    Dkibam(dkibam::DkibamError),
    /// An error from the continuous battery model.
    Kibam(kibam::KibamError),
    /// An error from the workload model.
    Workload(workload::WorkloadError),
    /// An error from the priced-timed-automata engine.
    Pta(pta::PtaError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NoBatteries => write!(f, "a battery system needs at least one battery"),
            SchedError::InvalidBatteryIndex { index, count } => {
                write!(f, "battery index {index} is out of range for a system of {count} batteries")
            }
            SchedError::SearchBudgetExceeded { budget } => {
                write!(f, "optimal-schedule search exceeded its budget of {budget} nodes")
            }
            SchedError::Dkibam(e) => write!(f, "discrete battery model error: {e}"),
            SchedError::Kibam(e) => write!(f, "battery model error: {e}"),
            SchedError::Workload(e) => write!(f, "workload error: {e}"),
            SchedError::Pta(e) => write!(f, "timed-automata error: {e}"),
        }
    }
}

impl Error for SchedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchedError::Dkibam(e) => Some(e),
            SchedError::Kibam(e) => Some(e),
            SchedError::Workload(e) => Some(e),
            SchedError::Pta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dkibam::DkibamError> for SchedError {
    fn from(e: dkibam::DkibamError) -> Self {
        SchedError::Dkibam(e)
    }
}

impl From<kibam::KibamError> for SchedError {
    fn from(e: kibam::KibamError) -> Self {
        SchedError::Kibam(e)
    }
}

impl From<workload::WorkloadError> for SchedError {
    fn from(e: workload::WorkloadError) -> Self {
        SchedError::Workload(e)
    }
}

impl From<pta::PtaError> for SchedError {
    fn from(e: pta::PtaError) -> Self {
        SchedError::Pta(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(SchedError::NoBatteries.to_string().contains("at least one"));
        assert!(SchedError::InvalidBatteryIndex { index: 4, count: 2 }.to_string().contains('4'));
        assert!(SchedError::SearchBudgetExceeded { budget: 10 }.to_string().contains("10"));
    }

    #[test]
    fn wraps_sub_crate_errors_with_sources() {
        let e: SchedError = dkibam::DkibamError::EmptyLoad.into();
        assert!(e.source().is_some());
        let e: SchedError = kibam::KibamError::InvalidCapacity { value: 0.0 }.into();
        assert!(e.source().is_some());
        let e: SchedError = workload::WorkloadError::EmptyProfile.into();
        assert!(e.source().is_some());
        let e: SchedError = pta::PtaError::EmptyNetwork.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn implements_std_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<SchedError>();
    }
}
