//! Schedules and charge traces produced by a simulation.
//!
//! A [`Schedule`] records which battery served which (portion of a) job; a
//! [`SystemTrace`] records the evolution of total and available charge of
//! every battery over time, which is exactly the data plotted in Figure 6 of
//! the paper.

use dkibam::Discretization;

/// One assignment of a battery to a (portion of a) job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Assignment {
    /// Sequence number of the scheduling decision (0-based).
    pub decision_index: usize,
    /// The job (0-based, counting only job epochs) this assignment serves.
    pub job_index: usize,
    /// The battery chosen.
    pub battery: usize,
    /// First time step of the assignment (inclusive).
    pub start_step: u64,
    /// Last time step of the assignment (exclusive).
    pub end_step: u64,
    /// Whether this assignment continues a job after another battery was
    /// observed empty.
    pub continuation: bool,
}

/// The complete schedule of a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schedule {
    /// The assignments in chronological order.
    pub assignments: Vec<Assignment>,
}

impl Schedule {
    /// The battery chosen at each scheduling decision, in decision order.
    /// This is the format [`crate::policy::FixedSchedule`] replays.
    #[must_use]
    pub fn decisions(&self) -> Vec<usize> {
        self.assignments.iter().map(|a| a.battery).collect()
    }

    /// The number of times the schedule switches from one battery to a
    /// different one between consecutive assignments.
    #[must_use]
    pub fn switches(&self) -> usize {
        self.assignments.windows(2).filter(|w| w[0].battery != w[1].battery).count()
    }

    /// How many assignments each battery received, indexed by battery.
    #[must_use]
    pub fn assignments_per_battery(&self, battery_count: usize) -> Vec<usize> {
        let mut counts = vec![0; battery_count];
        for assignment in &self.assignments {
            if assignment.battery < battery_count {
                counts[assignment.battery] += 1;
            }
        }
        counts
    }
}

/// The charge of one battery at one sample instant.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BatteryCharge {
    /// Total remaining charge `γ` (A·min).
    pub total: f64,
    /// Charge in the available-charge well (A·min).
    pub available: f64,
}

/// One sample of the whole system, as plotted in Figure 6.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SystemTracePoint {
    /// Sample time in minutes.
    pub time: f64,
    /// Per-battery charge at that time, indexed by battery.
    pub charges: Vec<BatteryCharge>,
    /// The battery serving the load at that time, if any (the "chosen
    /// battery" stair-step curve of Figure 6; `None` during idle periods and
    /// after system death).
    pub active: Option<usize>,
}

/// A sampled trace of a whole simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SystemTrace {
    /// The samples in time order.
    pub points: Vec<SystemTracePoint>,
}

impl SystemTrace {
    /// Whether the trace holds any samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Renders the trace as CSV with one row per sample:
    /// `time, total_0, available_0, ..., total_{B-1}, available_{B-1}, active`.
    /// The active column is empty when no battery is serving. This is the
    /// format consumed by the Figure 6 generator in the bench crate.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let battery_count = self.points.first().map(|p| p.charges.len()).unwrap_or(0);
        let mut out = String::from("time");
        for battery in 0..battery_count {
            out.push_str(&format!(",total_{battery},available_{battery}"));
        }
        out.push_str(",active\n");
        for point in &self.points {
            out.push_str(&format!("{:.4}", point.time));
            for charge in &point.charges {
                out.push_str(&format!(",{:.4},{:.4}", charge.total, charge.available));
            }
            match point.active {
                Some(battery) => out.push_str(&format!(",{battery}\n")),
                None => out.push_str(",\n"),
            }
        }
        out
    }
}

/// Converts a step count into minutes under the given discretization;
/// convenience shared by reporting code.
#[must_use]
pub fn steps_to_minutes(steps: u64, disc: &Discretization) -> f64 {
    disc.steps_to_minutes(steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> Schedule {
        Schedule {
            assignments: vec![
                Assignment {
                    decision_index: 0,
                    job_index: 0,
                    battery: 0,
                    start_step: 0,
                    end_step: 100,
                    continuation: false,
                },
                Assignment {
                    decision_index: 1,
                    job_index: 1,
                    battery: 1,
                    start_step: 200,
                    end_step: 300,
                    continuation: false,
                },
                Assignment {
                    decision_index: 2,
                    job_index: 1,
                    battery: 0,
                    start_step: 300,
                    end_step: 320,
                    continuation: true,
                },
            ],
        }
    }

    #[test]
    fn decisions_and_switch_count() {
        let s = schedule();
        assert_eq!(s.decisions(), vec![0, 1, 0]);
        assert_eq!(s.switches(), 2);
        assert_eq!(s.assignments_per_battery(2), vec![2, 1]);
    }

    #[test]
    fn trace_csv_has_header_and_rows() {
        let trace = SystemTrace {
            points: vec![
                SystemTracePoint {
                    time: 0.0,
                    charges: vec![
                        BatteryCharge { total: 5.5, available: 0.913 },
                        BatteryCharge { total: 5.5, available: 0.913 },
                    ],
                    active: Some(0),
                },
                SystemTracePoint {
                    time: 1.0,
                    charges: vec![
                        BatteryCharge { total: 5.0, available: 0.5 },
                        BatteryCharge { total: 5.5, available: 0.92 },
                    ],
                    active: None,
                },
            ],
        };
        let csv = trace.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "time,total_0,available_0,total_1,available_1,active");
        assert!(lines[1].ends_with(",0"));
        assert!(lines[2].ends_with(','));
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
    }

    #[test]
    fn steps_to_minutes_uses_discretization() {
        let disc = Discretization::paper_default();
        assert_eq!(steps_to_minutes(250, &disc), 2.5);
    }
}
