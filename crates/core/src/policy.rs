//! The scheduling policies compared in the paper (Section 6).
//!
//! A policy is consulted at every *scheduling point*: the start of each job
//! and, additionally, whenever the battery serving a job is observed empty
//! and the remainder of the job must be continued on another battery.
//!
//! Policies are backend-agnostic: the [`DecisionContext`] carries charge
//! *snapshots* ([`BatteryCharge`]) rather than any concrete battery state,
//! so the same policies drive every [`crate::model::BatteryModel`] backend.

use crate::schedule::BatteryCharge;

/// Everything a policy may inspect when making a decision.
#[derive(Debug, Clone, Copy)]
pub struct DecisionContext<'a> {
    /// The index of the job being scheduled (0-based, counting only jobs).
    pub job_index: usize,
    /// `true` when this decision continues a job whose previous battery was
    /// observed empty; `false` at the start of a fresh job.
    pub continuation: bool,
    /// Indices of the batteries that are currently able to serve the job.
    pub available: &'a [usize],
    /// Charge snapshots of *all* batteries (including empty ones), by index.
    pub charges: &'a [BatteryCharge],
}

/// A battery-selection policy.
///
/// Implementations may keep internal state (e.g. the round-robin cursor);
/// [`reset`](SchedulingPolicy::reset) returns them to their initial state so
/// the same instance can be reused across simulations.
pub trait SchedulingPolicy {
    /// A short human-readable name (used in reports).
    fn name(&self) -> &str;

    /// Chooses a battery for the next job (portion). Returning `None`
    /// signals that the policy declines to schedule, which ends the
    /// simulation; built-in policies only return `None` when
    /// `ctx.available` is empty.
    fn choose(&mut self, ctx: &DecisionContext<'_>) -> Option<usize>;

    /// Resets any internal state.
    fn reset(&mut self);
}

/// The *sequential* schedule: batteries are used one after the other; the
/// next battery is only used once the current one is empty. The paper shows
/// this is the worst possible schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sequential;

impl Sequential {
    /// Creates the sequential policy.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl SchedulingPolicy for Sequential {
    fn name(&self) -> &str {
        "sequential"
    }

    fn choose(&mut self, ctx: &DecisionContext<'_>) -> Option<usize> {
        ctx.available.iter().min().copied()
    }

    fn reset(&mut self) {}
}

/// The *round robin* schedule: every new job is assigned to the next battery
/// in a fixed cyclic order (continuations go to the next available battery).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobin;

impl RoundRobin {
    /// Creates the round-robin policy.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl SchedulingPolicy for RoundRobin {
    fn name(&self) -> &str {
        "round robin"
    }

    fn choose(&mut self, ctx: &DecisionContext<'_>) -> Option<usize> {
        if ctx.available.is_empty() {
            return None;
        }
        let count = ctx.charges.len();
        let preferred = ctx.job_index % count;
        // Pick the preferred battery of this job if it can serve, otherwise
        // the next available one in cyclic order.
        (0..count)
            .map(|offset| (preferred + offset) % count)
            .find(|candidate| ctx.available.contains(candidate))
    }

    fn reset(&mut self) {}
}

/// The *best-of-two* schedule (generalised to any number of batteries): at
/// every scheduling point the battery with the most charge in its
/// available-charge well is chosen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BestAvailable;

impl BestAvailable {
    /// Creates the best-available-charge policy.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl SchedulingPolicy for BestAvailable {
    fn name(&self) -> &str {
        "best of two"
    }

    fn choose(&mut self, ctx: &DecisionContext<'_>) -> Option<usize> {
        ctx.available.iter().copied().max_by(|&a, &b| {
            let charge_a = ctx.charges[a].available;
            let charge_b = ctx.charges[b].available;
            charge_a
                .total_cmp(&charge_b)
                // Ties go to the lower index, as a deterministic choice.
                .then(b.cmp(&a))
        })
    }

    fn reset(&mut self) {}
}

/// The *capacity-weighted round robin* schedule: jobs are spread over the
/// batteries in proportion to their capacities (stride scheduling), so a
/// B2 with twice a B1's capacity serves twice as many jobs. On uniform
/// fleets it degenerates to an even spread; on mixed fleets it is the
/// cheapest fleet-aware heuristic — it drains every battery at the same
/// *relative* rate without inspecting recovery state.
///
/// Capacities are captured from the total-charge snapshots of the first
/// decision (batteries are fresh then, so total charge equals capacity),
/// which keeps the policy backend-agnostic like the others.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CapacityWeightedRoundRobin {
    capacities: Vec<f64>,
    assigned: Vec<u64>,
}

impl CapacityWeightedRoundRobin {
    /// Creates the capacity-weighted round-robin policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedulingPolicy for CapacityWeightedRoundRobin {
    fn name(&self) -> &str {
        "capacity-weighted round robin"
    }

    fn choose(&mut self, ctx: &DecisionContext<'_>) -> Option<usize> {
        if self.capacities.is_empty() {
            self.capacities = ctx.charges.iter().map(|c| c.total.max(f64::MIN_POSITIVE)).collect();
            self.assigned = vec![0; ctx.charges.len()];
        }
        // Stride scheduling: pick the available battery with the smallest
        // (assignments + 1) / capacity ratio — compared cross-multiplied so
        // ties resolve deterministically towards the lower index.
        let chosen = ctx.available.iter().copied().min_by(|&a, &b| {
            let lhs = (self.assigned[a] + 1) as f64 * self.capacities[b];
            let rhs = (self.assigned[b] + 1) as f64 * self.capacities[a];
            lhs.total_cmp(&rhs).then(a.cmp(&b))
        })?;
        self.assigned[chosen] += 1;
        Some(chosen)
    }

    fn reset(&mut self) {
        // Capacities are re-captured on the next decision (models are reset
        // to fresh batteries at the start of every simulation).
        self.capacities.clear();
        self.assigned.clear();
    }
}

/// Replays an explicit list of decisions — one battery index per scheduling
/// point — e.g. an optimal schedule produced by
/// [`crate::optimal::OptimalScheduler`].
///
/// If the list is exhausted, or the recorded battery cannot serve, the
/// lowest-indexed available battery is used instead, so the policy is always
/// total.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FixedSchedule {
    decisions: Vec<usize>,
    cursor: usize,
}

impl FixedSchedule {
    /// Creates a fixed schedule from the decisions in scheduling-point order.
    #[must_use]
    pub fn new(decisions: Vec<usize>) -> Self {
        Self { decisions, cursor: 0 }
    }

    /// The recorded decisions.
    #[must_use]
    pub fn decisions(&self) -> &[usize] {
        &self.decisions
    }
}

impl SchedulingPolicy for FixedSchedule {
    fn name(&self) -> &str {
        "fixed schedule"
    }

    fn choose(&mut self, ctx: &DecisionContext<'_>) -> Option<usize> {
        let recorded = self.decisions.get(self.cursor).copied();
        self.cursor += 1;
        match recorded {
            Some(battery) if ctx.available.contains(&battery) => Some(battery),
            _ => ctx.available.iter().min().copied(),
        }
    }

    fn reset(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn context<'a>(
        job_index: usize,
        available: &'a [usize],
        charges: &'a [BatteryCharge],
    ) -> DecisionContext<'a> {
        DecisionContext { job_index, continuation: false, available, charges }
    }

    fn full_charges(count: usize) -> Vec<BatteryCharge> {
        vec![BatteryCharge { total: 5.5, available: 0.913 }; count]
    }

    #[test]
    fn sequential_always_picks_lowest_available() {
        let charges = full_charges(3);
        let mut policy = Sequential::new();
        let ctx = context(5, &[0, 1, 2], &charges);
        assert_eq!(policy.choose(&ctx), Some(0));
        let ctx = context(6, &[1, 2], &charges);
        assert_eq!(policy.choose(&ctx), Some(1));
        let ctx = context(7, &[], &charges);
        assert_eq!(policy.choose(&ctx), None);
    }

    #[test]
    fn round_robin_cycles_with_job_index() {
        let charges = full_charges(2);
        let mut policy = RoundRobin::new();
        let available = [0, 1];
        for job in 0..6 {
            let ctx = context(job, &available, &charges);
            assert_eq!(policy.choose(&ctx), Some(job % 2));
        }
    }

    #[test]
    fn round_robin_skips_unavailable_batteries() {
        let charges = full_charges(2);
        let mut policy = RoundRobin::new();
        // Job 1 would prefer battery 1, but only battery 0 is available.
        let ctx = context(1, &[0], &charges);
        assert_eq!(policy.choose(&ctx), Some(0));
        let ctx = context(1, &[], &charges);
        assert_eq!(policy.choose(&ctx), None);
    }

    #[test]
    fn best_available_prefers_fuller_available_charge_well() {
        // Battery 0 has less available charge (larger height difference).
        let charges = vec![
            BatteryCharge { total: 4.0, available: 0.1 },
            BatteryCharge { total: 3.8, available: 0.5 },
        ];
        let mut policy = BestAvailable::new();
        let ctx = context(0, &[0, 1], &charges);
        assert_eq!(policy.choose(&ctx), Some(1));
    }

    #[test]
    fn best_available_breaks_ties_towards_lower_index() {
        let charges = full_charges(2);
        let mut policy = BestAvailable::new();
        let ctx = context(0, &[0, 1], &charges);
        assert_eq!(policy.choose(&ctx), Some(0));
    }

    #[test]
    fn capacity_weighted_rr_spreads_jobs_proportionally() {
        // A 5.5 A·min B1 next to an 11 A·min B2: the B2 must take two of
        // every three assignments (stride scheduling).
        let charges = vec![
            BatteryCharge { total: 5.5, available: 0.9 },
            BatteryCharge { total: 11.0, available: 1.8 },
        ];
        let mut policy = CapacityWeightedRoundRobin::new();
        let mut picks = Vec::new();
        for job in 0..6 {
            let ctx = context(job, &[0, 1], &charges);
            picks.push(policy.choose(&ctx).unwrap());
        }
        let b2_share = picks.iter().filter(|&&p| p == 1).count();
        assert_eq!(b2_share, 4, "the double-capacity battery serves 2/3 of jobs: {picks:?}");
    }

    #[test]
    fn capacity_weighted_rr_is_even_on_uniform_fleets_and_resets() {
        let charges = full_charges(2);
        let mut policy = CapacityWeightedRoundRobin::new();
        let mut counts = [0usize; 2];
        for job in 0..8 {
            let ctx = context(job, &[0, 1], &charges);
            counts[policy.choose(&ctx).unwrap()] += 1;
        }
        assert_eq!(counts, [4, 4], "uniform fleets get an even spread");
        // Reset clears the assignment counts and re-captures capacities.
        policy.reset();
        let ctx = context(0, &[0, 1], &charges);
        assert_eq!(policy.choose(&ctx), Some(0), "ties resolve to the lower index after reset");
    }

    #[test]
    fn capacity_weighted_rr_skips_unavailable_batteries() {
        let charges = full_charges(3);
        let mut policy = CapacityWeightedRoundRobin::new();
        let ctx = context(0, &[2], &charges);
        assert_eq!(policy.choose(&ctx), Some(2));
        let ctx = context(1, &[], &charges);
        assert_eq!(policy.choose(&ctx), None);
    }

    #[test]
    fn fixed_schedule_replays_then_falls_back() {
        let charges = full_charges(2);
        let mut policy = FixedSchedule::new(vec![1, 0]);
        let ctx = context(0, &[0, 1], &charges);
        assert_eq!(policy.choose(&ctx), Some(1));
        let ctx = context(1, &[0, 1], &charges);
        assert_eq!(policy.choose(&ctx), Some(0));
        // Recorded list exhausted: fall back to the lowest available.
        let ctx = context(2, &[1], &charges);
        assert_eq!(policy.choose(&ctx), Some(1));
        // Reset rewinds the replay.
        policy.reset();
        let ctx = context(0, &[0, 1], &charges);
        assert_eq!(policy.choose(&ctx), Some(1));
    }

    #[test]
    fn fixed_schedule_ignores_unavailable_recorded_battery() {
        let charges = full_charges(2);
        let mut policy = FixedSchedule::new(vec![1]);
        let ctx = context(0, &[0], &charges);
        assert_eq!(policy.choose(&ctx), Some(0));
    }

    #[test]
    fn policy_names_are_distinct() {
        let names = [
            Sequential::new().name().to_owned(),
            RoundRobin::new().name().to_owned(),
            BestAvailable::new().name().to_owned(),
            FixedSchedule::new(vec![]).name().to_owned(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
