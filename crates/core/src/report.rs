//! Reporting helpers that regenerate the rows of the paper's tables.
//!
//! These functions are shared by the benchmark harness (`crates/bench`), the
//! examples and the integration tests, so that every consumer prints exactly
//! the same quantities the paper reports.

use crate::optimal::OptimalScheduler;
use crate::policy::{BestAvailable, RoundRobin, Sequential};
use crate::system::{simulate_policy, SystemConfig};
use crate::SchedError;
use dkibam::sim::simulate_lifetime;
use dkibam::{Discretization, DiscretizedLoad};
use kibam::lifetime::lifetime_for_segments;
use kibam::BatteryParams;
use workload::paper_loads::TestLoad;

/// One row of Table 3 / Table 4: analytical KiBaM vs. discretized (TA-)KiBaM
/// lifetime for a single battery.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationRow {
    /// The load name as printed in the paper.
    pub load: String,
    /// Lifetime according to the analytical KiBaM, in minutes.
    pub analytic_minutes: f64,
    /// Lifetime according to the discretized KiBaM, in minutes.
    pub discrete_minutes: f64,
    /// Relative difference in percent (discrete vs. analytic).
    pub difference_percent: f64,
    /// The value the paper reports for the analytical KiBaM (for reference;
    /// random loads differ because their job sequences are seed-dependent).
    pub paper_analytic_minutes: f64,
}

/// Computes one row of Table 3 (battery B1) or Table 4 (battery B2).
///
/// # Errors
///
/// Propagates discretization/simulation errors.
pub fn validation_row(
    load: TestLoad,
    params: &BatteryParams,
    disc: &Discretization,
) -> Result<ValidationRow, SchedError> {
    let profile = load.profile();
    let analytic = lifetime_for_segments(params, profile.segments())
        // xlint: allow(panic) -- the paper loads always empty a single battery
        .expect("paper loads empty a single battery")
        .lifetime;
    let horizon = 2.0 * params.capacity();
    let discretized = DiscretizedLoad::from_profile(&profile, disc, horizon)?;
    let discrete = simulate_lifetime(params, disc, &discretized)?
        .lifetime_minutes
        // xlint: allow(panic) -- the paper loads always empty a single battery
        .expect("paper loads empty a single battery");
    let paper = if (params.capacity() - kibam::BatteryParams::itsy_b2().capacity()).abs() < 1e-9 {
        load.paper_lifetime_b2()
    } else {
        load.paper_lifetime_b1()
    };
    Ok(ValidationRow {
        load: load.name().to_owned(),
        analytic_minutes: analytic,
        discrete_minutes: discrete,
        difference_percent: 100.0 * (discrete - analytic) / analytic,
        paper_analytic_minutes: paper,
    })
}

/// One row of Table 5: the system lifetime of the four schedules on one load,
/// with differences relative to round robin.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// The load name as printed in the paper.
    pub load: String,
    /// Sequential schedule lifetime (minutes).
    pub sequential_minutes: f64,
    /// Round-robin schedule lifetime (minutes).
    pub round_robin_minutes: f64,
    /// Best-of-two schedule lifetime (minutes).
    pub best_of_two_minutes: f64,
    /// Optimal schedule lifetime (minutes), when the optimal search was run.
    pub optimal_minutes: Option<f64>,
    /// The paper's reported values `(sequential, rr, best-of-two, optimal)`.
    pub paper_minutes: (f64, f64, f64, f64),
}

impl Table5Row {
    /// Percentage difference of a value relative to the round-robin lifetime,
    /// as printed in Table 5.
    #[must_use]
    pub fn relative_to_round_robin(&self, minutes: f64) -> f64 {
        100.0 * (minutes - self.round_robin_minutes) / self.round_robin_minutes
    }
}

/// Computes one row of Table 5 for the given system configuration.
///
/// The optimal schedule is only computed when `optimal` is provided (the
/// exact search can be expensive at the paper's full discretization).
///
/// # Errors
///
/// Propagates simulation and search errors.
pub fn table5_row(
    load: TestLoad,
    config: &SystemConfig,
    optimal: Option<&OptimalScheduler>,
) -> Result<Table5Row, SchedError> {
    let profile = load.profile();
    let discretized = config.discretize(&profile)?;
    let lifetime = |policy: &mut dyn crate::policy::SchedulingPolicy| -> Result<f64, SchedError> {
        Ok(crate::system::simulate_policy_on(config, &discretized, policy)?
            .lifetime_minutes()
            // xlint: allow(panic) -- the paper loads always exhaust the batteries
            .expect("paper loads exhaust the batteries"))
    };
    let sequential_minutes = lifetime(&mut Sequential::new())?;
    let round_robin_minutes = lifetime(&mut RoundRobin::new())?;
    let best_of_two_minutes = lifetime(&mut BestAvailable::new())?;
    let optimal_minutes = match optimal {
        Some(scheduler) => {
            Some(scheduler.find_optimal_on(config, &discretized)?.lifetime_minutes(config))
        }
        None => None,
    };
    Ok(Table5Row {
        load: load.name().to_owned(),
        sequential_minutes,
        round_robin_minutes,
        best_of_two_minutes,
        optimal_minutes,
        paper_minutes: load.paper_table5(),
    })
}

/// Convenience wrapper running [`simulate_policy`] for all three
/// deterministic policies and returning `(sequential, round robin,
/// best-of-two)` lifetimes in minutes.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn deterministic_lifetimes(
    config: &SystemConfig,
    load: &workload::LoadProfile,
) -> Result<(f64, f64, f64), SchedError> {
    let run = |policy: &mut dyn crate::policy::SchedulingPolicy| -> Result<f64, SchedError> {
        Ok(simulate_policy(config, load, policy)?.lifetime_minutes().unwrap_or(f64::INFINITY))
    };
    Ok((
        run(&mut Sequential::new())?,
        run(&mut RoundRobin::new())?,
        run(&mut BestAvailable::new())?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_row_matches_paper_for_deterministic_load() {
        let row = validation_row(
            TestLoad::Ils500,
            &BatteryParams::itsy_b1(),
            &Discretization::paper_default(),
        )
        .unwrap();
        assert!((row.analytic_minutes - 4.30).abs() < 0.01);
        assert!((row.paper_analytic_minutes - 4.30).abs() < 1e-9);
        assert!(row.difference_percent.abs() < 2.0);
    }

    #[test]
    fn validation_row_uses_b2_reference_for_b2() {
        let row = validation_row(
            TestLoad::Cl250,
            &BatteryParams::itsy_b2(),
            &Discretization::paper_default(),
        )
        .unwrap();
        assert!((row.paper_analytic_minutes - 12.16).abs() < 1e-9);
    }

    #[test]
    fn table5_row_without_optimal_matches_paper_shape() {
        let config = SystemConfig::paper_two_b1();
        let row = table5_row(TestLoad::Cl500, &config, None).unwrap();
        assert!(row.optimal_minutes.is_none());
        assert!(row.sequential_minutes < row.round_robin_minutes);
        assert!((row.round_robin_minutes - 4.53).abs() < 0.06);
        assert!(row.relative_to_round_robin(row.sequential_minutes) < 0.0);
        assert_eq!(row.paper_minutes, (4.10, 4.53, 4.53, 4.58));
    }

    #[test]
    fn table5_row_with_optimal_on_coarse_grid_dominates() {
        let config =
            SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), 2).unwrap();
        let row = table5_row(TestLoad::ClAlt, &config, Some(&OptimalScheduler::new())).unwrap();
        let optimal = row.optimal_minutes.unwrap();
        assert!(optimal >= row.best_of_two_minutes - 1e-9);
        assert!(optimal >= row.round_robin_minutes - 1e-9);
    }

    #[test]
    fn deterministic_lifetimes_ordering() {
        let config = SystemConfig::paper_two_b1();
        let (seq, rr, best) =
            deterministic_lifetimes(&config, &TestLoad::IlsAlt.profile()).unwrap();
        assert!(seq < rr);
        assert!(best >= rr);
    }
}
