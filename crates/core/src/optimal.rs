//! Optimal battery schedules.
//!
//! The paper obtains optimal schedules by asking Uppaal Cora for a
//! minimum-cost path through the TA-KiBaM. This module computes the same
//! optimum directly: a depth-first branch-and-bound search over the battery
//! state, branching only at scheduling points (job starts and battery-empty
//! events), with
//!
//! * an **upper bound** on the remaining lifetime derived from the remaining
//!   usable charge and the load ahead (a schedule can never outlive the
//!   point at which the load has requested more charge than all batteries
//!   jointly hold),
//! * **symmetry pruning** (batteries in identical states need only be tried
//!   once), and
//! * **warm starting** from the best deterministic policy, so that only
//!   branches that can still beat round-robin/best-of-two are explored.
//!
//! The search is generic over the [`BatteryModel`] backend: it runs against
//! the discretized KiBaM (the paper's model, [`OptimalScheduler::find_optimal`])
//! or any other backend ([`OptimalScheduler::find_optimal_with`]), using the
//! backend's cheap save/restore state to branch. It returns the maximum
//! achievable system lifetime for the given discretization together with the
//! decision sequence that realises it (replayable through
//! [`crate::policy::FixedSchedule`]).

use crate::model::BatteryModel;
use crate::policy::{BestAvailable, RoundRobin, SchedulingPolicy, Sequential};
use crate::system::{simulate_policy_with, SystemConfig};
use crate::SchedError;
use dkibam::{DiscreteEpoch, DiscretizedLoad};
use workload::LoadProfile;

/// Default node budget of the search (decision nodes, not states).
const DEFAULT_BUDGET: usize = 20_000_000;

/// The result of an optimal-schedule search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimalOutcome {
    /// The maximum achievable system lifetime, in time steps.
    pub lifetime_steps: u64,
    /// The decisions (battery index per scheduling point) realising it.
    pub decisions: Vec<usize>,
    /// The number of decision nodes explored by the search.
    pub nodes_explored: usize,
}

impl OptimalOutcome {
    /// The optimal lifetime in minutes under the given configuration.
    #[must_use]
    pub fn lifetime_minutes(&self, config: &SystemConfig) -> f64 {
        config.disc().steps_to_minutes(self.lifetime_steps)
    }
}

/// Exact optimal-schedule search (branch and bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimalScheduler {
    budget: usize,
}

impl Default for OptimalScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl OptimalScheduler {
    /// Creates a scheduler with the default node budget.
    #[must_use]
    pub fn new() -> Self {
        Self { budget: DEFAULT_BUDGET }
    }

    /// Creates a scheduler with an explicit node budget. The search fails
    /// with [`SchedError::SearchBudgetExceeded`] instead of silently
    /// returning a sub-optimal answer when the budget runs out.
    #[must_use]
    pub fn with_budget(budget: usize) -> Self {
        Self { budget }
    }

    /// Finds the optimal schedule for a load profile under the discretized
    /// KiBaM backend (the paper's model).
    ///
    /// # Errors
    ///
    /// Propagates discretization errors and returns
    /// [`SchedError::SearchBudgetExceeded`] if the node budget is exhausted.
    pub fn find_optimal(
        &self,
        config: &SystemConfig,
        profile: &LoadProfile,
    ) -> Result<OptimalOutcome, SchedError> {
        let load = config.discretize(profile)?;
        self.find_optimal_on(config, &load)
    }

    /// Finds the optimal schedule for an already-discretized load under the
    /// discretized KiBaM backend.
    ///
    /// # Errors
    ///
    /// Same as [`OptimalScheduler::find_optimal`].
    pub fn find_optimal_on(
        &self,
        config: &SystemConfig,
        load: &DiscretizedLoad,
    ) -> Result<OptimalOutcome, SchedError> {
        let mut model = config.discretized_model();
        self.find_optimal_with(config, load, &mut model)
    }

    /// Finds the optimal schedule against an arbitrary [`BatteryModel`]
    /// backend. The model is reset before the search; it must have been
    /// built for the same parameters and discretization as `config`.
    ///
    /// # Errors
    ///
    /// Same as [`OptimalScheduler::find_optimal`].
    pub fn find_optimal_with<M: BatteryModel>(
        &self,
        config: &SystemConfig,
        load: &DiscretizedLoad,
        model: &mut M,
    ) -> Result<OptimalOutcome, SchedError> {
        // Warm start: the best deterministic policy provides the initial
        // incumbent, which makes the bound effective from the first node.
        let mut incumbent_steps = 0u64;
        let mut incumbent_decisions = Vec::new();
        for policy in [
            &mut Sequential::new() as &mut dyn SchedulingPolicy,
            &mut RoundRobin::new(),
            &mut BestAvailable::new(),
        ] {
            let outcome = simulate_policy_with(config, load, policy, model)?;
            if let Some(steps) = outcome.lifetime_steps() {
                if steps > incumbent_steps {
                    incumbent_steps = steps;
                    incumbent_decisions = outcome.schedule().decisions();
                }
            }
        }

        model.reset();
        let initial = model.save_state();
        let mut search = Search {
            model,
            epochs: load.epochs(),
            charge_unit: config.disc().charge_unit(),
            budget: self.budget,
            nodes: 0,
            best_steps: incumbent_steps,
            best_decisions: incumbent_decisions,
            current_decisions: Vec::new(),
        };
        search.explore(&initial, 0, 0, 0)?;

        Ok(OptimalOutcome {
            lifetime_steps: search.best_steps,
            decisions: search.best_decisions,
            nodes_explored: search.nodes,
        })
    }
}

struct Search<'a, M: BatteryModel> {
    model: &'a mut M,
    epochs: &'a [DiscreteEpoch],
    charge_unit: f64,
    budget: usize,
    nodes: usize,
    best_steps: u64,
    best_decisions: Vec<usize>,
    current_decisions: Vec<usize>,
}

impl<M: BatteryModel> Search<'_, M> {
    /// Depth-first exploration from the state captured in `snapshot`,
    /// positioned at `offset` steps into epoch `epoch_index`, with `elapsed`
    /// steps of lifetime already accumulated.
    fn explore(
        &mut self,
        snapshot: &M::State,
        mut epoch_index: usize,
        mut offset: u64,
        mut elapsed: u64,
    ) -> Result<(), SchedError> {
        self.model.restore_state(snapshot);
        // The system lifetime ends the moment the last battery is observed
        // empty — trailing idle time of the load does not count.
        if self.model.available().is_empty() {
            self.record_candidate(elapsed);
            return Ok(());
        }
        // Advance deterministically (idle epochs) until the next decision.
        loop {
            let Some(epoch) = self.epochs.get(epoch_index) else {
                // The load ended before the batteries died; the schedule kept
                // the system alive for the whole (truncated) load.
                self.record_candidate(elapsed);
                return Ok(());
            };
            if epoch.is_idle() {
                let steps = epoch.duration_steps() - offset;
                self.model.advance_idle(steps);
                elapsed += steps;
                epoch_index += 1;
                offset = 0;
            } else if offset >= epoch.duration_steps() {
                epoch_index += 1;
                offset = 0;
            } else {
                break;
            }
        }

        let epoch = self.epochs[epoch_index];
        let available = self.model.available();
        if available.is_empty() {
            self.record_candidate(elapsed);
            return Ok(());
        }

        self.nodes += 1;
        if self.nodes > self.budget {
            return Err(SchedError::SearchBudgetExceeded { budget: self.budget });
        }

        // Bound: even if every remaining unit of usable charge were
        // extractable, the load ahead limits how long the system can live.
        if elapsed + self.upper_bound(epoch_index, offset) <= self.best_steps {
            return Ok(());
        }

        // Candidate batteries, deduplicated by identical state (symmetry)
        // and ordered by remaining charge (best first) so that good
        // incumbents are found early.
        let mut candidates: Vec<usize> = Vec::with_capacity(available.len());
        for &battery in &available {
            let duplicate =
                candidates.iter().any(|&other| self.model.states_identical(other, battery));
            if !duplicate {
                candidates.push(battery);
            }
        }
        candidates.sort_by(|&a, &b| {
            self.model
                .charge(b)
                .total
                .partial_cmp(&self.model.charge(a).total)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let branch_point = self.model.save_state();
        let remaining = epoch.duration_steps() - offset;
        for battery in candidates {
            self.model.restore_state(&branch_point);
            let advance = self.model.advance_job(
                battery,
                remaining,
                epoch.draw_interval_steps(),
                epoch.units_per_draw(),
            )?;
            let next = self.model.save_state();
            self.current_decisions.push(battery);
            if advance.completed {
                self.explore(&next, epoch_index + 1, 0, elapsed + advance.steps_consumed)?;
            } else {
                self.explore(
                    &next,
                    epoch_index,
                    offset + advance.steps_consumed,
                    elapsed + advance.steps_consumed,
                )?;
            }
            self.current_decisions.pop();
        }
        Ok(())
    }

    fn record_candidate(&mut self, elapsed: u64) {
        if elapsed > self.best_steps {
            self.best_steps = elapsed;
            self.best_decisions = self.current_decisions.clone();
        }
    }

    /// Upper bound on the additional lifetime obtainable from this position:
    /// walk the remaining load; the system cannot survive past the point at
    /// which the load has requested more charge units than all usable
    /// batteries jointly hold.
    fn upper_bound(&self, epoch_index: usize, offset: u64) -> u64 {
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let mut units_left =
            ((self.model.usable_charge() + 1e-9) / self.charge_unit).floor().max(0.0) as u64;
        let mut steps: u64 = 0;
        let mut offset = offset;
        for epoch in &self.epochs[epoch_index..] {
            let duration = epoch.duration_steps() - offset;
            offset = 0;
            if epoch.is_idle() {
                steps += duration;
                continue;
            }
            let interval = u64::from(epoch.draw_interval_steps());
            let draws_possible = duration / interval;
            let units_needed = draws_possible * u64::from(epoch.units_per_draw());
            if units_needed < units_left {
                units_left -= units_needed;
                steps += duration;
            } else {
                // The batteries run dry somewhere in this epoch.
                let draws_served = units_left / u64::from(epoch.units_per_draw());
                steps += (draws_served + 1).min(draws_possible) * interval;
                return steps;
            }
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BestAvailable, FixedSchedule, RoundRobin};
    use crate::system::simulate_policy;
    use dkibam::Discretization;
    use kibam::BatteryParams;
    use workload::builder::LoadProfileBuilder;
    use workload::paper_loads::TestLoad;

    /// A coarse two-battery configuration that keeps the exhaustive search
    /// small enough for unit tests while preserving the model behaviour.
    fn coarse_config() -> SystemConfig {
        SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), 2).unwrap()
    }

    #[test]
    fn optimal_never_loses_to_deterministic_policies() {
        let config = coarse_config();
        for load in [TestLoad::Cl500, TestLoad::IlsAlt, TestLoad::Ils500] {
            let optimal = OptimalScheduler::new().find_optimal(&config, &load.profile()).unwrap();
            for policy in
                [&mut RoundRobin::new() as &mut dyn SchedulingPolicy, &mut BestAvailable::new()]
            {
                let outcome = simulate_policy(&config, &load.profile(), policy).unwrap();
                assert!(
                    optimal.lifetime_steps >= outcome.lifetime_steps().unwrap(),
                    "{load}: optimal must dominate {}",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn optimal_schedule_is_replayable() {
        let config = coarse_config();
        let load = TestLoad::IlsAlt.profile();
        let optimal = OptimalScheduler::new().find_optimal(&config, &load).unwrap();
        let mut replay = FixedSchedule::new(optimal.decisions.clone());
        let outcome = simulate_policy(&config, &load, &mut replay).unwrap();
        assert_eq!(outcome.lifetime_steps(), Some(optimal.lifetime_steps));
    }

    #[test]
    fn optimal_improves_on_round_robin_for_alternating_load() {
        // Table 5: the optimal schedule beats round robin by ~32 % on
        // ILs alt; the coarse discretization preserves a clear gap.
        let config = coarse_config();
        let load = TestLoad::IlsAlt.profile();
        let optimal = OptimalScheduler::new().find_optimal(&config, &load).unwrap();
        let rr = simulate_policy(&config, &load, &mut RoundRobin::new())
            .unwrap()
            .lifetime_steps()
            .unwrap();
        assert!(
            optimal.lifetime_steps as f64 >= rr as f64 * 1.15,
            "optimal {} vs round robin {rr}",
            optimal.lifetime_steps
        );
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let config = coarse_config();
        let result =
            OptimalScheduler::with_budget(1).find_optimal(&config, &TestLoad::Ils250.profile());
        assert!(matches!(result, Err(SchedError::SearchBudgetExceeded { budget: 1 })));
    }

    #[test]
    fn single_battery_optimal_equals_single_battery_simulation() {
        let config =
            SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), 1).unwrap();
        let load = TestLoad::Cl500.profile();
        let optimal = OptimalScheduler::new().find_optimal(&config, &load).unwrap();
        let only_choice = simulate_policy(&config, &load, &mut RoundRobin::new())
            .unwrap()
            .lifetime_steps()
            .unwrap();
        assert_eq!(optimal.lifetime_steps, only_choice);
    }

    #[test]
    fn load_too_short_to_kill_batteries_reports_full_duration() {
        let config = coarse_config();
        // A finite load of two 500 mA jobs: both batteries easily survive.
        let profile =
            LoadProfileBuilder::new().job(0.5, 1.0).idle(1.0).job(0.5, 1.0).build_finite().unwrap();
        let optimal = OptimalScheduler::new().find_optimal(&config, &profile).unwrap();
        let total_steps = config.disc().minutes_to_steps(3.0);
        assert_eq!(optimal.lifetime_steps, total_steps);
    }

    #[test]
    fn continuous_backend_search_dominates_and_replays() {
        let config = coarse_config();
        let load = config.discretize(&TestLoad::IlsAlt.profile()).unwrap();
        let mut model = config.continuous_model();
        let optimal =
            OptimalScheduler::new().find_optimal_with(&config, &load, &mut model).unwrap();

        // Dominates the deterministic policies on the same backend.
        for policy in
            [&mut RoundRobin::new() as &mut dyn SchedulingPolicy, &mut BestAvailable::new()]
        {
            let outcome =
                crate::system::simulate_policy_with(&config, &load, policy, &mut model).unwrap();
            assert!(optimal.lifetime_steps >= outcome.lifetime_steps().unwrap());
        }

        // And the decision sequence replays to the same lifetime.
        let mut replay = FixedSchedule::new(optimal.decisions.clone());
        let outcome =
            crate::system::simulate_policy_with(&config, &load, &mut replay, &mut model).unwrap();
        assert_eq!(outcome.lifetime_steps(), Some(optimal.lifetime_steps));
    }

    #[test]
    fn continuous_and_discretized_optima_agree_on_coarse_grid() {
        let config = coarse_config();
        let load = config.discretize(&TestLoad::Cl500.profile()).unwrap();
        let discrete = OptimalScheduler::new().find_optimal_on(&config, &load).unwrap();
        let mut model = config.continuous_model();
        let continuous =
            OptimalScheduler::new().find_optimal_with(&config, &load, &mut model).unwrap();
        let a = discrete.lifetime_steps as f64;
        let b = continuous.lifetime_steps as f64;
        assert!((a - b).abs() / b < 0.06, "discrete {a} vs continuous {b} steps");
    }
}
