//! Optimal battery schedules.
//!
//! The paper obtains optimal schedules by asking Uppaal Cora for a
//! minimum-cost path through the TA-KiBaM. This module computes the same
//! optimum directly: a depth-first branch-and-bound search over the battery
//! state, branching only at scheduling points (job starts and battery-empty
//! events), with
//!
//! * a **charge upper bound** on the remaining lifetime derived from the
//!   remaining usable charge and the load ahead (a schedule can never
//!   outlive the point at which the load has requested more charge than all
//!   batteries jointly hold),
//! * an **availability upper bound** that couples per-battery draw/recovery
//!   dynamics with the load's duty cycle: each battery reports an
//!   admissible service envelope ([`BatteryModel::service_envelope_into`],
//!   backed by the per-type [`dkibam::ServiceRateTable`]) bounding the
//!   units it can serve within any window given the demand delivered by
//!   then, and the bound walks the remaining epochs charging every draw
//!   against both the joint charge budget and the fleet's joint
//!   availability. On loads that strand charge (`ILs alt` leaves ~70 %
//!   behind) the charge bound never fires — batteries die from the Eq. 8
//!   emptiness criterion, not exhaustion — while the availability bound
//!   tracks exactly that criterion: it shrinks the 3-battery alternating
//!   search ~4× (53.6k nodes vs 208.5k, pinned in
//!   `tests/bound_admissibility.rs`) and fires on roughly half of all
//!   nodes there, where the charge bound fires on none,
//! * a **relaxation upper bound** that drops only the "one battery per
//!   draw" coupling: each battery's *exact* maximum cumulative service
//!   through every remaining job epoch is computed by the serve/skip
//!   dynamic program of [`dkibam::ColumnBuilder`] (full-horizon columns,
//!   cached by `(type, state, position)` so transpositions re-solve from
//!   the parent's cached columns rather than from scratch), and the
//!   `relax` crate's prefix-capacity transportation relaxation couples
//!   them through the shared demand: the closed-form min-cut walk
//!   ([`relax::coverage_bound`]) yields an admissible death bound that is
//!   evaluated only when the availability bound fails to fire
//!   ([`OptimalOutcome::relax_bound_prunes`]),
//! * **symmetry pruning** (batteries in identical states need only be tried
//!   once),
//! * a **transposition table** keyed by the canonicalized battery state and
//!   the position in the load, pruning revisits that cannot improve on an
//!   earlier visit ([`OptimalOutcome::memo_hits`]),
//! * **dominance pruning**: a candidate whose batteries are component-wise
//!   no better than an already-expanded state at the same load position —
//!   an elder sibling or any transposition — is skipped; the table keeps
//!   only the Pareto front of expanded states per position
//!   ([`OptimalOutcome::dominance_prunes`]), and
//! * **warm starting** from the best of *all* deterministic policies
//!   (sequential, round robin, best-of-two, capacity-weighted round
//!   robin) *plus* an LP-rounding seed — the relaxation's optimal
//!   fractional assignment ([`relax::max_coverage`]) rounded to one
//!   battery per job epoch and replayed as a schedule — so the bounds are
//!   maximally effective from node 0; [`OptimalOutcome::seeded_by`]
//!   reports which policy provided the incumbent.
//!
//! The search runs on an explicit stack (no recursion) and is
//! allocation-free per node in steady state: snapshots live in a pool
//! indexed by depth, candidate buffers are arenas that grow only to the
//! search's high-water mark, and availability queries reuse one buffer.
//!
//! How much each pruning buys depends on the load: deep searches with
//! converging histories (e.g. `ILs 250`, random loads, three-battery
//! systems) shrink 5–10× under the transposition table, while short
//! alternating loads on two batteries (`ILs alt`) are already near-minimal
//! after symmetry pruning and only the availability and relaxation bounds
//! trim them further. The availability bound alone sits ~2× above the
//! true optimum at the root of the alternating loads; the relaxation
//! bound's exact per-battery columns close most of that gap
//! (`examples/frontier_probe.rs` and
//! [`OptimalScheduler::probe_root_bounds`] measure the per-bound root
//! tightness). The bench harness
//! (`cargo run --release -p bench --bin scenarios -- --optimal`) prints the
//! per-load node counts of both searches.
//!
//! The search is generic over the [`BatteryModel`] backend: it runs against
//! the discretized KiBaM (the paper's model, [`OptimalScheduler::find_optimal`])
//! or any other backend ([`OptimalScheduler::find_optimal_with`]), using the
//! backend's cheap save/restore state to branch. Memoization and dominance
//! pruning engage automatically on backends that support them (the
//! discretized KiBaM does; the continuous backend falls back to the plain
//! bounded search). It returns the maximum achievable system lifetime for
//! the given discretization together with the decision sequence that
//! realises it (replayable through [`crate::policy::FixedSchedule`]).

use crate::model::{BatteryModel, StateKey};
use crate::policy::{
    BestAvailable, CapacityWeightedRoundRobin, RoundRobin, SchedulingPolicy, Sequential,
};
use crate::system::{simulate_policy_with, SystemConfig};
use crate::SchedError;
use dkibam::{
    ColumnBuilder, DiscreteEpoch, DiscretizedLoad, EnvelopeCursor, ServiceColumn, ServiceEnvelope,
    ServiceRateTable,
};
use std::collections::HashMap; // xlint: allow(hash) -- see `FxMap` below
use std::hash::{BuildHasherDefault, Hasher};
use workload::LoadProfile;

/// A minimal Fx-style hasher (multiply–xor–rotate, as used by rustc). The
/// transposition table hashes a fat key (up to four `u128` words plus the
/// position) at every node; the default SipHash is a measurable fraction of
/// the whole search there, and HashDoS resistance is irrelevant for a
/// single-process search table. The build environment is offline, so this is
/// written out instead of depending on `rustc-hash`.
#[derive(Debug, Default, Clone, Copy)]
struct FxHasher {
    state: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.mix(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.mix(value);
    }

    #[inline]
    fn write_u128(&mut self, value: u128) {
        #[allow(clippy::cast_possible_truncation)]
        // xlint: allow(cast) -- hashing deliberately folds the two u64 halves
        self.mix(value as u64);
        #[allow(clippy::cast_possible_truncation)]
        // xlint: allow(cast) -- hashing deliberately folds the two u64 halves
        self.mix((value >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        // xlint: allow(cast) -- usize -> u64 is lossless on supported targets
        self.mix(value as u64);
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// The search's hash map: Fx-hashed for speed. Hash iteration order is
/// never observed — `seen` and `fronts` are probed by key only, so the
/// determinism argument does not rest on this container.
// xlint: allow(hash) -- keyed lookups only; iteration order is never observed
type FxMap<K, V> = HashMap<K, V, FxBuild>;

/// Default node budget of the search (decision nodes, not states).
pub const DEFAULT_BUDGET: usize = 20_000_000;

/// The most batteries the availability bound handles (per-battery table
/// references live in a fixed-size array on the bound's hot path); larger
/// fleets simply skip the availability bound.
const MAX_BOUND_BATTERIES: usize = 8;

/// The most Pareto-maximal expanded states retained per load position for
/// dominance checks. The cap bounds both memory and the per-node scan cost;
/// states beyond it are still explored, just not recorded as pruners.
const MAX_STATES_PER_POSITION: usize = 16;

/// The most entries the transposition table retains. Bounds the memory of
/// deep searches (an entry is ~90 bytes); once full, new states are still
/// explored but no longer recorded, so pruning degrades gracefully instead
/// of exhausting memory.
const MAX_MEMO_ENTRIES: usize = 1_000_000;

/// The most `(StateKey, elapsed)` entries retained across *all* dominance
/// fronts, analogous to [`MAX_MEMO_ENTRIES`]: fine-grained loads can visit
/// millions of distinct positions, and without a global cap the per-position
/// `Vec`s (and their map slots) would grow unboundedly. Once full, existing
/// fronts still prune; new positions are no longer recorded.
const MAX_FRONT_ENTRIES: usize = 500_000;

/// The most cached per-battery service columns of the relaxation bound.
/// Keyed by `(battery type, battery state, load position)`, so transposed
/// searches re-use the exact single-battery DP solved at the parent instead
/// of re-solving it; once full, columns are still built (into a scratch
/// buffer) but no longer retained.
const MAX_COLUMN_CACHE_ENTRIES: usize = 200_000;

/// The result of an optimal-schedule search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimalOutcome {
    /// The maximum achievable system lifetime, in time steps.
    pub lifetime_steps: u64,
    /// The decisions (battery index per scheduling point) realising it.
    pub decisions: Vec<usize>,
    /// The number of decision nodes explored by the search.
    pub nodes_explored: usize,
    /// Nodes pruned by the transposition table: the same canonical battery
    /// state was reached at the same load position with at least as much
    /// lifetime already accumulated.
    pub memo_hits: usize,
    /// Nodes pruned because an already-expanded state at the same load
    /// position (an elder sibling or a transposition) was component-wise at
    /// least as good.
    pub dominance_prunes: usize,
    /// Nodes cut by the usable-charge upper bound against the incumbent.
    pub charge_bound_prunes: usize,
    /// Nodes cut by the availability-aware upper bound (recovery-coupled
    /// service envelopes) after the charge bound failed to fire.
    pub availability_bound_prunes: usize,
    /// Nodes cut by the min-cost-flow relaxation bound (exact per-battery
    /// service columns coupled only through the shared demand) after both
    /// cheaper bounds failed to fire.
    pub relax_bound_prunes: usize,
    /// The deterministic policy whose simulated lifetime seeded the warm
    /// start incumbent, or `None` if no policy produced a lifetime (the
    /// load ended before the batteries died under every policy).
    pub seeded_by: Option<&'static str>,
}

impl OptimalOutcome {
    /// The optimal lifetime in minutes under the given configuration.
    #[must_use]
    pub fn lifetime_minutes(&self, config: &SystemConfig) -> f64 {
        config.disc().steps_to_minutes(self.lifetime_steps)
    }
}

/// Exact optimal-schedule search (branch and bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimalScheduler {
    budget: usize,
    memoize: bool,
    dominance: bool,
    availability: bool,
    relaxation: bool,
}

impl Default for OptimalScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl OptimalScheduler {
    /// Creates a scheduler with the default node budget and all prunings
    /// (memoization + dominance + the availability and relaxation bounds)
    /// enabled.
    #[must_use]
    pub fn new() -> Self {
        Self {
            budget: DEFAULT_BUDGET,
            memoize: true,
            dominance: true,
            availability: true,
            relaxation: true,
        }
    }

    /// Creates a scheduler with an explicit node budget. The search fails
    /// with [`SchedError::SearchBudgetExceeded`] instead of silently
    /// returning a sub-optimal answer when the budget runs out.
    #[must_use]
    pub fn with_budget(budget: usize) -> Self {
        Self { budget, ..Self::new() }
    }

    /// A reference scheduler with memoization, dominance pruning and the
    /// availability bound disabled: the plain bounded search (charge
    /// bound, symmetry and warm start only — the seed search).
    /// Equivalence tests and the bench harness compare the pruned search
    /// against this one — both must return identical lifetimes, the
    /// pruned one in (far) fewer nodes.
    #[must_use]
    pub fn reference() -> Self {
        Self {
            budget: DEFAULT_BUDGET,
            memoize: false,
            dominance: false,
            availability: false,
            relaxation: false,
        }
    }

    /// Disables the transposition table (for ablation and equivalence
    /// testing).
    #[must_use]
    pub fn without_memoization(mut self) -> Self {
        self.memoize = false;
        self
    }

    /// Disables sibling dominance pruning (for ablation and equivalence
    /// testing).
    #[must_use]
    pub fn without_dominance(mut self) -> Self {
        self.dominance = false;
        self
    }

    /// Disables the availability-aware bound, leaving only the charge
    /// bound (for ablation: this is the full pre-availability search, so
    /// node-count comparisons against it isolate what the new bound buys).
    #[must_use]
    pub fn without_availability_bound(mut self) -> Self {
        self.availability = false;
        self
    }

    /// Disables the min-cost-flow relaxation bound, leaving the charge and
    /// availability bounds (for ablation: node-count comparisons against
    /// this scheduler isolate what the relaxation buys).
    #[must_use]
    pub fn without_relax_bound(mut self) -> Self {
        self.relaxation = false;
        self
    }

    /// The node budget of this scheduler.
    #[must_use]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Finds the optimal schedule for a load profile under the discretized
    /// KiBaM backend (the paper's model).
    ///
    /// # Errors
    ///
    /// Propagates discretization errors and returns
    /// [`SchedError::SearchBudgetExceeded`] if the node budget is exhausted.
    pub fn find_optimal(
        &self,
        config: &SystemConfig,
        profile: &LoadProfile,
    ) -> Result<OptimalOutcome, SchedError> {
        let load = config.discretize(profile)?;
        self.find_optimal_on(config, &load)
    }

    /// Finds the optimal schedule for an already-discretized load under the
    /// discretized KiBaM backend.
    ///
    /// # Errors
    ///
    /// Same as [`OptimalScheduler::find_optimal`].
    pub fn find_optimal_on(
        &self,
        config: &SystemConfig,
        load: &DiscretizedLoad,
    ) -> Result<OptimalOutcome, SchedError> {
        let mut model = config.discretized_model();
        self.find_optimal_with(config, load, &mut model)
    }

    /// Finds the optimal schedule against an arbitrary [`BatteryModel`]
    /// backend. The model is reset before the search; it must have been
    /// built for the same parameters and discretization as `config`.
    ///
    /// # Errors
    ///
    /// Same as [`OptimalScheduler::find_optimal`].
    pub fn find_optimal_with<M: BatteryModel>(
        &self,
        config: &SystemConfig,
        load: &DiscretizedLoad,
        model: &mut M,
    ) -> Result<OptimalOutcome, SchedError> {
        let warm = warm_start(config, load, model)?;
        let seeded_by = warm.seeded_by;
        let mut search = Search::new(config, load, model, *self, warm);
        search.explore()?;

        Ok(OptimalOutcome {
            lifetime_steps: search.best_steps,
            decisions: search.best_decisions,
            nodes_explored: search.nodes,
            memo_hits: search.memo_hits,
            dominance_prunes: search.dominance_prunes,
            charge_bound_prunes: search.charge_bound_prunes,
            availability_bound_prunes: search.availability_bound_prunes,
            relax_bound_prunes: search.relax_bound_prunes,
            seeded_by,
        })
    }
}

/// The values of the search's admissible upper bounds at the root position
/// (fresh fleet, start of load), plus the warm-start incumbent. Each bound
/// is a number of lifetime steps; `optimum ≤ min(bounds)` and
/// `warm_start ≤ optimum`, so `min(bounds) − warm_start` brackets the gap
/// the search has to close.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootBounds {
    /// The usable-charge bound.
    pub charge: u64,
    /// The availability (recovery-coupled service envelope) bound.
    pub availability: u64,
    /// The min-cost-flow relaxation bound over exact per-battery service
    /// columns, or `u64::MAX` when the backend cannot provide columns.
    pub relaxation: u64,
    /// The warm-start incumbent (best deterministic policy or LP rounding).
    pub warm_start: u64,
}

impl OptimalScheduler {
    /// Evaluates the search's upper bounds at the root position (fresh
    /// fleet, start of load) without searching, plus the warm-start
    /// incumbent. Diagnostic API for bound-tightness tests and the bench
    /// harness.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from the warm-start policies.
    pub fn probe_root_bounds<M: BatteryModel>(
        config: &SystemConfig,
        load: &DiscretizedLoad,
        model: &mut M,
    ) -> Result<RootBounds, SchedError> {
        let warm = warm_start(config, load, model)?;
        let incumbent_steps = warm.steps;
        // Bounds are probed against a zeroed incumbent so they never
        // early-exit at the pruning margin.
        let probe = WarmStart { steps: 0, decisions: Vec::new(), seeded_by: None };
        let mut search = Search::new(config, load, model, OptimalScheduler::new(), probe);
        let charge = search.charge_bound(0, 0);
        let availability = search.availability_bound(0, 0, u64::MAX);
        let relaxation = search.relax_bound(0, 0, u64::MAX);
        Ok(RootBounds { charge, availability, relaxation, warm_start: incumbent_steps })
    }
}

/// The warm-start incumbent: the best deterministic-policy schedule.
struct WarmStart {
    steps: u64,
    decisions: Vec<usize>,
    seeded_by: Option<&'static str>,
}

/// Simulates every deterministic policy — plus the LP-rounding plan, when
/// the backend can produce service columns — and returns the best lifetime
/// as the search's initial incumbent, which makes the bounds maximally
/// effective from the first node.
fn warm_start<M: BatteryModel>(
    config: &SystemConfig,
    load: &DiscretizedLoad,
    model: &mut M,
) -> Result<WarmStart, SchedError> {
    let mut warm = WarmStart { steps: 0, decisions: Vec::new(), seeded_by: None };
    for (name, policy) in [
        ("sequential", &mut Sequential::new() as &mut dyn SchedulingPolicy),
        ("round robin", &mut RoundRobin::new()),
        ("best of two", &mut BestAvailable::new()),
        ("capacity-weighted round robin", &mut CapacityWeightedRoundRobin::new()),
    ] {
        let outcome = simulate_policy_with(config, load, policy, model)?;
        if let Some(steps) = outcome.lifetime_steps() {
            if steps > warm.steps {
                warm.steps = steps;
                warm.decisions = outcome.schedule().decisions();
                warm.seeded_by = Some(name);
            }
        }
    }
    if let Some(mut policy) = lp_rounding_plan(load, model) {
        let outcome = simulate_policy_with(config, load, &mut policy, model)?;
        if let Some(steps) = outcome.lifetime_steps() {
            if steps > warm.steps {
                warm.steps = steps;
                warm.decisions = outcome.schedule().decisions();
                warm.seeded_by = Some("lp-rounding");
            }
        }
    }
    Ok(warm)
}

/// Builds the LP-rounding seed: solve the min-cost-flow relaxation over
/// the fresh fleet's exact service columns ([`relax::max_coverage`], whose
/// costs prefer early coverage and round-robin rotation), then round the
/// fractional assignment to one battery per job epoch — the battery the
/// relaxation gives the most units of that epoch to. `None` when the
/// backend cannot produce columns (no relaxation to round).
fn lp_rounding_plan<M: BatteryModel>(load: &DiscretizedLoad, model: &mut M) -> Option<PlanPolicy> {
    model.reset();
    let battery_count = model.battery_count();
    if battery_count == 0 || battery_count > MAX_BOUND_BATTERIES {
        return None;
    }
    let mut builder = ColumnBuilder::default();
    let mut columns: Vec<Vec<u64>> = Vec::with_capacity(battery_count);
    for battery in 0..battery_count {
        let (state, params, recovery) = model.column_inputs(battery)?;
        let mut column = ServiceColumn::default();
        builder.build(state, params, recovery, load.epochs(), 0, &mut column);
        columns.push(column.units);
    }
    let demands: Vec<u64> = load
        .epochs()
        .iter()
        .filter(|epoch| !epoch.is_idle())
        .map(DiscreteEpoch::total_units)
        .collect();
    let coverage = relax::max_coverage(&columns, &demands);
    let plan = (0..demands.len())
        .map(|e| {
            let mut best = 0usize;
            let mut best_units = 0u64;
            for (battery, assigned) in coverage.assignment.iter().enumerate() {
                let units = assigned.get(e).copied().unwrap_or(0);
                if units > best_units {
                    best_units = units;
                    best = battery;
                }
            }
            best
        })
        .collect();
    Some(PlanPolicy { plan })
}

/// Replays a per-job-epoch battery plan (the rounded LP assignment). When
/// the planned battery is unavailable, or the job continues past a battery
/// death, it falls back to the available battery with the most available
/// charge (ties to the lowest index), mirroring [`BestAvailable`].
#[derive(Debug, Clone)]
struct PlanPolicy {
    plan: Vec<usize>,
}

impl SchedulingPolicy for PlanPolicy {
    fn name(&self) -> &str {
        "lp-rounding"
    }

    fn choose(&mut self, ctx: &crate::policy::DecisionContext<'_>) -> Option<usize> {
        if !ctx.continuation {
            if let Some(&planned) = self.plan.get(ctx.job_index) {
                if ctx.available.contains(&planned) {
                    return Some(planned);
                }
            }
        }
        let mut best: Option<usize> = None;
        for &battery in ctx.available {
            let better = match best {
                None => true,
                Some(current) => ctx.charges[battery]
                    .available
                    .total_cmp(&ctx.charges[current].available)
                    .is_gt(),
            };
            if better {
                best = Some(battery);
            }
        }
        best
    }

    fn reset(&mut self) {}
}

/// One decision node on the explicit DFS stack. The frame at stack index
/// `d` owns snapshot `pool[d]` (the state at its decision point) and the
/// candidate range `cand_start..cand_end` of the shared candidate arena.
#[derive(Debug, Clone, Copy)]
struct Frame {
    /// Index of the job epoch this decision schedules.
    epoch_index: usize,
    /// Steps already served into that epoch.
    offset: u64,
    /// Lifetime accumulated up to the decision point.
    elapsed: u64,
    /// Candidate range in the candidate arena.
    cand_start: usize,
    cand_end: usize,
    /// Next candidate (absolute arena index) to expand.
    next_candidate: usize,
}

struct Search<'a, M: BatteryModel> {
    model: &'a mut M,
    epochs: &'a [DiscreteEpoch],
    charge_unit: f64,
    /// Largest single-draw size in the load, for the service envelopes.
    max_units_per_draw: u32,
    budget: usize,
    memoize: bool,
    dominance: bool,
    availability: bool,
    relaxation: bool,
    nodes: usize,
    memo_hits: usize,
    dominance_prunes: usize,
    charge_bound_prunes: usize,
    availability_bound_prunes: usize,
    relax_bound_prunes: usize,
    best_steps: u64,
    best_decisions: Vec<usize>,
    current_decisions: Vec<usize>,
    /// Explicit DFS stack; `stack[d]`'s branch snapshot is `pool[d]`.
    stack: Vec<Frame>,
    /// Snapshot pool indexed by depth; grows only to the maximum depth.
    pool: Vec<M::State>,
    /// Arena of candidate battery indices, ranges owned by frames.
    candidates: Vec<usize>,
    /// Reusable availability buffer.
    avail: Vec<usize>,
    /// Reusable per-battery service envelopes for the availability bound.
    envelopes: Vec<ServiceEnvelope>,
    /// Per-battery envelope cursors of the availability walk (windows and
    /// demands are queried in non-decreasing order, so each cursor only
    /// moves forward).
    cursors: Vec<EnvelopeCursor>,
    /// Cursor snapshot at the start of the epoch under test, for the
    /// in-epoch death scan (whose windows restart below the epoch's end).
    cursors_mark: Vec<EnvelopeCursor>,
    /// Transposition table: the lifetime accumulated when a canonical state
    /// was first expanded at a load position. Exact-equality revisits are
    /// pruned in O(1).
    seen: FxMap<(StateKey, usize, u64), u64>,
    /// Per-position Pareto fronts of expanded states (bounded per position
    /// and globally): a new state component-wise dominated by a recorded one
    /// is pruned.
    fronts: FxMap<(usize, u64), Vec<(StateKey, u64)>>,
    /// Total entries across all fronts, enforcing [`MAX_FRONT_ENTRIES`].
    front_entries: usize,
    /// The exact single-battery DP of the relaxation bound.
    column_builder: ColumnBuilder,
    /// Cached full-horizon service columns of the relaxation bound, keyed
    /// by `(battery type, battery state word, epoch index, offset)`. The
    /// full-horizon build makes the key independent of the pruning margin,
    /// so a column solved at the parent (or any transposition) is reused
    /// verbatim at every revisit.
    column_cache: FxMap<(usize, u128, usize, u64), ServiceColumn>,
    /// Per-battery scratch columns for cache misses.
    columns_scratch: Vec<ServiceColumn>,
}

impl<'a, M: BatteryModel> Search<'a, M> {
    /// Builds a search over `load` against a freshly reset `model`, with
    /// the scheduler's pruning configuration and a warm-start incumbent.
    fn new(
        config: &SystemConfig,
        load: &'a DiscretizedLoad,
        model: &'a mut M,
        scheduler: OptimalScheduler,
        warm: WarmStart,
    ) -> Self {
        // The largest single draw of the load ahead, for the service
        // envelopes (a battery's recovery state may overshoot its
        // serviceable band by at most one draw).
        let max_units_per_draw =
            load.epochs().iter().map(DiscreteEpoch::units_per_draw).max().unwrap_or(0);
        model.reset();
        Search {
            model,
            epochs: load.epochs(),
            charge_unit: config.disc().charge_unit(),
            max_units_per_draw,
            budget: scheduler.budget,
            memoize: scheduler.memoize,
            dominance: scheduler.dominance,
            availability: scheduler.availability,
            relaxation: scheduler.relaxation,
            nodes: 0,
            memo_hits: 0,
            dominance_prunes: 0,
            charge_bound_prunes: 0,
            availability_bound_prunes: 0,
            relax_bound_prunes: 0,
            best_steps: warm.steps,
            best_decisions: warm.decisions,
            current_decisions: Vec::new(),
            stack: Vec::new(),
            pool: Vec::new(),
            candidates: Vec::new(),
            avail: Vec::new(),
            envelopes: Vec::new(),
            cursors: Vec::new(),
            cursors_mark: Vec::new(),
            seen: FxMap::default(),
            fronts: FxMap::default(),
            front_entries: 0,
            column_builder: ColumnBuilder::default(),
            column_cache: FxMap::default(),
            columns_scratch: Vec::new(),
        }
    }
}

impl<M: BatteryModel> Search<'_, M> {
    /// Runs the depth-first exploration from the freshly reset model.
    fn explore(&mut self) -> Result<(), SchedError> {
        if !self.enter_position(0, 0, 0)? {
            return Ok(());
        }
        while let Some(top) = self.stack.last().copied() {
            let depth = self.stack.len() - 1;
            if top.next_candidate >= top.cand_end {
                self.stack.pop();
                self.candidates.truncate(top.cand_start);
                if depth > 0 {
                    self.current_decisions.pop();
                }
                continue;
            }
            let battery = self.candidates[top.next_candidate];
            self.stack[depth].next_candidate += 1;

            // Re-branch from the decision point and serve (a portion of) the
            // job on the chosen battery.
            let epoch = self.epochs[top.epoch_index];
            self.model.restore_state(&self.pool[depth]);
            let remaining = epoch.duration_steps() - top.offset;
            let advance = self.model.advance_job(
                battery,
                remaining,
                epoch.draw_interval_steps(),
                epoch.units_per_draw(),
            )?;
            let (child_epoch, child_offset) = if advance.completed {
                (top.epoch_index + 1, 0)
            } else {
                (top.epoch_index, top.offset + advance.steps_consumed)
            };
            let child_elapsed = top.elapsed + advance.steps_consumed;

            self.current_decisions.push(battery);
            if !self.enter_position(child_epoch, child_offset, child_elapsed)? {
                self.current_decisions.pop();
            }
        }
        Ok(())
    }

    /// Advances the model (which must hold the state for the given position)
    /// deterministically to the next decision point and, unless the position
    /// is a leaf or pruned, pushes a decision frame. Returns whether a frame
    /// was pushed.
    fn enter_position(
        &mut self,
        mut epoch_index: usize,
        mut offset: u64,
        mut elapsed: u64,
    ) -> Result<bool, SchedError> {
        // The system lifetime ends the moment the last battery is observed
        // empty — trailing idle time of the load does not count.
        if !self.model.any_available() {
            self.record_candidate(elapsed);
            return Ok(false);
        }
        // Advance deterministically (idle epochs) until the next decision.
        loop {
            let Some(epoch) = self.epochs.get(epoch_index) else {
                // The load ended before the batteries died; the schedule kept
                // the system alive for the whole (truncated) load.
                self.record_candidate(elapsed);
                return Ok(false);
            };
            if epoch.is_idle() {
                let steps = epoch.duration_steps() - offset;
                self.model.advance_idle(steps);
                elapsed += steps;
                epoch_index += 1;
                offset = 0;
            } else if offset >= epoch.duration_steps() {
                epoch_index += 1;
                offset = 0;
            } else {
                break;
            }
        }
        if !self.model.any_available() {
            self.record_candidate(elapsed);
            return Ok(false);
        }

        self.nodes += 1;
        if self.nodes > self.budget {
            return Err(SchedError::SearchBudgetExceeded { budget: self.budget });
        }

        // Charge bound: even if every remaining unit of usable charge were
        // extractable, the load ahead limits how long the system can live.
        if elapsed + self.charge_bound(epoch_index, offset) <= self.best_steps {
            self.charge_bound_prunes += 1;
            return Ok(false);
        }
        // Availability bound: recovery dynamics limit how fast that charge
        // can actually be served. Evaluated only when the (cheaper) charge
        // bound fails to fire, so the split counters attribute each prune
        // to the weakest bound that achieves it.
        let margin = self.best_steps.saturating_sub(elapsed);
        // Whether the availability bound landed close enough to the
        // pruning margin that the (much costlier) relaxation bound has a
        // realistic chance of closing the rest of the gap. When the
        // availability walk survives past twice the margin, the relaxation
        // — empirically within ~15 % of it at the root — will not prune
        // either, so building columns there would be pure overhead.
        let mut relax_worthwhile = true;
        if self.availability {
            // Only walk past the margin (to the gate) when the relaxation
            // is on and the extra information is actually consumed.
            let gate = if self.relaxation { margin.saturating_mul(2) } else { margin };
            let bound = self.availability_bound(epoch_index, offset, gate);
            if elapsed.saturating_add(bound) <= self.best_steps {
                self.availability_bound_prunes += 1;
                return Ok(false);
            }
            relax_worthwhile = bound <= gate;
        }
        // Relaxation bound: exact per-battery service columns coupled only
        // through the shared demand. The most expensive bound, so it runs
        // last (and gated), and its counter attributes only the prunes the
        // cheaper bounds missed.
        if self.relaxation && relax_worthwhile {
            let bound = self.relax_bound(epoch_index, offset, margin);
            if elapsed.saturating_add(bound) <= self.best_steps {
                self.relax_bound_prunes += 1;
                return Ok(false);
            }
        }

        // Transposition table + dominance pruning. An earlier visit of the
        // same (or a component-wise at-least-as-good) canonical state at the
        // same load position with at least as much accumulated lifetime has
        // already explored — or soundly bound-pruned — every completion this
        // node could reach. Time always advances with the load, so two
        // visits of the same position in practice carry the same `elapsed`;
        // the comparison is kept for safety.
        if self.memoize || self.dominance {
            if let Some(key) = self.model.memo_key() {
                if self.memoize {
                    let under_cap = self.seen.len() < MAX_MEMO_ENTRIES;
                    match self.seen.entry((key, epoch_index, offset)) {
                        std::collections::hash_map::Entry::Occupied(mut entry) => {
                            if *entry.get() >= elapsed {
                                self.memo_hits += 1;
                                return Ok(false);
                            }
                            entry.insert(elapsed);
                        }
                        std::collections::hash_map::Entry::Vacant(entry) => {
                            if under_cap {
                                entry.insert(elapsed);
                            }
                        }
                    }
                }
                if self.dominance {
                    // Keys that dominate earlier entries evict them
                    // (dominance is transitive), so each front holds only
                    // Pareto-maximal expanded states, capped per position to
                    // bound the scan and globally to bound memory (beyond
                    // the global cap, existing fronts still prune but new
                    // positions are not recorded).
                    let front = if self.front_entries < MAX_FRONT_ENTRIES {
                        Some(self.fronts.entry((epoch_index, offset)).or_default())
                    } else {
                        self.fronts.get_mut(&(epoch_index, offset))
                    };
                    if let Some(front) = front {
                        let model: &M = self.model;
                        for (stored, stored_elapsed) in front.iter() {
                            if *stored_elapsed >= elapsed && model.key_dominates(stored, &key) {
                                self.dominance_prunes += 1;
                                return Ok(false);
                            }
                        }
                        let before = front.len();
                        front.retain(|(stored, stored_elapsed)| {
                            !(elapsed >= *stored_elapsed && model.key_dominates(&key, stored))
                        });
                        self.front_entries -= before - front.len();
                        if front.len() < MAX_STATES_PER_POSITION
                            && self.front_entries < MAX_FRONT_ENTRIES
                        {
                            front.push((key, elapsed));
                            self.front_entries += 1;
                        }
                    }
                }
            }
        }

        // Candidate batteries, deduplicated by identical state (symmetry)
        // and ordered by remaining charge (best first) so that good
        // incumbents are found early.
        self.model.available_into(&mut self.avail);
        let cand_start = self.candidates.len();
        for position in 0..self.avail.len() {
            let battery = self.avail[position];
            let duplicate = self.candidates[cand_start..]
                .iter()
                .any(|&other| self.model.states_identical(other, battery));
            if !duplicate {
                self.candidates.push(battery);
            }
        }
        {
            let model: &M = self.model;
            self.candidates[cand_start..]
                .sort_by(|&a, &b| model.charge(b).total.total_cmp(&model.charge(a).total));
        }

        let depth = self.stack.len();
        self.save_snapshot(depth);
        self.stack.push(Frame {
            epoch_index,
            offset,
            elapsed,
            cand_start,
            cand_end: self.candidates.len(),
            next_candidate: cand_start,
        });
        Ok(true)
    }

    /// Saves the model's current state into `pool[depth]`, allocating only
    /// when the pool has never been this deep before.
    fn save_snapshot(&mut self, depth: usize) {
        if depth == self.pool.len() {
            self.pool.push(self.model.save_state());
        } else {
            self.model.save_state_into(&mut self.pool[depth]);
        }
    }

    fn record_candidate(&mut self, elapsed: u64) {
        if elapsed > self.best_steps {
            self.best_steps = elapsed;
            self.best_decisions.clone_from(&self.current_decisions);
        }
    }

    /// Charge upper bound on the additional lifetime obtainable from this
    /// position: walk the remaining load; the system cannot survive past
    /// the point at which the load has requested more charge units than all
    /// usable batteries jointly hold.
    fn charge_bound(&self, epoch_index: usize, offset: u64) -> u64 {
        let mut units_left = dkibam::checked::f64_to_u64(
            ((self.model.usable_charge() + 1e-9) / self.charge_unit).floor().max(0.0),
        );
        let mut steps: u64 = 0;
        let mut offset = offset;
        for epoch in &self.epochs[epoch_index..] {
            let duration = epoch.duration_steps() - offset;
            offset = 0;
            if epoch.is_idle() {
                steps += duration;
                continue;
            }
            let interval = u64::from(epoch.draw_interval_steps());
            let draws_possible = duration / interval;
            let units_needed = draws_possible * u64::from(epoch.units_per_draw());
            if units_needed < units_left {
                units_left -= units_needed;
                steps += duration;
            } else {
                // The batteries run dry somewhere in this epoch.
                let draws_served = units_left / u64::from(epoch.units_per_draw());
                steps += (draws_served + 1).min(draws_possible) * interval;
                return steps;
            }
        }
        steps
    }

    /// Availability upper bound on the additional lifetime obtainable from
    /// this position. Every survived draw instant consumes its units from
    /// *some* battery, so the cumulative demand up to any draw instant can
    /// never exceed the fleet's joint service capability over that window
    /// — the sum of the per-battery recovery-coupled service envelopes
    /// ([`BatteryModel::service_envelope_into`]), each also paced by the
    /// demand delivered so far (a battery's recovery state only climbs by
    /// serving). The walk checks that necessary condition at the last draw
    /// of every remaining job epoch and, once it fails, locates the last
    /// coverable draw inside the failing epoch.
    ///
    /// Returns `u64::MAX` (no claim) when the backend cannot bound
    /// service, and may return early with any value above `limit` once the
    /// walk has survived past it (the caller only compares against
    /// `limit`, so the exact value no longer matters).
    fn availability_bound(&mut self, epoch_index: usize, offset: u64, limit: u64) -> u64 {
        let battery_count = self.model.battery_count();
        if battery_count > MAX_BOUND_BATTERIES {
            return u64::MAX;
        }
        if self.envelopes.len() < battery_count {
            self.envelopes.resize_with(battery_count, ServiceEnvelope::new);
        }
        let mut tables: [Option<&ServiceRateTable>; MAX_BOUND_BATTERIES] =
            [None; MAX_BOUND_BATTERIES];
        for (battery, slot) in tables.iter_mut().enumerate().take(battery_count) {
            match self.model.service_envelope_into(
                battery,
                self.max_units_per_draw,
                &mut self.envelopes[battery],
            ) {
                Some(table) => *slot = Some(table),
                None => return u64::MAX,
            }
        }
        self.cursors.clear();
        self.cursors.resize(battery_count, EnvelopeCursor::default());
        let envelopes = &self.envelopes;
        let cursors = &mut self.cursors;
        let marks = &mut self.cursors_mark;
        let fleet_units = |cursors: &mut [EnvelopeCursor], window: u64, demand: u64| -> u64 {
            let mut total: u64 = 0;
            for battery in 0..battery_count {
                // xlint: allow(panic) -- every index was populated in the loop above
                let table = tables[battery].expect("all envelope tables were filled above");
                #[cfg(debug_assertions)]
                let cursor_before = cursors[battery];
                total = total.saturating_add(table.units_within(
                    &envelopes[battery],
                    &mut cursors[battery],
                    window,
                    demand,
                ));
                // Cursor monotonicity: the availability walk queries windows
                // and demands in non-decreasing order, so a cursor only
                // advances; the only rewind is the explicit `marks` restore.
                #[cfg(debug_assertions)]
                debug_assert!(
                    cursor_before <= cursors[battery],
                    "envelope cursor moved backwards inside the walk"
                );
            }
            total
        };

        let mut demand: u64 = 0;
        let mut steps: u64 = 0;
        let mut offset = offset;
        for epoch in &self.epochs[epoch_index..] {
            let duration = epoch.duration_steps() - offset;
            offset = 0;
            if epoch.is_idle() {
                steps += duration;
                continue;
            }
            if steps > limit {
                // The walk has already survived past the pruning margin;
                // the caller cannot use a larger bound, so stop walking.
                return steps;
            }
            let interval = u64::from(epoch.draw_interval_steps());
            let units = u64::from(epoch.units_per_draw());
            let draws_possible = duration / interval;
            let epoch_demand = demand + draws_possible * units;
            // The binding check sits at the epoch's last draw instant:
            // demand peaks there while the envelopes keep growing through
            // the idle time that follows. The cursor snapshot lets the
            // death scan below rewind to the epoch's start.
            marks.clone_from(cursors);
            if epoch_demand <= fleet_units(cursors, steps + draws_possible * interval, epoch_demand)
            {
                demand = epoch_demand;
                steps += duration;
                continue;
            }
            // The fleet cannot cover this epoch: the system dies at (or
            // before) the first uncoverable draw. Envelopes regenerate
            // stepwise, so scan for the last draw whose cumulative demand
            // still fits.
            cursors.clone_from(marks);
            let mut draws_served = 0;
            for draw in 1..=draws_possible {
                let at_draw = demand + draw * units;
                if at_draw <= fleet_units(cursors, steps + draw * interval, at_draw) {
                    draws_served = draw;
                }
            }
            return steps + (draws_served + 1).min(draws_possible) * interval;
        }
        steps
    }

    /// Min-cost-flow relaxation bound on the additional lifetime obtainable
    /// from this position. It drops only the "one battery per draw"
    /// coupling: battery `i`'s cumulative service through job epoch `e` is
    /// bounded by its *exact* best-case column `columns[i][e]` (the
    /// serve/skip DP of [`ColumnBuilder`], which prices every recovery the
    /// battery would actually need), and the fleet jointly covers each
    /// epoch's demand. Because the columns are cumulative, the optimum of
    /// that transportation relaxation has a closed-form min cut
    /// ([`relax::coverage_bound`]); here the demand walk uses its epoch
    /// form directly: the system dies in the first epoch whose cumulative
    /// demand exceeds the summed column capacities, and the last coverable
    /// draw inside that epoch follows from the remaining unit budget.
    ///
    /// A column entry depends only on the epochs up to it, so a build
    /// truncated at the walk's early-exit horizon (the first job epoch
    /// starting past `limit`) produces exactly the entries the walk can
    /// read — deep nodes with small margins build short, cheap prefixes.
    /// Cached prefixes are keyed by `(type, state word, position)` — the
    /// key is limit-independent — and extended in place when a later visit
    /// (e.g. after the incumbent improved) needs a longer prefix, so
    /// revisits of a battery state solved at the parent (or any
    /// transposition) re-use the parent's columns instead of re-running
    /// the DP.
    ///
    /// Returns `u64::MAX` (no claim) when the backend cannot provide
    /// column inputs, and may return early with any value above `limit`
    /// once the walk has survived past it.
    fn relax_bound(&mut self, epoch_index: usize, offset: u64, limit: u64) -> u64 {
        let battery_count = self.model.battery_count();
        if battery_count == 0 || battery_count > MAX_BOUND_BATTERIES {
            return u64::MAX;
        }
        // The build horizon: `needed` job-epoch entries, covered by the
        // first `span` timeline epochs. Mirrors the walk below exactly —
        // each job epoch is counted iff the walk would reach its check.
        let mut needed = 0usize;
        let mut span = 0usize;
        {
            let mut steps_ahead: u64 = 0;
            let mut walk_offset = offset;
            for (index, epoch) in self.epochs[epoch_index..].iter().enumerate() {
                let duration = epoch.duration_steps() - walk_offset;
                walk_offset = 0;
                if !epoch.is_idle() {
                    if steps_ahead > limit {
                        break;
                    }
                    needed += 1;
                    span = index + 1;
                }
                steps_ahead += duration;
            }
        }
        if self.columns_scratch.len() < battery_count {
            self.columns_scratch.resize_with(battery_count, ServiceColumn::default);
        }
        let mut keys = [(0usize, 0u128, 0usize, 0u64); MAX_BOUND_BATTERIES];
        let mut from_scratch = [false; MAX_BOUND_BATTERIES];
        let mut alive: u64 = 0;
        for battery in 0..battery_count {
            let Some((state, params, recovery)) = self.model.column_inputs(battery) else {
                return u64::MAX;
            };
            alive += u64::from(!state.is_observed_empty());
            let key = (self.model.type_of(battery), state.state_word(), epoch_index, offset);
            keys[battery] = key;
            if self.column_cache.get(&key).is_some_and(|cached| cached.len() >= needed) {
                continue;
            }
            self.column_builder.build(
                state,
                params,
                recovery,
                &self.epochs[epoch_index..epoch_index + span],
                offset,
                &mut self.columns_scratch[battery],
            );
            let under_cap = self.column_cache.len() < MAX_COLUMN_CACHE_ENTRIES;
            match self.column_cache.get_mut(&key) {
                // Extending an existing prefix never adds an entry, so it
                // is allowed even at the cache cap.
                Some(cached) => cached.clone_from_column(&self.columns_scratch[battery]),
                None if under_cap => {
                    self.column_cache.insert(key, self.columns_scratch[battery].clone());
                }
                None => from_scratch[battery] = true,
            }
        }
        let empty = ServiceColumn::default();
        let mut columns: [&ServiceColumn; MAX_BOUND_BATTERIES] = [&empty; MAX_BOUND_BATTERIES];
        for battery in 0..battery_count {
            columns[battery] = if from_scratch[battery] {
                &self.columns_scratch[battery]
            } else {
                self.column_cache.get(&keys[battery]).unwrap_or(&empty)
            };
        }
        // Flat extension of a cumulative column past its end (the prefix
        // build covers every epoch the walk can reach before its early
        // exit, so this is defensive only).
        let entry = |column: &[u64], index: usize| {
            column.get(index).or_else(|| column.last()).copied().unwrap_or(0)
        };

        let mut cumulative_demand: u64 = 0;
        let mut whole_epochs: u64 = 0;
        let mut steps: u64 = 0;
        let mut offset = offset;
        let mut job_epoch = 0usize;
        for epoch in &self.epochs[epoch_index..] {
            let whole = offset == 0;
            let duration = epoch.duration_steps() - offset;
            offset = 0;
            if epoch.is_idle() {
                steps += duration;
                continue;
            }
            if steps > limit {
                return steps;
            }
            let interval = u64::from(epoch.draw_interval_steps());
            let units = u64::from(epoch.units_per_draw());
            let draws_possible = duration / interval;
            let epoch_demand = draws_possible * units;
            let capacity: u64 = columns[..battery_count]
                .iter()
                .map(|column| entry(&column.units, job_epoch))
                .fold(0, u64::saturating_add);
            let mut death: Option<u64> = None;
            if cumulative_demand.saturating_add(epoch_demand) > capacity {
                // The relaxed fleet dies in this epoch: it can cover
                // `capacity − cumulative_demand` more units, i.e. that many
                // whole draws, and survives one draw interval past the last
                // covered draw (or to the first draw, if none).
                let draws_served = capacity.saturating_sub(cumulative_demand) / units;
                death = Some(steps + (draws_served + 1).min(draws_possible) * interval);
            }
            // Serialization cut: of the `whole_epochs` whole job epochs so
            // far, at most `alive` can be split between batteries (every
            // mid-epoch handoff consumes one of the remaining deaths); the
            // rest must each be served whole by a single battery, and
            // `Σ full_epochs` caps how many whole serves the fleet has.
            // The fractional LP may still split a whole serve across
            // batteries, so this is the relaxation's integral face — it is
            // what keeps the bound from degenerating to the charge budget
            // on fresh fleets, where per-unit capacity is plentiful but
            // serialized epoch coverage is not.
            if whole && epoch_demand > 0 {
                whole_epochs += 1;
                let full_serves: u64 = columns[..battery_count]
                    .iter()
                    .map(|column| entry(&column.full_epochs, job_epoch))
                    .fold(0, u64::saturating_add);
                if whole_epochs.saturating_sub(alive) > full_serves {
                    // Some prior whole epoch cannot be fully covered; the
                    // system dies by this epoch's last draw at the latest.
                    let at_last_draw = steps + draws_possible * interval;
                    death = Some(death.map_or(at_last_draw, |d| d.min(at_last_draw)));
                }
            }
            if let Some(death) = death {
                return death;
            }
            cumulative_demand += epoch_demand;
            steps += duration;
            job_epoch += 1;
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BestAvailable, FixedSchedule, RoundRobin};
    use crate::system::simulate_policy;
    use dkibam::Discretization;
    use kibam::BatteryParams;
    use workload::builder::LoadProfileBuilder;
    use workload::paper_loads::TestLoad;

    /// A coarse two-battery configuration that keeps the exhaustive search
    /// small enough for unit tests while preserving the model behaviour.
    fn coarse_config() -> SystemConfig {
        SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), 2).unwrap()
    }

    #[test]
    fn optimal_never_loses_to_deterministic_policies() {
        let config = coarse_config();
        for load in [TestLoad::Cl500, TestLoad::IlsAlt, TestLoad::Ils500] {
            let optimal = OptimalScheduler::new().find_optimal(&config, &load.profile()).unwrap();
            for policy in
                [&mut RoundRobin::new() as &mut dyn SchedulingPolicy, &mut BestAvailable::new()]
            {
                let outcome = simulate_policy(&config, &load.profile(), policy).unwrap();
                assert!(
                    optimal.lifetime_steps >= outcome.lifetime_steps().unwrap(),
                    "{load}: optimal must dominate {}",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn optimal_schedule_is_replayable() {
        let config = coarse_config();
        let load = TestLoad::IlsAlt.profile();
        let optimal = OptimalScheduler::new().find_optimal(&config, &load).unwrap();
        let mut replay = FixedSchedule::new(optimal.decisions.clone());
        let outcome = simulate_policy(&config, &load, &mut replay).unwrap();
        assert_eq!(outcome.lifetime_steps(), Some(optimal.lifetime_steps));
    }

    #[test]
    fn optimal_improves_on_round_robin_for_alternating_load() {
        // Table 5: the optimal schedule beats round robin by ~32 % on
        // ILs alt; the coarse discretization preserves a clear gap.
        let config = coarse_config();
        let load = TestLoad::IlsAlt.profile();
        let optimal = OptimalScheduler::new().find_optimal(&config, &load).unwrap();
        let rr = simulate_policy(&config, &load, &mut RoundRobin::new())
            .unwrap()
            .lifetime_steps()
            .unwrap();
        assert!(
            optimal.lifetime_steps as f64 >= rr as f64 * 1.15,
            "optimal {} vs round robin {rr}",
            optimal.lifetime_steps
        );
    }

    #[test]
    fn memoized_search_matches_the_reference_search() {
        let config = coarse_config();
        for load in [TestLoad::Cl500, TestLoad::IlsAlt] {
            let pruned = OptimalScheduler::new().find_optimal(&config, &load.profile()).unwrap();
            let reference =
                OptimalScheduler::reference().find_optimal(&config, &load.profile()).unwrap();
            assert_eq!(
                pruned.lifetime_steps, reference.lifetime_steps,
                "{load}: pruning must not change the optimum"
            );
            assert!(
                pruned.nodes_explored <= reference.nodes_explored,
                "{load}: pruning must not grow the search ({} vs {})",
                pruned.nodes_explored,
                reference.nodes_explored
            );
        }
    }

    #[test]
    fn pruning_counters_are_reported() {
        let config = coarse_config();
        // ILs 250 drains slowly, so its deep search has many converging
        // histories (ILs alt on two batteries has none after symmetry
        // pruning — see the module docs).
        let load = TestLoad::Ils250.profile();
        let pruned = OptimalScheduler::new().find_optimal(&config, &load).unwrap();
        assert!(pruned.memo_hits > 0, "the slow-drain load revisits states");
        assert!(pruned.dominance_prunes > 0, "expanded states dominate later siblings");
        let reference = OptimalScheduler::reference().find_optimal(&config, &load).unwrap();
        assert_eq!(reference.memo_hits, 0);
        assert_eq!(reference.dominance_prunes, 0);
        assert!(
            pruned.nodes_explored * 5 <= reference.nodes_explored,
            "pruning shrinks the deep search at least 5x ({} vs {})",
            pruned.nodes_explored,
            reference.nodes_explored
        );
        assert_eq!(pruned.lifetime_steps, reference.lifetime_steps);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let config = coarse_config();
        let result =
            OptimalScheduler::with_budget(1).find_optimal(&config, &TestLoad::Ils250.profile());
        assert!(matches!(result, Err(SchedError::SearchBudgetExceeded { budget: 1 })));
    }

    #[test]
    fn single_battery_optimal_equals_single_battery_simulation() {
        let config =
            SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), 1).unwrap();
        let load = TestLoad::Cl500.profile();
        let optimal = OptimalScheduler::new().find_optimal(&config, &load).unwrap();
        let only_choice = simulate_policy(&config, &load, &mut RoundRobin::new())
            .unwrap()
            .lifetime_steps()
            .unwrap();
        assert_eq!(optimal.lifetime_steps, only_choice);
    }

    #[test]
    fn load_too_short_to_kill_batteries_reports_full_duration() {
        let config = coarse_config();
        // A finite load of two 500 mA jobs: both batteries easily survive.
        let profile =
            LoadProfileBuilder::new().job(0.5, 1.0).idle(1.0).job(0.5, 1.0).build_finite().unwrap();
        let optimal = OptimalScheduler::new().find_optimal(&config, &profile).unwrap();
        let total_steps = config.disc().minutes_to_steps(3.0);
        assert_eq!(optimal.lifetime_steps, total_steps);
    }

    #[test]
    fn continuous_backend_search_dominates_and_replays() {
        let config = coarse_config();
        let load = config.discretize(&TestLoad::IlsAlt.profile()).unwrap();
        let mut model = config.continuous_model();
        let optimal =
            OptimalScheduler::new().find_optimal_with(&config, &load, &mut model).unwrap();

        // The continuous backend has no memo key, so the table never fires.
        assert_eq!(optimal.memo_hits, 0);

        // Dominates the deterministic policies on the same backend.
        for policy in
            [&mut RoundRobin::new() as &mut dyn SchedulingPolicy, &mut BestAvailable::new()]
        {
            let outcome =
                crate::system::simulate_policy_with(&config, &load, policy, &mut model).unwrap();
            assert!(optimal.lifetime_steps >= outcome.lifetime_steps().unwrap());
        }

        // And the decision sequence replays to the same lifetime.
        let mut replay = FixedSchedule::new(optimal.decisions.clone());
        let outcome =
            crate::system::simulate_policy_with(&config, &load, &mut replay, &mut model).unwrap();
        assert_eq!(outcome.lifetime_steps(), Some(optimal.lifetime_steps));
    }

    #[test]
    fn continuous_and_discretized_optima_agree_on_coarse_grid() {
        let config = coarse_config();
        let load = config.discretize(&TestLoad::Cl500.profile()).unwrap();
        let discrete = OptimalScheduler::new().find_optimal_on(&config, &load).unwrap();
        let mut model = config.continuous_model();
        let continuous =
            OptimalScheduler::new().find_optimal_with(&config, &load, &mut model).unwrap();
        let a = discrete.lifetime_steps as f64;
        let b = continuous.lifetime_steps as f64;
        assert!((a - b).abs() / b < 0.06, "discrete {a} vs continuous {b} steps");
    }
}
