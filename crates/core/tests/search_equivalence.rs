//! Equivalence of the memoized/pruned optimal search and the
//! pruning-disabled reference search (the seed's plain bounded search).
//!
//! The transposition table and the dominance pruning are only admissible if
//! they never change the computed optimum. This deterministic sampled
//! property test sweeps the coarse-grid paper loads and seeded random loads
//! across two- and three-battery systems — uniform and heterogeneous
//! (mixed-type) fleets — and asserts bit-identical lifetimes, with the
//! pruned search never exploring more nodes than the reference.

use battery_sched::optimal::OptimalScheduler;
use battery_sched::policy::FixedSchedule;
use battery_sched::system::{simulate_policy, SystemConfig};
use dkibam::Discretization;
use kibam::{BatteryParams, FleetSpec};
use workload::paper_loads::TestLoad;
use workload::random::RandomLoadSpec;
use workload::LoadProfile;

fn coarse_system(count: usize) -> SystemConfig {
    SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), count).unwrap()
}

/// A heterogeneous coarse-grid system: `extra_b1` batteries of type B1 next
/// to one B2.
fn coarse_mixed_system(extra_b1: usize) -> SystemConfig {
    let mut params = vec![BatteryParams::itsy_b1(); extra_b1];
    params.push(BatteryParams::itsy_b2());
    SystemConfig::from_fleet(FleetSpec::new(params).unwrap(), Discretization::coarse())
}

/// Deterministic random loads: seeds are fixed, so every run samples the
/// same profiles. Higher currents for the three-battery system keep its
/// reference search tractable (slow-drain loads explode combinatorially).
fn random_profiles(count: usize) -> Vec<LoadProfile> {
    let (currents, jobs, seeds): (Vec<f64>, usize, &[u64]) =
        if count == 2 { (vec![0.25, 0.5], 40, &[11, 23]) } else { (vec![0.5, 1.0], 25, &[7]) };
    let spec = RandomLoadSpec::new(currents, 1.0, 0.5, jobs).unwrap();
    seeds.iter().map(|&seed| spec.generate(seed).unwrap()).collect()
}

fn assert_equivalent(config: &SystemConfig, profile: &LoadProfile, label: &str) {
    let reference = OptimalScheduler::reference().find_optimal(config, profile).unwrap();
    let pruned = OptimalScheduler::new().find_optimal(config, profile).unwrap();
    assert_eq!(
        pruned.lifetime_steps, reference.lifetime_steps,
        "{label}: pruning changed the optimum"
    );
    assert!(
        pruned.nodes_explored <= reference.nodes_explored,
        "{label}: pruning grew the search ({} vs {})",
        pruned.nodes_explored,
        reference.nodes_explored
    );
    // The pruned search's decision sequence replays to the exact optimum.
    let mut replay = FixedSchedule::new(pruned.decisions.clone());
    let replayed = simulate_policy(config, profile, &mut replay).unwrap();
    // A `None` lifetime means the load ended before the batteries died: the
    // schedule survived the whole load, which the search reports as the full
    // duration.
    let lifetime = replayed.lifetime_steps().unwrap_or(pruned.lifetime_steps);
    assert_eq!(lifetime, pruned.lifetime_steps, "{label}: decisions do not replay");
}

#[test]
fn two_battery_search_is_equivalent_on_paper_loads() {
    let config = coarse_system(2);
    for load in [TestLoad::Cl500, TestLoad::Ils500, TestLoad::IlsAlt, TestLoad::Ils250] {
        assert_equivalent(&config, &load.profile(), load.name());
    }
}

#[test]
fn two_battery_search_is_equivalent_on_random_loads() {
    let config = coarse_system(2);
    for (index, profile) in random_profiles(2).iter().enumerate() {
        assert_equivalent(&config, profile, &format!("random[{index}]"));
    }
}

#[test]
fn three_battery_search_is_equivalent() {
    let config = coarse_system(3);
    for load in [TestLoad::Cl500, TestLoad::IlsAlt] {
        assert_equivalent(&config, &load.profile(), load.name());
    }
    for (index, profile) in random_profiles(3).iter().enumerate() {
        assert_equivalent(&config, profile, &format!("random[{index}]"));
    }
}

#[test]
fn mixed_fleet_search_is_equivalent_on_paper_loads() {
    // 1 x B1 + 1 x B2: type-grouped canonical keys must memoize mixed
    // fleets without ever conflating a B1 state with a B2 state. The
    // slow-drain loads (ILs 500/250) are omitted: the mixed fleet has 1.5x
    // the charge and no battery symmetry, so the pruning-disabled
    // *reference* search blows past the node budget there (the pruned
    // search handles them fine — see the random-load test below and the
    // fleet smoke grid in `tests/fleet_golden.rs`).
    let config = coarse_mixed_system(1);
    for load in [TestLoad::Cl500, TestLoad::IlsAlt] {
        assert_equivalent(&config, &load.profile(), &format!("B1+B2 {load}"));
    }
}

#[test]
fn mixed_fleet_search_is_equivalent_on_random_loads() {
    let config = coarse_mixed_system(1);
    for (index, profile) in random_profiles(2).iter().enumerate() {
        assert_equivalent(&config, profile, &format!("B1+B2 random[{index}]"));
    }
}

#[test]
fn two_b1_plus_b2_search_prunes_the_b1_pair() {
    // 2 x B1 + 1 x B2: the two B1s are interchangeable (symmetry pruning
    // within the type group), the B2 is not. The search must stay exact,
    // and the same fleet with the B2 replaced by a third B1 must explore at
    // least as few nodes (full 3-way symmetry) than the mixed fleet
    // (pairwise symmetry only). Only the fast-draining constant load keeps
    // three mixed batteries tractable — the 22 A·min alternating search
    // exceeds the default budget even pruned, exactly like the 4 x B1 case
    // the ROADMAP lists as the open search frontier.
    let load = TestLoad::Cl500;
    let mixed = coarse_mixed_system(2);
    let uniform = coarse_system(3);
    assert_equivalent(&mixed, &load.profile(), "2xB1+B2 CL 500");
    let mixed_outcome = OptimalScheduler::new().find_optimal(&mixed, &load.profile()).unwrap();
    let uniform_outcome = OptimalScheduler::new().find_optimal(&uniform, &load.profile()).unwrap();
    assert!(
        uniform_outcome.nodes_explored <= mixed_outcome.nodes_explored,
        "{load}: 3xB1 (full symmetry, {} nodes) must not out-branch 2xB1+B2 \
         (pair symmetry, {} nodes)",
        uniform_outcome.nodes_explored,
        mixed_outcome.nodes_explored
    );
}

#[test]
fn rv_backend_search_is_equivalent_on_paper_loads() {
    // The RV diffusion backend carries exact (grid-aligned fixed-point)
    // memo keys and a component-wise dominance rule; both must preserve
    // the optimum on a 2-battery RV instance, and the pruned search's
    // decisions must replay to the same lifetime on the same backend.
    let config = coarse_system(2);
    for load in [TestLoad::Cl500, TestLoad::IlsAlt, TestLoad::Ils500] {
        let discretized = config.discretize(&load.profile()).unwrap();
        let mut model = config.rv_model();
        let reference = OptimalScheduler::reference()
            .find_optimal_with(&config, &discretized, &mut model)
            .unwrap();
        let pruned =
            OptimalScheduler::new().find_optimal_with(&config, &discretized, &mut model).unwrap();
        assert_eq!(
            pruned.lifetime_steps, reference.lifetime_steps,
            "{load}: pruning changed the RV optimum"
        );
        assert!(
            pruned.nodes_explored <= reference.nodes_explored,
            "{load}: pruning grew the RV search ({} vs {})",
            pruned.nodes_explored,
            reference.nodes_explored
        );
        let mut replay = FixedSchedule::new(pruned.decisions.clone());
        let replayed = battery_sched::system::simulate_policy_with(
            &config,
            &discretized,
            &mut replay,
            &mut model,
        )
        .unwrap();
        let lifetime = replayed.lifetime_steps().unwrap_or(pruned.lifetime_steps);
        assert_eq!(lifetime, pruned.lifetime_steps, "{load}: RV decisions do not replay");
    }
}

#[test]
fn rv_mixed_fleet_search_is_equivalent() {
    // Type-grouped keys on the RV backend: a B1+B2 diffusion fleet must
    // stay exact under pruning too.
    let config = coarse_mixed_system(1);
    for load in [TestLoad::Cl500, TestLoad::IlsAlt] {
        let discretized = config.discretize(&load.profile()).unwrap();
        let mut model = config.rv_model();
        let reference = OptimalScheduler::reference()
            .find_optimal_with(&config, &discretized, &mut model)
            .unwrap();
        let pruned =
            OptimalScheduler::new().find_optimal_with(&config, &discretized, &mut model).unwrap();
        assert_eq!(
            pruned.lifetime_steps, reference.lifetime_steps,
            "B1+B2 {load}: pruning changed the RV optimum"
        );
    }
}

#[test]
fn ablations_are_individually_equivalent() {
    // Memoization and dominance pruning must each preserve the optimum on
    // their own, not just in combination.
    let config = coarse_system(2);
    for load in [TestLoad::IlsAlt, TestLoad::Ils250] {
        let profile = load.profile();
        let reference = OptimalScheduler::reference().find_optimal(&config, &profile).unwrap();
        for scheduler in [
            OptimalScheduler::new().without_dominance(),
            OptimalScheduler::new().without_memoization(),
        ] {
            let outcome = scheduler.find_optimal(&config, &profile).unwrap();
            assert_eq!(outcome.lifetime_steps, reference.lifetime_steps, "{load}");
        }
    }
}
