//! Property tests for the [`StateKey`] canonicalization and the pairwise
//! dominance relation the search's Pareto fronts prune with.
//!
//! Randomness is a seeded SplitMix64 stream, so every run checks the same
//! cases: the laws below are what make dominance pruning sound, and a
//! regression here would silently prune optimal schedules.

use battery_sched::model::StateKey;
use dkibam::DiscreteBattery;

/// SplitMix64 — deterministic seeded values without external crates.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Plain components of a battery word, for building dominance chains.
#[derive(Clone, Copy)]
struct Parts {
    n: u32,
    m: u32,
    clock: u64,
    empty: bool,
}

/// Packs components exactly as [`DiscreteBattery::state_word`] does.
fn pack(parts: Parts) -> u128 {
    DiscreteBattery::from_raw_parts(parts.n, parts.m, parts.clock, parts.empty).state_word()
}

/// A random but physically plausible battery state.
fn random_parts(rng: &mut SplitMix64) -> Parts {
    Parts {
        n: rng.below(2_000) as u32,
        m: rng.below(300) as u32,
        clock: rng.below(10_000),
        empty: rng.below(8) == 0,
    }
}

fn random_word(rng: &mut SplitMix64) -> u128 {
    pack(random_parts(rng))
}

/// Degrades a state into one it dominates: less charge, a worse recovery
/// position, possibly retired. Mirrors what future load actually does to a
/// battery, so chains built this way satisfy the dominance premise.
fn degrade(parts: Parts, rng: &mut SplitMix64) -> Parts {
    let m_bump = rng.below(4) as u32;
    Parts {
        n: parts.n.saturating_sub(rng.below(50) as u32),
        m: parts.m + m_bump,
        clock: if m_bump == 0 {
            parts.clock.saturating_sub(rng.below(100))
        } else {
            rng.below(10_000)
        },
        empty: parts.empty || rng.below(6) == 0,
    }
}

/// A same-layout mixed fleet: two type-0 batteries and two type-1.
const MIXED_TYPES: [usize; 4] = [0, 0, 1, 1];

fn key_of(words: &[u128]) -> StateKey {
    StateKey::from_typed_words(MIXED_TYPES.iter().copied().zip(words.iter().copied()))
        .expect("four batteries fit a key")
}

#[test]
fn word_dominance_is_reflexive() {
    let mut rng = SplitMix64(0xD5_0001);
    for _ in 0..500 {
        let w = random_word(&mut rng);
        assert!(DiscreteBattery::word_dominates(w, w), "word {w:#x} must dominate itself");
    }
}

#[test]
fn pairwise_dominance_is_reflexive_on_mixed_fleets() {
    let mut rng = SplitMix64(0xD5_0002);
    for _ in 0..200 {
        let words: Vec<u128> = (0..4).map(|_| random_word(&mut rng)).collect();
        let key = key_of(&words);
        assert!(
            key.dominates_pairwise(&key, DiscreteBattery::word_dominates),
            "key built from {words:x?} must dominate itself"
        );
    }
}

#[test]
fn pairwise_dominance_is_transitive_on_mixed_fleets() {
    let mut rng = SplitMix64(0xD5_0003);
    let dom = |a: &StateKey, b: &StateKey| a.dominates_pairwise(b, DiscreteBattery::word_dominates);
    let mut exercised = 0;
    for _ in 0..400 {
        let fresh: Vec<Parts> = (0..4).map(|_| random_parts(&mut rng)).collect();
        let worse: Vec<Parts> = fresh.iter().map(|&p| degrade(p, &mut rng)).collect();
        let worst: Vec<Parts> = worse.iter().map(|&p| degrade(p, &mut rng)).collect();
        let fresh: Vec<u128> = fresh.into_iter().map(pack).collect();
        let worse: Vec<u128> = worse.into_iter().map(pack).collect();
        let worst: Vec<u128> = worst.into_iter().map(pack).collect();
        let (a, b, c) = (key_of(&fresh), key_of(&worse), key_of(&worst));
        if dom(&a, &b) && dom(&b, &c) {
            exercised += 1;
            assert!(
                dom(&a, &c),
                "transitivity broken: {fresh:x?} dominates {worse:x?} dominates {worst:x?}"
            );
        }
    }
    // The degradation chains are built to satisfy the premise most of the
    // time; if almost none do, the test is vacuous and must be fixed.
    assert!(exercised >= 100, "only {exercised}/400 triples exercised the premise");
}

#[test]
fn canonicalization_is_idempotent() {
    let mut rng = SplitMix64(0xD5_0004);
    for _ in 0..200 {
        let words: Vec<u128> = (0..4).map(|_| random_word(&mut rng)).collect();
        let key = key_of(&words);
        let again = StateKey::from_typed_words(
            key.types().iter().map(|&t| usize::from(t)).zip(key.words().iter().copied()),
        )
        .expect("canonical pairs fit a key");
        assert_eq!(key, again, "re-canonicalizing {words:x?} changed the key");
    }
}

#[test]
fn canonicalization_is_permutation_invariant() {
    let mut rng = SplitMix64(0xD5_0005);
    for _ in 0..100 {
        let mut pairs: Vec<(usize, u128)> =
            MIXED_TYPES.iter().copied().zip((0..4).map(|_| random_word(&mut rng))).collect();
        let reference =
            StateKey::from_typed_words(pairs.iter().copied()).expect("four batteries fit a key");
        // Heap's algorithm over the four pairs: every one of the 24 input
        // orders must canonicalize to the identical key.
        let mut stack = [0usize; 4];
        let mut i = 1;
        while i < 4 {
            if stack[i] < i {
                if i % 2 == 0 {
                    pairs.swap(0, i);
                } else {
                    pairs.swap(stack[i], i);
                }
                let permuted = StateKey::from_typed_words(pairs.iter().copied())
                    .expect("four batteries fit a key");
                assert_eq!(reference, permuted, "permuting {pairs:x?} changed the key");
                stack[i] += 1;
                i = 1;
            } else {
                stack[i] = 0;
                i += 1;
            }
        }
    }
}

#[test]
fn type_groups_never_exchange_words() {
    // A drained B1 next to a fresh B2 must not collide with a fresh B1 next
    // to a drained B2: words sort within their type group only.
    let drained = pack(Parts { n: 10, m: 50, clock: 0, empty: false });
    let fresh = pack(Parts { n: 1_000, m: 1, clock: 0, empty: false });
    let a = StateKey::from_typed_words([(0, drained), (1, fresh)]).unwrap();
    let b = StateKey::from_typed_words([(0, fresh), (1, drained)]).unwrap();
    assert_ne!(a, b);
    assert_eq!(a.types(), &[0, 1]);
    assert_eq!(a.words(), &[drained, fresh]);
    assert_eq!(b.words(), &[fresh, drained]);

    // A uniform fleet (all type 0) reduces to a global sort.
    let uniform = StateKey::from_words([fresh, drained]).unwrap();
    assert_eq!(uniform.words(), &[drained, fresh]);
}

#[test]
fn oversized_or_overtyped_fleets_opt_out() {
    let words = |count: usize| (0..count as u128).map(|w| (0usize, w));
    assert!(StateKey::from_typed_words(words(4)).is_some());
    assert!(StateKey::from_typed_words(words(5)).is_none());
    assert!(StateKey::from_typed_words([(usize::from(u8::MAX) + 1, 0u128)]).is_none());
}
