//! Admissibility of the availability-aware search bound.
//!
//! The availability bound (recovery-coupled service envelopes, demand
//! pacing — see `core::optimal` and `dkibam::ServiceRateTable`) is only
//! sound if it never underestimates the true remaining lifetime: an
//! undercount would prune optimal schedules. This property-style suite
//! samples deterministic random loads and fleets (uniform and mixed) and
//! asserts, for every instance,
//!
//! * the availability-bounded search returns the exact lifetime of the
//!   pruning-free reference search (`OptimalScheduler::reference()`),
//! * it never explores more nodes than the same search *without* the
//!   availability bound (the full pre-availability search), and
//! * the bound evaluated at the root is at least the optimal lifetime.
//!
//! The newly contained alternating-load frontier instance (3×B1 on
//! `ILs alt`) is pinned as a golden: lifetime and node counts are
//! deterministic, so any regression of the bound shows up as an exact
//! mismatch here before it shows up in CI's bench gate.

use battery_sched::optimal::OptimalScheduler;
use battery_sched::policy::FixedSchedule;
use battery_sched::system::{simulate_policy, SystemConfig};
use dkibam::Discretization;
use kibam::{BatteryParams, FleetSpec};
use workload::paper_loads::TestLoad;
use workload::random::RandomLoadSpec;
use workload::LoadProfile;

fn coarse_uniform(count: usize) -> SystemConfig {
    SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), count).unwrap()
}

fn coarse_mixed() -> SystemConfig {
    SystemConfig::from_fleet(
        FleetSpec::new(vec![BatteryParams::itsy_b1(), BatteryParams::itsy_b2()]).unwrap(),
        Discretization::coarse(),
    )
}

/// Deterministic random loads: fixed seeds, so every run samples the same
/// profiles.
fn random_profiles(seeds: &[u64]) -> Vec<LoadProfile> {
    let spec = RandomLoadSpec::new(vec![0.25, 0.5], 1.0, 0.5, 40).unwrap();
    seeds.iter().map(|&seed| spec.generate(seed).unwrap()).collect()
}

/// The admissibility triple: exact lifetime against the reference search,
/// node count no worse than the availability-ablated search, and a root
/// bound at or above the optimum.
fn assert_admissible(config: &SystemConfig, profile: &LoadProfile, label: &str) {
    let reference = OptimalScheduler::reference().find_optimal(config, profile).unwrap();
    let with_bound = OptimalScheduler::new().find_optimal(config, profile).unwrap();
    let without_bound =
        OptimalScheduler::new().without_availability_bound().find_optimal(config, profile).unwrap();
    assert_eq!(
        with_bound.lifetime_steps, reference.lifetime_steps,
        "{label}: the availability bound changed the optimum"
    );
    assert_eq!(
        without_bound.lifetime_steps, reference.lifetime_steps,
        "{label}: the charge-only search changed the optimum"
    );
    assert!(
        with_bound.nodes_explored <= without_bound.nodes_explored,
        "{label}: the availability bound grew the search ({} vs {})",
        with_bound.nodes_explored,
        without_bound.nodes_explored
    );
    // The decision sequence replays to the exact optimum.
    let mut replay = FixedSchedule::new(with_bound.decisions.clone());
    let replayed = simulate_policy(config, profile, &mut replay).unwrap();
    let lifetime = replayed.lifetime_steps().unwrap_or(with_bound.lifetime_steps);
    assert_eq!(lifetime, with_bound.lifetime_steps, "{label}: decisions do not replay");

    // Root bounds must dominate the optimum (necessary admissibility
    // condition, checked directly against the exact answer).
    let load = config.discretize(profile).unwrap();
    let mut model = config.discretized_model();
    let (charge, availability, warm) =
        OptimalScheduler::probe_root_bounds(config, &load, &mut model).unwrap();
    assert!(
        availability >= reference.lifetime_steps,
        "{label}: availability root bound {availability} underestimates the optimum {}",
        reference.lifetime_steps
    );
    assert!(charge >= reference.lifetime_steps, "{label}: charge root bound underestimates");
    assert!(warm <= reference.lifetime_steps, "{label}: the warm start can never beat the optimum");
}

#[test]
fn two_battery_bound_is_admissible_on_paper_loads() {
    let config = coarse_uniform(2);
    for load in [TestLoad::Cl500, TestLoad::Ils500, TestLoad::IlsAlt, TestLoad::Ils250] {
        assert_admissible(&config, &load.profile(), load.name());
    }
}

#[test]
fn two_battery_bound_is_admissible_on_random_loads() {
    let config = coarse_uniform(2);
    for (index, profile) in random_profiles(&[3, 17, 29]).iter().enumerate() {
        assert_admissible(&config, profile, &format!("2xB1 random[{index}]"));
    }
}

#[test]
fn mixed_fleet_bound_is_admissible() {
    let config = coarse_mixed();
    for load in [TestLoad::Cl500, TestLoad::IlsAlt] {
        assert_admissible(&config, &load.profile(), &format!("B1+B2 {load}"));
    }
    for (index, profile) in random_profiles(&[11]).iter().enumerate() {
        assert_admissible(&config, profile, &format!("B1+B2 random[{index}]"));
    }
}

#[test]
fn three_battery_bound_is_admissible() {
    let config = coarse_uniform(3);
    // Higher currents keep the pruning-free reference search tractable.
    let spec = RandomLoadSpec::new(vec![0.5, 1.0], 1.0, 0.5, 25).unwrap();
    assert_admissible(&config, &spec.generate(7).unwrap(), "3xB1 random[7]");
    assert_admissible(&config, &TestLoad::Cl500.profile(), "3xB1 CL 500");
}

/// The frontier golden: 3×B1 on the alternating load. The charge bound
/// never fires here (the load strands ~70 % of the charge), so the whole
/// reduction against the availability-ablated search is the new bound's
/// doing. Values are pinned exactly — node counts are deterministic.
#[test]
fn three_b1_alternating_frontier_is_pinned() {
    let config = coarse_uniform(3);
    let profile = TestLoad::IlsAlt.profile();
    let with_bound = OptimalScheduler::new().find_optimal(&config, &profile).unwrap();
    let without_bound = OptimalScheduler::new()
        .without_availability_bound()
        .find_optimal(&config, &profile)
        .unwrap();
    assert_eq!(with_bound.lifetime_steps, 740, "3xB1 ILs alt optimum (coarse grid)");
    assert_eq!(with_bound.lifetime_steps, without_bound.lifetime_steps);
    assert_eq!(with_bound.nodes_explored, 53_595, "availability-bounded node count");
    assert_eq!(without_bound.nodes_explored, 208_504, "charge-only node count");
    assert_eq!(with_bound.charge_bound_prunes, 0, "the charge bound never fires on ILs alt");
    assert!(with_bound.availability_bound_prunes > 20_000, "the new bound carries the search");
    assert_eq!(with_bound.seeded_by, Some("round robin"));
}

/// The 2×B1 alternating-load root bound, pinned: the availability bound
/// claims 650 steps where the charge bound claims 1140 (optimum: 330).
/// Tightening is welcome (update the pin); loosening is a regression.
#[test]
fn alternating_root_bounds_are_pinned() {
    let config = coarse_uniform(2);
    let load = config.discretize(&TestLoad::IlsAlt.profile()).unwrap();
    let mut model = config.discretized_model();
    let (charge, availability, warm) =
        OptimalScheduler::probe_root_bounds(&config, &load, &mut model).unwrap();
    assert_eq!(charge, 1140);
    assert_eq!(availability, 650);
    assert_eq!(warm, 328);
}
