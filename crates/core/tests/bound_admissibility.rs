//! Admissibility of the availability-aware search bound.
//!
//! The availability bound (recovery-coupled service envelopes, demand
//! pacing — see `core::optimal` and `dkibam::ServiceRateTable`) is only
//! sound if it never underestimates the true remaining lifetime: an
//! undercount would prune optimal schedules. This property-style suite
//! samples deterministic random loads and fleets (uniform and mixed) and
//! asserts, for every instance,
//!
//! * the availability-bounded search returns the exact lifetime of the
//!   pruning-free reference search (`OptimalScheduler::reference()`),
//! * it never explores more nodes than the same search *without* the
//!   availability bound (the full pre-availability search), and
//! * the bound evaluated at the root is at least the optimal lifetime.
//!
//! The newly contained alternating-load frontier instance (3×B1 on
//! `ILs alt`) is pinned as a golden: lifetime and node counts are
//! deterministic, so any regression of the bound shows up as an exact
//! mismatch here before it shows up in CI's bench gate.

use battery_sched::optimal::OptimalScheduler;
use battery_sched::policy::FixedSchedule;
use battery_sched::system::{simulate_policy, SystemConfig};
use dkibam::Discretization;
use kibam::{BatteryParams, FleetSpec};
use workload::paper_loads::TestLoad;
use workload::random::RandomLoadSpec;
use workload::LoadProfile;

fn coarse_uniform(count: usize) -> SystemConfig {
    SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), count).unwrap()
}

fn coarse_mixed() -> SystemConfig {
    SystemConfig::from_fleet(
        FleetSpec::new(vec![BatteryParams::itsy_b1(), BatteryParams::itsy_b2()]).unwrap(),
        Discretization::coarse(),
    )
}

/// Deterministic random loads: fixed seeds, so every run samples the same
/// profiles.
fn random_profiles(seeds: &[u64]) -> Vec<LoadProfile> {
    let spec = RandomLoadSpec::new(vec![0.25, 0.5], 1.0, 0.5, 40).unwrap();
    seeds.iter().map(|&seed| spec.generate(seed).unwrap()).collect()
}

/// The admissibility suite for one instance: exact lifetime against the
/// reference search under every bound ablation, node-count monotonicity
/// as bounds are added (charge-only ⊇ availability ⊇ relaxation), and
/// root bounds at or above the optimum.
fn assert_admissible(config: &SystemConfig, profile: &LoadProfile, label: &str) {
    let reference = OptimalScheduler::reference().find_optimal(config, profile).unwrap();
    let with_bound = OptimalScheduler::new().find_optimal(config, profile).unwrap();
    let without_relax =
        OptimalScheduler::new().without_relax_bound().find_optimal(config, profile).unwrap();
    let without_bound = OptimalScheduler::new()
        .without_relax_bound()
        .without_availability_bound()
        .find_optimal(config, profile)
        .unwrap();
    assert_eq!(
        with_bound.lifetime_steps, reference.lifetime_steps,
        "{label}: the relaxation bound changed the optimum"
    );
    assert_eq!(
        without_relax.lifetime_steps, reference.lifetime_steps,
        "{label}: the availability bound changed the optimum"
    );
    assert_eq!(
        without_bound.lifetime_steps, reference.lifetime_steps,
        "{label}: the charge-only search changed the optimum"
    );
    assert!(
        with_bound.nodes_explored <= without_relax.nodes_explored,
        "{label}: the relaxation bound grew the search ({} vs {})",
        with_bound.nodes_explored,
        without_relax.nodes_explored
    );
    assert!(
        without_relax.nodes_explored <= without_bound.nodes_explored,
        "{label}: the availability bound grew the search ({} vs {})",
        without_relax.nodes_explored,
        without_bound.nodes_explored
    );
    // The decision sequence replays to the exact optimum.
    let mut replay = FixedSchedule::new(with_bound.decisions.clone());
    let replayed = simulate_policy(config, profile, &mut replay).unwrap();
    let lifetime = replayed.lifetime_steps().unwrap_or(with_bound.lifetime_steps);
    assert_eq!(lifetime, with_bound.lifetime_steps, "{label}: decisions do not replay");

    // Root bounds must dominate the optimum (necessary admissibility
    // condition, checked directly against the exact answer).
    let load = config.discretize(profile).unwrap();
    let mut model = config.discretized_model();
    let bounds = OptimalScheduler::probe_root_bounds(config, &load, &mut model).unwrap();
    assert!(
        bounds.availability >= reference.lifetime_steps,
        "{label}: availability root bound {} underestimates the optimum {}",
        bounds.availability,
        reference.lifetime_steps
    );
    assert!(bounds.charge >= reference.lifetime_steps, "{label}: charge root bound underestimates");
    assert!(
        bounds.relaxation >= reference.lifetime_steps,
        "{label}: relaxation root bound {} underestimates the optimum {}",
        bounds.relaxation,
        reference.lifetime_steps
    );
    assert!(
        bounds.warm_start <= reference.lifetime_steps,
        "{label}: the warm start can never beat the optimum"
    );
}

#[test]
fn two_battery_bound_is_admissible_on_paper_loads() {
    let config = coarse_uniform(2);
    for load in [TestLoad::Cl500, TestLoad::Ils500, TestLoad::IlsAlt, TestLoad::Ils250] {
        assert_admissible(&config, &load.profile(), load.name());
    }
}

#[test]
fn two_battery_bound_is_admissible_on_random_loads() {
    let config = coarse_uniform(2);
    for (index, profile) in random_profiles(&[3, 17, 29]).iter().enumerate() {
        assert_admissible(&config, profile, &format!("2xB1 random[{index}]"));
    }
}

#[test]
fn mixed_fleet_bound_is_admissible() {
    let config = coarse_mixed();
    for load in [TestLoad::Cl500, TestLoad::IlsAlt] {
        assert_admissible(&config, &load.profile(), &format!("B1+B2 {load}"));
    }
    for (index, profile) in random_profiles(&[11]).iter().enumerate() {
        assert_admissible(&config, profile, &format!("B1+B2 random[{index}]"));
    }
}

#[test]
fn three_battery_bound_is_admissible() {
    let config = coarse_uniform(3);
    // Higher currents keep the pruning-free reference search tractable.
    let spec = RandomLoadSpec::new(vec![0.5, 1.0], 1.0, 0.5, 25).unwrap();
    assert_admissible(&config, &spec.generate(7).unwrap(), "3xB1 random[7]");
    assert_admissible(&config, &TestLoad::Cl500.profile(), "3xB1 CL 500");
}

/// The frontier golden: 3×B1 on the alternating load. The charge bound
/// never fires here (the load strands ~70 % of the charge), so the whole
/// reduction against the charge-only search is the availability and
/// relaxation bounds' doing. Values are pinned exactly — node counts are
/// deterministic.
#[test]
fn three_b1_alternating_frontier_is_pinned() {
    let config = coarse_uniform(3);
    let profile = TestLoad::IlsAlt.profile();
    let full = OptimalScheduler::new().find_optimal(&config, &profile).unwrap();
    let without_relax =
        OptimalScheduler::new().without_relax_bound().find_optimal(&config, &profile).unwrap();
    let charge_only = OptimalScheduler::new()
        .without_relax_bound()
        .without_availability_bound()
        .find_optimal(&config, &profile)
        .unwrap();
    assert_eq!(full.lifetime_steps, 740, "3xB1 ILs alt optimum (coarse grid)");
    assert_eq!(full.lifetime_steps, without_relax.lifetime_steps);
    assert_eq!(full.lifetime_steps, charge_only.lifetime_steps);
    assert_eq!(full.nodes_explored, 22_923, "relaxation-bounded node count");
    assert_eq!(without_relax.nodes_explored, 53_595, "availability-bounded node count");
    assert_eq!(charge_only.nodes_explored, 208_504, "charge-only node count");
    assert_eq!(full.charge_bound_prunes, 0, "the charge bound never fires on ILs alt");
    assert!(full.availability_bound_prunes > 5_000, "the availability bound still fires first");
    assert!(full.relax_bound_prunes > 5_000, "the relaxation bound carries the rest");
    assert_eq!(full.seeded_by, Some("round robin"));
}

/// The 2×B1 alternating-load root bound, pinned: the availability bound
/// claims 650 steps where the charge bound claims 1140 (optimum: 330).
/// Tightening is welcome (update the pin); loosening is a regression.
#[test]
fn alternating_root_bounds_are_pinned() {
    let config = coarse_uniform(2);
    let load = config.discretize(&TestLoad::IlsAlt.profile()).unwrap();
    let mut model = config.discretized_model();
    let bounds = OptimalScheduler::probe_root_bounds(&config, &load, &mut model).unwrap();
    assert_eq!(bounds.charge, 1140);
    assert_eq!(bounds.availability, 650);
    assert!(
        bounds.relaxation < bounds.availability,
        "the relaxation root bound ({}) must tighten the availability bound (650)",
        bounds.relaxation
    );
    assert!(bounds.relaxation >= 330, "the relaxation bound must stay above the 330-step optimum");
    assert!(bounds.warm_start >= 328, "LP rounding must not lose to the old policy seeds");
    assert!(bounds.warm_start <= 330);
}
