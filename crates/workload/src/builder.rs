//! Fluent construction of load profiles.

use crate::{Epoch, LoadProfile, WorkloadError};

/// A builder for [`LoadProfile`]s.
///
/// Epochs are appended with [`job`](LoadProfileBuilder::job) and
/// [`idle`](LoadProfileBuilder::idle); invalid values are remembered and
/// reported when the profile is finally built, which keeps call chains tidy.
///
/// # Example
///
/// ```
/// use workload::builder::LoadProfileBuilder;
///
/// # fn main() -> Result<(), workload::WorkloadError> {
/// // The paper's "ILs alt" pattern: alternate 500 mA and 250 mA one-minute
/// // jobs with one-minute idle periods, repeated forever.
/// let profile = LoadProfileBuilder::new()
///     .job(0.5, 1.0)
///     .idle(1.0)
///     .job(0.25, 1.0)
///     .idle(1.0)
///     .build_cyclic()?;
/// assert_eq!(profile.pattern().len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct LoadProfileBuilder {
    epochs: Vec<Epoch>,
    error: Option<WorkloadError>,
}

impl LoadProfileBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a job epoch drawing `current` amperes for `duration` minutes.
    #[must_use]
    pub fn job(mut self, current: f64, duration: f64) -> Self {
        self.push(Epoch::job(current, duration));
        self
    }

    /// Appends an idle epoch of `duration` minutes.
    #[must_use]
    pub fn idle(mut self, duration: f64) -> Self {
        self.push(Epoch::idle(duration));
        self
    }

    /// Appends an already-constructed epoch.
    #[must_use]
    pub fn epoch(mut self, epoch: Epoch) -> Self {
        self.epochs.push(epoch);
        self
    }

    /// Appends `count` repetitions of the epochs accumulated so far.
    ///
    /// Useful for building long finite loads out of a short pattern, e.g.
    /// `builder.job(..).idle(..).repeat_pattern(100)`.
    #[must_use]
    pub fn repeat_pattern(mut self, count: usize) -> Self {
        let pattern = self.epochs.clone();
        for _ in 1..count.max(1) {
            self.epochs.extend_from_slice(&pattern);
        }
        self
    }

    /// Builds a finite profile.
    ///
    /// # Errors
    ///
    /// Returns the first epoch-construction error encountered, or
    /// [`WorkloadError::EmptyProfile`] if no epochs were added.
    pub fn build_finite(self) -> Result<LoadProfile, WorkloadError> {
        if let Some(error) = self.error {
            return Err(error);
        }
        LoadProfile::finite(self.epochs)
    }

    /// Builds a cyclic profile that repeats the accumulated epochs forever.
    ///
    /// # Errors
    ///
    /// Returns the first epoch-construction error encountered,
    /// [`WorkloadError::EmptyProfile`] if no epochs were added, or
    /// [`WorkloadError::IdleCycle`] if the pattern draws no charge.
    pub fn build_cyclic(self) -> Result<LoadProfile, WorkloadError> {
        if let Some(error) = self.error {
            return Err(error);
        }
        LoadProfile::cyclic(self.epochs)
    }

    fn push(&mut self, epoch: Result<Epoch, WorkloadError>) {
        match epoch {
            Ok(epoch) => self.epochs.push(epoch),
            Err(error) => {
                if self.error.is_none() {
                    self.error = Some(error);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_finite_and_cyclic_profiles() {
        let finite = LoadProfileBuilder::new().job(0.25, 1.0).idle(2.0).build_finite().unwrap();
        assert_eq!(finite.pattern().len(), 2);
        assert!(!finite.is_cyclic());

        let cyclic = LoadProfileBuilder::new().job(0.5, 1.0).idle(1.0).build_cyclic().unwrap();
        assert!(cyclic.is_cyclic());
    }

    #[test]
    fn first_error_is_reported() {
        let result = LoadProfileBuilder::new().job(-1.0, 1.0).idle(-2.0).build_finite();
        assert!(matches!(result, Err(WorkloadError::InvalidCurrent { .. })));
    }

    #[test]
    fn empty_builder_reports_empty_profile() {
        assert!(matches!(
            LoadProfileBuilder::new().build_finite(),
            Err(WorkloadError::EmptyProfile)
        ));
    }

    #[test]
    fn repeat_pattern_multiplies_epochs() {
        let profile = LoadProfileBuilder::new()
            .job(0.5, 1.0)
            .idle(1.0)
            .repeat_pattern(3)
            .build_finite()
            .unwrap();
        assert_eq!(profile.pattern().len(), 6);
        assert_eq!(profile.total_charge(), Some(1.5));
    }

    #[test]
    fn repeat_pattern_of_zero_keeps_single_copy() {
        let profile =
            LoadProfileBuilder::new().job(0.5, 1.0).repeat_pattern(0).build_finite().unwrap();
        assert_eq!(profile.pattern().len(), 1);
    }

    #[test]
    fn epoch_method_appends_preconstructed_epoch() {
        let epoch = Epoch::job(0.7, 0.5).unwrap();
        let profile = LoadProfileBuilder::new().epoch(epoch).build_finite().unwrap();
        assert_eq!(profile.pattern()[0], epoch);
    }
}
