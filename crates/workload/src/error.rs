use std::error::Error;
use std::fmt;

/// Errors produced when constructing load profiles.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// An epoch current was negative, NaN or infinite.
    InvalidCurrent {
        /// The rejected current (A).
        value: f64,
    },
    /// An epoch duration was non-positive, NaN or infinite.
    InvalidDuration {
        /// The rejected duration (min).
        value: f64,
    },
    /// A profile (or cyclic pattern) contained no epochs.
    EmptyProfile,
    /// A cyclic profile was requested but its pattern draws no charge, so it
    /// could repeat forever without ever exercising a battery.
    IdleCycle,
    /// A horizon or charge bound used to truncate a profile was invalid.
    InvalidBound {
        /// The rejected bound.
        value: f64,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidCurrent { value } => {
                write!(f, "epoch current must be non-negative and finite, got {value}")
            }
            WorkloadError::InvalidDuration { value } => {
                write!(f, "epoch duration must be positive and finite, got {value}")
            }
            WorkloadError::EmptyProfile => write!(f, "a load profile needs at least one epoch"),
            WorkloadError::IdleCycle => {
                write!(f, "a cyclic load pattern must draw charge in at least one epoch")
            }
            WorkloadError::InvalidBound { value } => {
                write!(f, "truncation bound must be positive and finite, got {value}")
            }
        }
    }
}

impl Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(WorkloadError::InvalidCurrent { value: -1.0 }.to_string().contains("-1"));
        assert!(WorkloadError::InvalidDuration { value: 0.0 }.to_string().contains('0'));
        assert!(WorkloadError::EmptyProfile.to_string().contains("at least one"));
        assert!(WorkloadError::IdleCycle.to_string().contains("cyclic"));
        assert!(WorkloadError::InvalidBound { value: -2.0 }.to_string().contains("-2"));
    }

    #[test]
    fn implements_std_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<WorkloadError>();
    }
}
