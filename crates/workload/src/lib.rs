//! Load and workload models for battery scheduling.
//!
//! The battery-scheduling paper (Jongerden et al., DSN 2009) drives its
//! batteries with *loads*: sequences of constant-current **jobs** (250 mA or
//! 500 mA, one minute long) separated by **idle periods** (zero current).
//! This crate provides:
//!
//! * [`Epoch`] and [`LoadProfile`] — a general piecewise-constant load,
//!   either finite or cyclically repeating, iterable as epochs or as
//!   [`kibam::lifetime::Segment`]s;
//! * [`builder::LoadProfileBuilder`] — an ergonomic way to assemble profiles;
//! * [`paper_loads::TestLoad`] — the ten test loads of Section 5 of the
//!   paper (`CL 250`, …, ``IL` 500``), pre-parameterised with the calibrated
//!   one-minute job duration;
//! * [`random::RandomLoadSpec`] — seeded random job sequences, used for the
//!   paper's `ILs r1` / `ILs r2` loads and for exploring "realistic random
//!   loads" (the outlook of Section 7).
//!
//! # Example
//!
//! ```
//! use workload::paper_loads::TestLoad;
//! use kibam::{BatteryParams, lifetime::lifetime_for_segments};
//!
//! let b1 = BatteryParams::itsy_b1();
//! let load = TestLoad::Ils500.profile();
//! let lifetime = lifetime_for_segments(&b1, load.segments()).unwrap().lifetime;
//! // Table 3 of the paper: 4.30 minutes.
//! assert!((lifetime - 4.30).abs() < 0.01);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod builder;
mod error;
pub mod paper_loads;
mod profile;
pub mod random;

pub use error::WorkloadError;
pub use profile::{Epoch, EpochIter, LoadProfile, SegmentIter};
